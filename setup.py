from setuptools import find_packages, setup

setup(
    name="lilac-repro",
    version="1.1.0",
    description=(
        "Reproduction of 'Parameterized Hardware Design with "
        "Latency-Abstract Interfaces' (Lilac, ASPLOS 2026): HDL, "
        "SMT-backed type checker, elaborator, RTL substrate, generator "
        "stand-ins, synthesis cost model, and the staged compiler driver."
    ),
    license="MIT",
    python_requires=">=3.9",
    packages=find_packages("src"),
    package_dir={"": "src"},
    entry_points={
        "console_scripts": [
            "repro = repro.driver.cli:main",
        ],
    },
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
        # Fast kernels for the mega-lane vector simulation backend;
        # without it the backend falls back to a pure-stdlib path.
        "vector": ["numpy"],
    },
)

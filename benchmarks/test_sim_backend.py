"""Benchmark: compiled vs interpreted simulation, batched lanes, the
mega-lane vector backend, cold vs warm sessions, and thread- vs
process-grid scaling.

Seeds the repository's perf trajectory with ``BENCH_sim.json`` (written
at the repo root): per-design simulation throughput for both scalar
backends, the batched multi-lane throughput sweep (lanes in
{1, 4, 16, 64}, measured in *lane-cycles* per second — cycles times
lanes — the honest unit for batch mode), the vector backend's lane
sweep (lanes in {64, 256, 1024, 4096} on the numpy flavor; a small
sweep with no acceptance bar on the stdlib fallback), the auto-tuner's
measured per-design decision, the one-time code-generation overhead,
the wall-clock of a cold-then-warm session pair over the persistent
disk cache, and an :class:`EvalGrid` thread-vs-process comparison
whose results must be bit-identical.

The assertions encode the acceptance bars — the compiled backend ≥3x
the interpreter on the largest catalog design, the 16-lane batched mode
≥3x single-lane compiled throughput on that same design (tunable down
via ``$REPRO_BENCH_MIN_LANE_SPEEDUP`` for reduced-cycle CI smoke runs),
the vector backend's best lane count ≥3x the 64-lane SWAR batched
throughput on that same design (``$REPRO_BENCH_MIN_VECTOR_SPEEDUP``;
numpy flavor only), the profile-guided ``-O3`` program beating the
plain ``-O2`` compiled program on that same design
(``$REPRO_BENCH_MIN_O3_SPEEDUP``, lenient by default — fusion wins are
real but modest), and the warm session served almost entirely from
disk.  Cycle counts scale down via ``$REPRO_BENCH_CYCLES``.

Every measured figure in the committed JSON is rounded to a fixed
number of significant digits (:func:`_sig`) and the payload is dumped
with sorted keys, so regeneration churns digits, never structure.
"""

import json
import math
import os
import pathlib
import time

from repro.designs.catalog import DESIGNS, design_point
from repro.driver import CompileSession, EvalGrid
from repro.rtl import (
    BatchedCompiledSimulator,
    CompiledSimulator,
    Simulator,
    VectorCompiledSimulator,
    collect_profile,
    compile_netlist,
    random_stimulus,
    random_stimulus_batch,
    tune,
    vector_flavor,
)
from repro.rtl.passes import build_plan

CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", "256"))
SEED = 0xBE
LANE_SWEEP = (1, 4, 16, 64)
#: The vector backend only pulls ahead at lane counts SWAR cannot
#: reach; on the pure-stdlib fallback flavor the per-lane loops make
#: mega-lane timing pointless, so the sweep shrinks and carries no bar.
VECTOR_LANE_SWEEP = (64, 256, 1024, 4096)
VECTOR_LANE_SWEEP_STDLIB = (8, 32)
#: Vector lane counts are ~100x the SWAR sweep's; fewer timed cycles
#: still move two orders of magnitude more lane-cycles per design.
VECTOR_CYCLES = max(16, CYCLES // 4)
#: 16-lane batched vs single-lane compiled on the largest design; CI
#: smoke jobs at reduced cycle counts relax it to "batched wins at all".
MIN_LANE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_LANE_SPEEDUP", "3.0"))
#: Best vector lane count vs 64-lane SWAR on the largest design.
MIN_VECTOR_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_VECTOR_SPEEDUP", "3.0")
)
#: Profile-guided -O3 vs plain -O2 compiled throughput on the largest
#: design.  Fusion's win is real but modest (and jittery at CI cycle
#: counts), so the default bar is deliberately lenient.
MIN_O3_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_O3_SPEEDUP", "1.02"))
BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: The cold/warm pair sweeps a slice of the catalog through the full
#: pipeline (synthesize + simulate at -O2) — enough stages to be
#: representative without doubling the benchmark's runtime.
WARM_DESIGNS = ("fpu", "fft", "blas")

#: The grid comparison simulates every design at -O2 on the compiled
#: backend — CPU-bound work, which is what process mode exists for.
GRID_CYCLES = max(16, CYCLES // 4)


def _sig(value: float, digits: int = 3) -> float:
    """Round to ``digits`` significant figures — committed benchmark
    figures carry measurement jitter, not precision, and fewer digits
    keep regeneration diffs small."""
    if not value or not math.isfinite(value):
        return value
    return round(value, digits - 1 - math.floor(math.log10(abs(value))))


def _throughput(sim_cls, module, stimulus) -> float:
    simulator = sim_cls(module)
    start = time.perf_counter()
    simulator.run(stimulus)
    seconds = time.perf_counter() - start
    return len(stimulus) / seconds if seconds else float("inf")


def _best_cps(simulator, stimulus, reps: int = 3) -> float:
    """Best-of-``reps`` cycles/sec — the -O3-vs-O2 differential compares
    two programs whose gap is smaller than scheduler noise on a single
    shot, so both sides take their fastest of a few runs."""
    best = 0.0
    for _ in range(reps):
        start = time.perf_counter()
        simulator.run(stimulus)
        seconds = time.perf_counter() - start
        cps = len(stimulus) / seconds if seconds else float("inf")
        best = max(best, cps)
    return best


def _lane_throughput(module, lanes, cycles) -> float:
    """Steady-state lane-cycles/sec (codegen warmed before timing)."""
    streams = random_stimulus_batch(module, cycles, lanes, SEED)
    BatchedCompiledSimulator(module, lanes)  # pay codegen outside timing
    simulator = BatchedCompiledSimulator(module, lanes)
    start = time.perf_counter()
    simulator.run(streams)
    seconds = time.perf_counter() - start
    return cycles * lanes / seconds if seconds else float("inf")


def _vector_throughput(module, lanes, cycles, flavor) -> float:
    """Steady-state lane-cycles/sec of the vector backend (stimulus and
    codegen both paid outside the timed window)."""
    streams = random_stimulus_batch(module, cycles, lanes, SEED)
    VectorCompiledSimulator(module, lanes, flavor=flavor)  # warm codegen
    simulator = VectorCompiledSimulator(module, lanes, flavor=flavor)
    start = time.perf_counter()
    simulator.run(streams)
    seconds = time.perf_counter() - start
    return cycles * lanes / seconds if seconds else float("inf")


def _design_rows(session):
    flavor = vector_flavor()
    vector_sweep = (
        VECTOR_LANE_SWEEP if flavor == "numpy" else VECTOR_LANE_SWEEP_STDLIB
    )
    rows = []
    for name in sorted(DESIGNS):
        source, component, generators, params = design_point(name)
        module = session.optimize(
            source, component, params, generators, opt_level=0
        ).value.module
        stimulus = random_stimulus(module, CYCLES, SEED)
        interp_cps = _throughput(Simulator, module, stimulus)
        compiled_cps = _throughput(CompiledSimulator, module, stimulus)
        lanes = {
            str(k): _sig(_lane_throughput(module, k, CYCLES))
            for k in LANE_SWEEP
        }
        vector = {
            str(k): _sig(_vector_throughput(module, k, VECTOR_CYCLES, flavor))
            for k in vector_sweep
        }
        tuned = tune(module, max(vector_sweep))
        # The profile-guided differential pair: -O2 compiled program vs
        # the same netlist specialized against its activity profile.
        o2_module = session.optimize(
            source, component, params, generators, opt_level=2
        ).value.module
        plan = build_plan(o2_module, collect_profile(o2_module))
        o2_stimulus = random_stimulus(o2_module, CYCLES, SEED)
        o2_cps = _best_cps(CompiledSimulator(o2_module), o2_stimulus)
        o3_cps = _best_cps(
            CompiledSimulator(o2_module, plan=plan), o2_stimulus
        )
        rows.append(
            {
                "name": name,
                "cells": len(module.cells),
                "cycles": CYCLES,
                "interp_cycles_per_sec": _sig(interp_cps),
                "compiled_cycles_per_sec": _sig(compiled_cps),
                "speedup": _sig(compiled_cps / interp_cps),
                "batched_lane_cycles_per_sec": lanes,
                "lane16_speedup_vs_scalar": _sig(lanes["16"] / compiled_cps),
                "vector_lane_cycles_per_sec": vector,
                "vector_flavor": flavor,
                "vector_cycles": VECTOR_CYCLES,
                "tuned_backend": tuned.backend,
                "o2_cycles_per_sec": _sig(o2_cps),
                "o3_cycles_per_sec": _sig(o3_cps),
                "o3_speedup_vs_o2": _sig(o3_cps / o2_cps),
                "pgo_fused_nets": len(plan.fuse_nets),
                "compile_seconds": _sig(
                    compile_netlist(module).compile_seconds
                ),
            }
        )
    return rows


def _timed_session(cache_dir):
    session = CompileSession(
        opt_level=2, sim_backend="compiled", cache_dir=cache_dir
    )
    start = time.perf_counter()
    for name in WARM_DESIGNS:
        source, component, generators, params = design_point(name)
        session.synthesize(source, component, params, generators)
        session.simulate(
            source, component, params, generators, cycles=64, seed=SEED
        )
    return time.perf_counter() - start, session


def _grid_trace(session, name):
    """Module-level so the process pool can pickle it."""
    source, component, generators, params = design_point(name)
    return session.simulate(
        source, component, params, generators,
        cycles=GRID_CYCLES, seed=SEED, opt_level=2, backend="compiled",
    ).value.outputs


def _timed_grid(executor, cache_dir):
    session = CompileSession(opt_level=2, cache_dir=cache_dir)
    grid = EvalGrid(session, max_workers=4, executor=executor)
    start = time.perf_counter()
    results = grid.map(_grid_trace, sorted(DESIGNS))
    return time.perf_counter() - start, results


def test_sim_backend_benchmark(tmp_path):
    rows = _design_rows(CompileSession())

    cold_seconds, _ = _timed_session(str(tmp_path / "bench-cache"))
    warm_seconds, warm_session = _timed_session(str(tmp_path / "bench-cache"))
    disk = warm_session.disk_stats()

    # Thread vs process grid over separate cold caches: identical
    # results, wall-clocks recorded for the scaling trajectory.
    thread_seconds, thread_results = _timed_grid(
        "thread", str(tmp_path / "grid-thread")
    )
    process_seconds, process_results = _timed_grid(
        "process", str(tmp_path / "grid-process")
    )
    assert process_results == thread_results

    largest = max(rows, key=lambda row: row["cells"])
    vector_best = max(largest["vector_lane_cycles_per_sec"].values())
    vector_vs_swar64 = _sig(
        vector_best / largest["batched_lane_cycles_per_sec"]["64"]
    )
    payload = {
        "generated_by": "benchmarks/test_sim_backend.py",
        "designs": rows,
        "largest_design": largest["name"],
        "largest_design_speedup": largest["speedup"],
        "largest_design_lane16_speedup": largest["lane16_speedup_vs_scalar"],
        "largest_design_vector_vs_swar64": vector_vs_swar64,
        "largest_design_o3_speedup_vs_o2": largest["o3_speedup_vs_o2"],
        "vector_flavor": largest["vector_flavor"],
        "warm_vs_cold": {
            "designs": list(WARM_DESIGNS),
            "stages": ["synthesize", "simulate"],
            "opt_level": 2,
            "sim_backend": "compiled",
            "cold_seconds": _sig(cold_seconds),
            "warm_seconds": _sig(warm_seconds),
            "speedup": _sig(cold_seconds / warm_seconds, 2),
            "warm_disk_hit_rate": _sig(disk["hit_rate"], 2),
        },
        "grid": {
            "points": sorted(DESIGNS),
            "cycles": GRID_CYCLES,
            "workers": 4,
            "thread_seconds": _sig(thread_seconds),
            "process_seconds": _sig(process_seconds),
            "results_identical": True,
        },
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    print(f"\nSimulation backends over {CYCLES} cycles (cycles/sec):\n")
    for row in rows:
        lanes = row["batched_lane_cycles_per_sec"]
        print(
            f"  {row['name']:8s} {row['cells']:5d} cells  "
            f"interp {row['interp_cycles_per_sec']:10.0f}  "
            f"compiled {row['compiled_cycles_per_sec']:10.0f}  "
            f"({row['speedup']:.2f}x, compile {row['compile_seconds']*1e3:.1f}ms)"
        )
        print(
            "           lanes  "
            + "  ".join(f"{k}: {lanes[str(k)]:.0f}" for k in LANE_SWEEP)
            + f"  (x16 = {row['lane16_speedup_vs_scalar']:.2f}x scalar)"
        )
        vector = row["vector_lane_cycles_per_sec"]
        print(
            f"           vector ({row['vector_flavor']})  "
            + "  ".join(f"{k}: {cps:.0f}" for k, cps in vector.items())
            + f"  -> auto picks {row['tuned_backend']}"
        )
        print(
            f"           pgo -O3 {row['o3_cycles_per_sec']:.0f} vs "
            f"-O2 {row['o2_cycles_per_sec']:.0f} "
            f"({row['o3_speedup_vs_o2']:.2f}x, "
            f"{row['pgo_fused_nets']} nets fused)"
        )
    print(
        f"\n  cold session {cold_seconds:.2f}s -> warm session "
        f"{warm_seconds:.2f}s ({cold_seconds / warm_seconds:.1f}x, "
        f"disk hit rate {disk['hit_rate']:.0%})"
    )
    print(
        f"  grid over {len(DESIGNS)} designs: thread {thread_seconds:.2f}s, "
        f"process {process_seconds:.2f}s (results identical)"
    )

    # Acceptance: the compiled backend is ≥3x interpreter on the largest
    # design, 16 batched lanes multiply its throughput again, the vector
    # backend's best lane count leaves 64-lane SWAR behind (numpy flavor
    # only — the stdlib fallback exists for correctness, not speed), the
    # profile-guided program beats plain -O2 on the largest design, and
    # the disk cache makes the second session nearly free.
    assert largest["speedup"] >= 3.0, largest
    assert largest["lane16_speedup_vs_scalar"] >= MIN_LANE_SPEEDUP, largest
    if largest["vector_flavor"] == "numpy":
        assert vector_vs_swar64 >= MIN_VECTOR_SPEEDUP, largest
    assert largest["o3_speedup_vs_o2"] >= MIN_O3_SPEEDUP, largest
    assert disk["hit_rate"] >= 0.9, disk
    assert warm_seconds < cold_seconds, (warm_seconds, cold_seconds)

"""Benchmark: compiled vs interpreted simulation, cold vs warm sessions.

Seeds the repository's perf trajectory with ``BENCH_sim.json`` (written
at the repo root): per-design simulation throughput for both backends,
the one-time code-generation overhead the compiled backend pays, and the
wall-clock of a cold-then-warm session pair over the persistent disk
cache.  The assertions encode the PR's acceptance bar — the compiled
backend must be ≥3× the interpreter on the largest catalog design, and
the warm session must be served almost entirely from disk.
"""

import json
import pathlib
import time

from repro.designs.catalog import DESIGNS, design_point
from repro.driver import CompileSession
from repro.rtl import CompiledSimulator, Simulator, compile_netlist, random_stimulus

CYCLES = 256
SEED = 0xBE
BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: The cold/warm pair sweeps a slice of the catalog through the full
#: pipeline (synthesize + simulate at -O2) — enough stages to be
#: representative without doubling the benchmark's runtime.
WARM_DESIGNS = ("fpu", "fft", "blas")


def _throughput(sim_cls, module, stimulus) -> float:
    simulator = sim_cls(module)
    start = time.perf_counter()
    simulator.run(stimulus)
    seconds = time.perf_counter() - start
    return len(stimulus) / seconds if seconds else float("inf")


def _design_rows(session):
    rows = []
    for name in sorted(DESIGNS):
        source, component, generators, params = design_point(name)
        module = session.optimize(
            source, component, params, generators, opt_level=0
        ).value.module
        stimulus = random_stimulus(module, CYCLES, SEED)
        interp_cps = _throughput(Simulator, module, stimulus)
        compiled_cps = _throughput(CompiledSimulator, module, stimulus)
        rows.append(
            {
                "name": name,
                "cells": len(module.cells),
                "cycles": CYCLES,
                "interp_cycles_per_sec": round(interp_cps, 1),
                "compiled_cycles_per_sec": round(compiled_cps, 1),
                "speedup": round(compiled_cps / interp_cps, 2),
                "compile_seconds": round(
                    compile_netlist(module).compile_seconds, 6
                ),
            }
        )
    return rows


def _timed_session(cache_dir):
    session = CompileSession(
        opt_level=2, sim_backend="compiled", cache_dir=cache_dir
    )
    start = time.perf_counter()
    for name in WARM_DESIGNS:
        source, component, generators, params = design_point(name)
        session.synthesize(source, component, params, generators)
        session.simulate(
            source, component, params, generators, cycles=64, seed=SEED
        )
    return time.perf_counter() - start, session


def test_sim_backend_benchmark(tmp_path):
    rows = _design_rows(CompileSession())

    cold_seconds, _ = _timed_session(str(tmp_path / "bench-cache"))
    warm_seconds, warm_session = _timed_session(str(tmp_path / "bench-cache"))
    disk = warm_session.disk_stats()

    largest = max(rows, key=lambda row: row["cells"])
    payload = {
        "generated_by": "benchmarks/test_sim_backend.py",
        "designs": rows,
        "largest_design": largest["name"],
        "largest_design_speedup": largest["speedup"],
        "warm_vs_cold": {
            "designs": list(WARM_DESIGNS),
            "stages": ["synthesize", "simulate"],
            "opt_level": 2,
            "sim_backend": "compiled",
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "speedup": round(cold_seconds / warm_seconds, 2),
            "warm_disk_hit_rate": disk["hit_rate"],
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\nSimulation backends over {CYCLES} cycles (cycles/sec):\n")
    for row in rows:
        print(
            f"  {row['name']:8s} {row['cells']:5d} cells  "
            f"interp {row['interp_cycles_per_sec']:10.0f}  "
            f"compiled {row['compiled_cycles_per_sec']:10.0f}  "
            f"({row['speedup']:.2f}x, compile {row['compile_seconds']*1e3:.1f}ms)"
        )
    print(
        f"\n  cold session {cold_seconds:.2f}s -> warm session "
        f"{warm_seconds:.2f}s ({cold_seconds / warm_seconds:.1f}x, "
        f"disk hit rate {disk['hit_rate']:.0%})"
    )

    # Acceptance: the compiled backend is ≥3× on the largest design and
    # the disk cache makes the second session nearly free.
    assert largest["speedup"] >= 3.0, largest
    assert disk["hit_rate"] >= 0.9, disk
    assert warm_seconds < cold_seconds, (warm_seconds, cold_seconds)

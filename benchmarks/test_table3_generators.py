"""Benchmark regenerating Table 3: generators and required LA features."""

from repro.evalx import table3


def test_table3(benchmark):
    rows = benchmark.pedantic(table3.build_rows, rounds=1, iterations=1)
    print("\nTable 3 — generators integrated with Lilac (features computed "
          "from their LA interfaces)\n")
    print(table3.render(rows))
    table3.check_shape(rows)

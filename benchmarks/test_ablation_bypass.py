"""Ablation: the GBP blend-bypass implementation choice.

DESIGN.md calls out one LA design decision worth isolating: how the
level-0 tile is held while level 1 computes.  The shipped design picks
*adaptively* (a double-buffered DelayBuf when at most two tiles are in
flight, shift-register balancing otherwise) based on the generator's
reported timing.  This ablation forces the shift-register variant at a
parallelism where DelayBuf is eligible and measures the register cost of
losing the adaptation — quantifying what the latency-abstract `if` buys.

Both variants compile through one ``CompileSession``: the forced source
is a distinct text, so the content-addressed cache keeps the two GBP
artifacts apart while sharing everything else.
"""

from repro.designs import gbp_la
from repro.driver import CompileSession
from repro.synth import synthesize

FORCED_SHIFT_GBP = gbp_la.GBP_SOURCE.replace(
    "if 2 * Blur0::#D >= Blur1::#L + 2 {",
    "if 0 > 1 {",  # never take the DelayBuf branch
)


def build_variants(parallelism=4, width=16, session=None):
    session = session or CompileSession()
    registry = gbp_la.gbp_registry(parallelism)
    adaptive = gbp_la.elaborate_gbp(parallelism, width, session=session)
    forced = session.elaborate(
        FORCED_SHIFT_GBP, "GBP", {"#W": width}, registry
    ).value
    return adaptive, forced


def test_ablation_bypass(benchmark):
    adaptive, forced = benchmark.pedantic(
        build_variants, rounds=1, iterations=1
    )
    a = synthesize(adaptive.module, "adaptive (DelayBuf)")
    f = synthesize(forced.module, "forced shift chain")
    print("\nAblation — GBP blend bypass at N=4\n")
    for report in (a, f):
        print(f"  {report.name:22s} {report.luts:6d} LUTs  "
              f"{report.registers:6d} regs  {report.fmax_mhz:7.1f} MHz")
    saved = f.registers - a.registers
    print(f"\n  adaptive bypass saves {saved} registers "
          f"({saved / f.registers:.1%} of the shift-chain design)")
    assert a.registers < f.registers, (
        "the double-buffered bypass should be cheaper when eligible"
    )

"""Benchmark regenerating Table 1: LS vs LI FPU resources and frequency.

Run with:  pytest benchmarks/test_table1_fpu.py --benchmark-only -s
"""

from repro.evalx import table1


def test_table1(benchmark):
    rows = benchmark.pedantic(table1.build_rows, rounds=1, iterations=1)
    print("\nTable 1 — LS vs LI FPU implementations (reproduction)\n")
    print(table1.render(rows))
    stats = table1.check_shape(rows)
    print("\nShape statistics (paper: LI +29-31% LUTs, 3-4x registers, "
          "-21-25% frequency):")
    for key, value in stats.items():
        print(f"  {key}: {value:+.1%}" if "overhead" in key or "loss" in key
              else f"  {key}: {value:.2f}x")

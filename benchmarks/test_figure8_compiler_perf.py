"""Benchmark regenerating Figure 8: type-checker lines and wall time.

The measurement is the type check itself, so the benchmark wraps
``build_rows`` on a *fresh* ``CompileSession`` (the session's typecheck
stage times each design's check individually; a warm shared cache would
otherwise hand back the previous run's artifacts instantly).
"""

from repro.driver import CompileSession
from repro.evalx import figure8


def test_figure8(benchmark):
    rows = benchmark.pedantic(
        lambda: figure8.build_rows(session=CompileSession()),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 8 — type checker performance (reproduction; paper used "
          "Rust + Z3, we use pure Python + the bundled solver)\n")
    print(figure8.render(rows))
    figure8.check_shape(rows)

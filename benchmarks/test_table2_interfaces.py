"""Benchmark regenerating Table 2: when interface timing is known."""

from repro.evalx import table2


def test_table2(benchmark):
    rows = benchmark.pedantic(table2.classify, rounds=1, iterations=1)
    print("\nTable 2 — when an interface's timing behavior is known\n")
    print(table2.render(rows))
    table2.check_shape(rows)

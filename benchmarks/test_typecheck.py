"""Benchmark: the SMT-backed type checker, cold vs warm vs parallel.

Writes ``BENCH_typecheck.json`` (repo root) alongside ``BENCH_sim.json``:
per-design wall clocks for

* ``legacy`` — the pre-PR5 pipeline, reachable in-binary via
  ``$REPRO_SMT_LEGACY=1`` (one-shot discharge, monolithic theory checks,
  unbudgeted chunk minimization, full-rescan SAT propagation, no LIA
  redundancy elimination, no memos, no verdict caches);
* ``cold`` — the accelerated front end (incremental DPLL(T) engine with
  hash-consed terms, component-decomposed memoized theory checks,
  certificate-based conflict minimization, canonical obligation memo)
  started with every process-level cache cleared;
* ``warm`` — a cleared-memo run answered entirely by the persistent
  obligation store (the disk cache's "smt" pseudo-stage);
* ``parallel`` — the session's ``typecheck_jobs`` fan-out (recorded, not
  asserted: single-core CI boxes gain nothing).

The committed JSON additionally records the actual PR4 checkout's gbp
wall clock measured on the development machine when this change was
made, so the headline speedups are anchored to a real baseline, not just
the in-binary legacy mode (which still benefits from ungateable
substrate work such as term interning).

Assertions encode the acceptance bars with CI-tunable thresholds:
``$REPRO_BENCH_MIN_TC_SPEEDUP`` (cold vs legacy, default 1.4) and
``$REPRO_BENCH_MIN_TC_WARM_SPEEDUP`` (warm vs legacy, default 8).
``$REPRO_BENCH_TC_DESIGNS`` restricts the design set for smoke runs.
"""

import json
import math
import os
import pathlib
import time

from repro import smt
from repro.designs.catalog import design_point
from repro.driver import CacheStats, CompileSession, DiskCache, ObligationStore
from repro.lilac.stdlib import stdlib_program
from repro.lilac.typecheck import check_program
from repro.lilac.typecheck import check as check_mod

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_typecheck.json"
)

DESIGNS = tuple(
    name.strip()
    for name in os.environ.get("REPRO_BENCH_TC_DESIGNS", "gbp,fpu").split(",")
    if name.strip()
)
MIN_TC_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_TC_SPEEDUP", "1.4"))
MIN_TC_WARM_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_TC_WARM_SPEEDUP", "8.0")
)

#: The slowest catalog design — the acceptance bars are measured on it.
HEADLINE = "gbp"

#: PR4 checkout, this repository, measured on the development machine at
#: the time of this change: ``check_program`` over the gbp design source,
#: fresh process.  Anchors the headline ratios to the real predecessor.
PR4_RECORDED_GBP_COLD_SECONDS = 12.25


def _sig(value: float, digits: int = 3) -> float:
    """Round to ``digits`` significant figures — committed benchmark
    figures carry measurement jitter, not precision, and fewer digits
    keep regeneration diffs small."""
    if not value or not math.isfinite(value):
        return value
    return round(value, digits - 1 - math.floor(math.log10(abs(value))))


def _cold_caches():
    smt.clear_solver_caches()
    check_mod.clear_obligation_memo()


def _timed_check(program, store=None, stats=None):
    start = time.perf_counter()
    reports = check_program(
        program, raise_on_error=False, obligation_store=store, stats=stats
    )
    seconds = time.perf_counter() - start
    assert all(r.ok for r in reports), "benchmark designs must check clean"
    return seconds, reports


def _bench_design(name, tmp_path):
    source, _, _, _ = design_point(name)
    program = stdlib_program(source)

    # Legacy baseline (bypasses every PR5 cache by construction).
    os.environ["REPRO_SMT_LEGACY"] = "1"
    try:
        _cold_caches()
        legacy_seconds, reports = _timed_check(program)
    finally:
        os.environ.pop("REPRO_SMT_LEGACY", None)
    obligations = sum(r.obligations for r in reports)

    # Cold: accelerated engine, empty caches, populate the disk store.
    _cold_caches()
    stats_cold = CacheStats()
    store = ObligationStore(
        DiskCache(str(tmp_path / f"smt-{name}"), stats_cold)
    )
    cold_seconds, _ = _timed_check(program, store=store, stats=stats_cold)

    # Warm: cleared memos, verdicts answered from disk only.
    _cold_caches()
    stats_warm = CacheStats()
    warm_store = ObligationStore(
        DiskCache(str(tmp_path / f"smt-{name}"), stats_warm)
    )
    warm_seconds, _ = _timed_check(
        program, store=warm_store, stats=stats_warm
    )
    assert stats_warm.counter("smt.queries") == 0, (
        "warm run must be solver-free"
    )

    # Parallel: the session fan-out (process pool, disk rendezvous).
    _cold_caches()
    session = CompileSession(
        typecheck_jobs=2,
        typecheck_executor="process",
        cache_dir=str(tmp_path / f"grid-{name}"),
    )
    start = time.perf_counter()
    session.typecheck(source)
    parallel_seconds = time.perf_counter() - start

    return {
        "name": name,
        "obligations": obligations,
        "legacy_seconds": _sig(legacy_seconds),
        "cold_seconds": _sig(cold_seconds),
        "warm_seconds": _sig(warm_seconds),
        "parallel_seconds": _sig(parallel_seconds),
        "speedup_cold_vs_legacy": _sig(legacy_seconds / cold_seconds),
        "speedup_warm_vs_legacy": _sig(legacy_seconds / warm_seconds),
        "cold_solver_queries": stats_cold.counter("smt.queries"),
        "cold_memo_hits": stats_cold.counter("smt.memo_hit"),
        "cold_disk_stores": stats_cold.counter("smt.store"),
        "warm_disk_hits": stats_warm.counter("smt.disk_hit"),
    }


def test_typecheck_benchmark(tmp_path):
    rows = [_bench_design(name, tmp_path) for name in DESIGNS]

    payload = {
        "generated_by": "benchmarks/test_typecheck.py",
        "designs": rows,
        "headline_design": HEADLINE,
        "pr4_recorded": {
            "design": HEADLINE,
            "cold_seconds": PR4_RECORDED_GBP_COLD_SECONDS,
            "note": (
                "actual PR4 checkout measured on the development machine "
                "at the time of this change (fresh process, check_program "
                "over the gbp source)"
            ),
        },
        "thresholds": {
            "min_cold_speedup_vs_legacy": MIN_TC_SPEEDUP,
            "min_warm_speedup_vs_legacy": MIN_TC_WARM_SPEEDUP,
        },
    }
    headline = next((row for row in rows if row["name"] == HEADLINE), None)
    if headline is not None:
        payload["headline"] = {
            "speedup_cold_vs_pr4_recorded": _sig(
                PR4_RECORDED_GBP_COLD_SECONDS / headline["cold_seconds"]
            ),
            "speedup_warm_vs_pr4_recorded": _sig(
                PR4_RECORDED_GBP_COLD_SECONDS / headline["warm_seconds"]
            ),
            "speedup_cold_vs_legacy": headline["speedup_cold_vs_legacy"],
            "speedup_warm_vs_legacy": headline["speedup_warm_vs_legacy"],
        }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    print("\nTypecheck benchmark (seconds):\n")
    for row in rows:
        print(
            f"  {row['name']:8s} {row['obligations']:4d} obligations  "
            f"legacy {row['legacy_seconds']:7.2f}  "
            f"cold {row['cold_seconds']:7.2f} "
            f"({row['speedup_cold_vs_legacy']:.2f}x)  "
            f"warm {row['warm_seconds']:7.3f} "
            f"({row['speedup_warm_vs_legacy']:.0f}x)  "
            f"parallel {row['parallel_seconds']:7.2f}"
        )
    if headline is not None:
        h = payload["headline"]
        print(
            f"\n  {HEADLINE} vs recorded PR4 baseline "
            f"({PR4_RECORDED_GBP_COLD_SECONDS:.2f}s): cold "
            f"{h['speedup_cold_vs_pr4_recorded']:.2f}x, warm "
            f"{h['speedup_warm_vs_pr4_recorded']:.0f}x"
        )

    for row in rows:
        if row["name"] != HEADLINE:
            continue
        assert row["speedup_cold_vs_legacy"] >= MIN_TC_SPEEDUP, row
        assert row["speedup_warm_vs_legacy"] >= MIN_TC_WARM_SPEEDUP, row
        assert row["warm_disk_hits"] > 0, row

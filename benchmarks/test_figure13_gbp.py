"""Benchmark regenerating Figure 13 + the section 7.2 statistics:
Gaussian Blur Pyramid, latency-abstract (Lilac) vs ready-valid (RV)."""

from repro.evalx import figure13


def test_figure13(benchmark):
    rows = benchmark.pedantic(figure13.build_rows, rounds=1, iterations=1)
    print("\nFigure 13 — GBP resource usage and maximum frequency "
          "(Lilac / RV)\n")
    print(figure13.render(rows))
    stats = figure13.check_shape(rows)
    print("\nSection 7.2 headline statistics "
          "(paper: +26.2% LUTs, +33.0% registers, -6.8% frequency):")
    print(f"  LI extra LUTs:       {stats['li_extra_luts_pct']:+.1f}%")
    print(f"  LI extra registers:  {stats['li_extra_registers_pct']:+.1f}%")
    print(f"  LI frequency loss:   {stats['li_frequency_loss_pct']:+.1f}%")

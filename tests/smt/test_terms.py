"""Unit tests for the SMT term language and smart constructors."""

from repro.smt import (
    And,
    App,
    BoolVal,
    Div,
    Eq,
    FALSE,
    Ge,
    Gt,
    Implies,
    Int,
    IntVal,
    Le,
    Lt,
    Minus,
    Mod,
    Ne,
    Neg,
    Not,
    Or,
    Plus,
    TRUE,
    Times,
    free_vars,
    apps,
    substitute,
)


def test_intval_folding():
    assert Plus(IntVal(2), IntVal(3)).value == 5
    assert Times(IntVal(2), IntVal(3)).value == 6
    assert Minus(IntVal(2), IntVal(3)).value == -1
    assert Neg(IntVal(4)).value == -4


def test_plus_flattens_nested_sums():
    x, y = Int("x"), Int("y")
    term = Plus(Plus(x, 1), Plus(y, 2))
    assert term.op == "+"
    consts = [a.value for a in term.args if a.op == "intval"]
    assert consts == [3]


def test_plus_identity():
    x = Int("x")
    assert Plus(x, 0) is x or Plus(x, 0) == x
    assert Plus(x) == x


def test_times_zero_annihilates():
    x = Int("x")
    assert Times(x, 0).value == 0
    assert Times(x, 1) == x


def test_neg_involution():
    x = Int("x")
    assert Neg(Neg(x)) == x


def test_div_mod_constant_folding():
    assert Div(IntVal(7), IntVal(2)).value == 3
    assert Mod(IntVal(7), IntVal(2)).value == 1
    x = Int("x")
    assert Div(x, 1) == x
    assert Mod(x, 1).value == 0


def test_comparison_folding():
    assert Le(IntVal(1), IntVal(2)) == TRUE
    assert Lt(IntVal(2), IntVal(2)) == FALSE
    assert Ge(IntVal(2), IntVal(2)) == TRUE
    assert Gt(IntVal(1), IntVal(2)) == FALSE
    x = Int("x")
    assert Le(x, x) == TRUE
    assert Lt(x, x) == FALSE
    assert Eq(x, x) == TRUE


def test_boolean_simplification():
    x = Int("x")
    atom = Le(x, IntVal(3))
    assert And(atom, TRUE) == atom
    assert And(atom, FALSE) == FALSE
    assert Or(atom, FALSE) == atom
    assert Or(atom, TRUE) == TRUE
    assert Not(Not(atom)) == atom
    assert Not(TRUE) == FALSE
    assert Implies(FALSE, atom) == TRUE
    assert Implies(TRUE, atom) == atom


def test_and_dedups():
    x = Int("x")
    atom = Le(x, IntVal(3))
    assert And(atom, atom) == atom


def test_ne_is_not_eq():
    x, y = Int("x"), Int("y")
    term = Ne(x, y)
    assert term.op == "not"
    assert term.args[0].op == "="


def test_structural_equality_and_hash():
    a1 = Plus(Int("x"), IntVal(1))
    a2 = Plus(Int("x"), IntVal(1))
    assert a1 == a2
    assert hash(a1) == hash(a2)
    assert a1 != Plus(Int("x"), IntVal(2))


def test_operator_overloads():
    x, y = Int("x"), Int("y")
    assert (x + y) == Plus(x, y)
    assert (x - 1) == Plus(x, IntVal(-1))
    assert (2 * x) == Times(IntVal(2), x)
    assert (-x) == Neg(x)
    assert (1 + x) == Plus(IntVal(1), x)


def test_free_vars_and_apps():
    x, y = Int("x"), Int("y")
    term = And(Le(x, App("f", y)), Eq(y, IntVal(2)))
    names = {v.name for v in free_vars(term)}
    assert names == {"x", "y"}
    app_names = {a.name for a in apps(term)}
    assert app_names == {"f"}


def test_substitute():
    x, y = Int("x"), Int("y")
    term = Plus(x, Times(IntVal(2), x), y)
    out = substitute(term, {x: IntVal(3)})
    # 3 + 6 + y = y + 9
    assert out == Plus(y, IntVal(9))


def test_substitute_inside_app():
    x, y = Int("x"), Int("y")
    term = App("f", Plus(x, IntVal(1)))
    out = substitute(term, {x: y})
    assert out == App("f", Plus(y, IntVal(1)))


def test_sexpr_rendering():
    x = Int("x")
    assert Le(x, IntVal(3)).sexpr() == "(<= x 3)"
    assert App("f", x).sexpr() == "(f x)"
    assert BoolVal(True).sexpr() == "true"

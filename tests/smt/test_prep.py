"""Tests for solver preprocessing: div/mod, ite, non-linear abstraction."""

from hypothesis import given, settings, strategies as st

from repro.smt import (
    And,
    Div,
    Eq,
    Ge,
    Gt,
    Int,
    IntVal,
    Ite,
    Le,
    Lt,
    Mod,
    Ne,
    Times,
    check_sat,
    prove,
)
from repro.smt.prep import abstract_nonlinear, eliminate_divmod, eliminate_ite

x, y, z, k1, k2 = Int("x"), Int("y"), Int("z"), Int("k1"), Int("k2")


def test_divmod_shares_quotient_remainder():
    formula = And(
        Eq(Div(x, IntVal(4)), y),
        Eq(Mod(x, IntVal(4)), z),
    )
    reduced, side = eliminate_divmod(formula)
    # One definition (shared q/r) for the (x, 4) pair.
    assert len(side) == 1


@settings(max_examples=40, deadline=None)
@given(a=st.integers(0, 300), c=st.integers(1, 17))
def test_divmod_semantics_match_python(a, c):
    result = check_sat(
        Eq(x, a),
        Ne(Div(x, IntVal(c)), a // c),
    )
    assert result.is_unsat
    result = check_sat(Eq(x, a), Ne(Mod(x, IntVal(c)), a % c))
    assert result.is_unsat


def test_ite_elimination_both_branches():
    term = Ite(Gt(x, 5), IntVal(1), IntVal(2))
    assert check_sat(Eq(y, term), Gt(x, 5), Ne(y, 1)).is_unsat
    assert check_sat(Eq(y, term), Le(x, 5), Ne(y, 2)).is_unsat


def test_nonlinear_monotonicity_shared_factor():
    """(c >= 0, k1 >= k2+1)  =>  c*k1 >= c*k2 + c  — the loop-spacing fact."""
    goal = Ge(Times(z, k1), Times(z, k2) + z)
    assert prove(goal, Ge(z, 0), Ge(k1, k2 + 1)).is_unsat


def test_nonlinear_distributivity_triple():
    """z*(k1-k2) == z*k1 - z*k2 when all three products occur."""
    lhs = Times(z, k1 - k2)
    rhs = Times(z, k1) - Times(z, k2)
    assert prove(Eq(lhs, rhs)).is_unsat


def test_nonlinear_injectivity():
    """B*i1+j1 == B*i2+j2 with j in [0,B) forces (i1,j1) == (i2,j2) —
    the serializer write-injectivity proof (Figure 11)."""
    b, i1, i2, j1, j2 = Int("B"), Int("i1"), Int("i2"), Int("j1"), Int("j2")
    facts = And(
        Ge(b, 1),
        Ge(j1, 0), Lt(j1, b),
        Ge(j2, 0), Lt(j2, b),
        Ge(i1, 0), Ge(i2, 0),
        Eq(Times(b, i1) + j1, Times(b, i2) + j2),
    )
    assert prove(Eq(i1, i2), facts).is_unsat
    assert prove(Eq(j1, j2), facts).is_unsat


def test_mixed_sign_product_bound():
    """x >= 1 and q <= 0 implies x*q <= 0 (quotient lower bounds)."""
    q = Int("q")
    assert prove(Le(Times(x, q), 0), Ge(x, 1), Le(q, 0)).is_unsat


def test_quotient_positive_when_dividend_large():
    """16/N >= 1 when 1 <= N <= 16 — the Ser instantiation obligation."""
    n = Int("N")
    goal = Ge(Div(IntVal(16), n), 1)
    assert prove(goal, Ge(n, 1), Le(n, 16)).is_unsat


def test_product_zero_annihilation():
    assert prove(Eq(Times(x, y), 0), Eq(x, 0)).is_unsat


def test_abstract_nonlinear_reuses_products():
    formula = Eq(Times(x, y), Times(y, x))  # same canonical product
    reduced, axioms = abstract_nonlinear(formula)
    assert reduced.op == "boolval" and reduced.value  # folded to true

"""The incremental DPLL(T) engine: parity with the one-shot solver,
assumption isolation, budgets, and the legacy escape hatch."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import smt
from repro.smt import IncrementalSolver, SolverError
from repro.smt.solver import smt_budget

x, y, z = smt.Int("x"), smt.Int("y"), smt.Int("z")


def test_basic_incremental_queries():
    solver = IncrementalSolver()
    solver.add(smt.Ge(x, 3))
    sat = solver.check(smt.Le(x, 5))
    assert sat.is_sat and 3 <= sat.model["x"] <= 5
    assert solver.check(smt.Le(x, 2)).is_unsat
    # the unsat query must not poison later ones
    again = solver.check(smt.Le(x, 10))
    assert again.is_sat


def test_queries_are_isolated():
    solver = IncrementalSolver()
    solver.add(smt.Ge(x, 0))
    assert solver.check(smt.Eq(x, 1)).is_sat
    # Eq(x, 2) must not see the retired Eq(x, 1)
    result = solver.check(smt.Eq(x, 2))
    assert result.is_sat and result.model["x"] == 2


def test_facts_accumulate():
    solver = IncrementalSolver()
    solver.add(smt.Ge(x, 0))
    assert solver.check(smt.Eq(x, 7)).is_sat
    solver.add(smt.Le(x, 5))
    assert solver.check(smt.Eq(x, 7)).is_unsat


def test_uninterpreted_functions_and_congruence():
    solver = IncrementalSolver()
    fx, fy = smt.App("f", x), smt.App("f", y)
    solver.add(smt.Eq(x, y))
    assert solver.check(smt.Ne(fx, fy)).is_unsat
    assert solver.check(smt.Eq(fx, fy)).is_sat


def test_divmod_definitions_shared_across_queries():
    solver = IncrementalSolver()
    solver.add(smt.Ge(x, 0), smt.Le(x, 100))
    q = smt.Div(x, smt.IntVal(4))
    assert solver.check(smt.Eq(q, 3), smt.Eq(x, 13)).is_sat
    assert solver.check(smt.Eq(q, 3), smt.Eq(x, 17)).is_unsat


def test_inconsistent_relevant_facts_make_query_unsat():
    solver = IncrementalSolver()
    solver.add(smt.Ge(x, 3), smt.Le(x, 2))
    assert solver.check(smt.Eq(x, 0)).is_unsat
    # Facts sharing no variables with the query sit outside the
    # relevance closure — exactly the one-shot engine's fact pruning —
    # so they cannot influence (or expose the inconsistency to) an
    # unrelated query.
    assert solver.check(smt.Eq(y, 0)).is_sat


@settings(max_examples=25, deadline=None)
@given(
    lo=st.integers(min_value=-5, max_value=5),
    hi=st.integers(min_value=-5, max_value=5),
    probe=st.integers(min_value=-7, max_value=7),
)
def test_parity_with_one_shot(lo, hi, probe):
    goal = smt.And(smt.Ge(x, lo), smt.Le(x, hi), smt.Eq(x, probe))
    one = smt.check_sat(goal)
    inc = IncrementalSolver().check(goal)
    assert one.status == inc.status
    if one.is_sat:
        assert one.model["x"] == probe == inc.model["x"]


def test_budget_env_overrides_default(monkeypatch):
    monkeypatch.setenv("REPRO_SMT_BUDGET", "123")
    assert smt_budget() == 123
    monkeypatch.setenv("REPRO_SMT_BUDGET", "not-a-number")
    assert smt_budget() == smt.solver.DEFAULT_SMT_BUDGET


def test_budget_exhaustion_raises():
    solver = smt.Solver(max_iterations=1)
    solver.add(smt.Ge(x, 1), smt.Le(x, 0))
    with pytest.raises(SolverError):
        solver.check()


def test_legacy_mode_matches_default(monkeypatch):
    goal = [
        smt.Implies(smt.Ge(x, 5), smt.Ge(y, 10)),
        smt.Ge(x, 7),
        smt.Le(y, 9),
    ]
    default = smt.check_sat(*goal)
    monkeypatch.setenv("REPRO_SMT_LEGACY", "1")
    legacy = smt.check_sat(*goal)
    assert default.status == legacy.status == "unsat"

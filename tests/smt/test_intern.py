"""Hash-consing invariants: identity, caching, pickling."""

import pickle

from repro import smt
from repro.smt.terms import Term, intern_size


def test_structurally_equal_terms_are_identical():
    x, y = smt.Int("x"), smt.Int("y")
    assert smt.Plus(x, y, 3) is smt.Plus(x, y, 3)
    assert smt.And(smt.Ge(x, 0), smt.Le(y, 5)) is smt.And(
        smt.Ge(x, 0), smt.Le(y, 5)
    )
    assert smt.Int("x") is x


def test_direct_constructor_interns_too():
    a = Term("var", name="v", sort=smt.INT)
    b = Term("var", name="v", sort=smt.INT)
    assert a is b
    assert a is smt.Int("v")


def test_distinct_terms_are_distinct():
    x = smt.Int("x")
    assert smt.Plus(x, 1) is not smt.Plus(x, 2)
    assert smt.Int("x") is not smt.Bool("x")  # sorts differ


def test_equality_and_hash_are_structural():
    x = smt.Int("x")
    t1, t2 = smt.Plus(x, 1), smt.Plus(x, 1)
    assert t1 == t2 and hash(t1) == hash(t2)
    assert t1 != smt.Plus(x, 2)


def test_pickle_round_trip_reinterns():
    x, y = smt.Int("x"), smt.Int("y")
    term = smt.Implies(smt.Ge(smt.App("f", x), 0), smt.Lt(x, y))
    clone = pickle.loads(pickle.dumps(term))
    assert clone is term  # identity, not merely equality


def test_pickle_preserves_all_fields():
    term = smt.Ite(smt.Bool("c"), smt.IntVal(3), smt.Int("z"))
    clone = pickle.loads(pickle.dumps(term))
    assert clone.op == term.op
    assert clone.args == term.args
    assert clone.sort == term.sort


def test_free_vars_cached_and_correct():
    x, y = smt.Int("x"), smt.Int("y")
    term = smt.And(smt.Ge(smt.Plus(x, y), 0), smt.Le(x, 9))
    fvs = smt.free_vars(term)
    assert fvs == frozenset({x, y})
    assert smt.free_vars(term) is fvs  # cached object


def test_apps_includes_nested_applications():
    x = smt.Int("x")
    inner = smt.App("exp2", x)
    outer = smt.App("log2", inner)
    collected = smt.apps(smt.Eq(outer, x))
    assert inner in collected and outer in collected


def test_subterms_deduplicates_shared_nodes():
    x = smt.Int("x")
    shared = smt.Plus(x, 1)
    term = smt.And(smt.Ge(shared, 0), smt.Le(shared, 5))
    nodes = list(smt.subterms(term))
    assert len(nodes) == len(set(map(id, nodes)))


def test_intern_size_grows_and_clears():
    before = intern_size()
    smt.Int("a-very-unlikely-test-variable-name")
    assert intern_size() == before + 1
    # clear_intern keeps existing terms valid (structural equality).
    x = smt.Int("x")
    smt.clear_intern()
    assert smt.Int("x") == x

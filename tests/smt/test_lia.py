"""Tests for the Omega-style integer linear arithmetic procedure."""

from hypothesis import given, settings, strategies as st

from repro.smt import Int
from repro.smt.lia import LinExpr, linexpr_of_term, solve_system
from repro.smt.terms import Plus, Times, IntVal

x, y, z = Int("x"), Int("y"), Int("z")


def lin(coeffs, const=0):
    return LinExpr({var: c for var, c in coeffs.items()}, const)


def check_model(eqs, ineqs, model):
    for eq in eqs:
        assert eq.evaluate(model) == 0
    for ineq in ineqs:
        assert ineq.evaluate(model) <= 0


def test_trivial_sat():
    assert solve_system([], []) == {}


def test_single_bound():
    # x <= 5 and x >= 3  (as x - 5 <= 0 and 3 - x <= 0)
    ineqs = [lin({x: 1}, -5), lin({x: -1}, 3)]
    model = solve_system([], ineqs)
    assert model is not None
    assert 3 <= model[x] <= 5


def test_unsat_bounds():
    ineqs = [lin({x: 1}, -2), lin({x: -1}, 3)]  # x <= 2 and x >= 3
    assert solve_system([], ineqs) is None


def test_equality_simple():
    # x + y == 5, x >= 2, y >= 2
    eqs = [lin({x: 1, y: 1}, -5)]
    ineqs = [lin({x: -1}, 2), lin({y: -1}, 2)]
    model = solve_system(eqs, ineqs)
    assert model is not None
    check_model(eqs, ineqs, model)


def test_equality_gcd_unsat():
    # 2x + 4y == 3 has no integer solution
    eqs = [lin({x: 2, y: 4}, -3)]
    assert solve_system(eqs, []) is None


def test_equality_gcd_sat():
    # 2x + 4y == 6
    eqs = [lin({x: 2, y: 4}, -6)]
    model = solve_system(eqs, [])
    assert model is not None
    check_model(eqs, [], model)


def test_non_unit_coefficients():
    # 3x + 5y == 1 is solvable over Z (gcd 1)
    eqs = [lin({x: 3, y: 5}, -1)]
    model = solve_system(eqs, [])
    assert model is not None
    check_model(eqs, [], model)


def test_integer_tightening():
    # 2x <= 5  implies x <= 2 over integers; combined with x >= 3 -> unsat
    ineqs = [lin({x: 2}, -5), lin({x: -1}, 3)]
    assert solve_system([], ineqs) is None


def test_dark_shadow_gap():
    # 3 <= 2x <= 4 has x = 2 (2x = 4); 5 <= 2x <= 5 has none.
    sat_ineqs = [lin({x: -2}, 3), lin({x: 2}, -4)]
    model = solve_system([], sat_ineqs)
    assert model is not None
    check_model([], sat_ineqs, model)
    unsat_ineqs = [lin({x: -2}, 5), lin({x: 2}, -5)]
    assert solve_system([], unsat_ineqs) is None


def test_splinter_case():
    # Classic omega example: 2y <= x, x <= 2y+1 is satisfiable;
    # combined with 3z == x and tight window it exercises splinters.
    ineqs = [
        lin({y: 2, x: -1}, 0),   # 2y - x <= 0
        lin({x: 1, y: -2}, -1),  # x - 2y - 1 <= 0
        lin({x: -1}, 1),         # x >= 1
        lin({x: 1}, -10),        # x <= 10
    ]
    model = solve_system([], ineqs)
    assert model is not None
    check_model([], ineqs, model)


def test_three_variable_chain():
    # x < y < z, z <= x + 2 forces x+1 == y, x+2 == z
    ineqs = [
        lin({x: 1, y: -1}, 1),  # x - y + 1 <= 0  (x < y)
        lin({y: 1, z: -1}, 1),  # y < z
        lin({z: 1, x: -1}, -2),  # z <= x + 2
    ]
    model = solve_system([], ineqs)
    assert model is not None
    check_model([], ineqs, model)
    assert model[y] == model[x] + 1
    assert model[z] == model[x] + 2


def test_free_variable_gets_value():
    ineqs = [lin({x: -1}, 7)]  # x >= 7, y unconstrained elsewhere
    eqs = [lin({y: 1, z: -1}, 0)]  # y == z
    model = solve_system(eqs, ineqs)
    assert model is not None
    assert model[x] >= 7
    assert model[y] == model[z]


def test_linexpr_of_term_linear():
    term = Plus(Times(IntVal(2), x), y, IntVal(-3))
    expr = linexpr_of_term(term)
    assert expr.coeffs == {x: 2, y: 1}
    assert expr.const == -3


def test_linexpr_of_term_nested_scale():
    term = Times(IntVal(3), Plus(x, IntVal(1)))
    expr = linexpr_of_term(term)
    assert expr.coeffs == {x: 3}
    assert expr.const == 3


@settings(max_examples=150, deadline=None)
@given(
    a=st.integers(-6, 6),
    b=st.integers(-6, 6),
    c=st.integers(-20, 20),
    lo=st.integers(-10, 10),
    hi=st.integers(-10, 10),
)
def test_random_two_var_systems_agree_with_bruteforce(a, b, c, lo, hi):
    """Compare the solver against brute force on a bounded 2-var system.

    System: a*x + b*y + c <= 0, lo <= x <= hi, lo <= y <= hi.
    """
    if lo > hi:
        lo, hi = hi, lo
    ineqs = [
        lin({x: a, y: b}, c),
        lin({x: -1}, lo),
        lin({x: 1}, -hi),
        lin({y: -1}, lo),
        lin({y: 1}, -hi),
    ]
    brute = any(
        a * vx + b * vy + c <= 0
        for vx in range(lo, hi + 1)
        for vy in range(lo, hi + 1)
    )
    model = solve_system([], ineqs)
    if brute:
        assert model is not None
        check_model([], ineqs, model)
    else:
        assert model is None


@settings(max_examples=100, deadline=None)
@given(
    a=st.integers(1, 8),
    b=st.integers(-8, 8),
    c=st.integers(-30, 30),
)
def test_random_equalities_agree_with_bruteforce(a, b, c):
    """a*x + b*y == c with 0 <= x,y <= 12 compared against brute force."""
    eqs = [lin({x: a, y: b}, -c)]
    ineqs = [
        lin({x: -1}, 0),
        lin({x: 1}, -12),
        lin({y: -1}, 0),
        lin({y: 1}, -12),
    ]
    brute = any(
        a * vx + b * vy == c
        for vx in range(0, 13)
        for vy in range(0, 13)
    )
    model = solve_system(eqs, ineqs)
    if brute:
        assert model is not None
        check_model(eqs, ineqs, model)
    else:
        assert model is None

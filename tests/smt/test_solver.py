"""End-to-end tests for the DPLL(T) solver, including the paper's examples."""

from hypothesis import given, settings, strategies as st

from repro.smt import (
    And,
    App,
    Div,
    Eq,
    Ge,
    Gt,
    Implies,
    Int,
    IntVal,
    Le,
    Lt,
    Mod,
    Ne,
    Not,
    Or,
    Solver,
    check_sat,
    prove,
)

x, y, z = Int("x"), Int("y"), Int("z")


def test_sat_simple():
    result = check_sat(Ge(x, 3), Le(x, 5))
    assert result.is_sat
    assert 3 <= result.model["x"] <= 5


def test_unsat_simple():
    result = check_sat(Ge(x, 3), Le(x, 2))
    assert result.is_unsat


def test_boolean_structure():
    result = check_sat(Or(Eq(x, 1), Eq(x, 2)), Ne(x, 1))
    assert result.is_sat
    assert result.model["x"] == 2


def test_disjunction_both_false_unsat():
    result = check_sat(Or(Eq(x, 1), Eq(x, 2)), Ne(x, 1), Ne(x, 2))
    assert result.is_unsat


def test_implication_chains():
    result = check_sat(
        Implies(Ge(x, 5), Ge(y, 10)),
        Ge(x, 7),
        Le(y, 9),
    )
    assert result.is_unsat


def test_prove_valid():
    # x >= 1 and y >= x implies y >= 1
    result = prove(Ge(y, 1), Ge(x, 1), Ge(y, x))
    assert result.is_unsat  # negation unsatisfiable == proven


def test_prove_invalid_gives_counterexample():
    result = prove(Ge(y, 1), Ge(x, 1))
    assert result.is_sat
    assert result.model["y"] < 1


def test_disequality_splitting():
    result = check_sat(Ne(x, 0), Ge(x, 0), Le(x, 1))
    assert result.is_sat
    assert result.model["x"] == 1


def test_uf_congruence():
    # f(x) != f(y) with x == y is unsat (functional consistency).
    fx, fy = App("f", x), App("f", y)
    result = check_sat(Eq(x, y), Ne(fx, fy))
    assert result.is_unsat


def test_uf_different_args_sat():
    fx, fy = App("f", x), App("f", y)
    result = check_sat(Ne(x, y), Ne(fx, fy))
    assert result.is_sat


def test_output_parameter_encoding_example():
    """The paper's section 4.2 examples.

    FAdd[16,8]::#L == FAdd[16,8]::#L is valid, and
    Max[#A,#B]::#O == Max[#X,#Y]::#O holds if #A==#X and #B==#Y.
    """
    fadd_1 = App("FAdd_L", IntVal(16), IntVal(8))
    fadd_2 = App("FAdd_L", IntVal(16), IntVal(8))
    assert prove(Eq(fadd_1, fadd_2)).is_unsat

    a, b, xx, yy = Int("A"), Int("B"), Int("X"), Int("Y")
    max_ab = App("Max_O", a, b)
    max_xy = App("Max_O", xx, yy)
    result = prove(Eq(max_ab, max_xy), Eq(a, xx), Eq(b, yy))
    assert result.is_unsat
    # Without the equalities the claim is not provable.
    assert prove(Eq(max_ab, max_xy)).is_sat


def test_exp2_log2_roundtrip():
    n = Int("N")
    roundtrip = App("exp2", App("log2", n))
    result = prove(Eq(roundtrip, n), Ge(n, 1))
    assert result.is_unsat


def test_log2_monotone():
    result = prove(
        Le(App("log2", x), App("log2", y)),
        Le(x, y),
        Ge(x, 1),
    )
    assert result.is_unsat


def test_exp2_constant_eval():
    result = check_sat(Eq(x, App("exp2", IntVal(4))), Ne(x, IntVal(16)))
    assert result.is_unsat


def test_log2_constant_eval():
    result = check_sat(Eq(x, App("log2", IntVal(8))), Ne(x, IntVal(3)))
    assert result.is_unsat


def test_div_elimination():
    # x == 7, y == x div 2 implies y == 3
    result = check_sat(Eq(x, 7), Eq(y, Div(x, IntVal(2))), Ne(y, 3))
    assert result.is_unsat


def test_mod_elimination():
    result = check_sat(Eq(x, 7), Eq(y, Mod(x, IntVal(2))), Ne(y, 1))
    assert result.is_unsat


def test_div_symbolic():
    # 16 % N == 0 and N > 0 and N <= 16 is satisfiable (the Aetherling
    # chunk-size constraint from figure 10a).
    n = Int("N")
    result = check_sat(
        Eq(Mod(IntVal(16), n), 0), Ge(n, 1), Le(n, 16)
    )
    assert result.is_sat
    assert 16 % result.model["N"] == 0


def test_nonlinear_abstraction_zero():
    # x*y with x == 0 must be 0.
    product = Int("p")
    from repro.smt import Times

    result = check_sat(
        Eq(product, Times(x, y)), Eq(x, 0), Ne(product, 0)
    )
    assert result.is_unsat


def test_nonlinear_abstraction_unit():
    from repro.smt import Times

    result = check_sat(Eq(z, Times(x, y)), Eq(x, 1), Ne(z, y))
    assert result.is_unsat


def test_nonlinear_sign():
    from repro.smt import Times

    result = check_sat(Eq(z, Times(x, y)), Ge(x, 1), Ge(y, 1), Lt(z, 0))
    assert result.is_unsat


def test_pipeline_balance_obligation():
    """The FPU pipeline-balancing obligation from section 3.2.

    With Max == max(AddL, MulL), Shift by Max-AddL delays the adder output
    to cycle Max; similarly for the multiplier.  The mux reads both at
    cycle Max — valid for every parameterization.
    """
    add_l, mul_l, mx = Int("AddL"), Int("MulL"), Int("Max")
    facts = And(
        Ge(add_l, 1),
        Ge(mul_l, 1),
        Or(Eq(mx, add_l), Eq(mx, mul_l)),
        Ge(mx, add_l),
        Ge(mx, mul_l),
    )
    # Adder output shifted by (Max - AddL) is available at AddL + (Max-AddL).
    available = add_l + (mx - add_l)
    assert prove(Eq(available, mx), facts).is_unsat


def test_unbalanced_pipeline_counterexample():
    """Without balancing, reading the multiplier at Add::#L is invalid
    whenever the latencies differ -- the solver finds a witness."""
    add_l, mul_l = Int("AddL"), Int("MulL")
    facts = And(Ge(add_l, 1), Ge(mul_l, 1))
    result = prove(Eq(mul_l, add_l), facts)
    assert result.is_sat
    assert result.model["AddL"] != result.model["MulL"]


def test_model_includes_uf_values():
    fx = App("f", x)
    result = check_sat(Eq(fx, 5), Eq(x, 2))
    assert result.is_sat
    app_values = {k: v for k, v in result.model.items() if k.startswith("(f")}
    assert 5 in app_values.values()


@settings(max_examples=60, deadline=None)
@given(
    bound=st.integers(0, 12),
    offset=st.integers(-5, 5),
)
def test_interval_containment_property(bound, offset):
    """[G+o, G+o+1) inside [G, G+bound) iff 0 <= o < bound -- the core
    availability-interval check the type system performs."""
    g = Int("G")
    contained = And(
        Le(g, g + offset),
        Le(g + offset + 1, g + bound),
    )
    result = check_sat(contained, Ge(g, 0))
    if 0 <= offset and offset + 1 <= bound:
        assert result.is_sat
    else:
        assert result.is_unsat


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-8, 8), min_size=1, max_size=4))
def test_membership_encoding(values):
    """x constrained to a finite set is satisfiable exactly when nonempty."""
    disjuncts = Or(*[Eq(x, v) for v in values])
    result = check_sat(disjuncts)
    assert result.is_sat
    assert result.model["x"] in values

"""Canonical obligation digests: alpha-invariance and model maps."""

from repro import smt
from repro.smt.canon import canonical_query, translate_model


def _digest(*assertions, tag="t"):
    return canonical_query(list(assertions), tag=tag).digest


def test_alpha_equivalent_queries_share_digest():
    x, y = smt.Int("k'12"), smt.Int("k'15")
    a = [smt.Ge(x, 0), smt.Lt(x, 8), smt.Not(smt.Le(x, 3))]
    b = [smt.Ge(y, 0), smt.Lt(y, 8), smt.Not(smt.Le(y, 3))]
    assert _digest(*a) == _digest(*b)


def test_conjunct_order_is_irrelevant():
    x = smt.Int("x")
    a = [smt.Ge(x, 0), smt.Le(x, 7)]
    b = [smt.Le(x, 7), smt.Ge(x, 0)]
    assert _digest(*a) == _digest(*b)


def test_structure_changes_digest():
    x = smt.Int("x")
    assert _digest(smt.Ge(x, 0)) != _digest(smt.Ge(x, 1))
    assert _digest(smt.Ge(x, 0)) != _digest(smt.Le(x, 0))


def test_function_symbols_are_semantic():
    x = smt.Int("x")
    a = smt.Eq(smt.App("FPAdd.#L", x), 2)
    b = smt.Eq(smt.App("FPMul.#L", x), 2)
    assert _digest(a) != _digest(b)


def test_tag_separates_engines():
    x = smt.Int("x")
    assert _digest(smt.Ge(x, 0), tag="inc") != _digest(
        smt.Ge(x, 0), tag="oneshot"
    )


def test_distinct_variables_do_not_collapse():
    x, y = smt.Int("x"), smt.Int("y")
    # x related to x must not digest like x related to y.
    assert _digest(smt.Eq(smt.Plus(x, 1), x)) != _digest(
        smt.Eq(smt.Plus(x, 1), y)
    )


def test_model_translation_round_trip():
    x, w = smt.Int("k'12"), smt.Int("#W")
    query = canonical_query(
        [smt.Ge(x, 0), smt.Eq(smt.App("FPAdd.#L", w), x)], tag="t"
    )
    model = {"k'12": 3, "#W": 16, "(FPAdd.#L #W)": 3}
    canonical = translate_model(model, query.to_canonical)
    assert all("?v" in key or key.startswith("(") for key in canonical)
    # application keys translate token-wise too
    assert any(key.startswith("(FPAdd.#L ") for key in canonical)
    back = translate_model(canonical, query.to_original)
    assert back == model


def test_translate_model_none_passthrough():
    assert translate_model(None, {}) is None

"""Tests for the Python builder eDSL."""

import pytest

from repro.lilac import (
    CmdFor,
    CmdIf,
    CmdInst,
    CmdInvoke,
    COMP,
    EXTERN,
    GEN,
    Interval,
    LilacError,
    PortDef,
    Program,
)
from repro.lilac.builder import ComponentBuilder, extern_component, gen_component
from repro.params import P, PInt


def test_basic_component():
    b = ComponentBuilder("FPU", params=["#W"], delay=1)
    b.input("l", width="#W")
    b.input("r", width="#W")
    b.output("o", width="#W", avail=(P("#L"), P("#L") + 1))
    b.some("#L", where=[P("#L") >= 1])
    comp = b.build()
    assert comp.name == "FPU"
    assert comp.signature.kind == COMP
    assert comp.signature.param_names() == ["#W"]
    assert comp.signature.out_param_names() == ["#L"]


def test_new_and_invoke():
    b = ComponentBuilder("T", params=["#W"])
    b.input("a", width="#W")
    b.output("o", width="#W", avail=(1, 2))
    inst = b.new("Add", "FPAdd", ["#W"])
    inv = b.invoke("add", inst, at=0, args=[b.port("a"), b.port("a")])
    b.connect(b.port("o"), inv.out("o"))
    comp = b.build()
    assert isinstance(comp.body[0], CmdInst)
    assert isinstance(comp.body[1], CmdInvoke)
    assert comp.body[1].args[0].base == "a"


def test_new_invoke_combined():
    b = ComponentBuilder("T", params=["#W"])
    b.input("a", width="#W")
    b.output("o", width="#W", avail=(0, 1))
    inv = b.new_invoke("mx", "Mux", ["#W"], at=0, args=[b.port("a")])
    b.connect(b.port("o"), inv.out())
    comp = b.build()
    assert comp.body[0].name == "mx!inst"
    assert comp.body[1].instance == "mx!inst"


def test_for_loop_scope():
    b = ComponentBuilder("Shift", params=["#W", "#N"])
    b.input("input", width="#W")
    b.output("out", width="#W", avail=(P("#N"), P("#N") + 1))
    b.bundle("w", ["#i"], [P("#N") + 1], avail=(P("#i"), P("#i") + 1), width="#W")
    with b.for_loop("#k", 0, P("#N")) as k:
        inst = b.new("R", "Reg", ["#W"])
        b.invoke("r", inst, at=k, args=[b.bundle_at("w", k)])
    comp = b.build()
    loop = comp.body[1]
    assert isinstance(loop, CmdFor)
    assert len(loop.body) == 2


def test_if_else_scope():
    b = ComponentBuilder("D", params=["#W"])
    b.input("a", width="#W")
    b.output("o", width="#W", avail=(0, 1))
    with b.if_block(P("#W") < 12) as blk:
        b.new("DivA", "LutMult", ["#W"])
        blk.otherwise()
        b.new("DivB", "HighRad", ["#W"])
    comp = b.build()
    cond = comp.body[0]
    assert isinstance(cond, CmdIf)
    assert len(cond.then) == 1
    assert len(cond.otherwise) == 1


def test_unclosed_scope_raises():
    b = ComponentBuilder("T")
    b._scopes.append(type(b._scopes[0])())
    with pytest.raises(LilacError):
        b.build()


def test_extern_component():
    comp = extern_component(
        "Reg",
        params=["#W"],
        inputs=[PortDef("in", Interval(0, 1), P("#W"))],
        outputs=[PortDef("out", Interval(1, 2), P("#W"))],
    )
    assert comp.signature.kind == EXTERN


def test_gen_component():
    comp = gen_component(
        "flopoco",
        "FPAdd",
        params=["#W"],
        inputs=[PortDef("l", Interval(0, 1), P("#W"))],
        outputs=[PortDef("o", Interval(P("#L"), P("#L") + 1), P("#W"))],
    )
    assert comp.signature.kind == GEN
    assert comp.signature.gen_tool == "flopoco"


def test_program_merge_and_duplicates():
    a = ComponentBuilder("A").build()
    b = ComponentBuilder("B").build()
    prog = Program([a])
    prog2 = Program([b])
    merged = prog.merge(prog2)
    assert merged.has("A") and merged.has("B")
    with pytest.raises(LilacError):
        Program([a, ComponentBuilder("A").build()])

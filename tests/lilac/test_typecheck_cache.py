"""Differential tests for the obligation cache and discharge engines.

The load-bearing guarantee: a verdict served from the canonical
obligation cache (memory or disk) is *identical* — status and model —
to what the solver would have produced freshly, for every obligation of
every catalog design.
"""

import pytest

from repro import smt
from repro.designs.catalog import DESIGNS, design_point
from repro.driver import CacheStats, DiskCache, ObligationStore
from repro.lilac.stdlib import stdlib_program
from repro.lilac.typecheck import check_program
from repro.lilac.typecheck import check as check_mod


@pytest.fixture(autouse=True)
def _cold_memo():
    """Each test starts with a cold in-process obligation memo."""
    check_mod.clear_obligation_memo()
    yield
    check_mod.clear_obligation_memo()


def _recording_results():
    """Patch the discharge cache entry point to record every obligation's
    (status, model) in order."""
    recorded = []
    original = check_mod.ComponentChecker._cached_discharge

    def patched(self, assertions, solve):
        result = original(self, assertions, solve)
        recorded.append((result.status, result.model))
        return result

    return recorded, patched, original


@pytest.mark.parametrize("design", sorted(DESIGNS))
def test_cached_equals_fresh_across_catalog(design, tmp_path, monkeypatch):
    """Cold (solver) vs warm (disk-hit) per-obligation verdicts are
    identical for every catalog design, and the warm run never invokes
    the solver."""
    source, _, _, _ = design_point(design)
    program = stdlib_program(source)

    recorded, patched, original = _recording_results()
    monkeypatch.setattr(
        check_mod.ComponentChecker, "_cached_discharge", patched
    )

    stats_cold = CacheStats()
    store = ObligationStore(DiskCache(str(tmp_path / "smt"), stats_cold))
    cold_reports = check_program(
        program, raise_on_error=False, obligation_store=store,
        stats=stats_cold,
    )
    cold = list(recorded)
    assert stats_cold.counter("smt.queries") > 0

    # Fresh process-equivalent: clear the in-memory memo so every
    # verdict must come from the persistent store.
    check_mod.clear_obligation_memo()
    recorded.clear()
    stats_warm = CacheStats()
    warm_store = ObligationStore(
        DiskCache(str(tmp_path / "smt"), stats_warm)
    )
    warm_reports = check_program(
        program, raise_on_error=False, obligation_store=warm_store,
        stats=stats_warm,
    )
    warm = list(recorded)

    assert warm == cold  # statuses AND models, obligation by obligation
    assert stats_warm.counter("smt.queries") == 0
    assert stats_warm.counter("smt.disk_hit") > 0
    assert [len(r.errors) for r in warm_reports] == [
        len(r.errors) for r in cold_reports
    ]


def test_engines_agree_on_catalog_statuses(monkeypatch):
    """One-shot and incremental discharge agree on every obligation
    status for a representative design."""
    source, _, _, _ = design_point("fpu")
    program = stdlib_program(source)

    recorded, patched, original = _recording_results()
    monkeypatch.setattr(
        check_mod.ComponentChecker, "_cached_discharge", patched
    )

    monkeypatch.setenv("REPRO_SMT_INCREMENTAL", "1")
    check_program(program, raise_on_error=False)
    incremental = [status for status, _ in recorded]

    check_mod.clear_obligation_memo()
    recorded.clear()
    monkeypatch.setenv("REPRO_SMT_INCREMENTAL", "0")
    check_program(program, raise_on_error=False)
    oneshot = [status for status, _ in recorded]

    assert incremental == oneshot


def test_sat_models_survive_the_cache(tmp_path, monkeypatch):
    """A failing design's counterexample is identical cached vs fresh."""
    source = """
gen "flopoco" comp FPAdd[#W]<G:1>(
    l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L > 0; };

comp Bad[#W]<G:1>(l: [G, G+1] #W, r: [G, G+1] #W) -> (o: [G, G+1] #W) {
  Add := new FPAdd[#W];
  add := Add<G>(l, r);
  o = add.o;
}
"""
    program = stdlib_program(source)
    recorded, patched, original = _recording_results()
    monkeypatch.setattr(
        check_mod.ComponentChecker, "_cached_discharge", patched
    )
    stats = CacheStats()
    store = ObligationStore(DiskCache(str(tmp_path / "smt"), stats))
    cold_reports = check_program(
        program, raise_on_error=False, obligation_store=store, stats=stats
    )
    assert any(r.errors for r in cold_reports)
    cold = list(recorded)
    assert any(status == "sat" for status, _ in cold)

    check_mod.clear_obligation_memo()
    recorded.clear()
    warm_reports = check_program(
        program, raise_on_error=False,
        obligation_store=ObligationStore(
            DiskCache(str(tmp_path / "smt"), CacheStats())
        ),
    )
    assert recorded == cold
    assert [e.counterexample for r in warm_reports for e in r.errors] == [
        e.counterexample for r in cold_reports for e in r.errors
    ]


def test_typecheck_error_pickle_round_trip():
    """Failing reports travel through the disk cache and process pools;
    TypeCheckError must survive pickling with all fields intact."""
    import pickle

    from repro.lilac.typecheck import TypeCheckError

    error = TypeCheckError("FPU", "boom", {"#W": 3}, kind="latency")
    clone = pickle.loads(pickle.dumps(error))
    assert clone.component == "FPU"
    assert clone.reason == "boom"
    assert clone.counterexample == {"#W": 3}
    assert clone.kind == "latency"


def test_memo_dedupes_alpha_equivalent_obligations():
    """Within one run the canonical memo answers repeated obligations."""
    source, _, _, _ = design_point("fpu")
    program = stdlib_program(source)
    stats = CacheStats()
    check_program(program, raise_on_error=False, stats=stats)
    assert stats.counter("smt.memo_hit") > 0
    assert stats.counter("smt.queries") < (
        stats.counter("smt.queries") + stats.counter("smt.memo_hit")
    )

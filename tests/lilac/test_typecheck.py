"""Type checker tests, centred on the paper's running FPU example
(section 3) and the three safety properties of section 4.2."""

import pytest

from repro.lilac import parse_program
from repro.lilac.stdlib import standard_library, stdlib_program
from repro.lilac.typecheck import check_component, check_program, TypeCheckError

FLOPOCO_DECLS = """
gen "flopoco" comp FPAdd[#W]<G:1>(
    l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L > 0; };

gen "flopoco" comp FPMul[#W]<G:1>(
    l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L > 0; };
"""

FPU_WRONG = FLOPOCO_DECLS + """
comp FPU[#W]<G:1>(
    op: [G, G+1] 1, l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G, G+1] #W) {
  Add := new FPAdd[#W];
  Mul := new FPMul[#W];
  add := Add<G>(l, r);
  mul := Mul<G>(l, r);
  mx := new Mux[#W]<G>(op, add.o, mul.o);
  o = mx.out;
}
"""

FPU_HALF_FIXED = FLOPOCO_DECLS + """
comp FPU[#W]<G:1>(
    op: [G, G+1] 1, l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G, G+1] #W) {
  Add := new FPAdd[#W];
  Mul := new FPMul[#W];
  add := Add<G>(l, r);
  mul := Mul<G>(l, r);
  so := new Shift[1, Add::#L]<G>(op);
  mx := new Mux[#W]<G+Add::#L>(so.out, add.o, mul.o);
  o = mx.out;
}
"""

FPU_CORRECT = FLOPOCO_DECLS + """
comp FPU[#W]<G:1>(
    op: [G, G+1] 1, l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L >= 1; } {
  Add := new FPAdd[#W];
  Mul := new FPMul[#W];
  add := Add<G>(l, r);
  mul := Mul<G>(l, r);
  let #Max = Max[Add::#L, Mul::#L]::#Out;
  sa := new Shift[#W, #Max - Add::#L]<G+Add::#L>(add.o);
  sm := new Shift[#W, #Max - Mul::#L]<G+Mul::#L>(mul.o);
  so := new Shift[1, #Max]<G>(op);
  mx := new Mux[#W]<G+#Max>(so.out, sa.out, sm.out);
  o = mx.out;
  #L := #Max;
}
"""


def check(source: str, name: str):
    program = stdlib_program(source)
    return check_component(program, name)


def test_stdlib_checks_clean():
    program = standard_library()
    reports = check_program(program, raise_on_error=False)
    failures = [r for r in reports if not r.ok]
    assert not failures, [str(e) for r in failures for e in r.errors]


def test_fpu_erroneous_rejected_like_section_3_2():
    """Figure 5a: reading the adder at G when its output arrives at
    G+Add::#L is rejected with a counterexample."""
    report = check(FPU_WRONG, "FPU")
    assert not report.ok
    latency_errors = [e for e in report.errors if e.kind == "latency"]
    assert latency_errors
    message = latency_errors[0].reason
    assert "available in" in message and "required in" in message
    # The counterexample pins a concrete latency >= 1.
    assert latency_errors[0].counterexample


def test_fpu_half_fixed_still_rejected():
    """Scheduling the mux at Add::#L fixes the adder read but the
    multiplier is still unbalanced (the paper's second error)."""
    report = check(FPU_HALF_FIXED, "FPU")
    assert not report.ok
    messages = " ".join(e.reason for e in report.errors)
    assert "available in" in messages


def test_fpu_balanced_accepted():
    """Figure 5b: the pipeline-balanced FPU checks for every
    parameterization."""
    report = check(FPU_CORRECT, "FPU")
    assert report.ok, [str(e) for e in report.errors]
    assert report.obligations > 10


def test_shift_register_figure6():
    program = standard_library()
    report = check_component(program, "Shift")
    assert report.ok, [str(e) for e in report.errors]


def test_resource_conflict_detected():
    """Invoking a delay-1 instance twice in the same cycle is rejected."""
    source = """
    comp Bad[#W]<G:2>(a: [G, G+1] #W) -> (o: [G, G+1] #W) {
      A := new Add[#W];
      x := A<G>(a, a);
      y := A<G>(a, a);
      o = y.out;
    }
    """
    report = check(source, "Bad")
    assert not report.ok
    assert any(e.kind == "resource" for e in report.errors)


def test_resource_spacing_accepted():
    """Reusing an instance with sufficient spacing inside a slow parent."""
    source = """
    comp Ok[#W]<G:4>(a: [G, G+1] #W) -> (o: [G+2, G+3] #W) {
      A := new Add[#W];
      r := new Reg[#W]<G>(a);
      r2 := new Reg[#W]<G+1>(r.out);
      x := A<G>(a, a);
      y := A<G+2>(r2.out, r2.out);
      o = y.out;
    }
    """
    report = check(source, "Ok")
    assert report.ok, [str(e) for e in report.errors]


def test_pipeline_delay_violation():
    """A child with delay 4 cannot live inside a delay-1 parent."""
    source = """
    extern comp SlowUnit[#W]<G:4>(a: [G, G+1] #W) -> (o: [G+2, G+3] #W);
    comp Fast[#W]<G:1>(a: [G, G+1] #W) -> (o: [G+2, G+3] #W) {
      S := new SlowUnit[#W];
      x := S<G>(a);
      o = x.o;
    }
    """
    report = check(source, "Fast")
    assert not report.ok
    assert any(e.kind == "pipeline" for e in report.errors)


def test_double_drive_rejected():
    source = """
    comp Dup[#W]<G:1>(a: [G, G+1] #W) -> (o: [G, G+1] #W) {
      o = a;
      o = a;
    }
    """
    report = check(source, "Dup")
    assert not report.ok
    assert any(e.kind == "conflict" for e in report.errors)


def test_conditional_drives_on_disjoint_paths_ok():
    source = """
    comp Sel[#W]<G:1>(a: [G, G+1] #W) -> (o: [G, G+1] #W) {
      if #W < 12 { o = a; }
      else { o = a; }
    }
    """
    report = check(source, "Sel")
    assert report.ok, [str(e) for e in report.errors]


def test_bundle_out_of_bounds_rejected():
    source = """
    comp OOB[#W, #N]<G:1>(a: [G, G+1] #W) -> (o: [G, G+1] #W)
        where #N >= 1 {
      bundle<#i> w[#N]: [G, G+1] #W;
      w{#N} = a;
      o = a;
    }
    """
    report = check(source, "OOB")
    assert not report.ok
    assert any(e.kind == "bounds" for e in report.errors)


def test_bundle_double_write_rejected():
    source = """
    comp DW[#W, #N]<G:1>(a: [G, G+1] #W) -> (o: [G, G+1] #W)
        where #N >= 2 {
      bundle<#i> w[#N]: [G, G+1] #W;
      for #k in 0..#N {
        w{0} = a;
      }
      o = a;
    }
    """
    report = check(source, "DW")
    assert not report.ok
    assert any(e.kind == "conflict" for e in report.errors)


def test_width_mismatch_rejected():
    source = """
    comp WM<G:1>(a: [G, G+1] 8) -> (o: [G, G+1] 16) {
      o = a;
    }
    """
    report = check(source, "WM")
    assert not report.ok
    assert any(e.kind == "width" for e in report.errors)


def test_where_clause_violation_on_instantiation():
    source = """
    comp Neg[#W]<G:1>(a: [G, G+1] #W) -> (o: [G+1, G+2] #W) {
      s := new Shift[#W, 0 - 1]<G>(a);
      o = s.out;
    }
    """
    report = check(source, "Neg")
    assert not report.ok
    assert any(e.kind == "where" for e in report.errors)


def test_assume_discharges_obligation():
    """The paper: users provide additional facts with assume statements."""
    source = """
    comp NeedsFact[#W, #N]<G:1>(a: [G, G+1] #W) -> (o: [G+#N, G+#N+1] #W) {
      assume #N >= 0;
      s := new Shift[#W, #N]<G>(a);
      o = s.out;
    }
    """
    report = check(source, "NeedsFact")
    assert report.ok, [str(e) for e in report.errors]


def test_missing_assume_is_an_error():
    source = """
    comp NoFact[#W, #N]<G:1>(a: [G, G+1] #W) -> (o: [G+#N, G+#N+1] #W) {
      s := new Shift[#W, #N]<G>(a);
      o = s.out;
    }
    """
    report = check(source, "NoFact")
    assert not report.ok


def test_unbound_output_param_is_error():
    source = """
    comp NoBind[#W]<G:1>(a: [G, G+1] #W) -> (o: [G, G+1] #W)
        with { some #L where #L >= 1; } {
      o = a;
    }
    """
    report = check(source, "NoBind")
    assert not report.ok


def test_undriven_output_is_error():
    source = """
    comp NoDrive[#W]<G:1>(a: [G, G+1] #W) -> (o: [G, G+1] #W) {
      r := new Reg[#W]<G>(a);
    }
    """
    report = check(source, "NoDrive")
    assert not report.ok


def test_assert_command_checked():
    source = """
    comp BadAssert[#N]<G:1>(a: [G, G+1] 8) -> (o: [G, G+1] 8) {
      assert #N >= 1;
      o = a;
    }
    """
    report = check(source, "BadAssert")
    assert not report.ok
    assert any(e.kind == "assert" for e in report.errors)


def test_check_program_raises_on_error():
    program = stdlib_program(FPU_WRONG)
    with pytest.raises(TypeCheckError):
        check_program(program)


def test_output_param_uf_sharing():
    """Two instances of the same gen component with identical parameters
    share timing (the section 4.2 uninterpreted-function encoding)."""
    source = FLOPOCO_DECLS + """
    comp Twin[#W]<G:1>(l: [G, G+1] #W, r: [G, G+1] #W)
        -> (o: [G+#L, G+#L+1] #W) with { some #L; } {
      A := new FPAdd[#W];
      B := new FPAdd[#W];
      a := A<G>(l, r);
      b := B<G>(l, r);
      mx := new Add[#W]<G+A::#L>(a.o, b.o);
      o = mx.out;
      #L := A::#L;
    }
    """
    # b.o is available at B::#L == A::#L because both instances have the
    # same input parameter; reading it at A::#L must therefore check.
    report = check(source, "Twin")
    assert report.ok, [str(e) for e in report.errors]

"""Parser tests: the paper's figures round-trip through the frontend."""

import pytest

from repro.lilac import (
    CmdBundle,
    CmdConnect,
    CmdFor,
    CmdIf,
    CmdInst,
    CmdInvoke,
    CmdLet,
    CmdOutBind,
    COMP,
    EXTERN,
    GEN,
    parse_component,
    parse_program,
)
from repro.lilac.parser import ParseError, tokenize
from repro.params import PAccess, PInstOut, PInt, PVar, evaluate


FPADD = """
gen "flopoco" comp FPAdd[#W]<G:1>(
    val_i: interface[G],
    l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L > 0; };
"""

SHIFT = """
comp Shift[#W, #N]<G:1>(input: [G, G+1] #W)
    -> (out: [G+#N, G+#N+1] #W) where #N >= 0 {
  bundle<#i> w[#N+1]: [G+#i, G+#i+1] #W;
  w{0} = input;
  for #k in 0..#N {
    r := new Reg[#W]<G+#k>(w{#k});
    w{#k+1} = r.out;
  }
  out = w{#N};
}
"""


def test_lexer_params_and_symbols():
    tokens = tokenize("comp F[#W]<G:1> := :: .. -> // comment\n 42")
    kinds = [t.kind for t in tokens]
    assert "comp" in kinds
    assert "PARAM" in kinds
    assert ":=" in kinds
    assert "::" in kinds
    assert ".." in kinds
    assert "->" in kinds
    assert kinds[-2] == "NUMBER"
    assert kinds[-1] == "EOF"


def test_parse_gen_component_figure4():
    comp = parse_component(FPADD)
    sig = comp.signature
    assert sig.kind == GEN
    assert sig.gen_tool == "flopoco"
    assert sig.name == "FPAdd"
    assert sig.param_names() == ["#W"]
    assert sig.event.name == "G"
    assert evaluate(sig.event.delay, {}) == 1
    # interface port + two data inputs
    assert len(sig.inputs) == 3
    assert sig.inputs[0].interface
    assert sig.inputs[1].name == "l"
    assert sig.inputs[1].interval.start == PInt(0)
    # output availability is [G+#L, G+#L+1)
    out = sig.outputs[0]
    assert out.interval.start == PVar("#L")
    # output parameter with its where-clause
    assert sig.out_param_names() == ["#L"]
    assert len(sig.out_param("#L").where) == 1


def test_parse_shift_figure6():
    comp = parse_component(SHIFT)
    assert comp.signature.kind == COMP
    body = comp.body
    assert isinstance(body[0], CmdBundle)
    bundle = body[0]
    assert bundle.index_vars == ["#i"]
    assert evaluate(bundle.sizes[0], {"#N": 4}) == 5
    assert isinstance(body[1], CmdConnect)
    assert isinstance(body[2], CmdFor)
    loop = body[2]
    assert loop.var == "#k"
    inner = loop.body
    assert isinstance(inner[0], CmdInst)
    assert isinstance(inner[1], CmdInvoke)
    assert isinstance(body[3], CmdConnect)


def test_parse_combined_new_invoke():
    comp = parse_component(
        """
        comp T[#W]<G:1>(a: [G, G+1] #W) -> (o: [G, G+1] #W) {
          mx := new Mux[#W]<G>(a, a);
          o = mx.out;
        }
        """
    )
    body = comp.body
    assert isinstance(body[0], CmdInst)
    assert isinstance(body[1], CmdInvoke)
    assert body[1].instance == body[0].name


def test_parse_instance_output_param():
    comp = parse_component(
        """
        comp T<G:1>(a: [G, G+1] 8) -> (o: [G+Add::#L, G+Add::#L+1] 8) {
          Add := new FPAdd[8];
          add := Add<G>(a, a);
          mx := new Mux[8]<G+Add::#L>(a, add.o, add.o);
          o = mx.out;
        }
        """
    )
    invoke = comp.body[3]
    assert isinstance(invoke, CmdInvoke)
    assert invoke.offset == PInstOut("Add", "#L")


def test_parse_parameter_access():
    comp = parse_component(
        """
        comp T<G:1>(a: [G, G+1] 8) -> (o: [G, G+1] 8) {
          let #Max = Max[Add::#L, Mul::#L]::#Out;
          o = a;
        }
        """
    )
    let = comp.body[0]
    assert isinstance(let, CmdLet)
    assert isinstance(let.expr, PAccess)
    assert let.expr.comp == "Max"
    assert let.expr.out == "#Out"


def test_parse_out_bind_and_with():
    comp = parse_component(
        """
        comp T<G:1>(a: [G, G+1] 8) -> (o: [G+#L, G+#L+1] 8)
            with { some #L where #L > 0; } {
          #L := 4;
          o = a;
        }
        """
    )
    assert comp.signature.out_param_names() == ["#L"]
    bind = comp.body[0]
    assert isinstance(bind, CmdOutBind)
    assert bind.name == "#L"


def test_parse_if_else_chain():
    comp = parse_component(
        """
        comp T[#W]<G:1>(a: [G, G+1] #W) -> (o: [G, G+1] #W) {
          if #W < 12 { o = a; }
          else if #W < 16 { o = a; }
          else { o = a; }
        }
        """
    )
    top = comp.body[0]
    assert isinstance(top, CmdIf)
    assert isinstance(top.otherwise[0], CmdIf)


def test_parse_ternary_in_where():
    comp = parse_component(
        """
        comp Rad2[#W, #II, #Fr]<G:1>(n: [G, G+1] #W) -> (q: [G+#L, G+#L+1] #W)
          with { some #L; }
          where #II < 9, (#Fr > 0 & #II > 1 ? #W+5 : #W+4) > 0 { q = n; }
        """
    )
    assert len(comp.signature.where) == 2


def test_parse_extern():
    comp = parse_component(
        "extern comp Reg[#W]<G:1>(in: [G, G+1] #W) -> (out: [G+1, G+2] #W);"
    )
    assert comp.signature.kind == EXTERN
    assert not comp.body


def test_parse_multiple_components_program():
    program = parse_program(FPADD + SHIFT)
    assert len(program) == 2
    assert program.has("FPAdd")
    assert program.has("Shift")


def test_parse_error_reports_location():
    with pytest.raises(ParseError) as err:
        parse_component("comp Broken[#W<G:1>() -> () {}")
    assert ":" in str(err.value)


def test_parse_array_port():
    comp = parse_component(
        """
        comp Conv[#W]<G:1>(in[#N]: [G, G+1] #W) -> (out[#N]: [G+1, G+2] #W) {
          out{0} = in{0};
        }
        """
    )
    assert comp.signature.inputs[0].size == PVar("#N")
    connect = comp.body[0]
    assert connect.dst.indices[0] == PInt(0)


def test_parse_negative_offsets():
    comp = parse_component(
        """
        comp T[#N]<G:1>(a: [G, G+#N-1] 8) -> (o: [G, G+1] 8) { o = a; }
        """
    )
    end = comp.signature.inputs[0].interval.end
    assert evaluate(end, {"#N": 4}) == 3

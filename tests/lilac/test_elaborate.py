"""End-to-end elaboration tests: Lilac source -> Filament -> RTL -> simulation."""

import pytest

from repro.generators import GeneratorRegistry
from repro.generators.flopoco import FloPoCoGenerator, adder_depth, multiplier_depth
from repro.lilac.elaborate import ElabError, Elaborator
from repro.lilac.run import TransactionRunner, pack_elements, unpack_elements
from repro.lilac.stdlib import standard_library, stdlib_program
from repro.rtl import Simulator, emit_verilog

from .test_typecheck import FPU_CORRECT


def make_elaborator(*sources, frequency=400):
    program = stdlib_program(*sources)
    registry = GeneratorRegistry().register(FloPoCoGenerator(frequency))
    return Elaborator(program, registry)


def test_shift_elaborates_to_delay_line():
    elab = make_elaborator().elaborate("Shift", {"#W": 8, "#N": 3})
    assert elab.delay == 1
    assert elab.latency == 3
    stats = elab.module.stats()
    # Flattened: 3 Reg submodules.
    runner = TransactionRunner(elab)
    results = runner.run([{"input": v} for v in [5, 9, 12, 200]])
    assert [r["out"] for r in results] == [5, 9, 12, 200]


def test_shift_zero_depth():
    elab = make_elaborator().elaborate("Shift", {"#W": 8, "#N": 0})
    results = TransactionRunner(elab).run([{"input": 3}])
    assert results[0]["out"] == 3


def test_shift_where_violation():
    with pytest.raises(ElabError):
        make_elaborator().elaborate("Shift", {"#W": 8, "#N": -1})


def test_max_component_is_parameter_function():
    elab = make_elaborator().elaborate("Max", {"#A": 3, "#B": 9})
    assert elab.out_params["#Out"] == 9
    elab = make_elaborator().elaborate("Max", {"#A": 10, "#B": 9})
    assert elab.out_params["#Out"] == 10


def test_flopoco_depth_model():
    assert adder_depth(32, 100) == 1
    assert multiplier_depth(32, 100) == 1
    assert adder_depth(32, 400) == 4
    assert multiplier_depth(32, 400) == 2


def test_flopoco_report_scraping():
    registry = GeneratorRegistry().register(FloPoCoGenerator(400))
    generated = registry.run("flopoco", "FPAdd", {"#W": 32})
    assert generated.out_params["#L"] == 4
    assert "Pipeline depth = 4" in generated.report


def test_flopoco_adder_is_correct_pipeline():
    registry = GeneratorRegistry().register(FloPoCoGenerator(400))
    generated = registry.run("flopoco", "FPAdd", {"#W": 32})
    sim = Simulator(generated.module)
    latency = generated.out_params["#L"]
    # Pipelined: issue three back-to-back additions.
    pairs = [(100, 23), (2**31, 2**31), (0xDEADBEEF, 0x11111111)]
    stream = [{"l": a, "r": b} for a, b in pairs] + [{}] * latency
    outs = [o["o"] for o in sim.run(stream)]
    for index, (a, b) in enumerate(pairs):
        assert outs[index + latency] == (a + b) & 0xFFFFFFFF


def test_flopoco_multiplier_correct():
    registry = GeneratorRegistry().register(FloPoCoGenerator(400))
    generated = registry.run("flopoco", "FPMul", {"#W": 16})
    sim = Simulator(generated.module)
    latency = generated.out_params["#L"]
    stream = [{"l": 123, "r": 45}] + [{}] * latency
    outs = [o["o"] for o in sim.run(stream)]
    assert outs[latency] == (123 * 45) & 0xFFFF


@pytest.mark.parametrize("frequency", [100, 400])
def test_fpu_elaborates_and_computes(frequency):
    """The corrected FPU (Figure 5b) works at both Table 1 design points."""
    elab = make_elaborator(FPU_CORRECT, frequency=frequency).elaborate(
        "FPU", {"#W": 32}
    )
    add_l = adder_depth(32, frequency)
    mul_l = multiplier_depth(32, frequency)
    assert elab.out_params["#L"] == max(add_l, mul_l)
    runner = TransactionRunner(elab)
    cases = [
        {"op": 1, "l": 7, "r": 9},      # op=1 -> first mux input (adder)
        {"op": 0, "l": 7, "r": 9},      # op=0 -> second mux input (multiplier)
        {"op": 1, "l": 1000, "r": 2000},
        {"op": 0, "l": 1000, "r": 2000},
    ]
    results = runner.run(cases)
    assert results[0]["o"] == 16
    assert results[1]["o"] == 63
    assert results[2]["o"] == 3000
    assert results[3]["o"] == 2000000


def test_fpu_fully_pipelined_back_to_back():
    """II = 1: a new operation can start every cycle."""
    elab = make_elaborator(FPU_CORRECT, frequency=400).elaborate("FPU", {"#W": 32})
    assert elab.delay == 1
    runner = TransactionRunner(elab)
    cases = [{"op": 1, "l": i, "r": i + 1} for i in range(10)]
    results = runner.run(cases)
    for i, result in enumerate(results):
        assert result["o"] == 2 * i + 1


def test_elaboration_memoizes_children():
    elaborator = make_elaborator(FPU_CORRECT)
    first = elaborator.elaborate("FPU", {"#W": 32})
    second = elaborator.elaborate("FPU", {"#W": 32})
    assert first is second


def test_unbound_generator_tool_fails():
    program = stdlib_program(FPU_CORRECT)
    elaborator = Elaborator(program, GeneratorRegistry())
    with pytest.raises(Exception):
        elaborator.elaborate("FPU", {"#W": 32})


def test_assume_violation_reported():
    source = """
    comp NeedsFact[#W, #N]<G:1>(a: [G, G+1] #W) -> (o: [G+#N, G+#N+1] #W) {
      assume #N >= 2;
      s := new Shift[#W, #N]<G>(a);
      o = s.out;
    }
    """
    elaborator = make_elaborator(source)
    with pytest.raises(ElabError, match="assumption"):
        elaborator.elaborate("NeedsFact", {"#W": 8, "#N": 1})
    # And works when respected.
    elab = elaborator.elaborate("NeedsFact", {"#W": 8, "#N": 3})
    assert elab.latency == 3


def test_conditional_selects_architecture():
    source = """
    comp Cond[#W]<G:1>(a: [G, G+1] #W) -> (o: [G+#L, G+#L+1] #W)
        with { some #L where #L >= 0; } {
      if #W < 16 {
        s := new Shift[#W, 1]<G>(a);
        o = s.out;
        #L := 1;
      } else {
        s := new Shift[#W, 2]<G>(a);
        o = s.out;
        #L := 2;
      }
    }
    """
    elaborator = make_elaborator(source)
    assert elaborator.elaborate("Cond", {"#W": 8}).latency == 1
    assert elaborator.elaborate("Cond", {"#W": 32}).latency == 2


def test_verilog_of_elaborated_fpu():
    elab = make_elaborator(FPU_CORRECT, frequency=400).elaborate("FPU", {"#W": 32})
    text = emit_verilog(elab.module)
    assert "module FPU_32" in text
    assert "endmodule" in text


def test_pack_unpack_roundtrip():
    values = [3, 255, 0, 17]
    packed = pack_elements(values, 8)
    assert unpack_elements(packed, 8, 4) == values


def test_reghold_holds_value():
    source = """
    comp HoldTop[#W]<G:4>(a: [G, G+1] #W) -> (o: [G+1, G+5] #W) {
      h := new RegHold[#W, 4]<G>(a);
      o = h.out;
    }
    """
    elab = make_elaborator(source).elaborate("HoldTop", {"#W": 8})
    assert elab.delay == 4
    runner = TransactionRunner(elab)
    results = runner.run([{"a": 77}, {"a": 99}])
    assert results[0]["o"] == 77
    assert results[1]["o"] == 99


def test_resource_sharing_two_invocations():
    """One instance invoked twice: lowering must time-multiplex it."""
    source = """
    comp Twice[#W]<G:4>(a: [G, G+1] #W, b: [G+2, G+3] #W)
        -> (o: [G+2, G+3] #W) {
      A := new Add[#W];
      x := A<G>(a, a);
      r := new Reg[#W]<G>(x.out);
      r2 := new Reg[#W]<G+1>(r.out);
      y := A<G+2>(b, b);
      s := new Add[#W]<G+2>(r2.out, y.out);
      o = s.out;
    }
    """
    elab = make_elaborator(source).elaborate("Twice", {"#W": 8})
    runner = TransactionRunner(elab)
    # o = (2a delayed) + 2b at cycle 2.
    results = runner.run([{"a": 5, "b": 7}, {"a": 1, "b": 2}])
    assert results[0]["o"] == (2 * 5 + 2 * 7) & 0xFF
    assert results[1]["o"] == (2 * 1 + 2 * 2) & 0xFF

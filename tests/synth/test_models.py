"""Tests for the synthesis area/timing models."""

from repro.generators import GeneratorRegistry
from repro.generators.flopoco import FloPoCoGenerator
from repro.rtl import Module
from repro.synth import (
    area,
    format_table,
    geomean,
    logic_delay,
    routing_delay,
    synthesize,
    timing,
)


def adder_module(width):
    m = Module(f"add{width}")
    a = m.add_input("a", width)
    b = m.add_input("b", width)
    out = m.add_output("out", width)
    m.add_cell("add", {"a": a, "b": b, "out": out})
    return m


def test_area_scales_with_width():
    assert area(adder_module(8)).luts < area(adder_module(32)).luts


def test_registers_counted():
    m = Module("regs")
    d = m.add_input("d", 16)
    q = m.add_output("q", 16)
    r = m.delay_chain(d, 3)
    m.add_cell("slice", {"a": r, "out": q}, {"lsb": 0})
    assert area(m).registers == 48


def test_fifo_area_dominated_by_depth():
    def fifo_module(depth):
        m = Module(f"f{depth}")
        in_data = m.add_input("in_data", 32)
        in_valid = m.add_input("in_valid", 1)
        out_ready = m.add_input("out_ready", 1)
        in_ready = m.add_output("in_ready", 1)
        out_data = m.add_output("out_data", 32)
        out_valid = m.add_output("out_valid", 1)
        m.add_cell(
            "fifo",
            {
                "in_data": in_data,
                "in_valid": in_valid,
                "in_ready": in_ready,
                "out_data": out_data,
                "out_valid": out_valid,
                "out_ready": out_ready,
            },
            {"depth": depth},
        )
        return m

    assert area(fifo_module(8)).registers > area(fifo_module(2)).registers


def test_timing_wider_adder_slower():
    narrow = timing(adder_module(8))
    wide = timing(adder_module(64))
    assert wide.critical_path_ns > narrow.critical_path_ns
    assert wide.fmax_mhz < narrow.fmax_mhz


def test_timing_chained_logic_accumulates():
    m = Module("chain")
    a = m.add_input("a", 16)
    out = m.add_output("out", 16)
    current = a
    for _ in range(4):
        current = m.binop("add", current, a, 16)
    m.add_cell("slice", {"a": current, "out": out}, {"lsb": 0})
    chained = timing(m)
    single = timing(adder_module(16))
    assert chained.critical_path_ns > 3 * single.critical_path_ns * 0.5


def test_pipelining_shortens_critical_path():
    """A deeper FloPoCo adder pipeline has a faster clock — the premise
    behind the paper's frequency-driven generator flow."""
    registry = GeneratorRegistry()
    shallow = FloPoCoGenerator(100).generate("FPAdd", {"#W": 64})
    deep = FloPoCoGenerator(400).generate("FPAdd", {"#W": 64})
    t_shallow = timing(shallow.module)
    t_deep = timing(deep.module)
    assert t_deep.fmax_mhz > t_shallow.fmax_mhz
    # And the deeper pipeline spends more registers.
    assert area(deep.module).registers > area(shallow.module).registers


def test_fanout_increases_delay():
    assert routing_delay(32) > routing_delay(1)


def test_synthesize_report():
    report = synthesize(adder_module(16), "adder16")
    assert report.name == "adder16"
    assert report.luts == 16
    assert report.fmax_mhz > 0
    assert "adder16" in repr(report)


def test_geomean():
    assert abs(geomean([2.0, 8.0]) - 4.0) < 1e-9
    assert geomean([]) == 0.0


def test_format_table_alignment():
    text = format_table(
        ["Design", "LUTs"], [["LS", 441], ["LI", 614]]
    )
    lines = text.splitlines()
    assert len(lines) == 4
    assert "Design" in lines[0]
    assert "614" in lines[3]

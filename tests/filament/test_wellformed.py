"""Unit tests for the concrete Filament IR and its well-formedness check."""

import pytest

from repro.filament import (
    ConstRef,
    FConnect,
    FilamentError,
    FInvoke,
    FModule,
    FPort,
    InputRef,
    InvokeOutRef,
    PackRef,
    check_module,
)


class FakeChild:
    """Minimal stand-in for an ElabResult."""

    def __init__(self, name, delay, inputs, outputs):
        self.name = name
        self.delay = delay
        self.inputs = inputs
        self.outputs = outputs

    def output(self, name):
        for port in self.outputs:
            if port.name == name:
                return port
        raise FilamentError(f"no output {name}")


def reg_child(width=8):
    return FakeChild(
        "Reg", 1,
        [FPort("in", width, 0, 1)],
        [FPort("out", width, 1, 2)],
    )


def simple_module():
    m = FModule(
        "top", 1,
        [FPort("a", 8, 0, 1)],
        [FPort("o", 8, 1, 2)],
        {},
    )
    inv = FInvoke("r@0", reg_child(), 0, [InputRef("a")])
    m.invokes.append(inv)
    m.connects.append(FConnect("o", None, InvokeOutRef("r@0", "out")))
    return m


def test_wellformed_passes():
    check_module(simple_module())


def test_late_read_rejected():
    m = simple_module()
    # Invoke the register at time 1: its input needs [1,2) but `a` is
    # only available in [0,1).
    m.invokes[0].time = 1
    with pytest.raises(FilamentError, match="available"):
        check_module(m)


def test_output_window_mismatch_rejected():
    m = simple_module()
    m.outputs[0] = FPort("o", 8, 5, 6)  # requires cycle 5; reg gives 1
    with pytest.raises(FilamentError):
        check_module(m)


def test_width_mismatch_rejected():
    m = simple_module()
    m.inputs[0] = FPort("a", 16, 0, 1)
    with pytest.raises(FilamentError, match="width"):
        check_module(m)


def test_undriven_output_rejected():
    m = simple_module()
    m.connects.clear()
    with pytest.raises(FilamentError, match="never driven"):
        check_module(m)


def test_double_drive_rejected():
    m = simple_module()
    m.connects.append(FConnect("o", None, ConstRef(0)))
    with pytest.raises(FilamentError, match="twice"):
        check_module(m)


def test_resource_spacing_rejected():
    m = FModule("top", 4, [FPort("a", 8, 0, 4)], [FPort("o", 8, 2, 3)], {})
    child = reg_child()
    first = FInvoke("r@0", child, 0, [InputRef("a")])
    second = FInvoke("r@1", child, 0, [InputRef("a")])
    # Same physical instance, same time: spacing 0 < delay 1.
    first._instance_key = second._instance_key = "shared"
    m.invokes.extend([first, second])
    m.connects.append(FConnect("o", None, ConstRef(1)))
    with pytest.raises(FilamentError, match="re-invoked"):
        check_module(m)


def test_delay_exceeds_parent_rejected():
    m = FModule("top", 1, [FPort("a", 8, 0, 1)], [FPort("o", 8, 1, 2)], {})
    slow = FakeChild(
        "Slow", 3, [FPort("in", 8, 0, 1)], [FPort("out", 8, 1, 2)]
    )
    m.invokes.append(FInvoke("s@0", slow, 0, [InputRef("a")]))
    m.connects.append(FConnect("o", None, InvokeOutRef("s@0", "out")))
    with pytest.raises(FilamentError, match="exceeds"):
        check_module(m)


def test_array_index_bounds():
    m = FModule(
        "top", 1,
        [FPort("v", 8, 0, 1, size=4)],
        [FPort("o", 8, 1, 2)],
        {},
    )
    child = reg_child()
    m.invokes.append(FInvoke("r@0", child, 0, [InputRef("v", index=7)]))
    m.connects.append(FConnect("o", None, InvokeOutRef("r@0", "out")))
    with pytest.raises(FilamentError, match="out of bounds"):
        check_module(m)


def test_packref_window_is_intersection():
    m = FModule(
        "top", 2,
        [FPort("a", 8, 0, 3), FPort("b", 8, 1, 2)],
        [FPort("o", 8, 2, 3)],
        {},
    )
    vec_child = FakeChild(
        "V", 1,
        [FPort("in", 8, 1, 2, size=2)],
        [FPort("out", 8, 2, 3)],
    )
    pack = PackRef([InputRef("a"), InputRef("b")])
    m.invokes.append(FInvoke("v@0", vec_child, 0, [pack]))
    m.connects.append(FConnect("o", None, InvokeOutRef("v@0", "out")))
    check_module(m)  # intersection [1,2) covers requirement [1,2)
    # Narrow b's window so the intersection misses the requirement.
    m.inputs[1] = FPort("b", 8, 0, 1)
    with pytest.raises(FilamentError):
        check_module(m)


def test_const_ref_always_available():
    m = simple_module()
    m.invokes[0].args = [ConstRef(42)]
    check_module(m)

"""Tests for the latency-insensitive substrate."""

import pytest

from repro.generators import GeneratorRegistry
from repro.generators.flopoco import FloPoCoGenerator
from repro.lilac.elaborate import Elaborator
from repro.lilac.stdlib import stdlib_program
from repro.li import LIDriver, credit_counter, spacing_guard, up_counter, wrap_latency_sensitive
from repro.rtl import Module, Simulator


def make_shift_elab(depth=3, width=8):
    program = stdlib_program()
    registry = GeneratorRegistry().register(FloPoCoGenerator())
    return Elaborator(program, registry).elaborate(
        "Shift", {"#W": width, "#N": depth}
    )


def test_credit_counter_flow():
    m = Module("cc")
    take = m.add_input("take", 1)
    give = m.add_input("give", 1)
    ok = m.add_output("ok", 1)
    _state, has_credit = credit_counter(m, 2, take, give)
    m.add_cell("slice", {"a": has_credit, "out": ok}, {"lsb": 0})
    sim = Simulator(m)
    assert sim.step({"take": 1, "give": 0})["ok"] == 1
    assert sim.step({"take": 1, "give": 0})["ok"] == 1
    # Two credits spent.
    assert sim.step({"take": 0, "give": 0})["ok"] == 0
    assert sim.step({"take": 0, "give": 1})["ok"] == 0
    assert sim.step({"take": 0, "give": 0})["ok"] == 1


def test_credit_counter_simultaneous():
    m = Module("cc2")
    take = m.add_input("take", 1)
    give = m.add_input("give", 1)
    ok = m.add_output("ok", 1)
    _state, has_credit = credit_counter(m, 1, take, give)
    m.add_cell("slice", {"a": has_credit, "out": ok}, {"lsb": 0})
    sim = Simulator(m)
    # take+give together leave the count unchanged.
    for _ in range(4):
        assert sim.step({"take": 1, "give": 1})["ok"] == 1


def test_spacing_guard():
    m = Module("sg")
    issue = m.add_input("issue", 1)
    ready = m.add_output("ready", 1)
    guard = spacing_guard(m, 3, issue)
    m.add_cell("slice", {"a": guard, "out": ready}, {"lsb": 0})
    sim = Simulator(m)
    assert sim.step({"issue": 1})["ready"] == 1
    assert sim.step({"issue": 0})["ready"] == 0
    assert sim.step({"issue": 0})["ready"] == 0
    assert sim.step({"issue": 0})["ready"] == 1


def test_up_counter():
    m = Module("uc")
    en = m.add_input("en", 1)
    rst = m.add_input("rst", 1)
    done = m.add_output("done", 1)
    _value, at_limit = up_counter(m, 3, en, rst)
    m.add_cell("slice", {"a": at_limit, "out": done}, {"lsb": 0})
    sim = Simulator(m)
    assert sim.step({"en": 1, "rst": 0})["done"] == 0
    assert sim.step({"en": 1, "rst": 0})["done"] == 0
    assert sim.step({"en": 1, "rst": 0})["done"] == 0
    assert sim.step({"en": 0, "rst": 0})["done"] == 1
    assert sim.step({"en": 0, "rst": 1})["done"] == 1
    assert sim.step({"en": 0, "rst": 0})["done"] == 0


def test_wrap_shift_register():
    wrapped = wrap_latency_sensitive(make_shift_elab())
    driver = LIDriver(wrapped)
    results = driver.run([{"input": v} for v in [10, 20, 30]])
    assert [r["out"] for r in results] == [10, 20, 30]


def test_wrap_handles_backpressure():
    wrapped = wrap_latency_sensitive(make_shift_elab(), fifo_depth=2)
    driver = LIDriver(wrapped)
    values = list(range(1, 9))
    results = driver.run(
        [{"input": v} for v in values], backpressure_every=3
    )
    assert [r["out"] for r in results] == values


def test_wrap_respects_initiation_interval():
    """An II>1 child: the wrapper's ready must pace issues."""
    program = stdlib_program("""
    comp SlowPipe[#W]<G:3>(a: [G, G+1] #W) -> (o: [G+2, G+3] #W) {
      r := new Reg[#W]<G>(a);
      r2 := new Reg[#W]<G+1>(r.out);
      o = r2.out;
    }
    """)
    registry = GeneratorRegistry().register(FloPoCoGenerator())
    elab = Elaborator(program, registry).elaborate("SlowPipe", {"#W": 8})
    assert elab.delay == 3
    wrapped = wrap_latency_sensitive(elab)
    driver = LIDriver(wrapped)
    values = [5, 6, 7, 8]
    results = driver.run([{"a": v} for v in values])
    assert [r["o"] for r in results] == values
    # Issues are at least II cycles apart: 4 transactions need >= 9 cycles.
    assert driver.cycles >= 9


def test_wrapped_module_adds_li_overhead():
    """The wrapper's FIFO + valid chain show up as extra area (the
    fundamental cost the paper quantifies)."""
    from repro.synth import synthesize

    elab = make_shift_elab(depth=4, width=16)
    bare = synthesize(elab.module)
    wrapped = synthesize(wrap_latency_sensitive(elab).module)
    assert wrapped.registers > bare.registers
    assert wrapped.luts > bare.luts

"""Tests for parameter expressions: construction, evaluation, encoding."""

import pytest
from hypothesis import given, strategies as st

from repro import smt
from repro.params import (
    CAnd,
    CCmp,
    CNot,
    COr,
    P,
    ParamError,
    PAccess,
    PBin,
    PInstOut,
    PInt,
    PIte,
    PUn,
    PVar,
    access,
    encode,
    encode_constraint,
    evaluate,
    evaluate_constraint,
    free_params,
    inst_out,
    instance_outs,
    ite,
    pretty,
    substitute_params,
)


def test_wrap_and_sugar():
    expr = P("#W") + 1
    assert isinstance(expr, PBin)
    assert expr.op == "+"
    assert expr.lhs == PVar("#W")
    assert expr.rhs == PInt(1)


def test_comparison_builds_constraints():
    c = P("#A") <= P("#B")
    assert isinstance(c, CCmp)
    assert c.op == "<="


def test_evaluate_arithmetic():
    env = {"#W": 8, "#N": 3}
    assert evaluate(P("#W") + P("#N"), env) == 11
    assert evaluate(P("#W") - P("#N"), env) == 5
    assert evaluate(P("#W") * P("#N"), env) == 24
    assert evaluate(P("#W") // P("#N"), env) == 2
    assert evaluate(P("#W") % P("#N"), env) == 2


def test_evaluate_log_exp():
    assert evaluate(PUn("log2", PInt(8)), {}) == 3
    assert evaluate(PUn("exp2", PInt(5)), {}) == 32
    assert evaluate(PUn("log2", PInt(9)), {}) == 3  # floor semantics


def test_evaluate_unbound_raises():
    with pytest.raises(ParamError):
        evaluate(P("#missing"), {})


def test_evaluate_div_zero_raises():
    with pytest.raises(ParamError):
        evaluate(P("#x") // 0, {"#x": 1})


def test_evaluate_ite():
    expr = ite(P("#A") > P("#B"), P("#A"), P("#B"))
    assert evaluate(expr, {"#A": 5, "#B": 3}) == 5
    assert evaluate(expr, {"#A": 2, "#B": 3}) == 3


def test_evaluate_constraint_ops():
    env = {"#A": 2, "#B": 3}
    assert evaluate_constraint(P("#A") < P("#B"), env)
    assert not evaluate_constraint(P("#A").eq(P("#B")), env)
    assert evaluate_constraint(P("#A").ne(P("#B")), env)
    assert evaluate_constraint(
        CAnd(P("#A") >= 2, P("#B") <= 3), env
    )
    assert evaluate_constraint(COr(P("#A") > 10, P("#B").eq(3)), env)
    assert evaluate_constraint(CNot(P("#A") > 10), env)


def test_access_evaluation_uses_callback():
    expr = access("Max", [P("#A"), P("#B")], "#Out")
    calls = []

    def access_fn(node, env):
        calls.append(node)
        return max(evaluate(a, env) for a in node.args)

    assert evaluate(expr, {"#A": 4, "#B": 9}, access_fn=access_fn) == 9
    assert calls[0].comp == "Max"


def test_inst_out_evaluation_uses_callback():
    expr = inst_out("Add", "#L") + 1
    assert evaluate(expr, {}, inst_out_fn=lambda node: 4) == 5


def test_free_params():
    expr = (P("#A") + P("#B")) * P("#A")
    assert free_params(expr) == {"#A", "#B"}
    constraint = CAnd(P("#X") > 0, P("#Y").eq(P("#X")))
    assert free_params(constraint) == {"#X", "#Y"}


def test_instance_outs_collection():
    expr = inst_out("Add", "#L") + inst_out("Mul", "#L")
    outs = instance_outs(expr)
    assert {(o.instance, o.out) for o in outs} == {("Add", "#L"), ("Mul", "#L")}


def test_substitute_params():
    expr = P("#N") + P("#k")
    out = substitute_params(expr, {"#k": PInt(3)})
    assert evaluate(out, {"#N": 2}) == 5


def test_pretty():
    assert pretty(P("#W") + 1) == "(#W + 1)"
    assert pretty(access("Max", [P("#A")], "#O")) == "Max[#A]::#O"
    assert pretty(inst_out("Add", "#L")) == "Add::#L"


def test_encode_to_smt():
    term = encode(P("#W") + 2, var_fn=smt.Int)
    assert term == smt.Plus(smt.Int("#W"), smt.IntVal(2))


def test_encode_constraint_to_smt():
    term = encode_constraint(P("#W") >= 1, var_fn=smt.Int)
    result = smt.check_sat(term)
    assert result.is_sat
    assert result.model["#W"] >= 1


def test_encode_access_requires_callback():
    with pytest.raises(ParamError):
        encode(access("Max", [PInt(1)], "#O"), var_fn=smt.Int)


def test_encode_instout_via_callback():
    term = encode(
        inst_out("Add", "#L"),
        var_fn=smt.Int,
        inst_out_fn=lambda node: smt.App("FPAdd.L", smt.Int("#W")),
    )
    assert term.op == "app"


def test_encode_log2_as_uf():
    term = encode(PUn("log2", P("#N")), var_fn=smt.Int)
    assert term == smt.App("log2", smt.Int("#N"))


@given(
    a=st.integers(0, 100),
    b=st.integers(1, 100),
    c=st.integers(0, 50),
)
def test_eval_encode_agree(a, b, c):
    """Concrete evaluation and SMT encoding agree on ground expressions.

    Values are substituted as constants *before* encoding so div/mod see
    constant divisors (the exact fragment; symbolic divisors go through the
    conservative @mul abstraction by design).
    """
    expr = (P("#a") + P("#b")) * 2 - P("#c") + P("#a") % P("#b")
    env = {"#a": a, "#b": b, "#c": c}
    concrete = evaluate(expr, env)
    ground = substitute_params(expr, {k: PInt(v) for k, v in env.items()})
    goal = encode(ground, var_fn=smt.Int)
    assert smt.prove(smt.Eq(goal, concrete)).is_unsat

"""EvalGrid: parallel fan-out with worker-count-independent results."""

import threading

import pytest

from repro.designs.fpu import FPU_LA_SOURCE
from repro.driver import CompileSession, EvalGrid
from repro.generators.flopoco import FloPoCoGenerator

FREQUENCIES = (100, 150, 250, 400, 100, 400)


def _latency(session, frequency):
    artifact = session.elaborate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, [FloPoCoGenerator(frequency)]
    )
    return artifact.value.out_params["#L"]


def test_results_keep_point_order():
    grid = EvalGrid(CompileSession(), max_workers=3)
    assert grid.map(lambda s, x: x * 2, [3, 1, 2]) == [6, 2, 4]


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_results_independent_of_worker_count(workers):
    baseline = EvalGrid(CompileSession(), max_workers=1).map(
        _latency, FREQUENCIES
    )
    grid = EvalGrid(CompileSession(), max_workers=workers)
    assert grid.map(_latency, FREQUENCIES) == baseline


def test_duplicate_points_elaborate_once():
    session = CompileSession()
    grid = EvalGrid(session, max_workers=4)
    results = grid.map(_latency, (400,) * 8)
    assert results == [4] * 8
    # single-flight: the seven waiters are hits on the one computation.
    assert session.stats.miss_count("elaborate") == 1
    assert session.stats.hit_count("elaborate") == 7


def test_grid_runs_points_concurrently():
    """With enough workers every point is in flight at once."""
    barrier = threading.Barrier(4, timeout=10)

    def rendezvous(session, point):
        barrier.wait()  # deadlocks (and times out) if run sequentially
        return point

    grid = EvalGrid(CompileSession(), max_workers=4)
    assert grid.map(rendezvous, [1, 2, 3, 4]) == [1, 2, 3, 4]


def test_worker_exception_propagates():
    def boom(session, point):
        if point == 2:
            raise RuntimeError("grid point failed")
        return point

    grid = EvalGrid(CompileSession(), max_workers=2)
    with pytest.raises(RuntimeError, match="grid point failed"):
        grid.map(boom, [1, 2, 3])


def test_figure13_rows_match_across_worker_counts():
    """A real evalx grid: values identical no matter the pool size."""
    from repro.evalx import figure13

    sequential = figure13.build_rows(
        parallelisms=(4, 16), session=CompileSession(), workers=1
    )
    parallel = figure13.build_rows(
        parallelisms=(4, 16), session=CompileSession(), workers=4
    )
    for a, b in zip(sequential, parallel):
        assert a.parallelism == b.parallelism
        assert a.lilac.luts == b.lilac.luts
        assert a.lilac.registers == b.lilac.registers
        assert a.rv.luts == b.rv.luts
        assert a.rv.registers == b.rv.registers
        assert a.lilac.fmax_mhz == pytest.approx(b.lilac.fmax_mhz)
        assert a.rv.fmax_mhz == pytest.approx(b.rv.fmax_mhz)

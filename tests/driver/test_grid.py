"""EvalGrid: parallel fan-out with worker-count-independent results."""

import threading
import time

import pytest

from repro.designs.fpu import FPU_LA_SOURCE
from repro.driver import CompileSession, EvalGrid, RunLedger
from repro.generators.flopoco import FloPoCoGenerator

FREQUENCIES = (100, 150, 250, 400, 100, 400)


def _latency(session, frequency):
    artifact = session.elaborate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, [FloPoCoGenerator(frequency)]
    )
    return artifact.value.out_params["#L"]


def test_results_keep_point_order():
    grid = EvalGrid(CompileSession(), max_workers=3)
    assert grid.map(lambda s, x: x * 2, [3, 1, 2]) == [6, 2, 4]


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_results_independent_of_worker_count(workers):
    baseline = EvalGrid(CompileSession(), max_workers=1).map(
        _latency, FREQUENCIES
    )
    grid = EvalGrid(CompileSession(), max_workers=workers)
    assert grid.map(_latency, FREQUENCIES) == baseline


def test_duplicate_points_elaborate_once():
    session = CompileSession()
    grid = EvalGrid(session, max_workers=4)
    results = grid.map(_latency, (400,) * 8)
    assert results == [4] * 8
    # single-flight: the seven waiters are hits on the one computation.
    assert session.stats.miss_count("elaborate") == 1
    assert session.stats.hit_count("elaborate") == 7


def test_grid_runs_points_concurrently():
    """With enough workers every point is in flight at once."""
    barrier = threading.Barrier(4, timeout=10)

    def rendezvous(session, point):
        barrier.wait()  # deadlocks (and times out) if run sequentially
        return point

    grid = EvalGrid(CompileSession(), max_workers=4)
    assert grid.map(rendezvous, [1, 2, 3, 4]) == [1, 2, 3, 4]


def test_worker_exception_propagates():
    def boom(session, point):
        if point == 2:
            raise RuntimeError("grid point failed")
        return point

    grid = EvalGrid(CompileSession(), max_workers=2)
    with pytest.raises(RuntimeError, match="grid point failed"):
        grid.map(boom, [1, 2, 3])


def test_failing_worker_cancels_outstanding_points():
    """A raise prunes the queue instead of draining the whole grid.

    Two workers (the pool path — one worker short-circuits to a plain
    loop) and an immediately-failing first point: the failure cancels
    the ~40 queued points, so only the couple already in flight run.
    The old drain-then-raise behavior executed every one of them.
    """
    executed = []

    def worker(session, point):
        if point == "boom":
            raise RuntimeError("first point fails")
        executed.append(point)
        time.sleep(0.005)
        return point

    points = ["boom"] + list(range(40))
    grid = EvalGrid(CompileSession(), max_workers=2)
    with pytest.raises(RuntimeError, match="first point fails"):
        grid.map(worker, points)
    assert len(executed) < 10, executed


def test_grid_rejects_unknown_executor():
    with pytest.raises(ValueError, match="unknown executor"):
        EvalGrid(CompileSession(), executor="fiber")


# -- process executor ---------------------------------------------------


def _simulate_trace(session, name):
    """Module-level (hence picklable) worker: a compiled simulate."""
    from repro.designs.catalog import design_point

    source, component, generators, params = design_point(name)
    return session.simulate(
        source, component, params, generators,
        cycles=24, seed=0xA5, opt_level=2, backend="compiled",
    ).value.outputs


def test_process_grid_matches_thread_grid(tmp_path):
    """Workers rebuilt from session.spec() in separate processes must
    produce bit-identical results, rendezvousing via the disk cache."""
    cache = str(tmp_path / "grid-cache")
    points = ("fpu", "risc", "blas")
    thread = EvalGrid(
        CompileSession(opt_level=2, cache_dir=cache),
        max_workers=3,
        executor="thread",
    ).map(_simulate_trace, points)
    process = EvalGrid(
        CompileSession(opt_level=2, cache_dir=cache),
        max_workers=3,
        executor="process",
    ).map(_simulate_trace, points)
    assert process == thread


def test_process_workers_rendezvous_through_the_disk_cache(tmp_path):
    cache = str(tmp_path / "grid-cache")
    EvalGrid(
        CompileSession(opt_level=2, cache_dir=cache),
        max_workers=2,
        executor="process",
    ).map(_simulate_trace, ("fpu", "risc"))
    # The children persisted their artifacts: a warm in-process session
    # over the same directory is served without computing anything.
    from repro.designs.catalog import design_point

    warm = CompileSession(opt_level=2, cache_dir=cache)
    source, component, generators, params = design_point("fpu")
    artifact = warm.simulate(
        source, component, params, generators,
        cycles=24, seed=0xA5, opt_level=2, backend="compiled",
    )
    assert artifact.from_cache
    assert warm.stats.counter("disk.hit") >= 1


def test_auto_executor_falls_back_to_thread_for_closures(tmp_path):
    cached = CompileSession(cache_dir=str(tmp_path / "c"))
    grid = EvalGrid(cached, max_workers=4, executor="auto")
    # Closures don't pickle -> thread; module-level fns -> process.
    assert grid._resolve_executor(lambda s, p: p, 4, 4) == "thread"
    assert grid._resolve_executor(_simulate_trace, 4, 4) == "process"
    assert grid._resolve_executor(_simulate_trace, 1, 1) == "thread"
    # No disk cache to rendezvous through -> thread.
    uncached = EvalGrid(CompileSession(), max_workers=4, executor="auto")
    assert uncached._resolve_executor(_simulate_trace, 4, 4) == "thread"


# -- fault tolerance: retries, timeouts, the degradation ladder ---------


def test_injected_crash_is_retried_in_thread_mode():
    session = CompileSession(fault_plan="worker.crash:2@1")
    grid = EvalGrid(session, max_workers=2)
    assert grid.map(lambda s, p: p * 10, [1, 2, 3, 4]) == [10, 20, 30, 40]
    assert session.stats.counter("retry.worker") == 2
    assert session.stats.counter("fault.injected.worker.crash") == 2
    assert session.stats.counter("degrade.executor") == 0


def test_injected_crash_is_retried_serially():
    session = CompileSession(fault_plan="worker.crash")
    grid = EvalGrid(session, max_workers=1)
    assert grid.map(lambda s, p: p + 1, [1, 2]) == [2, 3]
    assert session.stats.counter("retry.worker") == 1


def test_crash_retries_exhaust_and_propagate():
    from repro.driver.faults import InjectedCrash

    session = CompileSession(fault_plan="worker.crash:9")
    grid = EvalGrid(
        session, max_workers=2, point_retries=2, retry_backoff=0.001
    )
    with pytest.raises(InjectedCrash):
        grid.map(lambda s, p: p, [1, 2, 3])


def test_point_timeout_retries_then_succeeds():
    attempts = []

    def slow_once(session, point):
        attempts.append(point)
        if len(attempts) == 1:
            time.sleep(0.5)
        return point

    grid = EvalGrid(
        CompileSession(), max_workers=2,
        point_timeout=0.2, point_retries=2, retry_backoff=0.001,
    )
    assert grid.map(slow_once, [1, 2]) == [1, 2]


def test_spawn_failure_degrades_process_to_thread(tmp_path):
    session = CompileSession(
        cache_dir=str(tmp_path), fault_plan="worker.spawn"
    )
    grid = EvalGrid(session, max_workers=2, executor="process")
    with pytest.warns(RuntimeWarning, match="degraded process -> thread"):
        assert grid.map(_double, [1, 2, 3]) == [2, 4, 6]
    assert session.stats.counter("degrade.executor") == 1
    assert session.stats.counter("fault.injected.worker.spawn") == 1


def test_worker_process_death_degrades_to_thread(tmp_path):
    """A real worker death (os._exit via the injected crash) surfaces
    as BrokenProcessPool; the grid re-runs the sweep on threads with
    identical results."""
    session = CompileSession(
        cache_dir=str(tmp_path), fault_plan="worker.crash"
    )
    grid = EvalGrid(session, max_workers=2, executor="process")
    with pytest.warns(RuntimeWarning, match="degraded process -> thread"):
        assert grid.map(_double, [1, 2, 3]) == [2, 4, 6]
    assert session.stats.counter("degrade.executor") == 1


def _double(session, point):
    return point * 2


def test_figure13_rows_match_across_worker_counts():
    """A real evalx grid: values identical no matter the pool size."""
    from repro.evalx import figure13

    sequential = figure13.build_rows(
        parallelisms=(4, 16), session=CompileSession(), workers=1
    )
    parallel = figure13.build_rows(
        parallelisms=(4, 16), session=CompileSession(), workers=4
    )
    for a, b in zip(sequential, parallel):
        assert a.parallelism == b.parallelism
        assert a.lilac.luts == b.lilac.luts
        assert a.lilac.registers == b.lilac.registers
        assert a.rv.luts == b.rv.luts
        assert a.rv.registers == b.rv.registers
        assert a.lilac.fmax_mhz == pytest.approx(b.lilac.fmax_mhz)
        assert a.rv.fmax_mhz == pytest.approx(b.rv.fmax_mhz)


# -- checkpointing: the run ledger --------------------------------------


def _triple(session, point):
    return point * 3


def test_ledgered_grid_resumes_without_recomputing(tmp_path):
    cache = str(tmp_path / "cache")
    cold = CompileSession(cache_dir=cache)
    ledger = RunLedger(cache, "run-a", cold.stats)
    assert EvalGrid(cold, max_workers=1, ledger=ledger).map(
        _triple, [1, 2, 3]
    ) == [3, 6, 9]
    assert cold.stats.counter("checkpoint.store") == 3
    ledger.close()

    warm = CompileSession(cache_dir=cache)
    resumed = RunLedger(cache, "run-a", warm.stats, resume=True)
    calls = []

    def tracked(session, point):
        calls.append(point)
        return _triple(session, point)

    tracked.__module__ = _triple.__module__
    tracked.__qualname__ = _triple.__qualname__  # same point identity
    assert EvalGrid(warm, max_workers=1, ledger=resumed).map(
        tracked, [1, 2, 3]
    ) == [3, 6, 9]
    assert calls == []  # every point served from the ledger
    assert warm.stats.counter("checkpoint.hit") == 3
    assert resumed.results_digest == ledger.results_digest
    resumed.close()


def test_grid_picks_up_the_session_attached_ledger(tmp_path):
    session = CompileSession(cache_dir=str(tmp_path))
    session.ledger = RunLedger(str(tmp_path), "run-s", session.stats)
    assert EvalGrid(session, max_workers=1).map(_triple, [1, 2]) == [3, 6]
    assert session.stats.counter("checkpoint.store") == 2
    session.ledger.close()


def test_keyboard_interrupt_flushes_the_ledger_and_propagates(tmp_path):
    """Satellite: Ctrl-C exits promptly — no retry, no next point — and
    what already completed is on disk for ``--resume``."""
    session = CompileSession(cache_dir=str(tmp_path))
    ledger = RunLedger(str(tmp_path), "run-ki", session.stats)

    def interrupt(sess, point):
        if point == 2:
            raise KeyboardInterrupt()
        return point

    grid = EvalGrid(session, max_workers=1, ledger=ledger, point_retries=5)
    with pytest.raises(KeyboardInterrupt):
        grid.map(interrupt, [1, 2, 3])
    assert session.stats.counter("retry.worker") == 0
    assert session.stats.counter("checkpoint.store") == 1
    ledger.close()
    resumed = RunLedger(str(tmp_path), "run-ki", resume=True)
    assert len(resumed) == 1  # point 1 survived the interrupt
    resumed.close()


# -- the hung-worker watchdog -------------------------------------------


def _hang_in_worker(session, point):
    """Hangs only inside a pool worker *process* — the thread rung the
    ladder degrades to (and any requeue) completes instantly."""
    import multiprocessing

    if multiprocessing.current_process().name != "MainProcess":
        time.sleep(60)
    return point * 2


def test_watchdog_kills_hung_workers_and_requeues(tmp_path):
    cache = str(tmp_path / "cache")
    session = CompileSession(cache_dir=cache)
    ledger = RunLedger(cache, "run-w", session.stats)
    grid = EvalGrid(
        session, max_workers=2, executor="process",
        watchdog_timeout=0.3, ledger=ledger,
    )
    with pytest.warns(RuntimeWarning, match="degraded process -> thread"):
        assert grid.map(_hang_in_worker, [1, 2, 3]) == [2, 4, 6]
    assert session.stats.counter("watchdog.kill") >= 1
    assert session.stats.counter("watchdog.requeue") >= 1
    assert session.stats.counter("degrade.executor") >= 1
    ledger.close()

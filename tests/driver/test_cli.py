"""The ``python -m repro`` command-line front door."""

import json

import pytest

from repro.driver.cli import main


def test_compile_preset(capsys):
    assert main(["compile", "--design", "fpu", "--freq", "100"]) == 0
    out = capsys.readouterr().out
    assert "FPU" in out
    assert "synthesis:" in out
    assert "stage timings" in out


def test_compile_param_override(capsys):
    assert main(["compile", "--design", "blas", "-p", "#ML=4"]) == 0
    out = capsys.readouterr().out
    assert "latency=7" in out  # Dot latency = #ML + 3


def test_compile_emits_verilog_to_file(tmp_path, capsys):
    path = tmp_path / "risc.v"
    assert main(["compile", "--design", "risc", "--verilog", str(path)]) == 0
    assert "module Risc3" in path.read_text()


def test_compile_source_file(tmp_path, capsys):
    source = tmp_path / "double.lilac"
    source.write_text(
        """
comp Double[#W]<G:1>(x: [G, G+1] #W) -> (y: [G+1, G+2] #W) {
  s := new Add[#W]<G>(x, x);
  r := new Reg[#W]<G>(s.out);
  y = r.out;
}
"""
    )
    assert main(
        ["compile", "--source", str(source), "--component", "Double",
         "-p", "#W=8"]
    ) == 0
    out = capsys.readouterr().out
    assert "latency=1" in out


def test_compile_source_requires_component(tmp_path):
    source = tmp_path / "x.lilac"
    source.write_text("comp T<G:1>() -> () {}")
    with pytest.raises(SystemExit):
        main(["compile", "--source", str(source)])


def test_compile_check_flag_rejects_bad_designs(tmp_path, capsys):
    source = tmp_path / "bad.lilac"
    source.write_text(
        """
comp Bad[#W]<G:1>(x: [G, G+1] #W) -> (y: [G, G+1] #W) {
  s := new Add[#W]<G>(x, x);
  r := new Reg[#W]<G>(s.out);
  y = r.out;
}
"""
    )
    assert main(
        ["compile", "--source", str(source), "--component", "Bad",
         "-p", "#W=8", "--check"]
    ) == 1
    assert "FAILED" in capsys.readouterr().out


def test_table_2(capsys):
    assert main(["table", "2"]) == 0
    out = capsys.readouterr().out
    assert "Latency Abstract (LA)" in out
    assert "cache statistics" in out


def test_table_3(capsys):
    assert main(["table", "3"]) == 0
    assert "Aetherling" in capsys.readouterr().out


def test_figure_13_with_workers(capsys):
    assert main(["figure", "13", "--workers", "2"]) == 0
    assert "Lilac / RV" in capsys.readouterr().out


def test_compile_opt_level_reports_pass_stats(capsys):
    assert main(["compile", "--design", "fpu", "-O2"]) == 0
    out = capsys.readouterr().out
    assert "optimize (-O2):" in out
    assert "pass statistics:" in out
    assert "common-cell-sharing" in out


def test_stats_json_is_machine_readable(capsys):
    assert main(["compile", "--design", "fpu", "-O2", "--stats", "json"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out.splitlines()[-1])
    assert payload["opt_level"] == 2
    assert payload["cache"]["misses"]["optimize"] >= 1
    assert payload["passes"]["dead-cell-elim"]["runs"] >= 1
    assert payload["passes"]["delay-coalesce"]["cells_removed"] >= 0


def test_artifact_stats_json(capsys):
    assert main(["table", "3", "--stats", "json"]) == 0
    payload = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert "cache" in payload and "passes" in payload


def test_ablation_command(capsys):
    assert main(["ablation", "--workers", "4"]) == 0
    out = capsys.readouterr().out
    assert "Sim speedup" in out
    assert "NO" not in out  # every design differentially equivalent
    assert "pass statistics" in out


def test_unknown_command_is_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_sim_lanes_flag_reaches_the_session(capsys):
    assert main([
        "table", "3", "--sim-lanes", "4", "--sim-backend", "compiled",
        "--stats", "json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert payload["sim_lanes"] == 4
    assert payload["sim_backend"] == "compiled"


def test_ablation_with_lanes_and_process_executor(capsys):
    assert main([
        "ablation", "--workers", "2", "--executor", "process",
        "--sim-lanes", "2", "--sim-backend", "compiled",
    ]) == 0
    out = capsys.readouterr().out
    assert "Lanes" in out
    assert "NO" not in out  # batched lanes bit-identical everywhere


def test_executor_flag_rejects_unknown_pool():
    with pytest.raises(SystemExit):
        main(["ablation", "--executor", "fiber"])


def test_profile_command_renders_attribution(capsys):
    assert main([
        "profile", "--designs", "fpu", "fft", "--cycles", "32",
        "--workers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "run profile:" in out
    assert "compute" in out and "waiting" in out
    assert "fpu" in out and "fft" in out


def test_profile_command_json_payload(capsys):
    assert main([
        "profile", "--designs", "fpu", "--cycles", "32", "-O3", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert payload["wall_seconds"] > 0.0
    assert "compute" in payload and "waits" in payload
    assert [row["design"] for row in payload["designs"]] == ["fpu"]
    assert payload["designs"][0]["cells"] > 0


def test_stats_json_surfaces_tuner_and_profile_counters(capsys):
    assert main(["compile", "--design", "fpu", "-O3", "--stats", "json"]) == 0
    payload = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert payload["opt_level"] == 3
    # The -O3 compile collected (or loaded) an activity profile...
    profile = payload["profile"]
    assert profile["auto"] is True
    assert profile["collected"] + profile["disk_hits"] >= 1
    # ...and the tuner section is always present, even when the static
    # backend choice never consulted it.
    assert set(payload["tuner"]) >= {"disk_hits", "resolve_seconds",
                                     "chosen"}
    # Stage wall clocks flow through the cache stats timers.
    assert any(
        name.startswith("compute.")
        for name in payload["cache"]["timers"]
    )


def test_chaos_command_sweeps_and_reports(capsys):
    assert main([
        "chaos", "--designs", "fpu", "--cycles", "16", "--count", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "chaos sweep" in out
    assert "disk@seed=0" in out
    assert "all runs bit-identical, all faults accounted" in out


def test_chaos_json_report(capsys):
    assert main([
        "chaos", "--designs", "fpu", "--cycles", "16", "--count", "1",
        "--groups", "disk", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert payload["ok"] is True
    assert [run["label"] for run in payload["runs"]] == ["disk@seed=0"]
    run = payload["runs"][0]
    assert run["identical"] is True
    assert run["fired"] == run["injected"]


def test_stats_json_carries_the_fault_section(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "disk.read")
    assert main(["compile", "--design", "fpu", "--stats", "json"]) == 0
    payload = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert payload["faults"]["plan"] == "disk.read"
    assert payload["faults"]["injected"] == {"disk.read": 1}
    assert payload["faults"]["retries"] == {"disk.read": 1}


def test_sweep_emits_digests_and_checkpoints(tmp_path, capsys):
    cache = str(tmp_path / "store")
    assert main([
        "sweep", "--designs", "fpu", "--cycles", "8", "-O1",
        "--cache-dir", cache, "--run-id", "run-a", "--stats", "json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert set(payload["digests"]) == {"fpu"}
    assert "trace" in payload["digests"]["fpu"]
    assert payload["checkpoint"]["run_id"] == "run-a"
    assert payload["checkpoint"]["stores"] == 1
    # The journal bracketed every publish.
    assert payload["cache"]["counters"]["journal.begin"] >= 1

    # A --resume serves the point from the ledger, digests unchanged.
    assert main([
        "sweep", "--designs", "fpu", "--cycles", "8", "-O1",
        "--cache-dir", cache, "--run-id", "run-a", "--resume",
        "--stats", "json",
    ]) == 0
    resumed = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert resumed["digests"] == payload["digests"]
    assert resumed["checkpoint"]["hits"] == 1
    assert resumed["checkpoint"]["stores"] == 0


def test_rerunning_a_run_id_without_resume_is_refused(tmp_path, capsys):
    cache = str(tmp_path / "store")
    args = [
        "sweep", "--designs", "fpu", "--cycles", "8", "-O1",
        "--cache-dir", cache, "--run-id", "run-a",
    ]
    assert main(args) == 0
    with pytest.raises(SystemExit, match="pass --resume"):
        main(args)


def test_resume_requires_a_run_id():
    with pytest.raises(SystemExit, match="--resume requires --run-id"):
        main(["sweep", "--designs", "fpu", "--resume"])


def test_fsck_command_reports_a_consistent_store(tmp_path, capsys):
    cache = str(tmp_path / "store")
    assert main([
        "sweep", "--designs", "fpu", "--cycles", "8", "-O1",
        "--cache-dir", cache,
    ]) == 0
    capsys.readouterr()
    assert main(["fsck", "--cache-dir", cache]) == 0
    assert "store is consistent" in capsys.readouterr().out

    assert main(["fsck", "--cache-dir", cache, "--stats", "json"]) == 0
    payload = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert payload["consistent"] is True
    assert payload["exit_code"] == 0
    assert payload["scanned"] >= 1


def test_fsck_flags_and_repairs_damage(tmp_path, capsys):
    import os

    cache = str(tmp_path / "store")
    assert main([
        "sweep", "--designs", "fpu", "--cycles", "8", "-O1",
        "--cache-dir", cache,
    ]) == 0
    capsys.readouterr()
    # Bit-rot one entry behind the store's back.
    victim = None
    for directory, _, files in os.walk(cache):
        for name in files:
            if name.endswith(".pkl") and "runs" not in directory:
                victim = f"{directory}/{name}"
                break
        if victim:
            break
    with open(victim, "ab") as handle:
        handle.write(b"bitrot")
    assert main(["fsck", "--cache-dir", cache]) == 1
    assert "corrupt_entry" in capsys.readouterr().out
    assert main(["fsck", "--cache-dir", cache, "--repair"]) == 0
    assert "quarantined" in capsys.readouterr().out
    assert main(["fsck", "--cache-dir", cache]) == 0


def test_chaos_sites_flag_requires_crash_mode():
    with pytest.raises(SystemExit, match="--sites only applies"):
        main(["chaos", "--sites", "proc.kill.write"])

"""The whole-run wall-time attributor behind ``repro profile``.

:class:`RunProfiler` snapshots a session's timer counters around a
block of work and splits the elapsed wall clock into ``compute.*``
(stage recomputation) and ``wait.*`` (disk I/O, cache-lock contention,
pool queueing) sites.  The report is a *site* view, not a partition —
nested and parallel sites may overlap — which the rendering states
outright and the arithmetic here pins down.
"""

from repro.driver import CompileSession, EvalGrid, RunProfiler, RunReport
from repro.driver.profiler import simulate_catalog_point

SOURCE = """
comp Double[#W]<G:1>(x: [G, G+1] #W) -> (y: [G+1, G+2] #W) {
  s := new Add[#W]<G>(x, x);
  r := new Reg[#W]<G>(s.out);
  y = r.out;
}
"""


def test_profiler_attributes_cold_compute(tmp_path):
    session = CompileSession(cache_dir=str(tmp_path))
    with RunProfiler(session) as profiler:
        session.simulate(SOURCE, "Double", {"#W": 8}, cycles=64)
    report = profiler.report()
    assert report.wall_seconds > 0.0
    assert report.compute_seconds > 0.0
    assert "simulate" in report.compute
    # The disk-backed session at least wrote artifacts out.
    assert "disk_write" in report.waits
    payload = report.to_dict()
    assert payload["wall_seconds"] == report.wall_seconds
    assert payload["compute"]["simulate"] > 0.0
    text = report.render()
    assert "run profile:" in text
    assert "simulate" in text
    assert "not a partition" in text  # the caveat ships with the data


def test_profiler_baseline_excludes_prior_work(tmp_path):
    session = CompileSession(cache_dir=str(tmp_path))
    session.simulate(SOURCE, "Double", {"#W": 8}, cycles=64)  # outside
    with RunProfiler(session) as profiler:
        session.simulate(SOURCE, "Double", {"#W": 8}, cycles=64)  # hit
    report = profiler.report()
    # The repeat is a pure in-memory cache hit: no compute site moved,
    # even though the session's cumulative timers are non-zero.
    assert report.compute == {}
    assert report.wall_seconds >= report.compute_seconds


def test_unattributed_time_clamps_at_zero():
    # Parallel compute sites can sum past the wall clock; the residual
    # must clamp instead of going negative.
    report = RunReport(
        wall_seconds=1.0,
        compute={"simulate": 1.5, "optimize": 0.5},
        waits={"pool_queue": 0.25},
    )
    assert report.compute_seconds == 2.0
    assert report.wait_seconds == 0.25
    assert report.unattributed_seconds == 0.0
    lean = RunReport(wall_seconds=1.0, compute={"parse": 0.25}, waits={})
    assert abs(lean.unattributed_seconds - 0.75) < 1e-12


def test_grid_worker_reports_pool_queue_waits(tmp_path):
    session = CompileSession(cache_dir=str(tmp_path))
    grid = EvalGrid(session, max_workers=2, executor="thread")
    with RunProfiler(session) as profiler:
        rows = grid.map(
            simulate_catalog_point,
            [("fpu", 32, 0), ("fft", 32, 0)],
        )
    assert [row["design"] for row in rows] == ["fpu", "fft"]
    assert all(row["run_seconds"] >= 0.0 for row in rows)
    assert all(row["cells"] > 0 for row in rows)
    report = profiler.report()
    # Queue waits may round to ~0 when a worker was free immediately —
    # the site only appears in the report when time actually accrued,
    # but whatever is there must be non-negative.
    assert report.waits.get("pool_queue", 0.0) >= 0.0


def test_profiler_reports_fault_recovery_counters(tmp_path):
    """Injected faults and their recoveries show up in the run report
    as counter deltas scoped to the profiled block."""
    session = CompileSession(
        cache_dir=str(tmp_path), fault_plan="disk.read"
    )
    with RunProfiler(session) as profiler:
        session.simulate(SOURCE, "Double", {"#W": 8}, cycles=16)
    report = profiler.report()
    assert report.faults["fault.injected.disk.read"] == 1
    assert report.faults["retry.disk.read"] == 1
    assert report.to_dict()["faults"] == report.faults
    text = report.render()
    assert "faults" in text
    assert "fault.injected.disk.read" in text


def test_profiler_fault_section_is_baseline_relative(tmp_path):
    session = CompileSession(
        cache_dir=str(tmp_path), fault_plan="disk.read"
    )
    session.synthesize(SOURCE, "Double", {"#W": 8})
    with RunProfiler(session) as profiler:
        pass  # the injection happened before the profiled block
    report = profiler.report()
    assert not report.faults
    assert "fault.injected" not in report.render()

"""The fault-injection substrate: plan grammar, determinism, accounting.

The substrate must be boring and exact — every hardened layer trusts
it to fire precisely the scheduled invocations, account every fire,
and stand down completely when uninstalled.
"""

import errno
import os

import pytest

from repro.driver import CacheStats, CompileSession, FaultPlan
from repro.driver.faults import (
    FAULT_SITES,
    FaultPlanError,
    FaultSite,
    InjectedCrash,
    InjectedFault,
    InjectedOSError,
    active_plan,
    inject,
    installed,
    should_fire,
    uninstall,
)


def test_entry_grammar_round_trips():
    for spec in ("disk.read", "disk.write#enospc", "worker.crash:3",
                 "pickle.load:2@5", "disk.write#erofs:2@1"):
        plan = FaultPlan.parse(spec)
        assert plan.spec_string() == spec


def test_plan_parses_multiple_entries_and_sorts_by_site():
    plan = FaultPlan.parse("worker.crash, disk.read:2@1")
    assert plan.sites() == ("disk.read", "worker.crash")
    assert plan.planned("disk.read") == 2
    assert plan.planned("worker.crash") == 1
    assert plan.planned("solver.budget") == 0


@pytest.mark.parametrize("bad", [
    "disk.reed",            # typo'd site
    "disk.read#eio",        # unknown mode
    "disk.read:zero",       # non-integer count
    "disk.read@x",          # non-integer skip
    "disk.read:0",          # count must be >= 1
])
def test_bad_specs_are_rejected(bad):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse(bad)


def test_coverage_window_is_skip_to_skip_plus_count():
    site = FaultSite("disk.read", count=2, skip=3)
    assert [site.covers(i) for i in range(7)] == [
        False, False, False, True, True, False, False
    ]


def test_site_exceptions_match_their_real_failures():
    assert isinstance(FaultSite("disk.read").exception(), InjectedOSError)
    assert FaultSite("disk.write", mode="enospc").exception().errno == \
        errno.ENOSPC
    assert FaultSite("worker.spawn").exception().errno == errno.EAGAIN
    assert isinstance(FaultSite("worker.crash").exception(), InjectedCrash)
    assert isinstance(FaultSite("pickle.load").exception(), InjectedFault)
    assert isinstance(FaultSite("cache.lock").exception(), InjectedFault)


def test_check_counts_invocations_and_fires_deterministically():
    plan = FaultPlan.parse("disk.read:2@1")
    hits = [plan.check("disk.read") is not None for _ in range(5)]
    assert hits == [False, True, True, False, False]
    assert plan.calls["disk.read"] == 5
    assert plan.fired["disk.read"] == 2
    assert plan.summary()["disk.read"] == {
        "planned": 2, "calls": 5, "fired": 2
    }


def test_fires_are_accounted_on_bound_stats():
    stats = CacheStats()
    plan = FaultPlan.parse("pickle.load").bind(stats)
    with installed(plan):
        assert should_fire("pickle.load")
        assert not should_fire("pickle.load")
    assert stats.counter("fault.injected.pickle.load") == 1


def test_inject_raises_the_site_exception():
    with installed(FaultPlan.parse("disk.write#enospc")):
        with pytest.raises(InjectedOSError) as caught:
            inject("disk.write")
        assert caught.value.errno == errno.ENOSPC
    # After the scoped install nothing fires.
    inject("disk.write")


def test_seeded_plans_are_stable_and_seed_sensitive():
    first = FaultPlan.seeded(7, sites=("disk.read", "worker.crash"))
    again = FaultPlan.seeded(7, sites=("disk.read", "worker.crash"))
    other = FaultPlan.seeded(8, sites=FAULT_SITES)
    assert first.spec_string() == again.spec_string()
    assert other.sites() == tuple(sorted(FAULT_SITES))
    skips = {
        spec.skip for site in other._sites.values() for spec in site
    }
    assert skips <= {0, 1, 2, 3}


def test_installed_restores_the_previous_plan():
    outer = FaultPlan.parse("disk.read")
    inner = FaultPlan.parse("disk.write")
    with installed(outer):
        with installed(inner):
            assert active_plan() is inner
        assert active_plan() is outer
    uninstall()
    assert active_plan() is None


def test_session_installs_and_ships_its_plan(tmp_path):
    session = CompileSession(
        cache_dir=str(tmp_path), fault_plan="disk.read:2@1,worker.crash"
    )
    assert active_plan() is session.fault_plan
    assert session.spec()["fault_plan"] == "disk.read:2@1,worker.crash"
    rebuilt = CompileSession.from_spec(session.spec())
    assert rebuilt.fault_plan.spec_string() == "disk.read:2@1,worker.crash"
    # The rebuilt plan starts its own counters (fresh per process).
    assert rebuilt.fault_plan.calls == {}


def test_session_picks_up_the_env_plan(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "cache.lock@2")
    session = CompileSession(cache_dir=str(tmp_path))
    assert session.fault_plan is not None
    assert session.fault_plan.spec_string() == "cache.lock@2"
    monkeypatch.delenv("REPRO_FAULTS")
    assert CompileSession(cache_dir=str(tmp_path)).fault_plan is None


def test_fault_stats_slices_the_counters(tmp_path):
    session = CompileSession(
        cache_dir=str(tmp_path), fault_plan="disk.read"
    )
    session.synthesize(
        "comp T[#W]<G:1>(x: [G, G+1] #W) -> (y: [G+1, G+2] #W) {"
        " r := new Reg[#W]<G>(x); y = r.out; }",
        "T", {"#W": 4},
    )
    stats = session.fault_stats()
    assert stats["plan"] == "disk.read"
    assert stats["injected"] == {"disk.read": 1}
    assert stats["retries"] == {"disk.read": 1}
    assert "faults" in session.stats_dict()


# -- the crash family ----------------------------------------------------


def test_crash_sites_are_fault_sites_with_the_spec_grammar():
    from repro.driver.faults import CRASH_SITES

    assert set(CRASH_SITES) <= set(FAULT_SITES)
    plan = FaultPlan.parse("proc.kill.write@3")
    assert plan.spec_string() == "proc.kill.write@3"
    assert plan.planned("proc.kill.write") == 1


def test_kill_here_rejects_non_crash_sites():
    from repro.driver.faults import kill_here

    with pytest.raises(ValueError, match="not a crash site"):
        kill_here("disk.read")


def test_kill_here_outside_its_window_is_a_no_op():
    """The suite still running after these calls *is* the assertion —
    a bug here SIGKILLs the test process."""
    from repro.driver.faults import kill_here

    kill_here("proc.kill.write")  # no plan installed
    stats = CacheStats()
    plan = FaultPlan.parse("proc.kill.point@5").bind(stats)
    with installed(plan):
        kill_here("proc.kill.point")  # call 0; window opens at skip 5
    assert plan.calls["proc.kill.point"] == 1
    assert plan.fired == {}

"""Tests for the optimize/simulate stages and pass-pipeline cache keys."""

from repro.designs.fpu import FPU_LA_SOURCE
from repro.driver import CompileSession
from repro.generators.flopoco import FloPoCoGenerator


def generators(frequency=400):
    return [FloPoCoGenerator(frequency)]


def test_optimize_stage_shrinks_and_preserves_interface():
    session = CompileSession()
    base = session.optimize(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(), opt_level=0
    ).value
    opt = session.optimize(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(), opt_level=2
    ).value
    assert opt.cells_after < base.cells_after
    assert opt.opt_level == 2 and base.opt_level == 0
    assert sorted(opt.module.ports) == sorted(base.module.ports)
    # -O0 runs no passes; -O2 reports what each pass did.
    assert base.pass_stats == []
    assert sum(s.cells_removed for s in opt.pass_stats) == opt.cells_removed


def test_optimize_stage_is_cached_per_pipeline():
    session = CompileSession()
    first = session.optimize(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(), opt_level=2
    )
    again = session.optimize(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(), opt_level=2
    )
    assert again is first
    assert session.stats.hit_count("optimize") == 1
    # A different pipeline is a different artifact, not a stale hit.
    other = session.optimize(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(), opt_level=1
    )
    assert other is not first
    assert session.stats.miss_count("optimize") == 2


def test_pipeline_change_invalidates_downstream_stages():
    session = CompileSession()
    plain = session.emit_verilog(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(), opt_level=0
    )
    optimized = session.emit_verilog(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(), opt_level=2
    )
    assert plain.key != optimized.key
    assert plain.value != optimized.value  # fewer cells → different text
    report0 = session.synthesize(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(), opt_level=0
    ).value
    report2 = session.synthesize(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(), opt_level=2
    ).value
    assert report2.registers <= report0.registers


def test_session_default_opt_level_applies_to_stages():
    plain = CompileSession()
    tuned = CompileSession(opt_level=2)
    module_a = plain.optimize(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators()
    ).value
    module_b = tuned.optimize(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators()
    ).value
    assert module_b.cells_after < module_a.cells_after


def test_simulate_stage_is_deterministic_and_differential():
    session = CompileSession()
    kwargs = dict(cycles=64, seed=42)
    trace0 = session.simulate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(),
        opt_level=0, **kwargs
    ).value
    trace2 = session.simulate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(),
        opt_level=2, **kwargs
    ).value
    assert len(trace0.outputs) == 64
    # Differential simulation: optimization must not change behaviour.
    assert trace0.outputs == trace2.outputs
    # Same request → cached artifact; different seed → different trace.
    assert session.simulate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(),
        opt_level=0, **kwargs
    ).value is trace0
    reseeded = session.simulate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(),
        opt_level=0, cycles=64, seed=43,
    ).value
    assert reseeded.outputs != trace0.outputs


def test_compile_front_door_reaches_new_stages():
    session = CompileSession(opt_level=2)
    result = session.compile(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(),
        stages=("elaborate", "optimize", "simulate"),
    )
    assert result.optimized is not None
    assert result.trace is not None
    assert "pass.dead-cell-elim" in result.timings()


def test_pass_statistics_surface_on_the_session():
    session = CompileSession(opt_level=2)
    session.optimize(FPU_LA_SOURCE, "FPU", {"#W": 32}, generators())
    summary = session.pass_summary()
    assert summary["common-cell-sharing"]["runs"] == 2
    stats = session.stats_dict()
    assert stats["opt_level"] == 2
    assert "hits" in stats["cache"]
    assert "dead-cell-elim" in stats["passes"]
    assert "cells removed" in session.render_pass_stats()

"""``repro fsck``: classification, repair, exit codes, machine output.

The checker is the store's independent auditor — every finding kind has
a test that manufactures the on-disk shape and asserts both the verdict
and the repair action.
"""

import hashlib
import json
import os
import subprocess
import sys
import time

from repro.driver import CacheStats, SCHEMA_VERSION, run_fsck
from repro.driver import journal
from repro.driver.cache import TMP_REAP_AGE_SECONDS
from repro.driver.fsck import QUARANTINE_SUFFIX


def _dead_pid():
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def _write_entry(root, name="a", payload=b"data", schema=None,
                 header_schema=None):
    """A store entry under ``v<schema>/stage/`` whose header claims
    ``header_schema`` (defaults: both current — a healthy entry)."""
    schema = SCHEMA_VERSION if schema is None else schema
    header_schema = schema if header_schema is None else header_schema
    directory = os.path.join(root, f"v{schema}", "stage")
    os.makedirs(directory, exist_ok=True)
    header = json.dumps({
        "schema": header_schema,
        "key": name,
        "sha256": hashlib.sha256(payload).hexdigest(),
    }).encode("utf-8")
    path = os.path.join(directory, f"{name}.pkl")
    with open(path, "wb") as handle:
        handle.write(header + b"\n" + payload)
    return path


def _plant_intent(root, pid, dest, tmp=None):
    if tmp is None:
        tmp = os.path.join(root, f"v{SCHEMA_VERSION}", "stage", "w.tmp")
        os.makedirs(os.path.dirname(tmp), exist_ok=True)
        with open(tmp, "wb") as handle:
            handle.write(b"half-written")
    journal_dir = os.path.join(root, journal.JOURNAL_DIRNAME)
    os.makedirs(journal_dir, exist_ok=True)
    record = journal.IntentRecord(f"{pid}-1-x", pid, dest, tmp, 0.0)
    record.path = os.path.join(journal_dir, f"{record.txn}.json")
    with open(record.path, "w", encoding="utf-8") as handle:
        json.dump(record.to_dict(), handle)
    return record


def test_clean_store_is_consistent(tmp_path):
    root = str(tmp_path)
    _write_entry(root, "a")
    _write_entry(root, "b", payload=b"other")
    report = run_fsck(root)
    assert report.consistent
    assert report.exit_code == 0
    assert report.scanned == 2 and report.valid == 2
    assert report.findings == []
    assert "store is consistent" in report.render()


def test_corrupt_entry_fails_then_repair_quarantines(tmp_path):
    root = str(tmp_path)
    path = _write_entry(root, "a")
    with open(path, "ab") as handle:
        handle.write(b"bitrot")
    stats = CacheStats()
    report = run_fsck(root, stats=stats)
    assert not report.consistent and report.exit_code == 1
    assert report.counts() == {"corrupt_entry": 1}
    assert stats.counter("fsck.corrupt_entry") == 1

    repaired = run_fsck(root, repair=True, stats=stats)
    assert repaired.consistent and repaired.exit_code == 0
    assert repaired.by_kind("corrupt_entry")[0].action == "quarantined"
    assert os.path.exists(path + QUARANTINE_SUFFIX)
    assert not os.path.exists(path)
    assert stats.counter("fsck.repaired") == 1
    # The evidence file is ignored by a subsequent pass.
    assert run_fsck(root).consistent


def test_schema_lie_under_current_subtree_is_corruption(tmp_path):
    root = str(tmp_path)
    _write_entry(root, "a", header_schema=SCHEMA_VERSION + 7)
    report = run_fsck(root)
    assert report.counts() == {"corrupt_entry": 1}


def test_foreign_schema_subtree_is_informational(tmp_path):
    root = str(tmp_path)
    _write_entry(root, "old", schema=SCHEMA_VERSION - 1)
    report = run_fsck(root)
    assert report.counts() == {"foreign_schema": 1}
    assert report.consistent  # stale, not damaged


def test_orphan_tmp_ages_into_damage_and_repair_unlinks(tmp_path):
    root = str(tmp_path)
    directory = os.path.join(root, f"v{SCHEMA_VERSION}", "stage")
    os.makedirs(directory)
    young = os.path.join(directory, "young.tmp")
    old = os.path.join(directory, "old.tmp")
    for path in (young, old):
        with open(path, "wb") as handle:
            handle.write(b"x")
    ancient = time.time() - 2 * TMP_REAP_AGE_SECONDS
    os.utime(old, (ancient, ancient))

    report = run_fsck(root)
    assert report.counts() == {"live_tmp": 1, "orphan_tmp": 1}
    assert not report.consistent

    repaired = run_fsck(root, repair=True)
    assert repaired.consistent
    assert not os.path.exists(old)
    assert os.path.exists(young)  # possibly a live pre-journal writer


def test_dangling_intent_rolls_back_when_dest_missing(tmp_path):
    root = str(tmp_path)
    dest = os.path.join(root, f"v{SCHEMA_VERSION}", "stage", "a.pkl")
    record = _plant_intent(root, _dead_pid(), dest)
    report = run_fsck(root)
    assert report.counts() == {"dangling_intent": 1}
    assert "roll back" in report.by_kind("dangling_intent")[0].detail

    repaired = run_fsck(root, repair=True)
    assert repaired.consistent
    assert repaired.by_kind("dangling_intent")[0].action == "roll_back"
    assert not os.path.exists(record.tmp)
    assert not os.path.exists(record.path)
    assert run_fsck(root).findings == []


def test_dangling_intent_rolls_forward_when_dest_is_intact(tmp_path):
    root = str(tmp_path)
    dest = _write_entry(root, "a")
    record = _plant_intent(root, _dead_pid(), dest)
    repaired = run_fsck(root, repair=True)
    assert repaired.consistent
    assert repaired.by_kind("dangling_intent")[0].action == "roll_forward"
    assert os.path.exists(dest)  # the published entry survives
    assert not os.path.exists(record.tmp)


def test_live_writers_tmp_is_informational(tmp_path):
    root = str(tmp_path)
    dest = os.path.join(root, f"v{SCHEMA_VERSION}", "stage", "a.pkl")
    record = _plant_intent(root, os.getppid(), dest)
    report = run_fsck(root, repair=True)
    assert report.counts() == {"live_tmp": 1}
    assert report.consistent
    assert os.path.exists(record.tmp)  # never repaired


def test_stale_lease_is_reaped_live_lease_kept(tmp_path):
    root = str(tmp_path)
    leases = journal.LeaseManager(root)
    leases.acquire()
    dead = _dead_pid()
    with open(leases.lease_path(dead), "w", encoding="utf-8") as handle:
        json.dump({"version": journal.JOURNAL_VERSION, "pid": dead}, handle)

    report = run_fsck(root)
    assert report.counts() == {"stale_lease": 1}
    repaired = run_fsck(root, repair=True)
    assert repaired.consistent
    assert repaired.by_kind("stale_lease")[0].action == "reaped"
    assert list(leases.holders()) == [os.getpid()]


def test_report_to_dict_is_machine_readable(tmp_path):
    root = str(tmp_path)
    path = _write_entry(root, "a")
    with open(path, "ab") as handle:
        handle.write(b"bitrot")
    payload = run_fsck(root).to_dict()
    assert payload["consistent"] is False
    assert payload["exit_code"] == 1
    assert payload["scanned"] == 1
    assert payload["counts"] == {"corrupt_entry": 1}
    finding = payload["findings"][0]
    assert finding["kind"] == "corrupt_entry"
    assert finding["damage"] is True and finding["repaired"] is False
    json.dumps(payload)  # the --stats json path must serialize as-is

"""The write-ahead intent journal and writer leases.

These are the crash-consistency substrate under the disk cache: an
intent record durable *before* the publishing ``os.replace``, recovery
that replays a dead writer's dangling intent (forward when the entry
landed, back when it didn't), and per-PID leases that make liveness an
offline-checkable fact.
"""

import hashlib
import json
import os
import subprocess
import sys

from repro.driver import CacheStats
from repro.driver import journal


def _dead_pid():
    """A PID that provably belonged to a now-dead process."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def _entry_bytes(payload=b"payload"):
    header = {"sha256": hashlib.sha256(payload).hexdigest()}
    return json.dumps(header).encode("utf-8") + b"\n" + payload


def _plant(tmp_path, pid, publish=None):
    """An intent record owned by ``pid``, its temp file, and optionally
    a valid or torn destination — the on-disk shape of a writer that
    died at a chosen protocol step."""
    root = str(tmp_path)
    dest = os.path.join(root, "entry.pkl")
    tmp = os.path.join(root, "writer.tmp")
    with open(tmp, "wb") as handle:
        handle.write(_entry_bytes())
    if publish == "valid":
        with open(dest, "wb") as handle:
            handle.write(_entry_bytes())
    elif publish == "torn":
        with open(dest, "wb") as handle:
            handle.write(b"definitely not an entry")
    journal_dir = os.path.join(root, journal.JOURNAL_DIRNAME)
    os.makedirs(journal_dir, exist_ok=True)
    record = journal.IntentRecord(f"{pid}-1-feed", pid, dest, tmp, 0.0)
    record.path = os.path.join(journal_dir, f"{record.txn}.json")
    with open(record.path, "w", encoding="utf-8") as handle:
        json.dump(record.to_dict(), handle)
    return record


def test_begin_then_commit_retires_the_record(tmp_path):
    stats = CacheStats()
    jnl = journal.IntentJournal(str(tmp_path), stats)
    tmp = tmp_path / "x.tmp"
    tmp.write_bytes(b"x")
    record = jnl.begin(str(tmp_path / "x.pkl"), str(tmp))
    assert record is not None
    assert os.path.exists(record.path)
    assert set(jnl.pending_tmps()) == {str(tmp)}
    jnl.commit(record)
    assert not os.path.exists(record.path)
    assert jnl.records() == []
    assert stats.counter("journal.begin") == 1
    assert stats.counter("journal.commit") == 1


def test_abort_retires_the_record(tmp_path):
    stats = CacheStats()
    jnl = journal.IntentJournal(str(tmp_path), stats)
    tmp = tmp_path / "x.tmp"
    tmp.write_bytes(b"x")
    record = jnl.begin(str(tmp_path / "x.pkl"), str(tmp))
    jnl.abort(record)
    assert jnl.records() == []
    assert stats.counter("journal.abort") == 1
    # None (an unjournaled write) is accepted silently.
    jnl.abort(None)
    assert stats.counter("journal.abort") == 1


def test_recover_rolls_forward_when_destination_is_valid(tmp_path):
    record = _plant(tmp_path, _dead_pid(), publish="valid")
    stats = CacheStats()
    jnl = journal.IntentJournal(str(tmp_path), stats)
    assert jnl.recover() == (1, 0)
    # The published entry survives; the leftovers are retired.
    assert os.path.exists(record.dest)
    assert not os.path.exists(record.tmp)
    assert not os.path.exists(record.path)
    assert stats.counter("journal.recovered.forward") == 1


def test_recover_rolls_back_a_torn_destination(tmp_path):
    record = _plant(tmp_path, _dead_pid(), publish="torn")
    jnl = journal.IntentJournal(str(tmp_path), CacheStats())
    assert jnl.recover() == (0, 1)
    assert not os.path.exists(record.dest)
    assert not os.path.exists(record.tmp)
    assert not os.path.exists(record.path)


def test_recover_rolls_back_when_destination_is_missing(tmp_path):
    record = _plant(tmp_path, _dead_pid(), publish=None)
    stats = CacheStats()
    assert journal.IntentJournal(str(tmp_path), stats).recover() == (0, 1)
    assert not os.path.exists(record.tmp)
    assert stats.counter("journal.recovered.rollback") == 1


def test_recover_leaves_live_writers_alone(tmp_path):
    """A record whose owner PID is alive is a concurrent writer
    mid-transaction, not a corpse — recovery must not touch it."""
    record = _plant(tmp_path, os.getppid(), publish=None)
    jnl = journal.IntentJournal(str(tmp_path), CacheStats())
    assert jnl.recover() == (0, 0)
    assert os.path.exists(record.tmp)
    assert os.path.exists(record.path)


def test_lease_acquire_is_idempotent_and_releases(tmp_path):
    leases = journal.LeaseManager(str(tmp_path), CacheStats())
    first = leases.acquire()
    second = leases.acquire()
    assert first == second
    assert list(leases.holders()) == [os.getpid()]
    assert leases.live_pids() == (os.getpid(),)
    leases.release()
    assert leases.holders() == {}


def test_reap_stale_drops_only_dead_leases(tmp_path):
    stats = CacheStats()
    leases = journal.LeaseManager(str(tmp_path), stats)
    leases.acquire()
    dead = _dead_pid()
    with open(leases.lease_path(dead), "w", encoding="utf-8") as handle:
        json.dump({"version": journal.JOURNAL_VERSION, "pid": dead}, handle)
    assert leases.reap_stale() == 1
    assert list(leases.holders()) == [os.getpid()]
    assert stats.counter("journal.lease_reaped") == 1


def test_validate_entry_bytes_checks_the_digest():
    assert journal.validate_entry_bytes(_entry_bytes())
    assert not journal.validate_entry_bytes(b"no header here")
    tampered = _entry_bytes() + b"extra"
    assert not journal.validate_entry_bytes(tampered)


def test_pid_alive_probes():
    assert journal.pid_alive(os.getpid())
    assert not journal.pid_alive(_dead_pid())
    assert not journal.pid_alive(0)
    assert not journal.pid_alive(-1)


def test_fsync_gate_reads_the_environment(monkeypatch):
    monkeypatch.setenv(journal.FSYNC_ENV, "0")
    assert not journal.fsync_enabled()
    monkeypatch.setenv(journal.FSYNC_ENV, "1")
    assert journal.fsync_enabled()
    monkeypatch.delenv(journal.FSYNC_ENV)
    assert journal.fsync_enabled()  # durable by default

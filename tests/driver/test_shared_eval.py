"""Acceptance: one shared session across every evalx artifact performs
strictly fewer elaborations than the sum of standalone runs.

Figure 8 runs on a reduced design list (it contributes typechecks, not
elaborations, so the inequality is unaffected — the full list costs ~12 s
of SMT time per run and belongs in the benchmark suite).
"""

from repro.driver import CompileSession
from repro.evalx import figure8, figure13, table1, table2, table3

FIGURE8_DESIGNS = figure8.DESIGNS[:1]
FIGURE13_PARALLELISMS = (4, 16)


def _run_all(session):
    table1.build_rows(session=session)
    table2.classify(session=session)
    table3.build_rows(session=session)
    figure8.build_rows(designs=FIGURE8_DESIGNS, session=session)
    figure13.build_rows(
        parallelisms=FIGURE13_PARALLELISMS, session=session
    )


def _elaborations(session):
    return session.stats.counter("elaborate.components")


def test_shared_session_elaborates_strictly_less_than_standalone():
    standalone_total = 0
    for artifact in (
        lambda s: table1.build_rows(session=s),
        lambda s: table2.classify(session=s),
        lambda s: table3.build_rows(session=s),
        lambda s: figure8.build_rows(designs=FIGURE8_DESIGNS, session=s),
        lambda s: figure13.build_rows(
            parallelisms=FIGURE13_PARALLELISMS, session=s
        ),
    ):
        session = CompileSession()
        artifact(session)
        standalone_total += _elaborations(session)

    shared = CompileSession()
    _run_all(shared)
    shared_total = _elaborations(shared)

    assert shared_total < standalone_total, (
        f"shared session ran {shared_total} elaborations, standalone runs "
        f"ran {standalone_total} — sharing should be strictly cheaper"
    )
    # And re-running the whole grid on the warm session costs nothing.
    _run_all(shared)
    assert _elaborations(shared) == shared_total

"""The persistent "smt" pseudo-stage: round-trips, validation, keys."""

import os

from repro.driver import CacheStats, DiskCache, ObligationStore


def _store(tmp_path):
    return ObligationStore(DiskCache(str(tmp_path / "cache"), CacheStats()))


def test_round_trip(tmp_path):
    store = _store(tmp_path)
    digest = "d" * 64
    assert store.load(digest) is None
    assert store.save(digest, "unsat", None)
    payload = store.load(digest)
    assert payload == {"digest": digest, "status": "unsat", "model": None}


def test_sat_model_round_trip(tmp_path):
    store = _store(tmp_path)
    digest = "e" * 64
    model = {"?v000000": 3, "(FPAdd.#L ?v000001)": 2}
    store.save(digest, "sat", model)
    assert store.load(digest)["model"] == model


def test_counters(tmp_path):
    store = _store(tmp_path)
    digest = "f" * 64
    store.load(digest)
    store.save(digest, "unsat", None)
    store.load(digest)
    stats = store.disk.stats
    assert stats.counter("smt.disk_miss") == 1
    assert stats.counter("smt.store") == 1
    assert stats.counter("smt.disk_hit") == 1


def test_invalid_payload_is_a_miss(tmp_path):
    store = _store(tmp_path)
    digest = "a" * 64
    # store under one digest, ask for another: key mismatch, miss.
    store.save(digest, "unsat", None)
    assert store.load("b" * 64) is None


def test_corrupt_entry_quarantined(tmp_path):
    store = _store(tmp_path)
    digest = "c" * 64
    store.save(digest, "unsat", None)
    path = store.disk._entry_path(ObligationStore._key(digest))
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        handle.seek(size // 2)
        handle.write(b"\xff\xff\xff")
    assert store.load(digest) is None  # quarantined, not served
    assert not os.path.exists(path)
    assert store.disk.stats.counter("disk.corrupt") == 1


def test_key_carries_solver_version(tmp_path):
    from repro.smt import SOLVER_VERSION

    key = ObligationStore._key("x" * 64)
    assert key[0] == "smt"
    assert key[-1] == SOLVER_VERSION

"""The typecheck stage: parallel fan-out, warm persistence, CLI, stats."""

import json

import pytest

from repro.designs.catalog import design_point
from repro.driver import CompileSession
from repro.driver.cli import main
from repro.lilac.typecheck import check as check_mod


@pytest.fixture(autouse=True)
def _cold_memo():
    check_mod.clear_obligation_memo()
    yield
    check_mod.clear_obligation_memo()


SOURCE, _, _, _ = design_point("fpu")


def _report_summary(reports):
    return [(r.component, r.obligations, len(r.errors)) for r in reports]


def test_parallel_thread_matches_sequential(tmp_path):
    sequential = CompileSession().typecheck(SOURCE).value
    check_mod.clear_obligation_memo()
    parallel = CompileSession(typecheck_jobs=3).typecheck(SOURCE).value
    assert _report_summary(parallel) == _report_summary(sequential)


def test_parallel_process_matches_sequential(tmp_path):
    sequential = CompileSession().typecheck(SOURCE).value
    check_mod.clear_obligation_memo()
    session = CompileSession(
        typecheck_jobs=2,
        typecheck_executor="process",
        cache_dir=str(tmp_path / "cache"),
    )
    parallel = session.typecheck(SOURCE).value
    assert _report_summary(parallel) == _report_summary(sequential)


def test_jobs_argument_overrides_session_default():
    session = CompileSession()
    reports = session.typecheck(SOURCE, jobs=2).value
    assert _report_summary(reports) == _report_summary(
        CompileSession().typecheck(SOURCE).value
    )


def test_warm_session_answers_from_disk(tmp_path):
    cache = str(tmp_path / "cache")
    cold = CompileSession(cache_dir=cache)
    cold.typecheck(SOURCE)
    assert cold.stats.counter("smt.store") > 0

    check_mod.clear_obligation_memo()
    warm = CompileSession(cache_dir=cache)
    # Nudge past the stage-artifact cache: check one component directly
    # so the obligation store itself must answer.
    artifact = warm.typecheck(SOURCE, component="FPU")
    assert artifact.ok
    assert warm.stats.counter("smt.disk_hit") > 0
    assert warm.stats.counter("smt.queries") == 0


def test_typecheck_stats_in_stats_dict():
    session = CompileSession()
    session.typecheck(SOURCE)
    stats = session.stats_dict()["typecheck"]
    assert stats["obligations"] > 0
    assert stats["solver_queries"] > 0
    assert 0.0 <= stats["cache_hit_rate"] <= 1.0


def test_typecheck_stage_records_sub_timings():
    artifact = CompileSession().typecheck(SOURCE)
    assert "smt.discharge" in artifact.sub_timings
    assert artifact.sub_timings["smt.discharge"] >= 0.0


def test_spec_never_propagates_jobs():
    session = CompileSession(typecheck_jobs=4)
    assert session.spec()["typecheck_jobs"] is None
    rebuilt = CompileSession.from_spec(session.spec())
    assert rebuilt.typecheck_jobs is None


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        CompileSession(typecheck_jobs=0)
    with pytest.raises(ValueError):
        CompileSession(typecheck_executor="fleet")


def test_cli_typecheck_subcommand(capsys):
    code = main(["typecheck", "--design", "fpu", "--no-disk-cache"])
    out = capsys.readouterr().out
    assert code == 0
    assert "obligations" in out and "solver queries" in out


def test_cli_typecheck_stats_json(capsys):
    code = main(
        ["typecheck", "--design", "fpu", "--no-disk-cache",
         "--stats", "json", "--typecheck-jobs", "2"]
    )
    out = capsys.readouterr().out
    assert code == 0
    stats = json.loads(out.strip().splitlines()[-1])
    assert "typecheck" in stats
    assert stats["typecheck"]["obligations"] > 0

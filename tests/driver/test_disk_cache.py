"""The persistent disk layer under the artifact cache.

Round trips are the headline: a fresh ``CompileSession`` pointed at a
directory another session populated must be served from disk — no
elaboration, no passes — and the integrity machinery must reject (and
quarantine) corrupted or schema-mismatched entries instead of serving
them.
"""

import json
import os

from repro.driver import (
    CompileSession,
    DiskCache,
    SCHEMA_VERSION,
    StageArtifact,
    freeze_params,
)

SOURCE = """
comp Double[#W]<G:1>(x: [G, G+1] #W) -> (y: [G+1, G+2] #W) {
  s := new Add[#W]<G>(x, x);
  r := new Reg[#W]<G>(s.out);
  y = r.out;
}
"""


def _warm(tmp_path, **kwargs):
    session = CompileSession(cache_dir=str(tmp_path), **kwargs)
    artifact = session.synthesize(SOURCE, "Double", {"#W": 8})
    return session, artifact


def test_round_trip_into_a_fresh_session(tmp_path):
    cold_session, cold = _warm(tmp_path)
    assert cold_session.stats.counter("disk.write") > 0

    warm_session = CompileSession(cache_dir=str(tmp_path))
    warm = warm_session.synthesize(SOURCE, "Double", {"#W": 8})
    assert warm.from_cache
    assert warm_session.stats.counter("disk.hit") >= 1
    assert warm_session.stats.miss_count("synthesize") == 0
    assert warm.value.luts == cold.value.luts
    assert warm.value.registers == cold.value.registers


def test_warm_session_runs_no_passes_and_no_elaboration(tmp_path):
    cold = CompileSession(opt_level=2, cache_dir=str(tmp_path))
    cold.simulate(SOURCE, "Double", {"#W": 8}, cycles=16)
    assert cold.pass_log()

    warm = CompileSession(opt_level=2, cache_dir=str(tmp_path))
    trace = warm.simulate(SOURCE, "Double", {"#W": 8}, cycles=16)
    assert trace.from_cache
    assert warm.pass_log() == []
    assert warm.stats.counter("elaborate.components") == 0
    assert warm.disk_stats()["hit_rate"] == 1.0


def test_disk_artifacts_are_keyed_per_backend(tmp_path):
    session = CompileSession(cache_dir=str(tmp_path))
    interp = session.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=32, backend="interp"
    ).value
    compiled = session.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=32, backend="compiled"
    ).value
    assert interp.backend == "interp"
    assert compiled.backend == "compiled"
    assert interp.outputs == compiled.outputs

    warm = CompileSession(cache_dir=str(tmp_path), sim_backend="compiled")
    trace = warm.simulate(SOURCE, "Double", {"#W": 8}, cycles=32).value
    assert trace.backend == "compiled"


def _entry_files(tmp_path):
    files = []
    for directory, _, names in os.walk(tmp_path):
        files.extend(
            os.path.join(directory, n) for n in names if n.endswith(".pkl")
        )
    return files


def test_corrupted_entries_are_rejected_and_removed(tmp_path):
    _warm(tmp_path)
    victims = _entry_files(tmp_path)
    assert victims
    for path in victims:
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.write(b"\x00")

    warm = CompileSession(cache_dir=str(tmp_path))
    artifact = warm.synthesize(SOURCE, "Double", {"#W": 8})
    assert not artifact.from_cache  # recomputed, not served corrupt bytes
    assert warm.stats.counter("disk.corrupt") > 0
    # Quarantined entries were deleted, then rewritten by the recompute.
    assert warm.stats.counter("disk.write") > 0


def test_schema_mismatch_is_a_miss(tmp_path):
    _warm(tmp_path)
    for path in _entry_files(tmp_path):
        with open(path, "rb") as handle:
            header, payload = handle.read().split(b"\n", 1)
        doctored = json.loads(header)
        doctored["schema"] = SCHEMA_VERSION + 1
        with open(path, "wb") as handle:
            handle.write(json.dumps(doctored).encode() + b"\n" + payload)

    warm = CompileSession(cache_dir=str(tmp_path))
    artifact = warm.synthesize(SOURCE, "Double", {"#W": 8})
    assert not artifact.from_cache
    assert warm.stats.counter("disk.hit") == 0


def test_old_schema_subtrees_are_stranded_not_misread(tmp_path):
    # Entries live under root/v{SCHEMA_VERSION}/: a schema bump (v3 → v4
    # added the tuner pseudo-stage and the codegen backend tag) strands
    # the old subtree by path.  Old entries must never satisfy a lookup
    # — their key layout is incompatible — but they also must not be
    # destroyed: a rollback to the old code finds its cache intact.
    cache = DiskCache(str(tmp_path))
    key = ("codegen", "deadbeef", 4, 1)  # v3 layout: no backend tag
    old_dir = os.path.join(str(tmp_path), f"v{SCHEMA_VERSION - 1}", "codegen")
    os.makedirs(old_dir)
    stale = os.path.join(old_dir, "stale.pkl")
    with open(stale, "wb") as handle:
        handle.write(b'{"schema": %d}\n' % (SCHEMA_VERSION - 1) + b"junk")

    assert cache.load(key) is None
    assert cache.stats.counter("disk.corrupt") == 0  # never even opened
    assert os.path.exists(stale)  # quarantine by path, not deletion

    # The same logical key written under the current schema round-trips
    # without touching the stranded subtree.
    assert cache.store(key, StageArtifact("codegen", key, {"v": 2}, 0.0))
    assert cache.load(key).value == {"v": 2}
    assert os.path.exists(stale)


def test_unpicklable_artifacts_degrade_to_memory_only(tmp_path):
    cache = DiskCache(str(tmp_path))
    key = ("synthesize", "unpicklable")
    artifact = StageArtifact("synthesize", key, lambda: None, 0.0)
    assert not cache.store(key, artifact)
    assert cache.stats.counter("disk.unpicklable") == 1
    assert cache.load(key) is None


def test_disk_cache_resolves_default_root_from_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-root"))
    assert DiskCache.default_root() == str(tmp_path / "env-root")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert DiskCache.default_root() == str(tmp_path / "xdg" / "repro-lilac")


def test_entry_count_tracks_store(tmp_path):
    cache = DiskCache(str(tmp_path))
    assert cache.entry_count() == 0
    key = ("parse", "x")
    assert cache.store(key, StageArtifact("parse", key, {"v": 1}, 0.0))
    assert cache.entry_count() == 1
    loaded = cache.load(key)
    assert loaded.value == {"v": 1}


def test_backend_version_bump_invalidates_persisted_traces(
    tmp_path, monkeypatch
):
    # A simulate key carries the backend's name@version, so fixing the
    # codegen (and bumping its version) must re-run the simulation
    # instead of serving the old backend's persisted trace.
    from repro.rtl import compile as rtl_compile

    cold = CompileSession(cache_dir=str(tmp_path), sim_backend="compiled")
    artifact = cold.simulate(SOURCE, "Double", {"#W": 8}, cycles=16)
    assert "compiled@1" in artifact.key

    monkeypatch.setitem(rtl_compile.SIM_BACKEND_VERSIONS, "compiled", 2)
    warm = CompileSession(cache_dir=str(tmp_path), sim_backend="compiled")
    rerun = warm.simulate(SOURCE, "Double", {"#W": 8}, cycles=16)
    assert "compiled@2" in rerun.key
    assert not rerun.from_cache
    assert warm.stats.miss_count("simulate") == 1


def test_trim_evicts_oldest_entries_beyond_the_size_bound(tmp_path):
    cache = DiskCache(str(tmp_path))
    for index in range(6):
        key = ("parse", f"entry{index}")
        assert cache.store(key, StageArtifact("parse", key, "x" * 512, 0.0))
    # Make eviction order deterministic: entry0 oldest, entry5 newest.
    for age, path in enumerate(sorted(_entry_files(tmp_path))):
        os.utime(path, (1_000_000 + age, 1_000_000 + age))
    size = sum(os.path.getsize(p) for p in _entry_files(tmp_path))

    bounded = DiskCache(str(tmp_path), max_bytes=size // 2)
    assert bounded.stats.counter("disk.trimmed") > 0
    remaining = sum(os.path.getsize(p) for p in _entry_files(tmp_path))
    assert remaining <= size // 2
    assert bounded.entry_count() < 6


def test_trim_can_be_disabled(tmp_path):
    cache = DiskCache(str(tmp_path))
    key = ("parse", "kept")
    assert cache.store(key, StageArtifact("parse", key, "y" * 256, 0.0))
    unbounded = DiskCache(str(tmp_path), max_bytes=0)
    assert unbounded.entry_count() == 1


def test_freeze_params_distinguishes_bool_from_int():
    # Regression: bool is an int subclass, so True froze identically to
    # 1 and the two bindings shared one cache entry.
    assert freeze_params({"x": True}) != freeze_params({"x": 1})
    assert freeze_params({"x": False}) != freeze_params({"x": 0})
    assert freeze_params([True]) != freeze_params([1])
    # Equal bindings still freeze equal, and the dict stays order-free.
    assert freeze_params({"x": True, "y": 2}) == freeze_params(
        {"y": 2, "x": True}
    )
    # Positional and keyword spellings remain distinct keys.
    assert freeze_params([1]) != freeze_params({"x": 1})


# -- fault tolerance: retries, quarantine, memory-only degradation ------


def test_transient_read_faults_are_retried_and_served(tmp_path):
    _warm(tmp_path)
    warm = CompileSession(cache_dir=str(tmp_path), fault_plan="disk.read:2")
    artifact = warm.synthesize(SOURCE, "Double", {"#W": 8})
    assert artifact.from_cache  # the retries healed the injected EIOs
    assert warm.stats.counter("retry.disk.read") == 2
    assert warm.stats.counter("fault.injected.disk.read") == 2
    assert not warm.cache.disk.degraded


def test_transient_write_faults_are_retried_and_persisted(tmp_path):
    cold = CompileSession(
        cache_dir=str(tmp_path), fault_plan="disk.write,disk.replace@2"
    )
    cold.synthesize(SOURCE, "Double", {"#W": 8})
    assert cold.stats.counter("retry.disk.write") == 2
    assert not cold.cache.disk.degraded

    warm = CompileSession(cache_dir=str(tmp_path))
    assert warm.synthesize(SOURCE, "Double", {"#W": 8}).from_cache


def test_exhausted_read_retries_degrade_to_a_miss(tmp_path):
    cold_session, cold = _warm(tmp_path)
    # Enough scheduled failures to exhaust every retry of the first load.
    warm = CompileSession(cache_dir=str(tmp_path), fault_plan="disk.read:3")
    artifact = warm.synthesize(SOURCE, "Double", {"#W": 8})
    assert artifact.value.luts == cold.value.luts  # recomputed, same bits
    assert warm.stats.counter("disk.read_error") == 1
    assert not warm.cache.disk.degraded  # transient errors never degrade


def test_enospc_degrades_to_memory_only_once(tmp_path):
    import pytest

    with pytest.warns(RuntimeWarning, match="memory-only"):
        session = CompileSession(
            cache_dir=str(tmp_path), fault_plan="disk.write#enospc"
        )
        first = session.synthesize(SOURCE, "Double", {"#W": 8})
    assert session.cache.disk.degraded
    assert session.stats.counter("degrade.disk") == 1
    # The session keeps working from memory; nothing further persists.
    again = session.synthesize(SOURCE, "Double", {"#W": 8})
    assert again.from_cache
    assert first.value.luts == again.value.luts
    assert session.cache.disk.entry_count() == 0
    assert session.stats.counter("degrade.disk") == 1  # warned once


def test_readonly_root_degrades_on_load_too(tmp_path):
    _warm(tmp_path)
    warm = CompileSession(
        cache_dir=str(tmp_path), fault_plan="disk.read#erofs"
    )
    artifact = warm.synthesize(SOURCE, "Double", {"#W": 8})
    assert not artifact.from_cache  # every later lookup is a miss
    assert warm.cache.disk.degraded
    assert warm.stats.counter("degrade.disk") == 1


def test_injected_pickle_garbage_is_quarantined(tmp_path):
    cold_session, cold = _warm(tmp_path)
    entries_before = len(_entry_files(tmp_path))
    warm = CompileSession(cache_dir=str(tmp_path), fault_plan="pickle.load")
    artifact = warm.synthesize(SOURCE, "Double", {"#W": 8})
    assert artifact.value.luts == cold.value.luts
    assert warm.stats.counter("disk.corrupt") == 1
    # Quarantine deleted the poisoned entry; the recompute re-stored it.
    assert len(_entry_files(tmp_path)) == entries_before


def test_trim_spares_young_tmp_files_of_live_writers(tmp_path):
    import time as _time

    cache = DiskCache(str(tmp_path))
    for index in range(4):
        key = ("parse", f"entry{index}")
        assert cache.store(key, StageArtifact("parse", key, "x" * 512, 0.0))
    stage_dir = os.path.join(
        str(tmp_path), f"v{SCHEMA_VERSION}", "parse"
    )
    young = os.path.join(stage_dir, "live-writer.tmp")
    stale = os.path.join(stage_dir, "orphan.tmp")
    with open(young, "wb") as handle:
        handle.write(b"z" * 512)
    with open(stale, "wb") as handle:
        handle.write(b"z" * 512)
    os.utime(stale, (1_000_000, 1_000_000))  # ancient: a dead writer's
    for age, path in enumerate(sorted(_entry_files(tmp_path))):
        os.utime(path, (2_000_000 + age, 2_000_000 + age))

    DiskCache(str(tmp_path), max_bytes=1)  # trim everything trimmable
    assert os.path.exists(young)  # may be mid-mkstemp/os.replace: spared
    assert not os.path.exists(stale)  # orphan: reaped
    assert not _entry_files(tmp_path)


# -- trim vs live writers (the journal makes the race exact) ------------


def test_trim_spares_live_writers_and_reaps_dead_ones(tmp_path):
    """A ``.tmp`` whose intent record names a live PID is never an
    eviction candidate no matter how old; a dead writer's is reapable
    immediately; unjournaled tmps fall back to the age heuristic."""
    import subprocess
    import sys
    import time

    from repro.driver import journal
    from repro.driver.cache import TMP_REAP_AGE_SECONDS

    root = str(tmp_path)
    cache = DiskCache(root=root, max_bytes=1)
    subtree = os.path.join(root, f"v{SCHEMA_VERSION}", "stage")
    os.makedirs(subtree, exist_ok=True)
    ancient = time.time() - 2 * TMP_REAP_AGE_SECONDS

    def plant_tmp(name, pid=None):
        path = os.path.join(subtree, name)
        with open(path, "wb") as handle:
            handle.write(b"half-written payload")
        os.utime(path, (ancient, ancient))
        if pid is not None:
            journal_dir = os.path.join(root, journal.JOURNAL_DIRNAME)
            os.makedirs(journal_dir, exist_ok=True)
            record = journal.IntentRecord(
                f"{pid}-{name}", pid, path[:-4] + ".pkl", path, ancient
            )
            with open(
                os.path.join(journal_dir, f"{record.txn}.json"),
                "w", encoding="utf-8",
            ) as handle:
                json.dump(record.to_dict(), handle)
        return path

    corpse = subprocess.Popen([sys.executable, "-c", "pass"])
    corpse.wait()
    live_tmp = plant_tmp("live.tmp", pid=os.getppid())
    dead_tmp = plant_tmp("dead.tmp", pid=corpse.pid)
    old_orphan = plant_tmp("orphan.tmp")
    young_tmp = os.path.join(subtree, "young.tmp")
    with open(young_tmp, "wb") as handle:
        handle.write(b"just born")

    assert cache._trim() == 2
    assert os.path.exists(live_tmp)        # journaled live writer
    assert os.path.exists(young_tmp)       # young: benefit of the doubt
    assert not os.path.exists(dead_tmp)    # journaled corpse
    assert not os.path.exists(old_orphan)  # aged-out orphan

"""The session's ``-O3``: profile resolution, keying, and degradation.

``optimize(opt_level=3)`` reuses the cached ``-O2`` artifact, resolves
an activity profile (memo → persistent store → fresh collection when
``profile_auto``), and attaches the finished ``PgoPlan`` to the
artifact; ``simulate`` hands the plan to the engines.  These tests pin
the cache-key separation between levels, warm-process profile reuse,
and the graceful fall-back to ``-O2`` semantics when no profile can be
had.
"""

from repro.driver import CompileSession

SOURCE = """
comp Double[#W]<G:1>(x: [G, G+1] #W) -> (y: [G+1, G+2] #W) {
  s := new Add[#W]<G>(x, x);
  r := new Reg[#W]<G>(s.out);
  y = r.out;
}
"""


def _session(tmp_path, **kwargs):
    return CompileSession(cache_dir=str(tmp_path), **kwargs)


def test_o3_plan_rides_the_optimize_artifact(tmp_path):
    session = _session(tmp_path)
    o2 = session.optimize(SOURCE, "Double", {"#W": 8}, opt_level=2).value
    o3 = session.optimize(SOURCE, "Double", {"#W": 8}, opt_level=3).value
    assert o2.pgo_plan is None
    assert o3.pgo_plan is not None
    # The PGO passes are annotation-only: -O3 simulates, emits and
    # synthesizes the very same -O2 module object.
    assert o3.module is o2.module
    assert o3.opt_level == 3
    stats = session.profile_stats()
    assert stats["auto"] is True
    assert stats["collected"] == 1
    assert stats["disk_stores"] == 1
    assert stats["collect_seconds"] > 0.0


def test_o3_trace_matches_the_unoptimized_interpreter(tmp_path):
    session = _session(tmp_path)
    reference = session.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=64, opt_level=0,
        backend="interp", lanes=1,
    ).value
    specialized = session.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=64, opt_level=3,
        backend="compiled", lanes=1,
    ).value
    assert specialized.outputs == reference.outputs


def test_o2_and_o3_artifacts_are_keyed_apart(tmp_path):
    session = _session(tmp_path)
    session.simulate(SOURCE, "Double", {"#W": 8}, cycles=32, opt_level=2)
    session.simulate(SOURCE, "Double", {"#W": 8}, cycles=32, opt_level=3)
    # Distinct optimize artifacts AND distinct simulate artifacts: the
    # -O3 run must never be served a plan-less -O2 trace (or vice
    # versa) just because the module is structurally identical.
    assert session.stats.miss_count("simulate") == 2
    # Repeats are pure hits on both levels.
    session.simulate(SOURCE, "Double", {"#W": 8}, cycles=32, opt_level=2)
    session.simulate(SOURCE, "Double", {"#W": 8}, cycles=32, opt_level=3)
    assert session.stats.miss_count("simulate") == 2
    assert session.stats.hit_count("simulate") == 2


def test_warm_session_reuses_the_persisted_profile(tmp_path):
    cold = _session(tmp_path)
    plan = cold.optimize(SOURCE, "Double", {"#W": 8}, opt_level=3).value
    assert cold.profile_stats()["collected"] == 1

    warm = _session(tmp_path)
    revived = warm.optimize(SOURCE, "Double", {"#W": 8}, opt_level=3).value
    stats = warm.profile_stats()
    # No re-profiling: the observation window was paid once, the plan
    # is re-derived from the persisted profile and digests identically.
    assert stats["collected"] == 0
    assert stats["disk_hits"] == 1
    assert revived.pgo_plan.digest() == plan.pgo_plan.digest()


def test_without_a_profile_o3_degrades_to_o2(tmp_path):
    session = _session(tmp_path, profile_auto=False)
    o3 = session.optimize(SOURCE, "Double", {"#W": 8}, opt_level=3).value
    assert o3.pgo_plan is None  # no profile, no plan — plain -O2 module
    stats = session.profile_stats()
    assert stats["auto"] is False
    assert stats["collected"] == 0
    trace = session.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=64, opt_level=3,
        backend="compiled", lanes=1,
    ).value
    reference = session.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=64, opt_level=0,
        backend="interp", lanes=1,
    ).value
    assert trace.outputs == reference.outputs


def test_spec_round_trips_profile_auto(tmp_path):
    session = _session(tmp_path, profile_auto=False)
    spec = session.spec()
    assert spec["profile_auto"] is False
    rebuilt = CompileSession.from_spec(spec)
    assert rebuilt.profile_auto is False


def test_stats_dict_surfaces_tuner_and_profile_sections(tmp_path):
    session = _session(tmp_path, sim_backend="auto")
    session.simulate(SOURCE, "Double", {"#W": 8}, cycles=32, opt_level=3)
    payload = session.stats_dict()
    assert payload["profile"]["collected"] == 1
    tuner = payload["tuner"]
    assert set(tuner) >= {
        "disk_hits", "disk_misses", "disk_stores", "resolve_seconds",
        "chosen",
    }
    # The auto backend resolved to exactly one concrete engine here.
    assert sum(tuner["chosen"].values()) >= 1
    # Compute/wait wall-time attribution flows through the same stats.
    timers = payload["cache"]["timers"]
    assert any(name.startswith("compute.") for name in timers)

"""Tests for the staged compiler driver: stages, artifacts, caching."""

import pytest

from repro.designs.fpu import FPU_LA_SOURCE
from repro.driver import CompileSession, freeze_params, source_digest
from repro.generators.base import GeneratorError
from repro.generators.flopoco import FloPoCoGenerator
from repro.lilac.elaborate import ElabError

BAD_FPU = FPU_LA_SOURCE + """
comp BadFPU[#W]<G:1>(
    op: [G, G+1] 1, l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G, G+1] #W) {
  Add := new FPAdd[#W];
  add := Add<G>(l, r);
  o = add.o;
}
"""


def generators(frequency=400):
    return [FloPoCoGenerator(frequency)]


# ---------------------------------------------------------------------------
# Stage basics.


def test_parse_stage_returns_program():
    session = CompileSession()
    artifact = session.parse(FPU_LA_SOURCE)
    assert artifact.stage == "parse"
    assert artifact.value.has("FPU")
    assert artifact.value.has("Shift")  # stdlib merged
    assert artifact.seconds >= 0
    bare = session.parse(FPU_LA_SOURCE, stdlib=False)
    assert not bare.value.has("Shift")


def test_elaborate_stage_produces_schedule_and_sub_timings():
    session = CompileSession()
    artifact = session.elaborate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators()
    )
    elab = artifact.value
    assert elab.out_params["#L"] == 4
    assert elab.delay == 1
    # wellformed + lower run inside elaboration and surface as sub-stages.
    assert "wellformed" in artifact.sub_timings
    assert "lower" in artifact.sub_timings


def test_emit_verilog_and_synthesize_stages():
    session = CompileSession()
    verilog = session.emit_verilog(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators()
    )
    assert "module FPU_32" in verilog.value
    report = session.synthesize(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators()
    )
    assert report.value.luts > 0
    assert report.value.registers > 0


def test_typecheck_stage_reports_errors_as_diagnostics():
    session = CompileSession()
    artifact = session.typecheck(BAD_FPU, "BadFPU")
    assert not artifact.ok
    assert artifact.errors
    assert "requires" in artifact.errors[0].message
    good = session.typecheck(BAD_FPU, "FPU")
    assert good.ok


def test_compile_runs_requested_stages_in_order():
    session = CompileSession()
    result = session.compile(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators()
    )
    assert result.elab is not None
    assert "module FPU_32" in result.verilog
    assert result.report.luts > 0
    timings = result.timings()
    for stage in ("parse", "elaborate", "wellformed", "lower",
                  "emit_verilog", "synthesize"):
        assert stage in timings


def test_compile_runs_only_requested_stages():
    session = CompileSession()
    result = session.compile(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(),
        stages=("elaborate",),
    )
    assert result.elab is not None
    assert result.get("parse") is None
    assert result.verilog is None
    assert result.report is None


def test_compile_stops_on_failed_typecheck():
    session = CompileSession()
    result = session.compile(
        BAD_FPU, "BadFPU", {"#W": 8}, generators(),
        stages=("typecheck", "elaborate", "synthesize"),
    )
    assert not result.ok
    assert result.elab is None
    assert result.report is None


def test_compile_rejects_unknown_stage():
    session = CompileSession()
    with pytest.raises(ValueError):
        session.compile(FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(),
                        stages=("elaborate", "place_and_route"))


def test_elaboration_errors_propagate():
    session = CompileSession()
    # missing generator: surfaces from the gen-component stage
    with pytest.raises(GeneratorError):
        session.elaborate(FPU_LA_SOURCE, "FPU", {"#W": 32})
    # violated where-clause: surfaces from the elaborator
    with pytest.raises(ElabError):
        session.elaborate(
            FPU_LA_SOURCE, "FPU", {"#W": 32, "#X": 1},
            [FloPoCoGenerator(400)],
        )


# ---------------------------------------------------------------------------
# Caching: hits are identical artifacts, keys are content-addressed.


def test_cache_hit_returns_identical_artifact_without_rerun():
    session = CompileSession()
    first = session.elaborate(FPU_LA_SOURCE, "FPU", {"#W": 32}, generators())
    ran = session.stats.counter("elaborate.components")
    again = session.elaborate(FPU_LA_SOURCE, "FPU", {"#W": 32}, generators())
    assert again is first  # the very same artifact object
    assert again.from_cache
    assert session.stats.counter("elaborate.components") == ran  # no rerun
    assert session.stats.hit_count("elaborate") == 1
    assert session.stats.miss_count("elaborate") == 1


def test_cache_hits_across_equal_but_distinct_registries():
    session = CompileSession()
    first = session.elaborate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, [FloPoCoGenerator(400)]
    )
    again = session.elaborate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, [FloPoCoGenerator(400)]
    )
    assert again is first  # fingerprint is value-based, not identity-based


def test_cache_invalidates_on_parameter_change():
    session = CompileSession()
    w32 = session.elaborate(FPU_LA_SOURCE, "FPU", {"#W": 32}, generators())
    w16 = session.elaborate(FPU_LA_SOURCE, "FPU", {"#W": 16}, generators())
    assert w16 is not w32
    assert w16.value.module.name != w32.value.module.name
    assert session.stats.miss_count("elaborate") == 2


def test_cache_invalidates_on_source_change():
    session = CompileSession()
    original = session.elaborate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators()
    )
    touched = FPU_LA_SOURCE + "\n// a trailing comment changes the digest\n"
    again = session.elaborate(touched, "FPU", {"#W": 32}, generators())
    assert again is not original
    assert session.stats.miss_count("elaborate") == 2


def test_cache_invalidates_on_generator_config_change():
    session = CompileSession()
    fast = session.elaborate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, [FloPoCoGenerator(400)]
    )
    slow = session.elaborate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, [FloPoCoGenerator(100)]
    )
    assert slow is not fast
    assert slow.value.out_params["#L"] != fast.value.out_params["#L"]


def test_shared_elaborator_reuses_children_across_calls():
    session = CompileSession()
    session.elaborate(FPU_LA_SOURCE, "FPU", {"#W": 32}, generators())
    ran = session.stats.counter("elaborate.components")
    # FPAdd was already elaborated as a child of FPU: the stage runs
    # (session-level miss) but no new component elaboration happens.
    session.elaborate(FPU_LA_SOURCE, "FPAdd", {"#W": 32}, generators())
    assert session.stats.counter("elaborate.components") == ran


def test_typecheck_cache_preserves_measured_time():
    session = CompileSession()
    first = session.typecheck(FPU_LA_SOURCE, "FPU")
    again = session.typecheck(FPU_LA_SOURCE, "FPU")
    assert again is first
    assert again.seconds == first.seconds  # original measurement survives


# ---------------------------------------------------------------------------
# Key helpers.


def test_freeze_params_is_order_insensitive_for_dicts():
    assert freeze_params({"#A": 1, "#B": 2}) == freeze_params(
        {"#B": 2, "#A": 1}
    )
    assert freeze_params([1, 2]) != freeze_params([2, 1])
    assert freeze_params(None) == freeze_params({})


def test_source_digest_is_stable_and_content_sensitive():
    assert source_digest("abc") == source_digest("abc")
    assert source_digest("abc") != source_digest("abd")


# ---------------------------------------------------------------------------
# Multi-lane simulate.


def test_simulate_lanes_are_distinct_cache_entries():
    session = CompileSession(sim_backend="compiled")
    single = session.simulate(FPU_LA_SOURCE, "FPU", {"#W": 32},
                              generators(), cycles=16)
    batch = session.simulate(FPU_LA_SOURCE, "FPU", {"#W": 32},
                             generators(), cycles=16, lanes=4)
    assert single is not batch
    assert session.stats.miss_count("simulate") == 2
    assert batch.value.lanes == 4
    assert len(batch.value.outputs) == 4
    # Lane 0 reproduces the single-lane trace (same derived seed).
    assert batch.value.outputs[0] == single.value.outputs
    # Requesting the same batch again is a hit.
    assert session.simulate(FPU_LA_SOURCE, "FPU", {"#W": 32},
                            generators(), cycles=16, lanes=4) is batch


def test_session_default_lanes_drive_simulate():
    session = CompileSession(sim_backend="compiled", sim_lanes=3)
    trace = session.simulate(FPU_LA_SOURCE, "FPU", {"#W": 32},
                             generators(), cycles=8).value
    assert trace.lanes == 3
    explicit = session.simulate(FPU_LA_SOURCE, "FPU", {"#W": 32},
                                generators(), cycles=8, lanes=1).value
    assert explicit.lanes == 1
    assert trace.outputs[0] == explicit.outputs


def test_session_rejects_bad_lane_counts():
    with pytest.raises(ValueError):
        CompileSession(sim_lanes=0)
    session = CompileSession()
    with pytest.raises(ValueError):
        session.simulate(FPU_LA_SOURCE, "FPU", {"#W": 32},
                         generators(), cycles=8, lanes=0)


def test_session_spec_round_trips():
    session = CompileSession(
        verify=False, opt_level=2, sim_backend="compiled", sim_lanes=4
    )
    clone = CompileSession.from_spec(session.spec())
    assert clone.spec() == session.spec()


# ---------------------------------------------------------------------------
# The simulation-backend degradation ladder.


def test_unavailable_backend_degrades_down_the_ladder(monkeypatch):
    """A backend that cannot run here (missing numpy, a broken codegen
    path) falls vector -> compiled -> interp with an identical trace
    under the *requested* engine's cache key."""
    from repro.driver import session as session_mod
    from repro.rtl import SimBackendUnavailable

    baseline = CompileSession(sim_backend="compiled").simulate(
        FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(), cycles=16
    ).value.outputs

    real = session_mod.make_simulator

    def flaky(module, backend, **kwargs):
        if backend == "vector":
            raise SimBackendUnavailable("vector backend disabled")
        return real(module, backend, **kwargs)

    monkeypatch.setattr(session_mod, "make_simulator", flaky)
    degraded = CompileSession(sim_backend="vector", sim_lanes=4)
    with pytest.warns(RuntimeWarning, match="degrading to 'compiled'"):
        trace = degraded.simulate(
            FPU_LA_SOURCE, "FPU", {"#W": 32}, generators(), cycles=16
        ).value
    assert degraded.stats.counter("degrade.sim_backend") == 1
    assert trace.outputs[0] == baseline


def test_ladder_exhaustion_reraises(monkeypatch):
    from repro.driver import session as session_mod
    from repro.rtl import SimBackendUnavailable

    def broken(module, backend, **kwargs):
        raise SimBackendUnavailable(f"{backend} disabled")

    monkeypatch.setattr(session_mod, "make_simulator", broken)
    # vector -> compiled -> interp, then nothing left: the error
    # escapes (two degradations happened along the way).
    session = CompileSession(sim_backend="vector", sim_lanes=4)
    with pytest.warns(RuntimeWarning):
        with pytest.raises(SimBackendUnavailable, match="interp disabled"):
            session.simulate(FPU_LA_SOURCE, "FPU", {"#W": 32},
                             generators(), cycles=8)
    assert session.stats.counter("degrade.sim_backend") == 2

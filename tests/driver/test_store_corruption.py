"""Corrupt/truncated entries in the pseudo-stage stores.

Every persistent store riding the DiskCache — codegen step sources,
activity profiles, tuner calibrations, SMT obligation verdicts — must
treat a partially written or bit-rotted entry exactly like the artifact
cache does: quarantine it (delete + ``disk.corrupt``), count a miss,
recompute, and produce bit-identical results to a never-corrupted run.
A half-written file must never steer a simulation, a specialization,
a backend choice, or a proof.
"""

import os

import pytest

from repro.driver import CompileSession, SCHEMA_VERSION

SOURCE = """
comp Double[#W]<G:1>(x: [G, G+1] #W) -> (y: [G+1, G+2] #W) {
  s := new Add[#W]<G>(x, x);
  r := new Reg[#W]<G>(s.out);
  y = r.out;
}
"""


def _store_entries(tmp_path, stage):
    directory = os.path.join(str(tmp_path), f"v{SCHEMA_VERSION}", stage)
    if not os.path.isdir(directory):
        return []
    return [
        os.path.join(directory, name)
        for name in sorted(os.listdir(directory))
        if name.endswith(".pkl")
    ]


def _truncate(path):
    """Simulate a writer that died mid-write: keep the header intact,
    cut the payload short (the digest check must catch it)."""
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(size // 2, 1))


def _drop_stage(tmp_path, stage):
    """Evict a *stage's* persisted artifacts so the rerun recomputes
    through the (corrupted) pseudo-stage store instead of being served
    the stage artifact wholesale."""
    import shutil

    shutil.rmtree(
        os.path.join(str(tmp_path), f"v{SCHEMA_VERSION}", stage),
        ignore_errors=True,
    )


@pytest.mark.parametrize("corrupt", [_truncate])
def test_corrupt_codegen_entries_recompute_identically(tmp_path, corrupt):
    from repro.rtl.compile import clear_compile_memo

    # A memo warmed by earlier tests would satisfy compile_netlist
    # before it ever consults (or fills) the persistent store.
    clear_compile_memo()
    cold = CompileSession(cache_dir=str(tmp_path))
    baseline = cold.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=32, backend="compiled"
    ).value.outputs
    entries = _store_entries(tmp_path, "codegen")
    assert entries, "compiled backend must persist its step source"
    for path in entries:
        corrupt(path)
    # Make the rerun actually walk the store: evict the simulate-stage
    # artifact (else it is served wholesale) and the in-process memo.
    _drop_stage(tmp_path, "simulate")
    clear_compile_memo()

    warm = CompileSession(cache_dir=str(tmp_path))
    rerun = warm.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=32, backend="compiled"
    ).value.outputs
    assert rerun == baseline
    assert warm.stats.counter("disk.corrupt") >= 1
    assert warm.stats.counter("codegen.disk_hit") == 0
    assert warm.stats.counter("codegen.store") >= 1

    # The recompute re-stored a clean entry: third run is served warm.
    _drop_stage(tmp_path, "simulate")
    clear_compile_memo()
    third = CompileSession(cache_dir=str(tmp_path))
    third.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=32, backend="compiled"
    )
    assert third.stats.counter("codegen.disk_hit") >= 1
    assert third.stats.counter("disk.corrupt") == 0


def test_corrupt_profile_entries_recompute_identically(tmp_path):
    cold = CompileSession(cache_dir=str(tmp_path), opt_level=3)
    baseline = cold.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=32
    ).value.outputs
    entries = _store_entries(tmp_path, "profile")
    assert entries, "-O3 must persist the collected activity profile"
    for path in entries:
        _truncate(path)
    _drop_stage(tmp_path, "simulate")

    warm = CompileSession(cache_dir=str(tmp_path), opt_level=3)
    rerun = warm.simulate(SOURCE, "Double", {"#W": 8}, cycles=32).value
    assert rerun.outputs == baseline
    assert warm.stats.counter("disk.corrupt") >= 1
    assert warm.stats.counter("profile.disk_hit") == 0
    # The profile was re-collected, not silently skipped: -O3 semantics.
    assert warm.stats.counter("profile.collected") == 1


def test_corrupt_tuner_entries_recalibrate_identically(tmp_path):
    # Multi-lane: single-lane "auto" short-circuits to scalar compiled
    # without ever consulting the calibration store.
    cold = CompileSession(cache_dir=str(tmp_path), sim_backend="auto")
    baseline = cold.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=32, lanes=4
    ).value
    entries = _store_entries(tmp_path, "tuner")
    assert entries, "auto backend must persist its calibration"
    for path in entries:
        _truncate(path)
    _drop_stage(tmp_path, "simulate")

    warm = CompileSession(cache_dir=str(tmp_path), sim_backend="auto")
    rerun = warm.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=32, lanes=4
    ).value
    assert rerun.outputs == baseline.outputs
    assert warm.stats.counter("disk.corrupt") >= 1
    assert warm.stats.counter("tuner.disk_hit") == 0
    assert warm.stats.counter("tuner.store") >= 1


def test_corrupt_obligation_entries_resolve_identically(tmp_path):
    from repro.lilac.typecheck.check import clear_obligation_memo

    cold = CompileSession(cache_dir=str(tmp_path))
    baseline = cold.typecheck(SOURCE).value
    assert cold.stats.counter("smt.store") >= 1
    entries = _store_entries(tmp_path, "smt")
    assert entries
    for path in entries:
        _truncate(path)
    _drop_stage(tmp_path, "typecheck")
    clear_obligation_memo()  # the in-process memo would mask the store

    warm = CompileSession(cache_dir=str(tmp_path))
    rerun = warm.typecheck(SOURCE).value
    assert [r.ok for r in rerun] == [r.ok for r in baseline]
    assert [r.obligations for r in rerun] == [
        r.obligations for r in baseline
    ]
    assert warm.stats.counter("disk.corrupt") >= 1
    assert warm.stats.counter("smt.disk_hit") == 0
    # Fresh verdicts were solved and re-stored.
    assert warm.stats.counter("smt.queries") >= 1

"""Kill-9 chaos: a real SIGKILLed child, fsck'd and resumed.

The CI matrix runs all three ``proc.kill.*`` sites; the suite keeps one
real subprocess experiment (the cheapest site) so the whole
kill → fsck → resume → compare protocol is exercised on every test run,
plus unit tests of the verdict logic that need no subprocesses.
"""

import pytest

from repro.driver import run_crash_chaos
from repro.driver.chaos import CrashChaosRun


def _verdict(**overrides):
    run = CrashChaosRun("proc.kill.write", 0)
    run.skip = 0
    run.calls = 4
    run.kill_rc = -9
    run.fsck_consistent = True
    run.resume_rc = 0
    run.identical = True
    run.total_points = 2
    run.resumed_points = 1
    run.recomputed_points = 1
    for name, value in overrides.items():
        setattr(run, name, value)
    return run


def test_verdict_requires_every_leg_of_the_protocol():
    assert _verdict().ok
    assert not _verdict(kill_rc=0).ok          # child survived the kill
    assert not _verdict(kill_rc=1).ok          # died, but not by SIGKILL
    assert not _verdict(fsck_consistent=False).ok
    assert not _verdict(resume_rc=1).ok
    assert not _verdict(identical=False).ok
    assert not _verdict(error="lost child").ok


def test_verdict_demands_strictly_fewer_recomputes_after_a_checkpoint():
    # The killed child checkpointed a point: the resume must not redo
    # the whole grid.
    assert not _verdict(resumed_points=1, recomputed_points=2).ok
    # Killed before any checkpoint landed: a full recompute is honest.
    assert _verdict(resumed_points=0, recomputed_points=2).ok


def test_crash_chaos_rejects_unknown_sites():
    with pytest.raises(ValueError, match="unknown crash sites"):
        run_crash_chaos(sites=("disk.read",))


def test_kill9_store_fscks_consistent_and_resume_is_bit_identical():
    """One real experiment: SIGKILL a child sweep inside the disk-write
    window, then assert the store is (or repairs to) consistent and the
    resumed run reproduces the baseline digests."""
    report = run_crash_chaos(
        designs=("fpu",), seeds=(0,), sites=("proc.kill.write",),
        cycles=8, opt_level=1,
    )
    assert report.ok, report.render()
    (run,) = report.runs
    assert run.kill_rc == -9
    assert run.fsck_consistent is True
    assert run.resume_rc == 0
    assert run.identical is True
    payload = report.to_dict()
    assert payload["ok"] is True
    assert payload["runs"][0]["site"] == "proc.kill.write"
    assert "every killed store fsck-consistent" in report.render()

"""Persistent codegen: step-function source survives the process.

``compile_netlist`` persists its generated source (plus slot layout)
through :class:`CodegenStore` keyed by ``(structural_hash, lanes)``, so
a warm process skips levelization and code generation entirely — the
``codegen.disk_hit`` / ``codegen.store`` counters and the
``CompiledNetlist.from_store`` flag make the path observable.  Corrupt
entries are quarantined by the underlying ``DiskCache`` and regenerated,
never served.
"""

import os

import pytest

from repro.driver import CodegenStore, CompileSession, DiskCache
from repro.rtl import clear_compile_memo, compile_netlist
from repro.rtl import Module


@pytest.fixture(autouse=True)
def _fresh_memo():
    # The in-process memo would otherwise short-circuit the store and
    # leak compilations between tests.
    clear_compile_memo()
    yield
    clear_compile_memo()


SOURCE = """
comp Double[#W]<G:1>(x: [G, G+1] #W) -> (y: [G+1, G+2] #W) {
  s := new Add[#W]<G>(x, x);
  r := new Reg[#W]<G>(s.out);
  y = r.out;
}
"""


def _adder(width=8) -> Module:
    module = Module("adder")
    a = module.add_input("a", width)
    b = module.add_input("b", width)
    out = module.add_output("out", width)
    module.add_cell("add", {"a": a, "b": b, "out": out})
    return module


def _store(tmp_path) -> CodegenStore:
    return CodegenStore(DiskCache(str(tmp_path)))


def test_codegen_round_trips_through_the_store(tmp_path):
    store = _store(tmp_path)
    module = _adder()
    cold = compile_netlist(module, lanes=4, store=store)
    assert not cold.from_store
    assert store.disk.stats.counter("codegen.store") == 1

    clear_compile_memo()
    warm = compile_netlist(_adder(), lanes=4, store=store)
    assert warm.from_store
    assert warm.source == cold.source
    assert warm.slot_of == cold.slot_of
    assert warm.stride == cold.stride
    assert store.disk.stats.counter("codegen.disk_hit") == 1
    # The rematerialized program still computes.
    from repro.rtl import differential_check

    assert differential_check(_adder(), cycles=32, seed=2, lanes=4)


def test_codegen_entries_are_keyed_per_lane_count(tmp_path):
    store = _store(tmp_path)
    compile_netlist(_adder(), store=store)  # scalar
    compile_netlist(_adder(), lanes=2, store=store)
    compile_netlist(_adder(), lanes=8, store=store)
    assert store.disk.stats.counter("codegen.store") == 3
    clear_compile_memo()
    assert compile_netlist(_adder(), lanes=8, store=store).from_store
    assert store.disk.stats.counter("codegen.disk_hit") == 1


def test_corrupt_codegen_entry_is_quarantined_and_regenerated(tmp_path):
    store = _store(tmp_path)
    compile_netlist(_adder(), lanes=4, store=store)
    entries = []
    for directory, _, files in os.walk(str(tmp_path)):
        entries += [
            os.path.join(directory, f) for f in files if f.endswith(".pkl")
        ]
    assert len(entries) == 1
    with open(entries[0], "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        handle.seek(size // 2)
        handle.write(b"\xde\xad\xbe\xef")

    clear_compile_memo()
    compiled = compile_netlist(_adder(), lanes=4, store=store)
    # Regenerated, not served from the poisoned file...
    assert not compiled.from_store
    assert store.disk.stats.counter("disk.corrupt") == 1
    # ...and the quarantine re-wrote a good entry for the next process.
    assert store.disk.stats.counter("codegen.store") == 2
    clear_compile_memo()
    assert compile_netlist(_adder(), lanes=4, store=store).from_store


def test_warm_session_loads_codegen_instead_of_generating(tmp_path):
    """Same netlist, *different* simulate parameters: the simulate
    artifact misses but the compiled step source still comes from disk."""
    cold = CompileSession(
        cache_dir=str(tmp_path), sim_backend="compiled", sim_lanes=3
    )
    cold.simulate(SOURCE, "Double", {"#W": 8}, cycles=16)
    assert cold.stats.counter("codegen.store") >= 1

    clear_compile_memo()
    warm = CompileSession(
        cache_dir=str(tmp_path), sim_backend="compiled", sim_lanes=3
    )
    warm.simulate(SOURCE, "Double", {"#W": 8}, cycles=24)  # new trace
    assert warm.stats.miss_count("simulate") == 1
    assert warm.stats.counter("codegen.disk_hit") >= 1
    assert warm.stats.counter("codegen.store") == 0


def test_scalar_and_batched_sessions_share_nothing_but_agree(tmp_path):
    session = CompileSession(cache_dir=str(tmp_path), sim_backend="compiled")
    single = session.simulate(SOURCE, "Double", {"#W": 8}, cycles=20).value
    batch = session.simulate(
        SOURCE, "Double", {"#W": 8}, cycles=20, lanes=3
    ).value
    assert batch.lanes == 3 and single.lanes == 1
    assert batch.lane_cycles == 60
    # Lane 0 of the batch is the single-lane trace for the same seed.
    assert batch.outputs[0] == single.outputs

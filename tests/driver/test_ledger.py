"""The run ledger: checkpoint, replay, identity, digests, drains."""

import functools
import json
import os
import signal

import pytest

from repro.driver import CacheStats, RunLedger, graceful_drain, point_key
from repro.driver.ledger import describe_fn, iter_run_ids


def _fn(session, point):
    return point


def test_record_then_lookup_round_trips(tmp_path):
    stats = CacheStats()
    ledger = RunLedger(str(tmp_path), "run-a", stats)
    key = point_key(_fn, 7)
    assert ledger.lookup(key) == (False, None)
    assert ledger.record(key, {"value": 7})
    assert ledger.lookup(key) == (True, {"value": 7})
    assert key in ledger and len(ledger) == 1
    assert stats.counter("checkpoint.miss") == 1
    assert stats.counter("checkpoint.hit") == 1
    assert stats.counter("checkpoint.store") == 1
    # Re-recording an already-checkpointed key is a cheap no-op.
    assert ledger.record(key, {"value": 7})
    assert stats.counter("checkpoint.store") == 1
    ledger.close()


def test_fresh_run_refuses_an_existing_ledger(tmp_path):
    RunLedger(str(tmp_path), "run-a").close()
    with pytest.raises(FileExistsError, match="pass --resume"):
        RunLedger(str(tmp_path), "run-a")


def test_resume_replays_recorded_points(tmp_path):
    first = RunLedger(str(tmp_path), "run-a")
    keys = [point_key(_fn, n) for n in range(3)]
    for n, key in enumerate(keys):
        first.record(key, n * 10)
    first.close()

    resumed = RunLedger(str(tmp_path), "run-a", resume=True)
    assert len(resumed) == 3
    for n, key in enumerate(keys):
        assert resumed.lookup(key) == (True, n * 10)
    assert resumed.results_digest == first.results_digest
    resumed.close()


def test_torn_tail_line_is_tolerated(tmp_path):
    ledger = RunLedger(str(tmp_path), "run-a")
    key = point_key(_fn, 1)
    ledger.record(key, "kept")
    ledger.close()
    with open(ledger.manifest_path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "point", "key": "torn')  # killed mid-append

    resumed = RunLedger(str(tmp_path), "run-a", resume=True)
    assert len(resumed) == 1
    assert resumed.lookup(key) == (True, "kept")
    resumed.close()


def test_missing_side_file_degrades_to_a_recompute(tmp_path):
    ledger = RunLedger(str(tmp_path), "run-a")
    key = point_key(_fn, 1)
    ledger.record(key, "gone")
    ledger.close()
    os.remove(os.path.join(ledger.points_dir, f"{key}.pkl"))
    resumed = RunLedger(str(tmp_path), "run-a", resume=True)
    assert len(resumed) == 0  # dropped checkpoint, never a wrong result
    resumed.close()


def test_version_mismatch_refuses_loudly(tmp_path):
    ledger = RunLedger(str(tmp_path), "run-a")
    ledger.close()
    with open(ledger.manifest_path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(
            {"type": "header", "version": 99, "run_id": "run-a"}
        ) + "\n")
    with pytest.raises(ValueError, match="version"):
        RunLedger(str(tmp_path), "run-a", resume=True)


def test_headerless_manifest_refuses(tmp_path):
    ledger = RunLedger(str(tmp_path), "run-a")
    ledger.close()
    with open(ledger.manifest_path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(
            {"type": "point", "key": "k", "sha256": "0" * 64, "seq": 1}
        ) + "\n")
    with pytest.raises(ValueError, match="no intact header"):
        RunLedger(str(tmp_path), "run-a", resume=True)


@pytest.mark.parametrize("bad", ["", ".", "..", "a/b"])
def test_hostile_run_ids_are_rejected(tmp_path, bad):
    with pytest.raises(ValueError, match="invalid run id"):
        RunLedger(str(tmp_path), bad)


def test_results_digest_is_order_independent(tmp_path):
    forward = RunLedger(str(tmp_path), "fwd")
    backward = RunLedger(str(tmp_path), "bwd")
    keys = [point_key(_fn, n) for n in range(4)]
    for n, key in enumerate(keys):
        forward.record(key, n)
    for n, key in reversed(list(enumerate(keys))):
        backward.record(key, n)
    assert forward.results_digest == backward.results_digest
    assert forward.digest_map() == backward.digest_map()
    forward.close()
    backward.close()


def test_point_key_separates_functions_points_and_bindings():
    assert point_key(_fn, 1) == point_key(_fn, 1)
    assert point_key(_fn, 1) != point_key(_fn, 2)
    narrow = functools.partial(_fn, width=8)
    wide = functools.partial(_fn, width=16)
    assert point_key(narrow, 1) != point_key(wide, 1)
    assert "partial" in describe_fn(narrow)
    assert describe_fn(_fn).endswith(":_fn")


def test_graceful_drain_turns_sigterm_into_keyboard_interrupt():
    previous = signal.getsignal(signal.SIGTERM)
    stats = CacheStats()
    with pytest.raises(KeyboardInterrupt, match="drain on signal"):
        with graceful_drain(stats) as drain:
            os.kill(os.getpid(), signal.SIGTERM)
    assert drain.drained
    assert stats.counter("checkpoint.drain") == 1
    assert signal.getsignal(signal.SIGTERM) == previous


def test_iter_run_ids_lists_only_real_ledgers(tmp_path):
    RunLedger(str(tmp_path), "run-b").close()
    RunLedger(str(tmp_path), "run-a").close()
    os.makedirs(os.path.join(str(tmp_path), "runs", "empty-dir"))
    assert list(iter_run_ids(str(tmp_path))) == ["run-a", "run-b"]
    assert list(iter_run_ids(str(tmp_path / "nowhere"))) == []

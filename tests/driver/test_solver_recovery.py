"""Solver budget exhaustion: the degradation rung and attribution.

A DPLL(T) budget exhaustion mid-typecheck must degrade (fresh one-shot
solve, same verdict) rather than fail; only a double exhaustion escapes,
and then the error names the component and the canonical obligation
digest so the breakage is reproducible from the message alone.
"""

import pytest

from repro import smt
from repro.designs.catalog import design_point
from repro.driver import CompileSession
from repro.lilac.typecheck.check import clear_obligation_memo


def _cold_solver_state():
    """Budget faults only fire on queries that actually *solve*; the
    process-global verdict memos would answer them silently."""
    clear_obligation_memo()
    smt.clear_solver_caches()


def test_with_context_attaches_component_and_digest():
    raw = smt.SolverError("DPLL(T) conflict budget exhausted")
    assert raw.component is None and raw.digest is None
    dressed = raw.with_context(component="FPU", digest="abc123")
    assert dressed.component == "FPU"
    assert dressed.digest == "abc123"
    assert "component=FPU" in str(dressed)
    assert "obligation=abc123" in str(dressed)
    # The innermost attribution wins over later layers.
    redressed = dressed.with_context(component="Outer", digest="zzz")
    assert redressed.component == "FPU"
    assert redressed.digest == "abc123"


def test_injected_budget_exhaustion_degrades_not_fails():
    source, _, _, _ = design_point("fpu")

    _cold_solver_state()
    clean = CompileSession().typecheck(source).value

    _cold_solver_state()
    session = CompileSession(fault_plan="solver.budget")
    with pytest.warns(RuntimeWarning, match="degrading to a fresh"):
        faulted = session.typecheck(source).value

    assert session.stats.counter("fault.injected.solver.budget") == 1
    assert session.stats.counter("degrade.solver") == 1
    # The degradation rung costs a re-solve, never a verdict.
    assert [r.ok for r in faulted] == [r.ok for r in clean]
    assert [r.obligations for r in faulted] == [
        r.obligations for r in clean
    ]


def test_double_exhaustion_escapes_with_attribution(monkeypatch):
    """With a one-conflict budget the one-shot fallback re-exhausts:
    the escaping error must carry the attribution context."""
    monkeypatch.setenv("REPRO_SMT_BUDGET", "1")
    _cold_solver_state()
    source, _, _, _ = design_point("fpu")
    with pytest.warns(RuntimeWarning, match="degrading to a fresh"):
        with pytest.raises(smt.SolverError) as caught:
            CompileSession().typecheck(source)
    error = caught.value
    assert error.component, "escaping budget error must name a component"
    assert error.digest and len(error.digest) == 64
    assert f"component={error.component}" in str(error)
    assert f"obligation={error.digest}" in str(error)

"""Persistent activity profiles: the disk cache's "profile" stage.

:class:`ProfileStore` keys payloads ``(structural_hash,
PROFILE_VERSION)`` and validates on load *before* counting, so the
``profile.disk_hit`` / ``profile.disk_miss`` counters reflect usable
entries only.  Corrupt pickles are quarantined by the underlying
``DiskCache`` and re-collected, never served.
"""

import os

from repro.driver import DiskCache, ProfileStore
from repro.rtl import Module, collect_profile
from repro.rtl import profile as profile_mod


def _toy(width=8) -> Module:
    module = Module("toy")
    a = module.add_input("a", width)
    b = module.add_input("b", width)
    out = module.add_output("out", width)
    q = module.register(module.binop("xor", a, b))
    module.add_cell("add", {"a": q, "b": a, "out": out})
    module.validate()
    return module


def _store(tmp_path) -> ProfileStore:
    return ProfileStore(DiskCache(str(tmp_path)))


def test_profiles_round_trip_through_the_store(tmp_path):
    store = _store(tmp_path)
    module = _toy()
    profile = collect_profile(module, cycles=32)
    structural = module.structural_hash()

    assert store.load(structural) is None  # cold: nothing persisted yet
    assert store.disk.stats.counter("profile.disk_miss") == 1
    assert store.save(profile.to_payload())
    assert store.disk.stats.counter("profile.store") == 1

    payload = store.load(structural)
    assert store.disk.stats.counter("profile.disk_hit") == 1
    revived = profile_mod.SimProfile.from_payload(payload)
    assert revived.digest() == profile.digest()


def test_load_validates_before_counting_a_hit(tmp_path):
    store = _store(tmp_path)
    profile = collect_profile(_toy(), cycles=32)
    assert store.save(profile.to_payload())
    # A payload persisted for one design must never be served for
    # another: the structural-hash check fails and the lookup counts as
    # a miss even though the disk read succeeded.
    other = _toy(width=16)
    assert store.load(other.structural_hash()) is None
    assert store.disk.stats.counter("profile.disk_hit") == 0
    assert store.disk.stats.counter("profile.disk_miss") == 1


def test_entries_are_keyed_by_profile_version(tmp_path, monkeypatch):
    store = _store(tmp_path)
    module = _toy()
    profile = collect_profile(module, cycles=32)
    assert store.save(profile.to_payload())
    assert store.load(module.structural_hash()) is not None
    # A semantics bump makes every persisted observation a clean miss
    # instead of silently steering new plans.
    monkeypatch.setattr(
        profile_mod, "PROFILE_VERSION", profile_mod.PROFILE_VERSION + 1
    )
    assert store.load(module.structural_hash()) is None
    assert store.disk.stats.counter("profile.disk_miss") == 1


def test_corrupt_profile_entry_is_quarantined(tmp_path):
    store = _store(tmp_path)
    module = _toy()
    assert store.save(collect_profile(module, cycles=32).to_payload())
    entries = []
    for directory, _, files in os.walk(str(tmp_path)):
        entries += [
            os.path.join(directory, f) for f in files if f.endswith(".pkl")
        ]
    assert len(entries) == 1
    with open(entries[0], "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        handle.seek(size // 2)
        handle.write(b"\xde\xad\xbe\xef")

    assert store.load(module.structural_hash()) is None
    assert store.disk.stats.counter("disk.corrupt") == 1
    assert store.disk.stats.counter("profile.disk_miss") == 1
    # The slot is reusable after quarantine.
    assert store.save(collect_profile(module, cycles=32).to_payload())
    assert store.load(module.structural_hash()) is not None

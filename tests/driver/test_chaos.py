"""The chaos harness: seeded plans, bit-identity, accounting, containment.

The heavyweight end-to-end sweep (six designs, three groups) runs via
``repro chaos`` in CI; these tests keep the harness honest on a small
design subset so the suite stays fast.
"""

import pytest

from repro.driver import CRASH_SITES, FAULT_SITES, SITE_GROUPS, run_chaos
from repro.driver.chaos import ChaosRun, _run_once


def test_site_groups_plus_crash_sites_partition_fault_sites():
    """Every fault site is chaos-tested by exactly one group — except
    the ``proc.kill.*`` crash sites, which SIGKILL the process and are
    exercised by the separate ``repro chaos --crash`` harness."""
    seen = [site for sites in SITE_GROUPS.values() for site in sites]
    seen.extend(CRASH_SITES)
    assert sorted(seen) == sorted(FAULT_SITES)
    assert len(seen) == len(set(seen))


def test_chaos_sweep_is_bit_identical_and_accounted():
    report = run_chaos(
        designs=("fpu", "risc"), seeds=(0,), cycles=24, count=1
    )
    assert report.ok
    assert report.baseline.error is None
    assert {run.label for run in report.runs} == {
        "disk@seed=0", "worker@seed=0", "solver@seed=0"
    }
    for run in report.runs:
        assert run.error is None
        assert run.identical is True
        assert run.accounted
        # Judged against a baseline that carries both payload parts.
        assert run.digests
    # The disk group schedules five sites over a store-heavy sweep:
    # some of them must actually have fired.
    disk = next(r for r in report.runs if r.label == "disk@seed=0")
    assert sum(disk.injected.values()) >= 1
    assert disk.fired == disk.injected

    payload = report.to_dict()
    assert payload["ok"] is True
    assert len(payload["runs"]) == 3
    rendered = report.render()
    assert "all runs bit-identical, all faults accounted" in rendered
    assert "disk@seed=0" in rendered


def test_escaping_errors_are_contained_and_fail_the_report():
    report = run_chaos(designs=("no-such-design",), seeds=(), cycles=8)
    assert report.baseline.error is not None
    assert not report.ok
    assert "CHAOS FAILURES" in report.render()


def test_unknown_group_is_rejected():
    with pytest.raises(ValueError, match="unknown chaos groups"):
        run_chaos(designs=("fpu",), groups=("disk", "cosmic-rays"))


def test_runs_diverging_from_baseline_are_flagged():
    baseline = ChaosRun(
        "baseline", None, None,
        {"fpu": {"trace": "aaa"}}, {}, {}, {}, {},
    )
    same = ChaosRun(
        "disk@seed=0", "disk.read", 0,
        {"fpu": {"trace": "aaa"}}, {}, {}, {}, {},
    )
    same.judge(baseline)
    assert same.identical is True and same.ok
    diverged = ChaosRun(
        "disk@seed=1", "disk.read", 1,
        {"fpu": {"trace": "bbb"}}, {}, {}, {}, {},
    )
    diverged.judge(baseline)
    assert diverged.identical is False and not diverged.ok
    empty = ChaosRun("disk@seed=2", "disk.read", 2, {}, {}, {}, {}, {})
    empty.judge(baseline)
    assert empty.identical is False  # produced nothing to compare


def test_unaccounted_fires_fail_the_run():
    run = ChaosRun(
        "disk@seed=0", "disk.read", 0,
        {"fpu": {"trace": "aaa"}},
        fired={"disk.read": 2},
        injected={"disk.read": 1},
        degrades={}, retries={},
    )
    assert not run.accounted and not run.ok


def test_run_once_leaves_no_plan_installed():
    from repro.driver import FaultPlan, faults

    plan = FaultPlan.seeded(0, sites=("disk.read",), count=1)
    _run_once(
        "probe", plan, ("fpu",), 8, 2, False, "interp", None, "thread"
    )
    assert faults.active_plan() is None

"""Tests for the evaluation harness (fast subsets of each artifact)."""

from repro.evalx import figure8, figure13, table1, table2, table3
from repro.synth import format_table


def test_table2_matrix():
    rows = table2.classify()
    table2.check_shape(rows)
    text = table2.render(rows)
    assert "Latency Abstract (LA)" in text


def test_table3_features_match_paper():
    rows = table3.build_rows()
    table3.check_shape(rows)
    computed = dict(rows)
    assert computed["PipelineC"] == "in-dep"
    assert computed["Aetherling"] == "in-dep, out-dep, ii-gt-1, multi"


def test_table3_feature_derivation_details():
    features = table3.compute_features()
    assert "out-dep" in features["FloPoCo"]
    assert "ii-gt-1" not in features["FloPoCo"]
    assert "multi" in features["Aetherling"]
    # Vivado divider family needs out-dep (High-radix table timing).
    assert "out-dep" in features["Vivado Divider"]


def test_table1_single_point_shape():
    """One design point, asserting the LI-overhead direction."""
    rows = table1.build_rows()
    li, ls = rows[0].report, rows[1].report
    assert li.luts > ls.luts
    assert li.registers > ls.registers
    assert li.fmax_mhz < ls.fmax_mhz


def test_figure13_single_point():
    rows = figure13.build_rows(parallelisms=(16,))
    row = rows[0]
    assert row.rv.registers > row.lilac.registers
    assert row.rv.luts > row.lilac.luts
    text = figure13.render(rows)
    assert "Lilac / RV (16)" in text


def test_figure8_subset_runs():
    rows = figure8.build_rows(designs=figure8.DESIGNS[:1])
    assert rows[0].ok
    assert rows[0].lines > 20
    assert "RISC" in figure8.render(rows)


def test_line_counter_ignores_comments():
    assert figure8._count_lines("// comment\n\ncode;\n") == 1

"""The optimization ablation: differential simulation across designs."""

import pytest

from repro.evalx import ablation
from repro.rtl import clear_vector_memo


def test_ablation_rows_cover_the_catalog_and_hold_shape():
    rows = ablation.build_rows(cycles=32)
    assert [row.name for row in rows] == sorted(
        ["fpu", "fft", "flofft", "risc", "gbp", "blas"]
    )
    stats = ablation.check_shape(rows)
    assert len(stats) == len(rows)
    # Differential simulation: every design bit-identical across levels
    # and across simulation backends (interpreter vs compiled).
    assert all(row.equivalent for row in rows)
    assert all(row.backends_agree for row in rows)
    # ... and both lane engines against the per-lane reference traces.
    assert all(row.lanes_agree for row in rows)
    assert all(row.vector_agree for row in rows)
    # The headline claim: cleanup passes shrink at least three designs.
    assert sum(1 for row in rows if row.cleanup_removed() > 0) >= 3


def test_ablation_render_marks_equivalence():
    row = ablation.AblationRow(
        "toy", 100, 80, True, 2.0, 1.0, {"dead-cell-elim": 20}
    )
    assert abs(row.reduction - 0.2) < 1e-12
    assert row.speedup == 2.0
    assert row.cleanup_removed() == 20
    text = ablation.render([row])
    assert "toy" in text and "20.0%" in text and "yes" in text


def test_ablation_check_shape_rejects_divergence():
    bad = ablation.AblationRow("toy", 100, 100, False, 1.0, 1.0, {})
    try:
        ablation.check_shape([bad])
    except AssertionError as error:
        assert "unsound" in str(error)
    else:
        raise AssertionError("divergent row should fail the shape check")


def test_ablation_check_shape_rejects_backend_divergence():
    bad = ablation.AblationRow(
        "toy", 100, 90, True, 1.0, 1.0, {}, backends_agree=False
    )
    try:
        ablation.check_shape([bad])
    except AssertionError as error:
        assert "code generation is unsound" in str(error)
    else:
        raise AssertionError("backend divergence should fail the check")
    text = ablation.render([bad])
    assert "NO" in text


def test_ablation_check_shape_rejects_vector_divergence():
    bad = ablation.AblationRow(
        "toy", 100, 90, True, 1.0, 1.0, {}, vector_agree=False
    )
    try:
        ablation.check_shape([bad])
    except AssertionError as error:
        assert "vector codegen is unsound" in str(error)
    else:
        raise AssertionError("vector divergence should fail the check")


def test_ablation_check_shape_rejects_pgo_divergence():
    bad = ablation.AblationRow(
        "toy", 100, 90, True, 1.0, 1.0, {}, o3_agree=False
    )
    with pytest.raises(AssertionError, match="PGO specialization is unsound"):
        ablation.check_shape([bad])
    text = ablation.render([bad])
    assert "NO" in text


def test_ablation_holds_under_stdlib_vector_flavor(monkeypatch):
    """The whole differential battery — including the vector column and
    the profile-guided -O3 column — re-run with the vector backend
    forced onto the pure-stdlib ``array('Q')`` flavor."""
    monkeypatch.setenv("REPRO_VECTOR_FLAVOR", "stdlib")
    clear_vector_memo()  # drop programs compiled under another flavor
    try:
        rows = ablation.build_rows(cycles=16)
        ablation.check_shape(rows)
        assert all(row.vector_agree for row in rows)
        assert all(row.o3_agree for row in rows)
    finally:
        clear_vector_memo()

"""Tests for the generator stand-ins: correct datapaths, correct reported
timing, and integration through their Lilac LA interfaces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import GeneratorRegistry, GeneratorError, default_registry
from repro.generators.aetherling import (
    AetherlingGenerator,
    GAUSS_4X4,
    conv_timing,
    golden_conv,
)
from repro.generators.flopoco import FloPoCoGenerator
from repro.generators.pipelinec import PipelineCGenerator
from repro.generators.spiral import SpiralFftGenerator
from repro.generators.vivado_div import (
    VivadoDividerGenerator,
    high_radix_latency,
    radix2_latency,
)
from repro.generators.vivado_fft import VivadoFftGenerator
from repro.generators.vivado_mult import VivadoMultGenerator
from repro.generators.xls import XlsGenerator, xls_latency
from repro.lilac.elaborate import Elaborator
from repro.lilac.run import TransactionRunner, pack_elements, unpack_elements
from repro.lilac.stdlib import stdlib_program
from repro.lilac.typecheck import check_program
from repro.generators.interfaces import (
    ALL_INTERFACES,
    AETHERLING_INTERFACE,
    VIVADO_DIV_INTERFACES,
)
from repro.rtl import Simulator


def run_module(module, stream):
    return Simulator(module).run(stream)


# ---------------------------------------------------------------------------
# Vivado multiplier.


def test_vivado_mult_exact_latency():
    registry = GeneratorRegistry().register(VivadoMultGenerator())
    for latency in (1, 2, 5):
        generated = registry.run("vivado-mult", "Mult", {"#W": 16, "#L": latency})
        outs = run_module(
            generated.module, [{"a": 25, "b": 11}] + [{}] * latency
        )
        assert outs[latency]["o"] == 275


def test_vivado_mult_rejects_zero_latency():
    registry = GeneratorRegistry().register(VivadoMultGenerator())
    with pytest.raises(GeneratorError):
        registry.run("vivado-mult", "Mult", {"#W": 16, "#L": 0})


# ---------------------------------------------------------------------------
# Vivado dividers (Figure 9).


def divide_check(module, latency, n, d, width):
    outs = run_module(module, [{"n": n, "d": d}] + [{}] * latency)
    expected = (n // d) & ((1 << width) - 1)
    assert outs[latency]["q"] == expected, (n, d, outs[latency]["q"], expected)


def test_lutmult_divider():
    registry = GeneratorRegistry().register(VivadoDividerGenerator())
    generated = registry.run("vivado-div", "LutMult", {"#W": 8})
    for n, d in [(200, 7), (255, 1), (9, 3), (5, 9)]:
        divide_check(generated.module, 8, n, d, 8)


def test_lutmult_rejects_wide():
    registry = GeneratorRegistry().register(VivadoDividerGenerator())
    with pytest.raises(GeneratorError):
        registry.run("vivado-div", "LutMult", {"#W": 16})


def test_radix2_latency_formulas():
    assert radix2_latency(12, 3, True) == 17
    assert radix2_latency(12, 1, True) == 16
    assert radix2_latency(12, 3, False) == 15
    assert radix2_latency(12, 1, False) == 14


def test_radix2_divider_computes():
    registry = GeneratorRegistry().register(VivadoDividerGenerator())
    generated = registry.run(
        "vivado-div", "Rad2", {"#W": 12, "#II": 3, "#Fr": 1}
    )
    assert generated.out_params["#L"] == 17
    for n, d in [(1000, 7), (4095, 63)]:
        divide_check(generated.module, 17, n, d, 12)


def test_radix2_rejects_even_ii():
    registry = GeneratorRegistry().register(VivadoDividerGenerator())
    with pytest.raises(GeneratorError):
        registry.run("vivado-div", "Rad2", {"#W": 12, "#II": 2, "#Fr": 0})


def test_high_radix_table():
    assert high_radix_latency(16) == 12
    assert high_radix_latency(18) == 12  # rounds down to the 16-row
    assert high_radix_latency(32) == 18
    assert high_radix_latency(64) == 30


def test_high_radix_divider_computes():
    registry = GeneratorRegistry().register(VivadoDividerGenerator())
    generated = registry.run("vivado-div", "HighRad", {"#W": 16})
    latency = generated.out_params["#L"]
    assert latency == 12
    for n, d in [(50000, 123), (65535, 255)]:
        divide_check(generated.module, latency, n, d, 16)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(0, 255), d=st.integers(1, 255))
def test_divider_matches_python_division(n, d):
    registry = GeneratorRegistry().register(VivadoDividerGenerator())
    generated = registry.run("vivado-div", "LutMult", {"#W": 8})
    divide_check(generated.module, 8, n, d, 8)


# ---------------------------------------------------------------------------
# Aetherling convolution.


def test_conv_timing_model():
    assert conv_timing(16) == {"#N": 16, "#II": 1, "#H": 1, "#L": 4}
    assert conv_timing(1) == {"#N": 1, "#II": 2, "#H": 2, "#L": 8}
    assert conv_timing(4) == {"#N": 4, "#II": 2, "#H": 2, "#L": 6}


def test_conv_full_parallel_matches_golden():
    generated = GeneratorRegistry().register(AetherlingGenerator(16)).run(
        "aetherling", "AethConv", {"#W": 16}
    )
    timing = generated.out_params
    sim = Simulator(generated.module)
    pixels = list(range(16, 32))
    packed = pack_elements(pixels, 16)
    stream = [{"val_i": 1, "in": packed}] + [{"val_i": 0}] * timing["#L"]
    outs = sim.run(stream)
    # Window after the transaction: elements enter at 0..15 reversed order
    # (element i lands at window position i).
    result = unpack_elements(outs[timing["#L"]]["out"], 16, 16)
    expected = golden_conv(pixels, 16)
    assert all(v == expected for v in result)


def test_conv_chunked_window_shift():
    generated = GeneratorRegistry().register(AetherlingGenerator(4)).run(
        "aetherling", "AethConv", {"#W": 16}
    )
    timing = generated.out_params
    assert timing["#N"] == 4 and timing["#II"] == 2
    sim = Simulator(generated.module)
    chunks = [[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12], [13, 14, 15, 16]]
    stream = []
    for chunk in chunks:
        stream.append({"val_i": 1, "in": pack_elements(chunk, 16)})
        stream.extend({"val_i": 0} for _ in range(timing["#II"] - 1))
    stream.extend({"val_i": 0} for _ in range(timing["#L"] + 1))
    outs = sim.run(stream)
    # After the 4th chunk the window holds [13..16, 9..12, 5..8, 1..4]
    # (newest at the lowest indices).
    window = chunks[3] + chunks[2] + chunks[1] + chunks[0]
    expected = golden_conv(window, 16)
    sample_cycle = 3 * timing["#II"] + timing["#L"]
    got = unpack_elements(outs[sample_cycle]["out"], 16, 4)
    assert all(v == expected for v in got)


def test_gauss_kernel_normalized():
    assert sum(GAUSS_4X4) == 256


# ---------------------------------------------------------------------------
# PipelineC / XLS / Spiral / Vivado FFT.


def test_pipelinec_requested_latency():
    registry = GeneratorRegistry().register(PipelineCGenerator())
    generated = registry.run("pipelinec", "PipeAdd", {"#W": 8, "#L": 3})
    outs = run_module(generated.module, [{"l": 40, "r": 2}] + [{}] * 3)
    assert outs[3]["o"] == 42


def test_xls_mac():
    registry = GeneratorRegistry().register(XlsGenerator())
    generated = registry.run("xls", "XlsMac", {"#W": 16, "#II": 3})
    latency = generated.out_params["#L"]
    assert latency == xls_latency(3) == 5
    outs = run_module(
        generated.module, [{"a": 6, "b": 7, "c": 100}] + [{}] * latency
    )
    assert outs[latency]["o"] == 142


def test_spiral_fft_reports_ii_and_latency():
    registry = GeneratorRegistry().register(SpiralFftGenerator(streaming_width=4))
    generated = registry.run("spiral", "SpiralFft", {"#LogN": 4, "#W": 16})
    assert generated.out_params["#II"] == 4  # 16 points / width 4
    assert generated.out_params["#L"] == 4 + 4 + 1


def test_butterfly_is_walsh_hadamard():
    registry = GeneratorRegistry().register(SpiralFftGenerator(streaming_width=4))
    generated = registry.run("spiral", "SpiralFft", {"#LogN": 2, "#W": 16})
    latency = generated.out_params["#L"]
    xs = [1, 2, 3, 4]
    outs = run_module(
        generated.module,
        [{"x": pack_elements(xs, 16)}] + [{}] * latency,
    )
    got = unpack_elements(outs[latency]["y"], 16, 4)
    mask = 0xFFFF
    # 4-point WHT (natural order): [a+b+c+d, a-b+c-d, a+b-c-d, a-b-c+d]
    a, b, c, d = xs
    expected = [
        (a + b + c + d) & mask,
        (a - b + c - d) & mask,
        (a + b - c - d) & mask,
        (a - b - c + d) & mask,
    ]
    assert got == expected


def test_vivado_fft_table_lookup():
    registry = GeneratorRegistry().register(VivadoFftGenerator("artix7"))
    generated = registry.run("vivado-fft", "XFft", {"#LogN": 3, "#W": 16})
    assert generated.out_params["#L"] == 25
    registry2 = GeneratorRegistry().register(VivadoFftGenerator("kintex7"))
    generated2 = registry2.run("vivado-fft", "XFft", {"#LogN": 3, "#W": 16})
    assert generated2.out_params["#L"] == 21


def test_vivado_fft_unknown_target():
    registry = GeneratorRegistry().register(VivadoFftGenerator("unknown"))
    with pytest.raises(GeneratorError):
        registry.run("vivado-fft", "XFft", {"#LogN": 3, "#W": 16})


# ---------------------------------------------------------------------------
# LA interface integration (typecheck + elaborate through the interfaces).


def test_all_interfaces_parse_and_typecheck():
    program = stdlib_program(ALL_INTERFACES)
    # gen components have no body; checking the program validates any comp
    # components and the declarations themselves.
    reports = check_program(program, raise_on_error=False)
    assert all(r.ok for r in reports)


def test_divider_wrapper_elaborates_each_architecture():
    """Figure 9d: width selects the divider implementation."""
    source = VIVADO_DIV_INTERFACES + """
    comp DivWrap[#W]<G:1>(n: [G, G+1] #W, d: [G, G+1] #W)
        -> (q: [G+#L, G+#L+1] #W) with { some #L where #L > 0; } {
      if #W < 12 {
        dv := new LutMult[#W]<G>(n, d);
        q = dv.q;
        #L := 8;
      } else { if #W < 16 {
        dv := new Rad2[#W, 1, 0]<G>(n, d);
        q = dv.q;
        #L := #W + 2;
      } else {
        D := new HighRad[#W];
        dv := D<G>(n, d);
        q = dv.q;
        #L := D::#L;
      } }
    }
    """
    program = stdlib_program(source)
    elaborator = Elaborator(program, default_registry())
    for width, expected_latency in [(8, 8), (12, 14), (32, 18)]:
        elab = elaborator.elaborate("DivWrap", {"#W": width})
        assert elab.out_params["#L"] == expected_latency
        runner = TransactionRunner(elab)
        results = runner.run([{"n": 100, "d": 7}])
        assert results[0]["q"] == 100 // 7


def test_aetherling_through_lilac_interface():
    program = stdlib_program(AETHERLING_INTERFACE + """
    comp ConvTop[#W]<G:#II>(
        px[#N]: [G, G+#H] #W
    ) -> (blurred: [G+#L, G+#L+1] #W) with {
        some #N where #N > 0;
        some #L where #L > 0;
        some #H where #H > 0;
        some #II where #II >= #H;
    } {
      C := new AethConv[#W];
      c := C<G>(px);
      blurred = c.out{0};
      #N := C::#N; #L := C::#L; #H := C::#H; #II := C::#II;
    }
    """)
    registry = GeneratorRegistry().register(AetherlingGenerator(4))
    elaborator = Elaborator(program, registry)
    elab = elaborator.elaborate("ConvTop", {"#W": 16})
    assert elab.out_params["#N"] == 4
    assert elab.delay == 2
    runner = TransactionRunner(elab)
    chunks = [[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12], [13, 14, 15, 16]]
    results = runner.run([{"px": chunk} for chunk in chunks])
    window = chunks[3] + chunks[2] + chunks[1] + chunks[0]
    assert results[3]["blurred"] == golden_conv(window, 16)

"""The measured auto-tuner and the calibrated static predicate.

Two regressions anchor this file.  ``BENCH_sim.json`` recorded SWAR
batching at 0.51x scalar on ``blas`` while the old static heuristic
still picked it — so :func:`swar_profitable` must say no on blas-shaped
netlists, and the measured :func:`choose` must never select any
configuration its own profile recorded as slower than scalar.  The
rest is plumbing worth pinning: profiles round-trip the disk cache
(one calibration per design, ever), invalid payloads read as misses,
and ``CompileSession(sim_backend="auto")`` produces interpreter-exact
traces while recording which engine actually ran.
"""

import pytest

from repro.designs.catalog import design_point
from repro.driver import CompileSession, DiskCache, TunerStore
from repro.rtl import (
    BatchedCompiledSimulator,
    CompiledSimulator,
    Module,
    TUNER_VERSION,
    TunerDecision,
    make_simulator,
    measure_design,
    swar_profitable,
    tune,
    valid_tuner_payload,
)
from repro.rtl import tuner as tuner_mod


@pytest.fixture(autouse=True)
def _fast_calibration(monkeypatch):
    """Keep real calibration runs tiny; candidates stay meaningful."""
    monkeypatch.setenv("REPRO_TUNER_CYCLES", "4")
    monkeypatch.setenv("REPRO_TUNER_SWAR_LANES", "4")
    monkeypatch.setenv("REPRO_TUNER_VECTOR_LANES", "8")


def _adder(width=8) -> Module:
    module = Module("adder")
    a = module.add_input("a", width)
    b = module.add_input("b", width)
    out = module.add_output("out", width)
    module.add_cell("add", {"a": a, "b": b, "out": out})
    return module


def _payload(scalar=100.0, swar=None, vector=None, **overrides):
    payload = {
        "tuner_version": TUNER_VERSION,
        "structural_hash": "h",
        "flavor": "numpy",
        "cycles": 4,
        "scalar_cps": scalar,
        "swar": swar or {},
        "vector": vector or {},
    }
    payload.update(overrides)
    return payload


# -- choose: the decision rule ------------------------------------------


def test_choose_picks_the_fastest_measured_backend():
    decision = tuner_mod.choose(
        _payload(scalar=100.0, swar={16: 300.0}, vector={64: 900.0}), 64
    )
    assert decision.backend == "vector"
    assert decision.source == "measured"
    assert decision.estimates["vector"] == 900.0


def test_choose_never_selects_a_config_measured_slower_than_scalar():
    # Everything non-scalar measured at or below scalar: must fall back.
    decision = tuner_mod.choose(
        _payload(scalar=100.0, swar={16: 51.0}, vector={64: 100.0}), 64
    )
    assert decision.backend == "compiled"
    # ... even when one lane-parallel engine beats the *other* one.
    decision = tuner_mod.choose(
        _payload(scalar=100.0, swar={16: 20.0}, vector={64: 99.0}), 64
    )
    assert decision.backend == "compiled"


def test_choose_estimates_at_the_nearest_calibrated_lane_point():
    points = {16: 10.0, 64: 50.0}
    assert tuner_mod._estimate(points, 20) == 10.0
    assert tuner_mod._estimate(points, 1000) == 50.0
    # Equidistant: the larger (less optimistic for lane-cps) point wins.
    assert tuner_mod._estimate(points, 40) == 50.0
    assert tuner_mod._estimate({}, 40) == 0.0


def test_valid_tuner_payload_rejects_mismatches():
    good = _payload()
    assert valid_tuner_payload(good, "h", "numpy")
    assert not valid_tuner_payload(good, "other-hash", "numpy")
    assert not valid_tuner_payload(good, "h", "stdlib")
    assert not valid_tuner_payload(_payload(tuner_version=0), "h", "numpy")
    assert not valid_tuner_payload({"scalar_cps": 1.0}, "h", "numpy")
    assert not valid_tuner_payload(None, "h", "numpy")


# -- the static predicate and the blas regression -----------------------


def _optimized(name):
    source, component, generators, params = design_point(name)
    session = CompileSession(opt_level=0)
    return session.optimize(source, component, params, generators).value.module


def test_swar_profitable_rejects_blas_shaped_netlists():
    blas = _optimized("blas")
    # BENCH_sim.json measured SWAR lane-16 at 0.51x scalar on blas; the
    # calibrated predicate must predict the loss at every lane count the
    # session would actually pick.
    assert not swar_profitable(blas, 16)
    assert not swar_profitable(blas, 64)


def test_swar_profitable_accepts_packed_friendly_designs():
    fft = _optimized("fft")
    assert swar_profitable(fft, 16)
    assert swar_profitable(fft, 64)


def test_swar_profitable_degenerate_cases():
    module = _adder()
    assert not swar_profitable(module, 1)  # nothing to batch
    # A comb-free module has no eligibility question to ask.
    seq = Module("seq")
    en = seq.add_input("en", 1)
    out = seq.add_output("out", 4)
    seq.add_cell("regen", {"d": out, "en": en, "q": out}, {"init": 1})
    assert swar_profitable(seq, 8)


def test_make_simulator_compiled_consults_the_predicate():
    blas, fft = _optimized("blas"), _optimized("fft")
    assert isinstance(
        make_simulator(blas, "compiled", lanes=16), CompiledSimulator
    )
    assert isinstance(
        make_simulator(fft, "compiled", lanes=16), BatchedCompiledSimulator
    )


# -- tune: persistence and fallbacks ------------------------------------


def test_tune_single_lane_short_circuits_to_scalar():
    decision = tune(_adder(), 1)
    assert decision == TunerDecision(backend="compiled", lanes=1,
                                     source="static")


def test_tune_calibrates_once_and_reuses_the_persisted_profile(
    tmp_path, monkeypatch
):
    store = TunerStore(DiskCache(str(tmp_path)))
    first = tune(_adder(), 8, store=store)
    assert first.source == "measured"
    assert set(first.estimates) == {"compiled", "batched", "vector"}
    assert store.disk.stats.counter("tuner.store") == 1

    # A second resolution must come from disk: calibration is forbidden.
    def _boom(*args, **kwargs):
        raise AssertionError("recalibrated despite a warm tuner store")

    monkeypatch.setattr(tuner_mod, "measure_design", _boom)
    second = tune(_adder(), 8, store=store)
    assert second == first
    assert store.disk.stats.counter("tuner.disk_hit") == 1
    assert store.disk.stats.counter("tuner.store") == 1


def test_tune_cold_store_without_calibration_uses_static_fallback(
    monkeypatch,
):
    def _boom(*args, **kwargs):
        raise AssertionError("calibrated despite calibrate=False")

    monkeypatch.setattr(tuner_mod, "measure_design", _boom)
    decision = tune(_adder(), 8, store=None, calibrate=False)
    assert decision.backend == "compiled"
    assert decision.source == "static-fallback"


def test_stale_tuner_entries_read_as_misses(tmp_path, monkeypatch):
    store = TunerStore(DiskCache(str(tmp_path)))
    module = _adder()
    payload = measure_design(module)
    payload["tuner_version"] = TUNER_VERSION - 1  # an old policy's numbers
    store.save(payload)

    def _boom(*args, **kwargs):
        raise AssertionError("calibrated despite calibrate=False")

    monkeypatch.setattr(tuner_mod, "measure_design", _boom)
    decision = tune(module, 8, store=store, calibrate=False)
    assert decision.source == "static-fallback"
    assert store.disk.stats.counter("tuner.disk_hit") == 0


def test_measured_payload_round_trips_validation():
    module = _adder()
    payload = measure_design(module)
    from repro.rtl.compile import _flattened

    assert valid_tuner_payload(
        payload, _flattened(module).structural_hash(), payload["flavor"]
    )
    assert payload["scalar_cps"] > 0
    assert all(cps > 0 for cps in payload["swar"].values())
    assert all(cps > 0 for cps in payload["vector"].values())


# -- the session surface ------------------------------------------------


SOURCE = """
comp Double[#W]<G:1>(x: [G, G+1] #W) -> (y: [G+1, G+2] #W) {
  s := new Add[#W]<G>(x, x);
  r := new Reg[#W]<G>(s.out);
  y = r.out;
}
"""


def test_session_auto_backend_matches_interp_and_records_the_engine(
    tmp_path,
):
    interp = CompileSession(sim_backend="interp")
    base = interp.simulate(SOURCE, "Double", {"#W": 8}, cycles=12,
                           lanes=4).value
    auto = CompileSession(
        cache_dir=str(tmp_path), sim_backend="auto", sim_lanes=4
    )
    trace = auto.simulate(SOURCE, "Double", {"#W": 8}, cycles=12).value
    assert trace.backend in {"compiled", "batched", "vector"}
    assert trace.lanes == 4
    assert trace.outputs == base.outputs
    assert auto.stats.counter("tuner.store") == 1

    # A warm process resolves auto from the persisted profile: the new
    # cycle count misses the simulate artifact, but no recalibration.
    warm = CompileSession(
        cache_dir=str(tmp_path), sim_backend="auto", sim_lanes=4
    )
    warm.simulate(SOURCE, "Double", {"#W": 8}, cycles=16).value
    assert warm.stats.counter("tuner.disk_hit") == 1
    assert warm.stats.counter("tuner.store") == 0


def test_session_auto_without_disk_cache_stays_static(monkeypatch):
    def _boom(*args, **kwargs):
        raise AssertionError("calibrated without a store to keep it")

    monkeypatch.setattr(tuner_mod, "measure_design", _boom)
    session = CompileSession(cache_dir=None, sim_backend="auto", sim_lanes=4)
    trace = session.simulate(SOURCE, "Double", {"#W": 8}, cycles=12).value
    assert trace.backend == "compiled"

"""The compiled simulation backend: bit-identical to the interpreter.

The contract under test is total interchangeability behind the
``SimBackend`` surface: same poke/peek namespace, same two-phase
semantics, and — the differential gate — identical outputs to the
interpreter on every cycle of seeded stimulus, across every catalog
design at both optimization levels and on a FIFO-heavy synthetic
module the datapath designs don't cover.
"""

import pytest

from repro.designs import fifo_pipeline
from repro.designs.catalog import DESIGNS, design_point
from repro.driver import CompileSession
from repro.rtl import (
    SIM_BACKENDS,
    CompiledSimulator,
    Module,
    NetlistError,
    SimBackend,
    Simulator,
    compile_netlist,
    differential_check,
    make_simulator,
    random_stimulus,
    resolve_backend,
)


def _alu(width=8) -> Module:
    module = Module("alu")
    a = module.add_input("a", width)
    b = module.add_input("b", width)
    sel = module.add_input("sel", 1)
    out = module.add_output("out", width)
    total = module.binop("add", a, b, width)
    delta = module.binop("sub", a, b, width)
    picked = module.mux(sel, total, delta)
    module.add_cell("not", {"a": picked, "out": out})
    return module


def _registered_counter(width=8) -> Module:
    module = Module("counter")
    en = module.add_input("en", 1)
    out = module.add_output("out", width)
    one = module.constant(1, width)
    q = module.fresh_net(width, "q")
    total = module.binop("add", q, one, width)
    module.add_cell("regen", {"d": total, "en": en, "q": q}, {"init": 5})
    module.add_cell("shl", {"a": q, "out": out}, {"amount": 0})
    return module


# -- unit-level parity --------------------------------------------------


def test_compiled_matches_interpreter_on_comb_logic():
    assert differential_check(_alu(), cycles=200, seed=3)


def test_compiled_matches_interpreter_on_registers():
    assert differential_check(_registered_counter(), cycles=200, seed=4)


def test_compiled_matches_interpreter_on_fifo_pipeline():
    module = fifo_pipeline(stages=5, width=16, depth=3)
    assert differential_check(module, cycles=300, seed=11)
    # Corner-biased stimulus stresses full/empty transitions harder.
    assert differential_check(module, cycles=300, seed=11, bias=0.5)


def test_compiled_peek_poke_tick_parity():
    module = _registered_counter()
    interp, compiled = Simulator(module), CompiledSimulator(module)
    for sim in (interp, compiled):
        sim.poke({"en": 1})
        sim.evaluate()
    assert compiled.peek("out") == interp.peek("out")
    for sim in (interp, compiled):
        sim.tick()
        sim.evaluate()
    assert compiled.peek("out") == interp.peek("out") == 6
    assert compiled.cycle == interp.cycle == 1
    # Internal nets are visible under the same names in both engines.
    for net_name in module.nets:
        assert compiled.peek_net(net_name) == interp.peek_net(net_name)


def test_compiled_rejects_unknown_ports_like_interpreter():
    compiled = CompiledSimulator(_alu())
    with pytest.raises(NetlistError):
        compiled.poke({"nope": 1})
    with pytest.raises(NetlistError):
        compiled.peek("nope")
    with pytest.raises(NetlistError):
        compiled.peek_net("nope")


def test_compiled_poke_masks_to_width():
    compiled = CompiledSimulator(_alu(width=8))
    compiled.poke({"a": 0x1FF, "b": 0, "sel": 0})
    compiled.evaluate()
    interp = Simulator(_alu(width=8))
    interp.poke({"a": 0x1FF, "b": 0, "sel": 0})
    interp.evaluate()
    assert compiled.peek("out") == interp.peek("out")


# -- memoization --------------------------------------------------------


def test_structurally_equal_modules_share_one_compilation():
    first, second = _alu(), _alu()
    assert first is not second
    assert compile_netlist(first) is compile_netlist(second)


def test_distinct_structures_compile_separately():
    assert (
        compile_netlist(_alu(width=8))
        is not compile_netlist(_alu(width=9))
    )


# -- backend registry ---------------------------------------------------


def test_backend_registry_resolves_every_engine():
    from repro.rtl import BatchedCompiledSimulator, VectorCompiledSimulator

    assert resolve_backend("interp") is Simulator
    assert resolve_backend("compiled") is CompiledSimulator
    assert resolve_backend("batched") is BatchedCompiledSimulator
    assert resolve_backend("vector") is VectorCompiledSimulator
    assert set(SIM_BACKENDS) == {"interp", "compiled", "batched", "vector"}
    with pytest.raises(ValueError):
        resolve_backend("verilator")
    # "auto" is a selection policy, not an engine: it has a cache
    # fingerprint but cannot be instantiated directly.
    from repro.rtl import backend_choices, backend_fingerprint

    assert backend_choices() == sorted(SIM_BACKENDS) + ["auto"]
    assert backend_fingerprint("auto") == "auto@1"
    with pytest.raises(ValueError):
        resolve_backend("auto")


def test_make_simulator_instances_satisfy_the_protocol():
    module = _alu()
    reference = None
    for name in sorted(SIM_BACKENDS):
        sim = make_simulator(module, name, lanes=2)
        assert isinstance(sim, SimBackend)
        # The lane engines fix their width at construction; the scalar
        # engines accept any.  run_random_batch is the one surface with
        # a uniform shape across all four.
        traces = sim.run_random_batch(16, 2, seed=1)
        if reference is None:
            reference = traces
        assert traces == reference


# -- the full catalog, both levels --------------------------------------


@pytest.mark.parametrize("name", sorted(DESIGNS))
@pytest.mark.parametrize("opt_level", [0, 2])
def test_catalog_designs_bit_identical_across_backends(name, opt_level):
    source, component, generators, params = design_point(name)
    session = CompileSession(opt_level=opt_level)
    module = session.optimize(source, component, params, generators).value.module
    assert differential_check(module, cycles=64, seed=0xA5)


# -- corner-biased stimulus ---------------------------------------------


def test_biased_stimulus_zero_bias_preserves_historical_stream():
    module = _alu(width=32)
    assert random_stimulus(module, 50, seed=9) == random_stimulus(
        module, 50, seed=9, bias=0.0
    )


def test_biased_stimulus_is_deterministic_and_hits_corners():
    module = _alu(width=32)
    first = random_stimulus(module, 400, seed=2, bias=0.25)
    second = random_stimulus(module, 400, seed=2, bias=0.25)
    assert first == second
    corners = {0, (1 << 32) - 1, 1 << 31}
    seen = [vec["a"] for vec in first] + [vec["b"] for vec in first]
    # Pure 32-bit uniform draws essentially never produce these values;
    # the bias must make them common.
    assert len([v for v in seen if v in corners]) > 50
    # ... without turning the stream all-corner.
    assert any(v not in corners for v in seen)


def test_biased_stimulus_full_bias_only_emits_corners():
    module = _alu(width=16)
    corners = {0, (1 << 16) - 1, 1 << 15}
    for vector in random_stimulus(module, 100, seed=1, bias=1.0):
        assert vector["a"] in corners and vector["b"] in corners


def test_biased_stimulus_rejects_bad_bias():
    with pytest.raises(ValueError):
        random_stimulus(_alu(), 10, seed=0, bias=1.5)

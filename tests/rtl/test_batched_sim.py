"""Batched multi-lane compiled simulation: bit-identical to sequential.

The contract: a K-lane batched run is indistinguishable from K
independent single-lane runs — same traces, lane for lane, for every
catalog design at -O0 and -O2, for FIFO-heavy control logic, under
corner-biased stimulus, and across the packed/per-lane-list net
representations the generator mixes (wide buses fall out of the packed
encoding).  Stimulus lanes derive deterministically from one batch seed
and are pairwise uncorrelated.
"""

import pytest

from repro.designs import fifo_pipeline
from repro.designs.catalog import DESIGNS, design_point
from repro.driver import CompileSession
from repro.rtl import (
    BatchedCompiledSimulator,
    CompiledSimulator,
    Module,
    NetlistError,
    Simulator,
    batched_stride,
    compile_netlist,
    derive_lane_seed,
    differential_check,
    random_stimulus,
    random_stimulus_batch,
)


def _alu(width=8) -> Module:
    module = Module("alu")
    a = module.add_input("a", width)
    b = module.add_input("b", width)
    sel = module.add_input("sel", 1)
    out = module.add_output("out", width)
    total = module.binop("add", a, b, width)
    delta = module.binop("sub", a, b, width)
    picked = module.mux(sel, total, delta)
    module.add_cell("not", {"a": picked, "out": out})
    return module


def _registered_counter(width=8) -> Module:
    module = Module("counter")
    en = module.add_input("en", 1)
    out = module.add_output("out", width)
    one = module.constant(1, width)
    q = module.fresh_net(width, "q")
    total = module.binop("add", q, one, width)
    module.add_cell("regen", {"d": total, "en": en, "q": q}, {"init": 5})
    module.add_cell("shl", {"a": q, "out": out}, {"amount": 0})
    return module


def _wide_datapath(width=200, narrow_cells=120) -> Module:
    """A narrow-majority module with a genuinely wide side channel.

    The cost model keeps the stride sized for the narrow majority, so
    the ``width``-bit nets exceed every lane field and must take the
    per-lane-list fallback — including a ``mul``, which never packs.
    """
    module = Module("wide")
    a = module.add_input("a", width)
    b = module.add_input("b", width)
    na = module.add_input("na", 8)
    out = module.add_output("out", width)
    nout = module.add_output("nout", 8)
    value = na
    for _ in range(narrow_cells):
        value = module.binop("add", value, na, 8)
    module.add_cell("shl", {"a": value, "out": nout}, {"amount": 0})
    total = module.binop("add", a, b, width)
    product = module.binop("mul", a, b, width)
    module.add_cell("xor", {"a": total, "b": product, "out": out})
    return module


# -- lane seed derivation ----------------------------------------------


def test_lane_zero_keeps_the_batch_seed():
    assert derive_lane_seed(42, 0) == 42


def test_lane_seeds_are_deterministic_and_distinct():
    seeds = [derive_lane_seed(7, lane) for lane in range(32)]
    assert seeds == [derive_lane_seed(7, lane) for lane in range(32)]
    assert len(set(seeds)) == 32


def test_stimulus_batch_lanes_are_uncorrelated():
    module = _alu(width=32)
    streams = random_stimulus_batch(module, 64, 8, seed=5)
    assert len(streams) == 8
    # Lane 0 is exactly the single-lane stream for the batch seed.
    assert streams[0] == random_stimulus(module, 64, seed=5)
    for i in range(8):
        for j in range(i + 1, 8):
            assert streams[i] != streams[j], (i, j)


def test_stimulus_batch_applies_bias_per_lane():
    module = _alu(width=32)
    corners = {0, (1 << 32) - 1, 1 << 31}
    for stream in random_stimulus_batch(module, 200, 4, seed=1, bias=0.5):
        hits = sum(1 for vec in stream if vec["a"] in corners)
        assert hits > 10


def test_stimulus_batch_rejects_bad_lanes():
    with pytest.raises(ValueError):
        random_stimulus_batch(_alu(), 10, 0)


# -- unit-level batched parity ------------------------------------------


@pytest.mark.parametrize("lanes", [1, 3, 16, 64])
def test_batched_matches_interpreter_on_comb_logic(lanes):
    assert differential_check(_alu(), cycles=100, seed=3, lanes=lanes)


@pytest.mark.parametrize("lanes", [2, 7])
def test_batched_matches_interpreter_on_registers(lanes):
    assert differential_check(
        _registered_counter(), cycles=150, seed=4, lanes=lanes
    )


def test_batched_matches_interpreter_on_fifo_pipeline():
    module = fifo_pipeline(stages=5, width=16, depth=3)
    assert differential_check(module, cycles=250, seed=11, lanes=4)
    # Corner-biased stimulus stresses full/empty transitions per lane.
    assert differential_check(module, cycles=250, seed=11, bias=0.5, lanes=4)


def test_batched_handles_wide_nets_via_lane_lists():
    module = _wide_datapath(width=200)
    # The narrow majority keeps the stride small, so the 200-bit nets
    # exceed every lane field...
    assert batched_stride(module, 16) - 2 < 200
    # ...yet the lane-list fallback keeps the semantics exact.
    assert differential_check(module, cycles=60, seed=9, lanes=5)


def test_batched_equals_independent_single_lane_runs():
    """The satellite claim, stated directly on the engine surface."""
    module = _registered_counter()
    lanes = 6
    streams = random_stimulus_batch(module, 80, lanes, seed=13)
    batched = BatchedCompiledSimulator(module, lanes).run(streams)
    for lane in range(lanes):
        solo = CompiledSimulator(module).run(streams[lane])
        assert batched[lane] == solo, f"lane {lane} diverged"


def test_run_batch_interfaces_agree_across_backends():
    module = _alu()
    interp = Simulator(module).run_random_batch(50, 5, seed=2)
    compiled = CompiledSimulator(module).run_random_batch(50, 5, seed=2)
    assert interp == compiled
    assert len(interp) == 5


# -- vectorized poke/peek ----------------------------------------------


def test_batched_poke_peek_per_lane():
    module = _registered_counter()
    sim = BatchedCompiledSimulator(module, 3)
    sim.poke({"en": [1, 0, 1]})
    sim.evaluate()
    assert sim.peek("out") == [5, 5, 5]
    sim.tick()
    sim.evaluate()
    # Only the enabled lanes advanced.
    assert sim.peek("out") == [6, 5, 6]
    assert sim.cycle == 1
    for net_name in sim.module.nets:
        assert len(sim.peek_net(net_name)) == 3


def test_batched_poke_masks_and_rejects_like_scalar():
    sim = BatchedCompiledSimulator(_alu(width=8), 2)
    sim.poke({"a": [0x1FF, 1], "b": [0, 0], "sel": [0, 0]})
    sim.evaluate()
    scalar = CompiledSimulator(_alu(width=8))
    scalar.poke({"a": 0x1FF, "b": 0, "sel": 0})
    scalar.evaluate()
    assert sim.peek("out")[0] == scalar.peek("out")
    with pytest.raises(NetlistError):
        sim.poke({"nope": [1, 1]})
    with pytest.raises(NetlistError):
        sim.poke({"a": [1]})  # lane-count mismatch


def test_step_honors_per_lane_port_subsets():
    """Lanes driving different ports behave like K scalar step calls:
    a port a lane omits keeps that lane's previous value."""
    module = _alu(width=8)
    lanes = BatchedCompiledSimulator(module, 2)
    solo = [CompiledSimulator(module), CompiledSimulator(module)]
    vector_streams = [
        [{"a": 1, "b": 2, "sel": 1}, {"a": 9, "b": 7, "sel": 0}],
        [{"a": 5}, {"b": 3}],  # partial, different ports per lane
        [{"sel": 0}, {"a": 2, "sel": 1}],
    ]
    for vectors in vector_streams:
        batched = lanes.step(vectors)
        expected = [sim.step(vec) for sim, vec in zip(solo, vectors)]
        assert batched == expected, vectors
    with pytest.raises(NetlistError):
        lanes.step([{"a": 1}, {"nope": 2}])


def test_batched_rejects_ragged_streams():
    sim = BatchedCompiledSimulator(_alu(), 2)
    good = random_stimulus(_alu(), 4, seed=0)
    with pytest.raises(NetlistError):
        sim.run([good, good[:2]])
    with pytest.raises(NetlistError):
        sim.run([good])  # wrong lane count


# -- compilation and memoization ----------------------------------------


def test_batched_compilations_memoize_per_lane_count():
    first, second = _alu(), _alu()
    assert compile_netlist(first, lanes=4) is compile_netlist(second, lanes=4)
    assert compile_netlist(first, lanes=4) is not compile_netlist(
        first, lanes=8
    )
    # The scalar program is its own entry, not the lanes=1 batched one.
    scalar = compile_netlist(first)
    assert scalar is not compile_netlist(first, lanes=1)
    assert scalar.lanes is None and scalar.stride == 0
    assert compile_netlist(first, lanes=1).stride >= 64


def test_batched_rejects_bad_lane_counts():
    with pytest.raises(NetlistError):
        compile_netlist(_alu(), lanes=0)
    with pytest.raises(NetlistError):
        BatchedCompiledSimulator(_alu(), 0)


def test_stride_prefers_narrow_fields_over_wide_outliers():
    """A couple of wide bus nets must not tax thousands of narrow cells."""
    module = Module("mostly_narrow")
    a = module.add_input("a", 8)
    out = module.add_output("out", 8)
    value = a
    for _ in range(200):
        value = module.binop("add", value, a, 8)
    wide_out = module.add_output("wide", 300)
    wide_in = module.add_input("win", 300)
    module.add_cell("not", {"a": wide_in, "out": wide_out})
    module.add_cell("shl", {"a": value, "out": out}, {"amount": 0})
    stride = batched_stride(module, 16)
    assert stride <= 128
    assert differential_check(module, cycles=30, seed=1, lanes=4)


# -- the full catalog, both levels --------------------------------------


@pytest.mark.parametrize("name", sorted(DESIGNS))
@pytest.mark.parametrize("opt_level", [0, 2])
def test_catalog_designs_batched_bit_identical(name, opt_level):
    source, component, generators, params = design_point(name)
    session = CompileSession(opt_level=opt_level)
    module = session.optimize(
        source, component, params, generators
    ).value.module
    assert differential_check(module, cycles=24, seed=0xA5, lanes=3)

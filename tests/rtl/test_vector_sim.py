"""The mega-lane vector backend: bit-identical to the interpreter.

The contract is the same one the scalar/SWAR codegen backends carry —
total interchangeability behind ``SimBackend`` — plus the vector
specifics: two kernel flavors (numpy columns, pure-stdlib per-lane
loops) that must agree with the interpreter bit-for-bit at any lane
count, a clean ``SimBackendUnavailable`` when numpy is requested but
absent, automatic stdlib fallback, and persistent kernels in the
shared ``codegen`` pseudo-stage keyed by backend tag.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import fifo_pipeline
from repro.designs.catalog import DESIGNS, design_point
from repro.driver import CodegenStore, CompileSession, DiskCache
from repro.rtl import (
    Module,
    NetlistError,
    SimBackendUnavailable,
    Simulator,
    VectorCompiledSimulator,
    clear_vector_memo,
    compile_vector_netlist,
    differential_check,
    random_stimulus_batch,
    vector_flavor,
)
from repro.rtl import vectorize


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_vector_memo()
    yield
    clear_vector_memo()


def _alu(width: int) -> Module:
    """One module exercising every comb kind the generator lowers,
    including the width-edge cases (carry masks, shift folds, slices
    off the top, concat overflow, wide mux) at the given width."""
    m = Module(f"alu{width}")
    a = m.add_input("a", width)
    b = m.add_input("b", width)
    en = m.add_input("en", 1)
    add = m.binop("add", a, b)
    sub = m.binop("sub", a, b)
    mul = m.binop("mul", a, b, width=width)
    dv = m.binop("div", a, b)
    md = m.binop("mod", a, b)
    xr = m.binop("xor", a, b)
    an = m.binop("and", a, b)
    orr = m.binop("or", a, b)
    lt = m.binop("lt", a, b)
    eq = m.binop("eq", a, b)
    nt = m.unop("not", a)
    sh_amt = min(3, max(1, width - 1))
    shl = m.unop("shl", a, amount=sh_amt)
    shr = m.unop("shr", b, amount=sh_amt)
    sl_w = max(1, width // 2)
    sl = m.unop("slice", a, width=sl_w, lsb=width - sl_w)
    cc = m.binop("concat", lt, sl, width=sl_w + 1)
    mx = m.mux(lt, add, sub)
    r1 = m.register(mx, init=3 % (1 << width))
    r2 = m.register(xr, en=en)
    acc = m.binop("add", r1, r2, width=width)
    outs = (
        ("y_acc", acc), ("y_mul", mul), ("y_div", dv), ("y_mod", md),
        ("y_shl", shl), ("y_shr", shr), ("y_cc", cc), ("y_eq", eq),
        ("y_not", nt), ("y_and", an), ("y_or", orr),
    )
    for name, net in outs:
        out = m.add_output(name, net.width)
        m.add_cell("or", {"a": net, "b": m.constant(0, net.width), "out": out})
    m.validate()
    return m


def _parity(module: Module, lanes: int, flavor: str, cycles=48, seed=0,
            bias=0.0) -> bool:
    """Interpreter vs. an explicit-flavor vector engine."""
    interp = Simulator(module)
    engine = VectorCompiledSimulator(interp.module, lanes, flavor=flavor)
    streams = random_stimulus_batch(interp.module, cycles, lanes, seed, bias)
    return interp.run_batch(streams) == engine.run(streams)


# -- differential parity: the catalog, both levels ----------------------


@pytest.mark.parametrize("name", sorted(DESIGNS))
@pytest.mark.parametrize("opt_level", [0, 2])
def test_catalog_designs_bit_identical_under_vector(name, opt_level):
    source, component, generators, params = design_point(name)
    session = CompileSession(opt_level=opt_level)
    module = session.optimize(source, component, params, generators).value.module
    assert differential_check(module, cycles=48, seed=0xA5, lanes=3,
                              backend="vector")


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_catalog_designs_bit_identical_under_stdlib_flavor(name):
    source, component, generators, params = design_point(name)
    session = CompileSession(opt_level=0)
    module = session.optimize(source, component, params, generators).value.module
    assert _parity(module, lanes=3, flavor="stdlib", cycles=32, seed=7)


# -- odd and wide widths ------------------------------------------------


@pytest.mark.parametrize("width", [1, 7, 31, 33, 64, 65, 100])
@pytest.mark.parametrize("flavor", ["numpy", "stdlib"])
def test_vector_matches_interpreter_at_awkward_widths(width, flavor):
    if flavor == "numpy" and vectorize._numpy() is None:
        pytest.skip("numpy not installed")
    module = _alu(width)
    assert _parity(module, lanes=4, flavor=flavor, cycles=48, seed=width)
    assert _parity(module, lanes=3, flavor=flavor, cycles=32,
                   seed=width + 99, bias=0.3)


@settings(max_examples=12, deadline=None)
@given(width=st.integers(min_value=1, max_value=96),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_vector_matches_interpreter_on_random_widths(width, seed):
    module = _alu(width)
    assert _parity(module, lanes=3, flavor=vector_flavor(), cycles=24,
                   seed=seed)


# -- FIFO-heavy control flow --------------------------------------------


@pytest.mark.parametrize("flavor", ["numpy", "stdlib"])
def test_vector_matches_interpreter_on_fifo_pipeline(flavor):
    if flavor == "numpy" and vectorize._numpy() is None:
        pytest.skip("numpy not installed")
    module = fifo_pipeline(stages=4, width=16, depth=3)
    assert _parity(module, lanes=4, flavor=flavor, cycles=200, seed=11)
    # Corner-biased stimulus stresses full/empty transitions harder.
    assert _parity(module, lanes=4, flavor=flavor, cycles=200, seed=11,
                   bias=0.5)


# -- flavor resolution and the numpy-less fallback ----------------------


def test_vector_flavor_resolution_order(monkeypatch):
    monkeypatch.delenv("REPRO_VECTOR_FLAVOR", raising=False)
    assert vector_flavor("stdlib") == "stdlib"
    monkeypatch.setenv("REPRO_VECTOR_FLAVOR", "stdlib")
    assert vector_flavor() == "stdlib"
    # Explicit argument beats the environment.
    if vectorize._numpy() is not None:
        assert vector_flavor("numpy") == "numpy"
    with pytest.raises(NetlistError):
        vector_flavor("fortran")


def test_numpy_flavor_unavailable_raises_cleanly(monkeypatch):
    monkeypatch.setattr(vectorize, "_NUMPY", None)
    monkeypatch.setattr(vectorize, "_NUMPY_PROBED", True)
    monkeypatch.delenv("REPRO_VECTOR_FLAVOR", raising=False)
    with pytest.raises(SimBackendUnavailable):
        vector_flavor("numpy")
    # SimBackendUnavailable is a NetlistError: existing handlers keep
    # working.
    assert issubclass(SimBackendUnavailable, NetlistError)
    # Unrequested, the backend silently degrades to the stdlib flavor
    # and still simulates correctly.
    assert vector_flavor() == "stdlib"
    module = _alu(13)
    sim = VectorCompiledSimulator(module, 3)
    assert sim.flavor == "stdlib"
    interp = Simulator(module)
    streams = random_stimulus_batch(interp.module, 24, 3, seed=5)
    assert interp.run_batch(streams) == sim.run(streams)


# -- memoization --------------------------------------------------------


def test_structurally_equal_modules_share_one_vector_compilation():
    first, second = _alu(9), _alu(9)
    assert first is not second
    assert compile_vector_netlist(first, 4) is compile_vector_netlist(second, 4)


def test_vector_memo_is_keyed_per_lane_count_and_flavor():
    module = _alu(9)
    assert (compile_vector_netlist(module, 4)
            is not compile_vector_netlist(module, 8))
    if vectorize._numpy() is not None:
        assert (compile_vector_netlist(module, 4, flavor="numpy")
                is not compile_vector_netlist(module, 4, flavor="stdlib"))


def test_vector_rejects_bad_lane_counts():
    with pytest.raises(NetlistError):
        compile_vector_netlist(_alu(8), 0)


# -- persistent kernels in the codegen pseudo-stage ---------------------


def test_vector_codegen_round_trips_through_the_store(tmp_path):
    store = CodegenStore(DiskCache(str(tmp_path)))
    flavor = vector_flavor()
    cold = compile_vector_netlist(_alu(10), 16, store=store)
    assert not cold.from_store
    assert store.disk.stats.counter("codegen.store") == 1

    clear_vector_memo()
    warm = compile_vector_netlist(_alu(10), 16, store=store)
    assert warm.from_store
    assert warm.source == cold.source
    assert warm.flavor == cold.flavor == flavor
    assert store.disk.stats.counter("codegen.disk_hit") == 1
    # The rematerialized program still computes correctly.
    assert _parity(_alu(10), lanes=16, flavor=flavor, cycles=24, seed=3)


def test_vector_store_entries_are_keyed_per_flavor_and_lanes(tmp_path):
    store = CodegenStore(DiskCache(str(tmp_path)))
    module = _alu(10)
    compile_vector_netlist(module, 4, flavor="stdlib", store=store)
    compile_vector_netlist(module, 8, flavor="stdlib", store=store)
    if vectorize._numpy() is not None:
        compile_vector_netlist(module, 4, flavor="numpy", store=store)
        assert store.disk.stats.counter("codegen.store") == 3
    else:
        assert store.disk.stats.counter("codegen.store") == 2
    clear_vector_memo()
    hit = compile_vector_netlist(module, 8, flavor="stdlib", store=store)
    assert hit.from_store
    assert store.disk.stats.counter("codegen.disk_hit") == 1


def test_vector_and_swar_kernels_share_the_store_without_collisions(tmp_path):
    from repro.rtl import clear_compile_memo, compile_netlist

    store = CodegenStore(DiskCache(str(tmp_path)))
    module = _alu(10)
    clear_compile_memo()
    try:
        compile_netlist(module, lanes=4, store=store)  # SWAR, same lanes
        compile_vector_netlist(module, 4, store=store)
        assert store.disk.stats.counter("codegen.store") == 2
        clear_compile_memo()
        clear_vector_memo()
        assert compile_netlist(module, lanes=4, store=store).from_store
        assert compile_vector_netlist(module, 4, store=store).from_store
    finally:
        clear_compile_memo()


# -- session integration ------------------------------------------------


def test_session_vector_backend_trace_matches_interp():
    source, component, generators, params = design_point("fft")
    interp = CompileSession(sim_backend="interp")
    vector = CompileSession(sim_backend="vector", sim_lanes=3)
    base = interp.simulate(source, component, params, generators,
                           cycles=16, lanes=3).value
    trace = vector.simulate(source, component, params, generators,
                            cycles=16, lanes=3).value
    assert trace.backend == "vector"
    assert trace.lanes == 3
    assert trace.outputs == base.outputs

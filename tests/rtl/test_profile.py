"""Activity-profile collection: the observation side of ``-O3``.

``collect_profile`` runs a seeded stimulus window on any backend through
the uniform ``snapshot()`` hook and records per-net toggle counts,
whole-window constants and mux-select skew as a :class:`SimProfile`.
These tests pin the contract the PGO planner and the persisted
``ProfileStore`` rely on: deterministic digests, backend-independent
observations, conservative multi-lane constants, and payload validation.
"""

import pytest

from repro.rtl import (
    Module,
    NetlistError,
    SimProfile,
    collect_profile,
    comb_cones,
    root_nets,
    valid_profile_payload,
)


def _toy(width=8) -> Module:
    """Two inputs, a mux, a register feedback — every profile feature."""
    module = Module("toy")
    a = module.add_input("a", width)
    b = module.add_input("b", width)
    sel = module.add_input("sel", 1)
    out = module.add_output("out", width)
    total = module.binop("add", a, b)
    mixed = module.binop("xor", a, b)
    picked = module.mux(sel, mixed, total)
    q = module.register(picked)
    module.add_cell("add", {"a": q, "b": total, "out": out})
    module.validate()
    return module


def test_collection_is_deterministic_and_round_trips():
    first = collect_profile(_toy(), cycles=64)
    second = collect_profile(_toy(), cycles=64)
    assert first.digest() == second.digest()
    assert first.structural_hash == _toy().structural_hash()
    # Some activity was actually observed under random stimulus.
    assert first.toggles
    assert first.mux_ones  # the mux's select skew is recorded
    payload = first.to_payload()
    assert valid_profile_payload(payload, first.structural_hash)
    revived = SimProfile.from_payload(payload)
    assert revived.digest() == first.digest()
    assert revived.toggle_rate("a") == first.toggle_rate("a")


def test_different_windows_yield_different_digests():
    base = collect_profile(_toy(), cycles=64)
    longer = collect_profile(_toy(), cycles=65)
    reseeded = collect_profile(_toy(), cycles=64, seed=123)
    assert base.digest() != longer.digest()
    assert base.digest() != reseeded.digest()


def test_payload_validation_rejects_mismatches():
    profile = collect_profile(_toy(), cycles=32)
    payload = profile.to_payload()
    assert valid_profile_payload(payload, profile.structural_hash)
    assert not valid_profile_payload(payload, "deadbeef")
    assert not valid_profile_payload(None, profile.structural_hash)
    assert not valid_profile_payload(
        dict(payload, version=-1), profile.structural_hash
    )
    assert not valid_profile_payload(
        dict(payload, cycles=1), profile.structural_hash
    )
    assert not valid_profile_payload(
        dict(payload, toggles=[]), profile.structural_hash
    )


def test_backends_observe_the_same_activity():
    interp = collect_profile(_toy(), cycles=48, backend="interp")
    compiled = collect_profile(_toy(), cycles=48, backend="compiled")
    # Backends are bit-identical by differential contract, so the same
    # window yields the same observations — only the backend tag (part
    # of the payload, hence the digest) differs.
    assert interp.toggles == compiled.toggles
    assert interp.constants == compiled.constants
    assert interp.mux_ones == compiled.mux_ones


def test_vector_profile_constants_are_conservative():
    scalar = collect_profile(_toy(), cycles=48)
    vector = collect_profile(_toy(), cycles=48, backend="vector", lanes=4)
    assert vector.lanes == 4
    # Multi-lane collection only records a constant when every lane held
    # one value for the whole window — strictly more conservative than
    # the single-lane view (lane 0 shares the scalar run's seed).
    assert set(vector.constants) <= set(scalar.constants)


def test_constant_nets_are_observed_with_their_values():
    module = Module("pinned")
    a = module.add_input("a", 8)
    out = module.add_output("out", 8)
    five = module.constant(5, 8)
    module.add_cell("and", {"a": a, "b": five, "out": out})
    module.validate()
    const_net = next(
        cell.pins["out"].name
        for cell in module.cells.values()
        if cell.kind == "const"
    )
    profile = collect_profile(module, cycles=32)
    # The const cell's net never toggles and its value is recorded —
    # exactly what guarded constant specialization consumes.
    assert profile.constants[const_net] == 5
    assert profile.toggle_rate(const_net) == 0.0
    # The randomly-driven input is not observed constant.
    assert "a" not in profile.constants


def test_profile_window_env_and_guard(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE_CYCLES", "8")
    assert collect_profile(_toy()).cycles == 8
    with pytest.raises(NetlistError):
        collect_profile(_toy(), cycles=1)
    with pytest.raises(NetlistError):
        collect_profile(_toy(), lanes=0)


def test_root_nets_are_ports_plus_sequential_outputs():
    module = _toy()
    roots = root_nets(module)
    assert set(["a", "b", "sel"]) <= set(roots)
    q_nets = [
        cell.pins["q"].name
        for cell in module.cells.values()
        if cell.kind in ("reg", "regen")
    ]
    assert q_nets and set(q_nets) <= set(roots)
    assert roots == sorted(roots)
    # The output port is combinationally driven, not a root.
    assert "out" not in roots


def test_comb_cones_partition_and_order():
    module = _toy()
    cones = comb_cones(module)
    roots = set(root_nets(module))
    comb_cells = [
        cell
        for cell in module.cells.values()
        if not cell.is_sequential() and cell.kind != "submodule"
    ]
    seen = [cell.name for _, cells in cones for cell in cells]
    # Every combinational cell lands in exactly one cone...
    assert sorted(seen) == sorted(cell.name for cell in comb_cells)
    # ...every support is a set of roots...
    assert all(support <= roots for support, _ in cones)
    # ...and the schedule is ordered by support size (consumers have
    # supersets of their producers' support, so this is topological).
    sizes = [len(support) for support, _ in cones]
    assert sizes == sorted(sizes)

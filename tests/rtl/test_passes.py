"""Tests for the netlist optimization pass framework."""

import pytest

from repro.rtl import Module, NetlistError, Simulator, flatten, random_stimulus
from repro.rtl.passes import (
    CommonCellSharing,
    ConstantFold,
    DeadCellElim,
    DelayCoalesce,
    Pass,
    PassManager,
    check_module,
    pipeline_for_level,
)


def make_mac(width=8) -> Module:
    """a*b + c with a dead subtract and a duplicated multiplier."""
    m = Module("mac")
    a = m.add_input("a", width)
    b = m.add_input("b", width)
    c = m.add_input("c", width)
    out = m.add_output("out", width)
    product = m.binop("mul", a, b, width)
    dup = m.binop("mul", a, b, width)  # structurally identical
    m.add_cell("add", {"a": product, "b": c, "out": out})
    m.binop("sub", dup, c, width)  # drives nothing
    return m


def run_level(module: Module, level: int) -> Module:
    flat = flatten(module)
    pipeline_for_level(level).run(flat)
    return flat


# ---------------------------------------------------------------------------
# Structural equality / hashing (netlist comparison without Verilog diffs).


def test_structural_equality_and_hash():
    left, right = make_mac(), make_mac()
    assert left == right
    assert left.structural_hash() == right.structural_hash()
    next(iter(right.cells.values())).params["note"] = 1
    assert left != right
    assert left.structural_hash() != right.structural_hash()


def test_structural_equality_is_insertion_order_insensitive():
    def build(order_flipped: bool) -> Module:
        m = Module("two")
        a = m.add_input("a", 4)
        out = m.add_output("out", 4)
        t = m.net("t", 4)
        cells = [
            ("n0", "not", {"a": a, "out": t}),
            ("n1", "not", {"a": t, "out": out}),
        ]
        if order_flipped:
            cells.reverse()
        for name, kind, pins in cells:
            m.add_cell(kind, pins, name=name)
        return m

    assert build(False) == build(True)


def test_cell_equality_tracks_wiring():
    m = make_mac()
    mul_cells = [c for c in m.cells.values() if c.kind == "mul"]
    # Same function of the same nets, but different names.
    assert mul_cells[0] != mul_cells[1]
    assert mul_cells[0] == mul_cells[0]


# ---------------------------------------------------------------------------
# Individual passes.


def test_constant_fold_evaluates_const_logic():
    m = Module("fold")
    out = m.add_output("out", 8)
    three = m.constant(3, 8)
    four = m.constant(4, 8)
    m.add_cell("add", {"a": three, "b": four, "out": out})
    ConstantFold().run(m)
    driver, _ = m.drivers()[out]
    assert driver.kind == "const"
    assert driver.params["value"] == 7


def test_constant_fold_matches_simulator_semantics():
    # div-by-zero is the classic divergence spot; the simulator says 0.
    m = Module("divzero")
    out = m.add_output("out", 8)
    lhs = m.constant(9, 8)
    zero = m.constant(0, 8)
    m.add_cell("div", {"a": lhs, "b": zero, "out": out})
    reference = Simulator(m).step({})["out"]
    ConstantFold().run(m)
    driver, _ = m.drivers()[out]
    assert driver.params["value"] == reference == 0


def test_constant_fold_resolves_const_select_mux():
    m = Module("muxfold")
    a = m.add_input("a", 8)
    b = m.add_input("b", 8)
    out = m.add_output("out", 8)
    sel = m.constant(1, 1)
    m.add_cell("mux", {"sel": sel, "a": a, "b": b, "out": out})
    ConstantFold().run(m)
    driver, _ = m.drivers()[out]
    assert driver.kind == "slice"
    assert driver.pins["a"] is a


def test_dead_cell_elimination_sweeps_unobservable_logic():
    m = flatten(make_mac())
    before = len(m.cells)
    DeadCellElim().run(m)
    # The dead subtract goes, and with it the multiplier it kept alive.
    assert len(m.cells) == before - 2
    assert not [c for c in m.cells.values() if c.kind == "sub"]
    check_module(m)


def test_dead_cell_elimination_keeps_live_state():
    m = Module("counter")
    out = m.add_output("out", 8)
    q = m.fresh_net(8, "q")
    one = m.constant(1, 8)
    step = m.binop("add", q, one, 8)
    m.add_cell("reg", {"d": step, "q": q})
    m.add_cell("slice", {"a": q, "out": out}, {"lsb": 0})
    DeadCellElim().run(m)
    assert [c for c in m.cells.values() if c.kind == "reg"]


def test_common_cell_sharing_merges_duplicates():
    m = flatten(make_mac())
    CommonCellSharing().run(m)
    assert len([c for c in m.cells.values() if c.kind == "mul"]) == 1
    check_module(m)


def test_sharing_coalesces_parallel_register_chains():
    m = Module("chains")
    d = m.add_input("d", 8)
    o1 = m.add_output("o1", 8)
    o2 = m.add_output("o2", 8)
    m.add_cell("slice", {"a": m.delay_chain(d, 3), "out": o1}, {"lsb": 0})
    m.add_cell("slice", {"a": m.delay_chain(d, 3), "out": o2}, {"lsb": 0})
    assert len([c for c in m.cells.values() if c.kind == "reg"]) == 6
    CommonCellSharing().run(m)
    assert len([c for c in m.cells.values() if c.kind == "reg"]) == 3
    check_module(m)


def test_sharing_respects_output_port_drivers():
    m = Module("twoports")
    a = m.add_input("a", 8)
    o1 = m.add_output("o1", 8)
    o2 = m.add_output("o2", 8)
    m.add_cell("not", {"a": a, "out": o1})
    m.add_cell("not", {"a": a, "out": o2})
    CommonCellSharing().run(m)
    check_module(m)  # both ports must keep a driver
    assert len(m.cells) == 2


def test_delay_coalesce_forwards_aliases_and_sinks_buffers():
    m = Module("buffered")
    a = m.add_input("a", 8)
    out = m.add_output("out", 8)
    inner = m.fresh_net(8, "inner")
    doubled = m.fresh_net(8, "doubled")
    m.add_cell("slice", {"a": a, "out": inner}, {"lsb": 0})  # alias
    m.add_cell("add", {"a": inner, "b": inner, "out": doubled})
    m.add_cell("slice", {"a": doubled, "out": out}, {"lsb": 0})  # buffer
    DelayCoalesce().run(m)
    check_module(m)
    assert len(m.cells) == 1
    (adder,) = m.cells.values()
    assert adder.pins["a"] is a and adder.pins["out"] is out


def test_delay_coalesce_keeps_truncating_slices():
    m = Module("trunc")
    a = m.add_input("a", 8)
    out = m.add_output("out", 4)
    m.add_cell("slice", {"a": a, "out": out}, {"lsb": 0})
    DelayCoalesce().run(m)
    assert len(m.cells) == 1  # narrowing is real logic, not an alias


# ---------------------------------------------------------------------------
# The manager: stats, integrity checking, idempotence, soundness.


def test_pass_manager_records_deltas_and_timings():
    m = flatten(make_mac())
    stats = pipeline_for_level(2).run(m)
    assert [s.name for s in stats] == [
        "constant-fold",
        "common-cell-sharing",
        "delay-coalesce",
        "common-cell-sharing",
        "dead-cell-elim",
    ]
    assert all(s.seconds >= 0 for s in stats)
    assert sum(s.cells_removed for s in stats) > 0
    assert stats[0].cells_before == 4


def test_pipeline_fingerprints_distinguish_levels():
    prints = {pipeline_for_level(level).fingerprint() for level in (0, 1, 2)}
    assert len(prints) == 3


def test_unknown_level_rejected():
    with pytest.raises(ValueError):
        pipeline_for_level(4)
    # -O3 is a known level now; without a profile it degrades to the
    # -O2 pipeline (the PGO analyses need observations to run).
    assert (
        pipeline_for_level(3).fingerprint()
        == pipeline_for_level(2).fingerprint()
    )


class _CorruptingPass(Pass):
    name = "corrupt"

    def run(self, module):
        module.remove_cell(next(iter(module.cells)))  # leaves net undriven


def test_integrity_check_blames_the_breaking_pass():
    m = flatten(make_mac())
    with pytest.raises(NetlistError, match="corrupt"):
        PassManager([_CorruptingPass()]).run(m)
    PassManager([_CorruptingPass()], check_integrity=False).run(
        flatten(make_mac())
    )  # opting out is allowed


@pytest.mark.parametrize("level", [1, 2])
def test_pipeline_is_idempotent(level):
    once = run_level(make_mac(), level)
    twice = run_level(make_mac(), level)
    pipeline_for_level(level).run(twice)
    assert once == twice
    assert once.structural_hash() == twice.structural_hash()


@pytest.mark.parametrize("level", [1, 2])
def test_optimized_netlist_is_output_equivalent(level):
    base = flatten(make_mac())
    opt = run_level(make_mac(), level)
    stimulus = random_stimulus(base, 64, seed=11)
    assert Simulator(base).run(stimulus) == Simulator(opt).run(stimulus)


def test_sequential_differential_simulation():
    def build() -> Module:
        m = Module("seq")
        d = m.add_input("d", 8)
        en = m.add_input("en", 1)
        o1 = m.add_output("o1", 8)
        o2 = m.add_output("o2", 8)
        m.add_cell(
            "slice", {"a": m.delay_chain(d, 2, en=en), "out": o1}, {"lsb": 0}
        )
        m.add_cell(
            "slice", {"a": m.delay_chain(d, 2, en=en), "out": o2}, {"lsb": 0}
        )
        return m

    base, opt = build(), build()
    pipeline_for_level(2).run(opt)
    assert len(opt.cells) < len(base.cells)
    stimulus = random_stimulus(base, 128, seed=3)
    assert Simulator(base).run(stimulus) == Simulator(opt).run(stimulus)


# ---------------------------------------------------------------------------
# Seedable stimulus.


def test_random_stimulus_is_reproducible():
    m = make_mac()
    assert random_stimulus(m, 16, seed=5) == random_stimulus(m, 16, seed=5)
    assert random_stimulus(m, 16, seed=5) != random_stimulus(m, 16, seed=6)


def test_random_stimulus_respects_widths():
    m = Module("narrow")
    m.add_input("bit", 1)
    m.add_output("out", 1)
    m.add_cell("slice", {"a": m.ports["bit"], "out": m.ports["out"]}, {"lsb": 0})
    for vector in random_stimulus(m, 32, seed=1):
        assert vector["bit"] in (0, 1)


def test_simulator_run_random_matches_manual_stimulus():
    m = make_mac()
    outputs = Simulator(m).run_random(16, seed=9)
    manual = Simulator(m).run(random_stimulus(m, 16, seed=9))
    assert outputs == manual

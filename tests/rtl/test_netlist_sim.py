"""Tests for the RTL netlist and simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl import Module, NetlistError, Simulator, emit_verilog, flatten


def make_adder(width=8) -> Module:
    m = Module("adder")
    a = m.add_input("a", width)
    b = m.add_input("b", width)
    out = m.add_output("out", width)
    m.add_cell("add", {"a": a, "b": b, "out": out})
    return m


def test_combinational_add():
    sim = Simulator(make_adder())
    outs = sim.step({"a": 3, "b": 4})
    assert outs["out"] == 7


def test_add_wraps_at_width():
    sim = Simulator(make_adder(4))
    outs = sim.step({"a": 15, "b": 2})
    assert outs["out"] == 1


def test_register_delays_one_cycle():
    m = Module("d1")
    d = m.add_input("d", 8)
    q = m.add_output("q", 8)
    m.add_cell("reg", {"d": d, "q": q})
    sim = Simulator(m)
    assert sim.step({"d": 42})["q"] == 0
    assert sim.step({"d": 7})["q"] == 42
    assert sim.step({"d": 0})["q"] == 7


def test_enable_register_holds():
    m = Module("en")
    d = m.add_input("d", 8)
    en = m.add_input("en", 1)
    q = m.add_output("q", 8)
    m.add_cell("regen", {"d": d, "en": en, "q": q})
    sim = Simulator(m)
    sim.step({"d": 5, "en": 1})
    assert sim.step({"d": 9, "en": 0})["q"] == 5
    assert sim.step({"d": 9, "en": 0})["q"] == 5
    sim.step({"d": 9, "en": 1})
    assert sim.step({"d": 0, "en": 0})["q"] == 9


def test_delay_chain():
    m = Module("chain")
    d = m.add_input("d", 8)
    q = m.add_output("q", 8)
    delayed = m.delay_chain(d, 3)
    m.add_cell("add", {"a": delayed, "b": m.constant(0, 8), "out": q})
    sim = Simulator(m)
    stream = [{"d": v} for v in [10, 20, 30, 0, 0, 0]]
    outs = [o["q"] for o in sim.run(stream)]
    assert outs[3:6] == [10, 20, 30]


def test_mux_and_eq():
    m = Module("mx")
    sel = m.add_input("sel", 1)
    a = m.add_input("a", 8)
    b = m.add_input("b", 8)
    out = m.add_output("out", 8)
    m.add_cell("mux", {"sel": sel, "a": a, "b": b, "out": out})
    sim = Simulator(m)
    assert sim.step({"sel": 1, "a": 3, "b": 9})["out"] == 3
    assert sim.step({"sel": 0, "a": 3, "b": 9})["out"] == 9


def test_slice_concat():
    m = Module("sc")
    a = m.add_input("a", 8)
    hi = m.add_output("hi", 4)
    full = m.add_output("full", 8)
    m.add_cell("slice", {"a": a, "out": hi}, {"lsb": 4})
    lo_net = m.fresh_net(4, "lo")
    m.add_cell("slice", {"a": a, "out": lo_net}, {"lsb": 0})
    m.add_cell("concat", {"a": hi, "b": lo_net, "out": full})
    sim = Simulator(m)
    outs = sim.step({"a": 0xAB})
    assert outs["hi"] == 0xA
    assert outs["full"] == 0xAB


def test_combinational_loop_detected():
    m = Module("loop")
    a = m.add_input("a", 1)
    x = m.fresh_net(1, "x")
    y = m.fresh_net(1, "y")
    out = m.add_output("out", 1)
    m.add_cell("and", {"a": a, "b": y, "out": x})
    m.add_cell("or", {"a": x, "b": a, "out": y})
    m.add_cell("and", {"a": x, "b": y, "out": out})
    with pytest.raises(NetlistError):
        Simulator(m)


def test_undriven_net_rejected():
    m = Module("undriven")
    m.add_input("a", 4)
    m.add_output("out", 4)
    with pytest.raises(NetlistError):
        Simulator(m)


def test_double_driver_rejected():
    m = Module("dd")
    a = m.add_input("a", 4)
    out = m.add_output("out", 4)
    m.add_cell("add", {"a": a, "b": a, "out": out})
    m.add_cell("sub", {"a": a, "b": a, "out": out})
    with pytest.raises(NetlistError):
        Simulator(m)


def test_fifo_basic_flow():
    m = Module("f")
    in_data = m.add_input("in_data", 8)
    in_valid = m.add_input("in_valid", 1)
    out_ready = m.add_input("out_ready", 1)
    in_ready = m.add_output("in_ready", 1)
    out_data = m.add_output("out_data", 8)
    out_valid = m.add_output("out_valid", 1)
    m.add_cell(
        "fifo",
        {
            "in_data": in_data,
            "in_valid": in_valid,
            "in_ready": in_ready,
            "out_data": out_data,
            "out_valid": out_valid,
            "out_ready": out_ready,
        },
        {"depth": 2},
    )
    sim = Simulator(m)
    o = sim.step({"in_data": 5, "in_valid": 1, "out_ready": 0})
    assert o["in_ready"] == 1
    assert o["out_valid"] == 0
    o = sim.step({"in_data": 6, "in_valid": 1, "out_ready": 0})
    assert o["out_valid"] == 1 and o["out_data"] == 5
    # FIFO is now full: in_ready deasserts.
    o = sim.step({"in_data": 7, "in_valid": 1, "out_ready": 1})
    assert o["in_ready"] == 0
    assert o["out_data"] == 5
    o = sim.step({"in_valid": 0, "out_ready": 1})
    assert o["out_data"] == 6
    o = sim.step({"in_valid": 0, "out_ready": 1})
    assert o["out_valid"] == 0


def test_hierarchy_flatten_and_simulate():
    child = make_adder()
    top = Module("top")
    x = top.add_input("x", 8)
    y = top.add_input("y", 8)
    z = top.add_output("z", 8)
    mid = top.fresh_net(8, "mid")
    top.add_submodule(child, {"a": x, "b": y, "out": mid}, name="u0")
    one = top.constant(1, 8)
    top.add_cell("add", {"a": mid, "b": one, "out": z})
    flat = flatten(top)
    assert all(c.kind != "submodule" for c in flat.cells.values())
    sim = Simulator(top)
    assert sim.step({"x": 2, "y": 3})["z"] == 6


def test_stats():
    m = make_adder()
    assert m.stats() == {"add": 1}


def test_verilog_emission():
    m = Module("t")
    a = m.add_input("a", 8)
    q = m.add_output("q", 8)
    r = m.register(a)
    m.add_cell("add", {"a": r, "b": m.constant(1, 8), "out": q})
    text = emit_verilog(m)
    assert "module t (" in text
    assert "input wire [7:0] a" in text
    assert "always @(posedge clk)" in text
    assert "endmodule" in text


@settings(max_examples=50, deadline=None)
@given(
    a=st.integers(0, 255),
    b=st.integers(0, 255),
    op=st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
)
def test_binops_match_python(a, b, op):
    m = Module("bin")
    an = m.add_input("a", 8)
    bn = m.add_input("b", 8)
    out = m.add_output("out", 8)
    m.add_cell(op, {"a": an, "b": bn, "out": out})
    sim = Simulator(m)
    got = sim.step({"a": a, "b": b})["out"]
    expected = {
        "add": a + b,
        "sub": a - b,
        "mul": a * b,
        "and": a & b,
        "or": a | b,
        "xor": a ^ b,
    }[op] & 0xFF
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=12), st.integers(1, 5))
def test_delay_chain_is_pure_delay(values, depth):
    m = Module("dly")
    d = m.add_input("d", 8)
    q = m.add_output("q", 8)
    delayed = m.delay_chain(d, depth)
    m.add_cell("or", {"a": delayed, "b": m.constant(0, 8), "out": q})
    sim = Simulator(m)
    stream = [{"d": v} for v in values] + [{"d": 0}] * depth
    outs = [o["q"] for o in sim.run(stream)]
    assert outs[depth : depth + len(values)] == values

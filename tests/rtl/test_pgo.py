"""Profile-guided plans: fusion rules, gating soundness, differentials.

The ``-O3`` analyses distill a :class:`SimProfile` into a
:class:`PgoPlan` the engines act on.  The tests here pin the planner's
structural rules (single-reader fusion, the div/mod ``b`` blocklist,
the operator-count cap) and — the property everything else hangs on —
that profile-guided execution is bit-identical to the plain
interpreter on real and synthetic designs *even when the profile is
adversarially wrong*.
"""

import pickle

import pytest

from repro.designs import fifo_pipeline
from repro.rtl import (
    CompiledSimulator,
    Module,
    NetlistError,
    SimProfile,
    collect_profile,
    differential_check,
    random_stimulus,
    root_nets,
)
from repro.rtl.passes import PGO_VERSION, build_plan, pgo_passes
from repro.rtl.passes.pgo import FUSE_OP_CAP, fuse_op_cap


def _mixer(width=8) -> Module:
    module = Module("mixer")
    a = module.add_input("a", width)
    b = module.add_input("b", width)
    out = module.add_output("out", width)
    total = module.binop("add", a, b)
    mixed = module.binop("xor", total, b)  # single reader of total? no:
    masked = module.binop("and", total, a)  # ...total has two readers
    folded = module.binop("or", mixed, masked)
    q = module.register(folded)
    module.add_cell("add", {"a": q, "b": folded, "out": out})
    module.validate()
    return module


def test_plan_shape_digest_and_pickling():
    module = _mixer()
    profile = collect_profile(module, cycles=64)
    plan = build_plan(module, profile)
    assert plan.structural_hash == module.structural_hash()
    assert plan.profile_digest == profile.digest()
    assert plan.digest() == build_plan(module, profile).digest()
    revived = pickle.loads(pickle.dumps(plan))
    assert revived.digest() == plan.digest()
    assert revived.fuse_nets == plan.fuse_nets
    described = plan.describe()
    assert described["fuse_nets"] == len(plan.fuse_nets)
    assert described["digest"] == plan.digest()


def test_fusion_is_single_reader_only_and_skips_ports():
    module = _mixer()
    plan = build_plan(module, collect_profile(module, cycles=32))
    by_kind = {
        cell.kind: cell.pins["out"].name
        for cell in module.cells.values()
        if "out" in cell.pins
    }
    # total feeds both the xor and the and: two combinational readers,
    # never fused.  mixed/masked each have exactly one reader: fused.
    fused = set(plan.fuse_nets)
    assert by_kind["xor"] in fused
    assert by_kind["and"] in fused
    # The two-reader add output stays materialized.
    two_reader = next(
        cell.pins["out"].name
        for cell in module.cells.values()
        if cell.kind == "add" and cell.pins["out"].name != "out"
        and cell.pins["a"].name == "a"
    )
    assert two_reader not in fused
    # Ports and sequential-read nets are never fusion candidates.
    assert "out" not in fused
    assert all(name not in root_nets(module) for name in fused)


def test_div_mod_b_feeders_are_blocklisted():
    module = Module("divider")
    a = module.add_input("a", 8)
    b = module.add_input("b", 8)
    out = module.add_output("out", 8)
    divisor = module.binop("or", b, a)  # single reader, feeds div's b
    module.add_cell("div", {"a": a, "b": divisor, "out": out})
    module.validate()
    plan = build_plan(module, collect_profile(module, cycles=32))
    # The generated div guard references b twice; inlining would
    # duplicate the whole divisor subtree textually.
    assert divisor.name not in plan.fuse_nets
    assert differential_check(module, cycles=128, seed=5, plan=plan)


def test_fuse_cap_env_limits_expression_growth(monkeypatch):
    module = Module("chain")
    a = module.add_input("a", 8)
    b = module.add_input("b", 8)
    out = module.add_output("out", 8)
    acc = a
    for _ in range(6):  # a deep single-reader chain
        acc = module.binop("add", acc, b)
    module.add_cell("xor", {"a": acc, "b": b, "out": out})
    module.validate()
    profile = collect_profile(module, cycles=32)
    default_fused = len(build_plan(module, profile).fuse_nets)
    monkeypatch.setenv("REPRO_PGO_FUSE_CAP", "1")
    assert fuse_op_cap() == 1
    capped_fused = len(build_plan(module, profile).fuse_nets)
    assert capped_fused < default_fused
    monkeypatch.delenv("REPRO_PGO_FUSE_CAP")
    assert fuse_op_cap() == FUSE_OP_CAP


def test_pass_fingerprints_carry_the_profile_digest():
    module = _mixer()
    profile = collect_profile(module, cycles=32)
    reseeded = collect_profile(module, cycles=32, seed=77)
    passes, _ = pgo_passes(profile)
    fingerprints = [p.fingerprint() for p in passes]
    assert all(profile.digest() in fp for fp in fingerprints)
    other = [p.fingerprint() for p in pgo_passes(reseeded)[0]]
    assert fingerprints != other  # new observations, new cache keys
    assert PGO_VERSION == 1


def test_gated_interpreter_and_specialized_program_are_bit_identical():
    module = _mixer()
    plan = build_plan(module, collect_profile(module, cycles=64))
    assert differential_check(
        module, cycles=256, seed=11, backend="interp", plan=plan
    )
    assert differential_check(
        module, cycles=256, seed=11, backend="compiled", plan=plan
    )


def test_fifo_pipeline_differential_under_plan():
    """The acceptance synthetic: ready/valid FIFO chains exercise the
    sequential roots (in_ready/out_valid/out_data) the gating logic
    must treat as change sources."""
    module = fifo_pipeline(stages=4, width=16, depth=3)
    profile = collect_profile(module, cycles=64)
    plan = build_plan(module, profile)
    for backend in ("interp", "compiled"):
        assert differential_check(
            module, cycles=256, seed=21, backend=backend, plan=plan
        )


def test_adversarially_wrong_profile_costs_speed_never_correctness():
    module = _mixer()
    roots = root_nets(module)
    # A profile claiming every root was constant-zero and nothing ever
    # toggled — maximally wrong under real stimulus.  The runtime guard
    # must reject the specialized fast path every cycle and gating must
    # still re-fire cones whose inputs actually changed.
    lying = SimProfile(
        module.structural_hash(), 64, 0, 1, "compiled",
        {}, {name: 0 for name in roots}, {},
    )
    plan = build_plan(module, lying)
    assert plan.const_roots  # the lie made it into the plan...
    assert set(plan.cold_roots) == set(roots)
    for backend in ("interp", "compiled"):  # ...and is harmless anyway
        assert differential_check(
            module, cycles=256, seed=31, backend=backend, plan=plan
        )


def test_plans_are_scalar_only():
    module = _mixer()
    plan = build_plan(module, collect_profile(module, cycles=32))
    with pytest.raises(NetlistError):
        differential_check(module, cycles=32, lanes=4, plan=plan)
    with pytest.raises(NetlistError):
        differential_check(module, cycles=32, backend="vector", plan=plan)


def test_fused_nets_are_inlined_out_of_the_specialized_program():
    module = _mixer()
    plan = build_plan(module, collect_profile(module, cycles=32))
    assert plan.fuse_nets
    specialized = CompiledSimulator(module, plan=plan)
    stimulus = random_stimulus(module, 16, seed=41)
    specialized.run(stimulus)
    # Outputs stay peekable; a fused net has no slot to peek.
    assert specialized.peek_net("out") is not None
    with pytest.raises(NetlistError):
        specialized.peek_net(plan.fuse_nets[0])

"""Functional tests for the evaluated designs (FPU, GBP, FFT, RISC, BLAS)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs.blas import (
    elaborate_kernel,
    golden_axpy,
    golden_dot,
    golden_iamax,
)
from repro.designs.fft import (
    elaborate_fft16,
    elaborate_flofft16,
    golden_wht,
)
from repro.designs.fpu import LiFpu, elaborate_fpu_ls
from repro.designs.gbp_la import (
    elaborate_blur,
    elaborate_gbp,
    golden_blur_chunked,
    golden_gbp,
)
from repro.designs.gbp_li import LiGbpDriver, build_li_gbp
from repro.designs.risc import (
    elaborate_risc,
    encode_instr,
    golden_alu,
)
from repro.lilac.run import TransactionRunner


# ---------------------------------------------------------------------------
# FPU (Table 1 designs).


@pytest.mark.parametrize("frequency", [100, 400])
def test_fpu_ls_computes(frequency):
    elab = elaborate_fpu_ls(frequency)
    runner = TransactionRunner(elab)
    results = runner.run(
        [
            {"op": 1, "l": 123456, "r": 7890},
            {"op": 0, "l": 123, "r": 456},
        ]
    )
    assert results[0]["o"] == 131346
    assert results[1]["o"] == 123 * 456


@pytest.mark.parametrize("frequency", [100, 400])
def test_fpu_li_computes(frequency):
    fpu = LiFpu(frequency)
    cases = [
        {"op": 1, "l": 11, "r": 31},
        {"op": 0, "l": 11, "r": 31},
        {"op": 1, "l": 1, "r": 1},
        {"op": 0, "l": 250, "r": 4},
    ]
    assert fpu.run(cases) == [42, 341, 2, 1000]


@settings(max_examples=20, deadline=None)
@given(
    op=st.integers(0, 1),
    l=st.integers(0, 2**31),
    r=st.integers(0, 2**31),
)
def test_fpu_ls_li_agree(op, l, r):
    """Both implementations compute the same function (mod 2^32)."""
    ls = TransactionRunner(elaborate_fpu_ls(400))
    li = LiFpu(400)
    ls_out = ls.run([{"op": op, "l": l, "r": r}])[0]["o"]
    li_out = li.run([{"op": op, "l": l, "r": r}])[0]
    assert ls_out == li_out


# ---------------------------------------------------------------------------
# Gaussian Blur Pyramid (Figure 13 designs).


@pytest.mark.parametrize("parallelism", [1, 2, 4, 8, 16])
def test_blur_la_matches_golden(parallelism):
    blur = elaborate_blur(parallelism)
    tile = [(i * 13 + 5) % 200 for i in range(16)]
    out = TransactionRunner(blur).run([{"px": tile}])[0]["out"]
    assert out == golden_blur_chunked(tile, parallelism, 16)


def test_blur_la_multi_tile_state():
    """The conv window carries across transactions, matching hardware."""
    blur = elaborate_blur(4)
    tiles = [list(range(16)), list(range(100, 116))]
    results = TransactionRunner(blur).run([{"px": t} for t in tiles])
    window = [0] * 16
    for tile, result in zip(tiles, results):
        assert result["out"] == golden_blur_chunked(tile, 4, 16, window)


@pytest.mark.parametrize("parallelism", [4, 16])
def test_gbp_la_matches_golden(parallelism):
    gbp = elaborate_gbp(parallelism)
    tile = [(i * 37 + 11) % 251 for i in range(16)]
    out = TransactionRunner(gbp).run([{"img": tile}])[0]["out"]
    assert out == golden_gbp(tile, parallelism, 16)


@pytest.mark.parametrize("parallelism", [4, 16])
def test_gbp_li_matches_golden(parallelism):
    module = build_li_gbp(parallelism)
    driver = LiGbpDriver(module, 16)
    tile = [(i * 37 + 11) % 251 for i in range(16)]
    out = driver.run([tile])[0]
    assert out == golden_gbp(tile, parallelism, 16)


def test_gbp_la_li_agree():
    la = elaborate_gbp(8)
    li = LiGbpDriver(build_li_gbp(8), 16)
    tile = [(7 * i + 3) % 199 for i in range(16)]
    la_out = TransactionRunner(la).run([{"img": tile}])[0]["out"]
    li_out = li.run([tile])[0]
    assert la_out == li_out


# ---------------------------------------------------------------------------
# FFT designs (Figure 8 rows).


def test_fft16_lilac_matches_wht():
    elab = elaborate_fft16(width=16)
    assert elab.latency == 4
    xs = [(i * 7 + 1) % 100 for i in range(16)]
    out = TransactionRunner(elab).run([{"x": xs}])[0]["y"]
    assert out == golden_wht(xs, 16)


def test_fft16_pipelined_throughput():
    elab = elaborate_fft16(width=16)
    assert elab.delay == 1
    runner = TransactionRunner(elab)
    vectors = [[(i + t) % 64 for i in range(16)] for t in range(5)]
    results = runner.run([{"x": v} for v in vectors])
    for vector, result in zip(vectors, results):
        assert result["y"] == golden_wht(vector, 16)


@pytest.mark.parametrize("frequency", [100, 400])
def test_flofft16_balances_any_frequency(frequency):
    """The FloPoCo FFT rebalances for any adder latency choice."""
    elab = elaborate_flofft16(frequency, width=32)
    from repro.generators.flopoco import adder_depth

    per_stage = adder_depth(32, frequency)
    assert elab.out_params["#L"] == 4 * per_stage
    xs = [(i * 3 + 2) % 1000 for i in range(16)]
    out = TransactionRunner(elab).run([{"x": xs}])[0]["y"]
    assert out == golden_wht(xs, 32)


# ---------------------------------------------------------------------------
# RISC (Figure 8 row).


def test_risc_single_instruction():
    elab = elaborate_risc()
    assert elab.latency == 3
    runner = TransactionRunner(elab)
    result = runner.run(
        [{"instr": encode_instr(0, 5), "acc": 10}]
    )[0]["result"]
    assert result == golden_alu(0, 10, 5) == 15


@settings(max_examples=30, deadline=None)
@given(
    op=st.integers(0, 7),
    acc=st.integers(0, 255),
    imm=st.integers(0, 255),
)
def test_risc_matches_golden_alu(op, acc, imm):
    elab = elaborate_risc()
    runner = TransactionRunner(elab)
    result = runner.run(
        [{"instr": encode_instr(op, imm), "acc": acc}]
    )[0]["result"]
    assert result == golden_alu(op, acc, imm)


def test_risc_pipelined():
    elab = elaborate_risc()
    assert elab.delay == 1
    runner = TransactionRunner(elab)
    cases = [
        {"instr": encode_instr(0, i), "acc": i} for i in range(6)
    ]
    results = runner.run(cases)
    for i, result in enumerate(results):
        assert result["result"] == (2 * i) & 0xFF


# ---------------------------------------------------------------------------
# BLAS kernels (Figure 8 row).


def test_blas_scal():
    elab = elaborate_kernel("Scal", {"#W": 16, "#ML": 2})
    x = list(range(1, 9))
    out = TransactionRunner(elab).run([{"alpha": 3, "x": x}])[0]["y"]
    assert out == [3 * v for v in x]


def test_blas_axpy():
    elab = elaborate_kernel("Axpy", {"#W": 16, "#ML": 3})
    assert elab.out_params["#L"] == 4
    x = [1, 2, 3, 4, 5, 6, 7, 8]
    y = [10] * 8
    out = TransactionRunner(elab).run(
        [{"alpha": 2, "x": x, "y": y}]
    )[0]["r"]
    assert out == golden_axpy(2, x, y, 16)


@pytest.mark.parametrize("mult_latency", [1, 2, 4])
def test_blas_dot_any_multiplier_latency(mult_latency):
    elab = elaborate_kernel("Dot", {"#W": 16, "#ML": mult_latency})
    assert elab.out_params["#L"] == mult_latency + 3
    x = [1, 2, 3, 4, 5, 6, 7, 8]
    y = [8, 7, 6, 5, 4, 3, 2, 1]
    out = TransactionRunner(elab).run([{"x": x, "y": y}])[0]["s"]
    assert out == golden_dot(x, y, 16)


def test_blas_asum():
    elab = elaborate_kernel("Asum", {"#W": 16})
    x = [10, 20, 30, 40, 1, 2, 3, 4]
    out = TransactionRunner(elab).run([{"x": x}])[0]["s"]
    assert out == sum(x)


def test_blas_nrm2sq():
    elab = elaborate_kernel("Nrm2Sq", {"#W": 32, "#ML": 2})
    x = [1, 2, 3, 4, 5, 6, 7, 8]
    out = TransactionRunner(elab).run([{"x": x}])[0]["s"]
    assert out == sum(v * v for v in x)


def test_blas_iamax():
    elab = elaborate_kernel("Iamax", {"#W": 16})
    x = [5, 9, 2, 9, 1, 0, 30, 7]
    out = TransactionRunner(elab).run([{"x": x}])[0]["idx"]
    assert out == golden_iamax(x) == 6


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 60000), min_size=8, max_size=8))
def test_blas_iamax_property(x):
    elab = elaborate_kernel("Iamax", {"#W": 16})
    out = TransactionRunner(elab).run([{"x": x}])[0]["idx"]
    assert x[out] == max(x)
    assert out == golden_iamax(x)

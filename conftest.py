"""Repo-wide pytest fixtures.

The CLI enables the persistent artifact cache by default (resolving to
``$REPRO_CACHE_DIR``), so every test gets a private, empty cache root:
tests stay hermetic — cold on every run, never sharing artifacts across
tests or with the developer's real cache — while still exercising the
disk-cache code path end to end.  Tests that *want* warm-versus-cold
behavior opt in by pointing two sessions at one explicit directory.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture(autouse=True)
def _no_fsync(monkeypatch):
    """Skip fsync in tests: SIGKILL safety only needs write *ordering*
    (which the suite exercises), not power-loss durability — and fsync
    on every cache write makes the suite dramatically slower on some
    filesystems.  Tests that verify the syncing path itself re-enable
    it with ``monkeypatch.setenv("REPRO_CACHE_FSYNC", "1")``."""
    monkeypatch.setenv("REPRO_CACHE_FSYNC", "0")


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Fault plans install process-globally (see repro.driver.faults);
    a test that installs one — directly or by building a session with a
    ``fault_plan`` — must not leak it into the next test."""
    from repro.driver import faults

    yield
    faults.uninstall()

"""Export the embedded Lilac sources to .lilac files for reading."""

import pathlib

from repro.designs.blas import BLAS_SOURCE
from repro.designs.fft import FFT_FLOPOCO, FFT_LILAC
from repro.designs.fpu import FPU_LA_SOURCE
from repro.designs.gbp_la import GBP_SOURCE
from repro.designs.risc import RISC_SOURCE
from repro.lilac.stdlib import STDLIB_SOURCE

HERE = pathlib.Path(__file__).parent

SOURCES = {
    "stdlib.lilac": STDLIB_SOURCE,
    "fpu.lilac": FPU_LA_SOURCE,
    "gbp.lilac": GBP_SOURCE,
    "fft_lilac.lilac": FFT_LILAC,
    "fft_flopoco.lilac": FFT_FLOPOCO,
    "risc.lilac": RISC_SOURCE,
    "blas.lilac": BLAS_SOURCE,
}

if __name__ == "__main__":
    for name, source in SOURCES.items():
        (HERE / name).write_text(source.strip() + "\n")
        print(f"wrote designs/{name}")

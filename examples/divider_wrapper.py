"""Vivado divider wrapper (Figure 9d): one LA interface, three cores.

The Vivado divider generator offers three microarchitectures with
wildly different timing contracts (fixed 8-cycle, closed-form formula,
datasheet table).  A single Lilac wrapper selects the recommended core
by bitwidth and re-exports a uniform latency-abstract interface.

Run:  python examples/divider_wrapper.py
"""

from repro.driver import CompileSession
from repro.generators import default_registry
from repro.lilac.run import TransactionRunner
from repro.generators.interfaces import VIVADO_DIV_INTERFACES

WRAPPER = VIVADO_DIV_INTERFACES + """
// Figure 9d: the documentation's guidance, encapsulated.
comp DivWrap[#W]<G:1>(n: [G, G+1] #W, d: [G, G+1] #W)
    -> (q: [G+#L, G+#L+1] #W) with { some #L where #L > 0; } {
  if #W < 12 {
    dv := new LutMult[#W]<G>(n, d);
    q = dv.q;
    #L := 8;
  } else { if #W < 16 {
    dv := new Rad2[#W, 1, 0]<G>(n, d);
    q = dv.q;
    #L := #W + 2;
  } else {
    D := new HighRad[#W];
    dv := D<G>(n, d);
    q = dv.q;
    #L := D::#L;
  } }
}
"""


def main():
    session = CompileSession()
    check = session.typecheck(WRAPPER, "DivWrap")
    report = check.value
    print(f"DivWrap type check: {'OK' if check.ok else 'FAILED'} "
          f"({report.obligations} obligations)\n")

    registry = default_registry()
    cases = [(8, "LutMult"), (12, "Radix-2"), (32, "High-radix")]
    for width, arch in cases:
        div = session.elaborate(
            WRAPPER, "DivWrap", {"#W": width}, registry
        ).value
        runner = TransactionRunner(div)
        n, d = (200, 7) if width == 8 else (3000, 13) if width == 12 else (
            1_000_000, 997
        )
        result = runner.run([{"n": n, "d": d}])[0]["q"]
        print(f"W={width:2d} -> {arch:10s} latency={div.out_params['#L']:2d}  "
              f"{n} / {d} = {result} (expected {n // d})")
        assert result == n // d


if __name__ == "__main__":
    main()

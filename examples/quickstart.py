"""Quickstart: the paper's FPU story end to end.

1. Write a latency-abstract FPU against FloPoCo-generated cores whose
   latency is an *output parameter*.
2. Watch the type checker reject the unbalanced version with a
   counterexample (section 3.2).
3. Type check the corrected design once — it is safe for *every*
   parameterization.
4. Elaborate at two different FloPoCo frequency goals; the same source
   adapts, producing pure latency-sensitive RTL both times.
5. Simulate, and emit Verilog.

Run:  python examples/quickstart.py
"""

from repro.designs.fpu import FPU_LA_SOURCE
from repro.generators import GeneratorRegistry
from repro.generators.flopoco import FloPoCoGenerator
from repro.lilac import parse_program
from repro.lilac.elaborate import Elaborator
from repro.lilac.run import TransactionRunner
from repro.lilac.stdlib import stdlib_program
from repro.lilac.typecheck import check_component
from repro.rtl import emit_verilog

WRONG_FPU = """
comp BadFPU[#W]<G:1>(
    op: [G, G+1] 1, l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G, G+1] #W) {
  Add := new FPAdd[#W];
  Mul := new FPMul[#W];
  add := Add<G>(l, r);
  mul := Mul<G>(l, r);
  mx := new Mux[#W]<G>(op, add.o, mul.o);
  o = mx.out;
}
"""


def main():
    print("=" * 70)
    print("1. The erroneous FPU (Figure 5a): reads the adder at cycle 0")
    print("=" * 70)
    program = stdlib_program(FPU_LA_SOURCE + WRONG_FPU)
    report = check_component(program, "BadFPU")
    for error in report.errors[:2]:
        print(error.render())
    print()

    print("=" * 70)
    print("2. The balanced FPU (Figure 5b) type checks for ALL parameters")
    print("=" * 70)
    report = check_component(program, "FPU")
    print(f"FPU: {'OK' if report.ok else 'FAILED'} "
          f"({report.obligations} proof obligations discharged)\n")

    for frequency in (100, 400):
        print("=" * 70)
        print(f"3. Elaborate with FloPoCo targeting {frequency} MHz")
        print("=" * 70)
        registry = GeneratorRegistry().register(FloPoCoGenerator(frequency))
        elaborator = Elaborator(program, registry)
        fpu = elaborator.elaborate("FPU", {"#W": 32})
        print(f"   adder latency  = "
              f"{elaborator.elaborate('FPAdd', {'#W': 32}).latency}")
        print(f"   mult. latency  = "
              f"{elaborator.elaborate('FPMul', {'#W': 32}).latency}")
        print(f"   FPU latency #L = {fpu.out_params['#L']}, II = {fpu.delay}")
        runner = TransactionRunner(fpu)
        results = runner.run(
            [
                {"op": 1, "l": 20, "r": 22},   # add
                {"op": 0, "l": 6, "r": 7},     # multiply
            ]
        )
        print(f"   20 + 22 = {results[0]['o']},  6 * 7 = {results[1]['o']}\n")

    print("=" * 70)
    print("4. Structural Verilog (first lines)")
    print("=" * 70)
    registry = GeneratorRegistry().register(FloPoCoGenerator(400))
    fpu = Elaborator(program, registry).elaborate("FPU", {"#W": 32})
    print("\n".join(emit_verilog(fpu.module).splitlines()[:12]))
    print("...")


if __name__ == "__main__":
    main()

"""Quickstart: the paper's FPU story end to end, through the staged driver.

1. Write a latency-abstract FPU against FloPoCo-generated cores whose
   latency is an *output parameter*.
2. Watch the type checker reject the unbalanced version with a
   counterexample (section 3.2).
3. Type check the corrected design once — it is safe for *every*
   parameterization.
4. Elaborate at two different FloPoCo frequency goals; the same source
   adapts, producing pure latency-sensitive RTL both times.
5. Simulate, emit Verilog, and inspect the per-stage timings and the
   session's artifact cache.

Run:  python examples/quickstart.py
"""

from repro.designs.fpu import FPU_LA_SOURCE
from repro.driver import CompileSession
from repro.generators.flopoco import FloPoCoGenerator
from repro.lilac.run import TransactionRunner

WRONG_FPU = """
comp BadFPU[#W]<G:1>(
    op: [G, G+1] 1, l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G, G+1] #W) {
  Add := new FPAdd[#W];
  Mul := new FPMul[#W];
  add := Add<G>(l, r);
  mul := Mul<G>(l, r);
  mx := new Mux[#W]<G>(op, add.o, mul.o);
  o = mx.out;
}
"""


def main():
    session = CompileSession()
    source = FPU_LA_SOURCE + WRONG_FPU

    print("=" * 70)
    print("1. The erroneous FPU (Figure 5a): reads the adder at cycle 0")
    print("=" * 70)
    bad = session.typecheck(source, "BadFPU")
    for diagnostic in bad.diagnostics[:2]:
        print(diagnostic.message)
    print()

    print("=" * 70)
    print("2. The balanced FPU (Figure 5b) type checks for ALL parameters")
    print("=" * 70)
    good = session.typecheck(source, "FPU")
    report = good.value
    print(f"FPU: {'OK' if good.ok else 'FAILED'} "
          f"({report.obligations} proof obligations discharged, "
          f"{good.millis:.0f} ms)\n")

    for frequency in (100, 400):
        print("=" * 70)
        print(f"3. Elaborate with FloPoCo targeting {frequency} MHz")
        print("=" * 70)
        generators = [FloPoCoGenerator(frequency)]
        fpu = session.elaborate(source, "FPU", {"#W": 32}, generators).value
        adder = session.elaborate(source, "FPAdd", {"#W": 32}, generators)
        mult = session.elaborate(source, "FPMul", {"#W": 32}, generators)
        print(f"   adder latency  = {adder.value.latency} "
              f"({'cache hit' if adder.from_cache else 'computed'})")
        print(f"   mult. latency  = {mult.value.latency}")
        print(f"   FPU latency #L = {fpu.out_params['#L']}, II = {fpu.delay}")
        runner = TransactionRunner(fpu)
        results = runner.run(
            [
                {"op": 1, "l": 20, "r": 22},   # add
                {"op": 0, "l": 6, "r": 7},     # multiply
            ]
        )
        print(f"   20 + 22 = {results[0]['o']},  6 * 7 = {results[1]['o']}\n")

    print("=" * 70)
    print("4. The full pipeline in one call: compile → Verilog + synthesis")
    print("=" * 70)
    result = session.compile(
        source, "FPU", {"#W": 32}, [FloPoCoGenerator(400)]
    )
    print("\n".join(result.verilog.splitlines()[:12]))
    print("...")
    synth = result.report
    print(f"\nsynthesis: {synth.luts} LUTs, {synth.registers} registers, "
          f"{synth.fmax_mhz:.1f} MHz")
    print("stage timings (ms):",
          {k: round(v * 1000, 2) for k, v in result.timings().items()})
    print()
    print(session.stats.render())


if __name__ == "__main__":
    main()

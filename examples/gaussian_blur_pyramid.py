"""Gaussian Blur Pyramid (section 7): latency-abstract vs ready-valid.

Streams a synthetic image through both GBP implementations, verifies
they agree with each other and with the software model, and prints the
Figure 13 resource comparison for the chosen parallelism.

Run:  python examples/gaussian_blur_pyramid.py [parallelism]
"""

import sys

from repro.designs.gbp_la import TILE, elaborate_gbp, golden_gbp
from repro.designs.gbp_li import LiGbpDriver, build_li_gbp
from repro.lilac.run import TransactionRunner
from repro.synth import synthesize


def synthetic_image(tiles: int):
    """A deterministic test pattern, one 16-pixel tile per row."""
    image = []
    for t in range(tiles):
        image.append([(t * 31 + i * 13 + 7) % 256 for i in range(TILE)])
    return image


def main():
    parallelism = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    width = 16
    print(f"Aetherling convolution parallelism N = {parallelism}\n")

    print("Elaborating the latency-abstract pyramid...")
    la = elaborate_gbp(parallelism, width)
    print(f"  tool-reported timing: II = {la.delay}, latency = {la.latency}")
    print(f"  output parameters: {la.out_params}\n")

    print("Building the ready-valid baseline...")
    li_module = build_li_gbp(parallelism, width)

    image = synthetic_image(4)
    print(f"Streaming {len(image)} tiles through both implementations...")
    la_results = TransactionRunner(la).run([{"img": t} for t in image])
    li_results = LiGbpDriver(li_module, width).run(image)

    for index, tile in enumerate(image):
        got_la = la_results[index]["out"]
        got_li = li_results[index]
        assert got_la == got_li, f"tile {index}: LA and LI disagree!"
    print("  LA and LI outputs agree on every tile.")
    first_golden = golden_gbp(image[0], parallelism, width)
    assert la_results[0]["out"] == first_golden
    print("  First tile matches the software golden model.\n")

    print("Synthesis comparison (the Figure 13 measurement):")
    la_synth = synthesize(la.module, "Lilac (LA)")
    li_synth = synthesize(li_module, "RV (LI)")
    for report in (la_synth, li_synth):
        print(f"  {report.name:12s} {report.luts:6d} LUTs  "
              f"{report.registers:6d} regs  {report.fmax_mhz:7.1f} MHz")
    print(f"\n  LI overhead: "
          f"{li_synth.luts / la_synth.luts - 1:+.1%} LUTs, "
          f"{li_synth.registers / la_synth.registers - 1:+.1%} registers")


if __name__ == "__main__":
    main()

"""A 16-point transform on FloPoCo butterflies that rebalances itself.

Each butterfly's latency is FloPoCo's choice (an output parameter).
Changing the frequency goal changes every stage's depth — and the design
adapts with zero source changes, which is the latency-abstract pitch on
a non-trivial dataflow graph.

Run:  python examples/fft_pipeline.py
"""

from repro.designs.fft import elaborate_flofft16, elaborate_fft16, golden_wht
from repro.generators.flopoco import adder_depth
from repro.lilac.run import TransactionRunner
from repro.synth import synthesize


def main():
    xs = [(i * 5 + 3) % 500 for i in range(16)]
    print("input:", xs, "\n")

    print("Pure-Lilac FFT (combinational butterflies, 1 cycle/stage):")
    lilac_fft = elaborate_fft16(width=16)
    out = TransactionRunner(lilac_fft).run([{"x": xs}])[0]["y"]
    assert out == golden_wht(xs, 16)
    print(f"  latency {lilac_fft.latency} cycles, output verified\n")

    for frequency in (100, 250, 400):
        elab = elaborate_flofft16(frequency, width=32)
        per_stage = adder_depth(32, frequency)
        out = TransactionRunner(elab).run([{"x": xs}])[0]["y"]
        assert out == golden_wht(xs, 32)
        report = synthesize(elab.module)
        print(f"FloPoCo @ {frequency} MHz goal: {per_stage} cycle(s)/stage, "
              f"total latency {elab.out_params['#L']:2d}, "
              f"{report.registers:5d} regs, Fmax {report.fmax_mhz:.0f} MHz")
    print("\nSame source; three different pipelines; all verified.")


if __name__ == "__main__":
    main()

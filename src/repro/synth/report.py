"""Combined synthesis reports in the style of the paper's tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..rtl import Module
from .area import AreaReport, area
from .timing import TimingReport, timing


class SynthReport:
    """LUTs, registers, and Fmax for one design point."""

    def __init__(self, name: str, area_report: AreaReport, timing_report: TimingReport):
        self.name = name
        self.luts = area_report.luts
        self.registers = area_report.registers
        self.fmax_mhz = timing_report.fmax_mhz
        self.critical_path_ns = timing_report.critical_path_ns
        self.area = area_report
        self.timing = timing_report

    def row(self) -> Tuple[str, int, int, float]:
        return (self.name, self.luts, self.registers, self.fmax_mhz)

    def __repr__(self):
        return (
            f"SynthReport({self.name}: {self.luts} LUTs, "
            f"{self.registers} regs, {self.fmax_mhz:.1f} MHz)"
        )


def synthesize(module: Module, name: str = "") -> SynthReport:
    """Run the area and timing models over a module."""
    return SynthReport(name or module.name, area(module), timing(module))


def geomean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned text table (used by the benchmark harness)."""
    materialized = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row):
        return "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)

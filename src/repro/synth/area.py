"""Area model: technology mapping of netlist cells to LUTs and registers.

The model approximates 6-input-LUT FPGA mapping.  Absolute values are not
expected to match Vivado (see DESIGN.md), but the *sources* of area are
faithful: arithmetic scales with width, handshake FSMs cost LUTs, FIFOs
and valid chains cost registers — which is what drives the paper's LS/LA
vs LI comparisons.
"""

from __future__ import annotations

from math import ceil, log2
from typing import Dict

from ..rtl import Cell, Module, flatten


def luts_of_cell(cell: Cell) -> int:
    kind = cell.kind
    if kind in ("const", "slice", "concat", "shl", "shr", "not"):
        return 0  # wiring / absorbed inversions
    if kind in ("add", "sub"):
        return cell.pins["out"].width  # one LUT per bit of carry chain
    if kind == "mul":
        width = cell.pins["out"].width
        # DSP-assisted multiplier: glue logic only for wide results.
        return 3 * width
    if kind in ("div", "mod"):
        width = cell.pins["out"].width
        return width * width
    if kind in ("and", "or", "xor"):
        return ceil(cell.pins["out"].width / 2)
    if kind == "mux":
        return ceil(cell.pins["out"].width / 2)
    if kind in ("eq", "lt"):
        width = cell.pins["a"].width
        return ceil(width / 2) + 1
    if kind in ("reg", "regen"):
        return 0
    if kind == "fifo":
        width = cell.pins["in_data"].width
        depth = int(cell.params.get("depth", 2))
        # Read mux + pointer compare + full/empty logic.
        return ceil(width / 2) * max(1, depth - 1) + 2 * _ptr_width(depth) + 4
    raise ValueError(f"no area model for cell kind {kind!r}")


def registers_of_cell(cell: Cell) -> int:
    kind = cell.kind
    if kind in ("reg", "regen"):
        return cell.pins["q"].width
    if kind == "fifo":
        width = cell.pins["in_data"].width
        depth = int(cell.params.get("depth", 2))
        return depth * width + 2 * _ptr_width(depth) + 1
    return 0


def _ptr_width(depth: int) -> int:
    return max(1, ceil(log2(depth + 1)))


class AreaReport:
    def __init__(self, luts: int, registers: int, by_kind: Dict[str, int]):
        self.luts = luts
        self.registers = registers
        self.by_kind = by_kind

    def __repr__(self):
        return f"AreaReport(luts={self.luts}, registers={self.registers})"


def area(module: Module) -> AreaReport:
    """Total LUT/register usage of a (hierarchical) module."""
    flat = flatten(module)
    luts = 0
    registers = 0
    by_kind: Dict[str, int] = {}
    for cell in flat.cells.values():
        cell_luts = luts_of_cell(cell)
        luts += cell_luts
        registers += registers_of_cell(cell)
        by_kind[cell.kind] = by_kind.get(cell.kind, 0) + cell_luts
    return AreaReport(luts, registers, by_kind)

"""Synthesis cost model: the reproduction's Vivado stand-in."""

from .area import AreaReport, area, luts_of_cell, registers_of_cell
from .report import SynthReport, format_table, geomean, synthesize
from .timing import TimingReport, logic_delay, routing_delay, timing

__all__ = [
    "AreaReport",
    "area",
    "luts_of_cell",
    "registers_of_cell",
    "SynthReport",
    "format_table",
    "geomean",
    "synthesize",
    "TimingReport",
    "logic_delay",
    "routing_delay",
    "timing",
]

"""Timing model: critical-path estimation and maximum frequency.

The combinational netlist is a DAG (the simulator already rejects loops);
the critical path is the longest register-to-register delay, where each
cell contributes a logic delay (width-dependent for carry chains and
multipliers) and each net contributes a routing delay that grows with its
fanout.  High-fanout control signals — ready/valid handshakes, serializer
selects — therefore hurt, matching the paper's observation that the
handshaking logic becomes the critical path in LI designs and the
serializer fanout in LA ones.
"""

from __future__ import annotations

from math import ceil, log2
from typing import Dict, List, Optional, Tuple

from ..rtl import Cell, Module, Net, flatten

# Base delays in nanoseconds.
_ROUTING_BASE = 0.25
_ROUTING_FANOUT = 0.07


def logic_delay(cell: Cell) -> float:
    kind = cell.kind
    if kind in ("const",):
        return 0.0
    if kind in ("slice", "concat", "shl", "shr"):
        return 0.02
    if kind == "not":
        return 0.05
    if kind in ("add", "sub"):
        return 0.45 + 0.022 * cell.pins["out"].width
    if kind == "mul":
        # DSP-assisted multiply: modest width dependence.
        return 0.9 + 0.02 * cell.pins["out"].width
    if kind in ("div", "mod"):
        width = cell.pins["out"].width
        return 2.0 + 0.25 * width
    if kind in ("and", "or", "xor"):
        return 0.25
    if kind == "mux":
        return 0.3
    if kind in ("eq", "lt"):
        return 0.4 + 0.012 * cell.pins["a"].width
    if kind in ("reg", "regen"):
        return 0.15  # clock-to-q
    if kind == "fifo":
        return 0.5  # state-to-output
    raise ValueError(f"no timing model for cell kind {kind!r}")


def routing_delay(fanout: int) -> float:
    return _ROUTING_BASE + _ROUTING_FANOUT * ceil(log2(max(1, fanout) + 1))


class TimingReport:
    def __init__(self, critical_path_ns: float, fmax_mhz: float, path: List[str]):
        self.critical_path_ns = critical_path_ns
        self.fmax_mhz = fmax_mhz
        self.path = path

    def __repr__(self):
        return (
            f"TimingReport({self.critical_path_ns:.2f} ns, "
            f"{self.fmax_mhz:.1f} MHz)"
        )


def timing(module: Module) -> TimingReport:
    """Longest combinational path (register/input -> register/output)."""
    flat = flatten(module)
    fanout: Dict[Net, int] = {}
    producers: Dict[Net, Cell] = {}
    for cell in flat.cells.values():
        for pin in cell.input_pins():
            net = cell.pins.get(pin)
            if net is None:
                continue
            # Control pins load every bit they steer: a register enable
            # drives one CE per flip-flop, a mux select one input per
            # bit.  This is what makes control-heavy (handshaking) logic
            # slow — the paper's LI critical-path observation.
            if cell.kind == "regen" and pin == "en":
                load = cell.pins["q"].width
            elif cell.kind == "mux" and pin == "sel":
                load = cell.pins["out"].width
            elif cell.kind == "fifo" and pin in ("in_valid", "out_ready"):
                load = cell.pins["in_data"].width
            else:
                load = 1
            fanout[net] = fanout.get(net, 0) + load
        for pin in cell.output_pins():
            net = cell.pins.get(pin)
            if net is not None:
                producers[net] = cell

    # arrival[net] = worst arrival time at the net (ns).  Sequential cell
    # outputs and module inputs start a path; sequential cell inputs and
    # module outputs end one.
    arrival: Dict[Net, float] = {}
    best_path: Tuple[float, List[str]] = (0.0, [])

    input_nets = {net for _name, net in flat.inputs()}
    parent: Dict[Net, Optional[Net]] = {}

    # Pure-wiring cells: slices, concatenations, constant shifts and
    # constants are aliases after technology mapping — they add neither
    # logic nor a routing hop.
    wiring = {"slice", "concat", "shl", "shr", "const"}

    def net_arrival(net: Net) -> float:
        cached = arrival.get(net)
        if cached is not None:
            return cached
        producer = producers.get(net)
        if producer is not None and producer.kind in wiring:
            worst = 0.0
            worst_net: Optional[Net] = None
            for pin in producer.input_pins():
                in_net = producer.pins.get(pin)
                if in_net is None:
                    continue
                candidate = net_arrival(in_net)
                if candidate > worst:
                    worst = candidate
                    worst_net = in_net
            arrival[net] = worst
            parent[net] = worst_net
            return worst
        route = routing_delay(fanout.get(net, 1))
        if producer is None or producer.is_sequential():
            base = logic_delay(producer) if producer is not None else 0.0
            arrival[net] = base + route
            parent[net] = None
            return arrival[net]
        worst = 0.0
        worst_net: Optional[Net] = None
        for pin in producer.input_pins():
            in_net = producer.pins.get(pin)
            if in_net is None:
                continue
            candidate = net_arrival(in_net)
            if candidate > worst:
                worst = candidate
                worst_net = in_net
        arrival[net] = worst + logic_delay(producer) + route
        parent[net] = worst_net
        return arrival[net]

    def trace(net: Net) -> List[str]:
        names: List[str] = []
        current: Optional[Net] = net
        while current is not None:
            names.append(current.name)
            current = parent.get(current)
        return list(reversed(names))

    endpoints: List[Net] = []
    for cell in flat.cells.values():
        if cell.is_sequential():
            endpoints.extend(
                net for pin, net in cell.pins.items()
                if pin in cell.input_pins() and net is not None
            )
    endpoints.extend(net for _name, net in flat.outputs())

    setup = 0.1
    for net in endpoints:
        total = net_arrival(net) + setup
        if total > best_path[0]:
            best_path = (total, trace(net))

    critical = max(best_path[0], 0.3)
    return TimingReport(critical, 1000.0 / critical, best_path[1])

"""Per-run checkpoint ledger: completed grid points survive the process.

A SIGKILL mid-``repro all`` used to throw away every *completed* grid
point along with the in-flight one — the disk cache preserves stage
artifacts, but the evaluation layer re-walked the whole grid from
scratch.  The :class:`RunLedger` closes that gap: every resolved grid
point is checkpointed as it lands, and ``repro all --resume <run-id>``
replays the ledger so already-completed points are served verbatim
(bit-identical by construction — the recorded value *is* the result)
while only the missing remainder recomputes.

Layout, under ``<cache_root>/runs/<run-id>/``::

    ledger.jsonl        append-only manifest: one header line, then one
                        line per completed point (key, side file,
                        payload digest, sequence number)
    points/<key>.pkl    one pickled result value per completed point

Writes are crash-ordered: the side file is written and published
atomically (temp + ``os.replace``) *before* its manifest line is
appended, so every manifest line points at a complete side file.  A
crash mid-append leaves at most one torn final line, which replay
ignores — along with any side file its line never landed for (that
point recomputes; a dropped checkpoint degrades to a recompute, never
to a wrong result).  Each appended line is flushed (and fsynced, unless
``$REPRO_CACHE_FSYNC=0``) before the writing call returns.

Point identity: :func:`point_key` hashes the mapped function's identity
(module + qualname, with ``functools.partial`` unwrapped so bound
arguments count) together with ``repr(point)`` and
:data:`LEDGER_VERSION`.  Identity is deliberately *coarse* — it does
not hash the function's bytecode — so a resumed run after an editor
save still matches; the version constant is the knob to retire stale
ledgers when result shapes change.

Counters (on the session's ``CacheStats``): ``checkpoint.store`` per
point recorded, ``checkpoint.hit`` per point served from the ledger,
``checkpoint.miss`` per lookup that must compute, ``checkpoint.drain``
per graceful SIGINT/SIGTERM drain.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pickle
import signal
import tempfile
import threading
from typing import Callable, Dict, Iterator, Optional, Tuple

from . import journal as journal_mod

#: Ledger-format epoch; a ``--resume`` against a ledger from a
#: different epoch refuses loudly instead of replaying misshapen
#: results.
LEDGER_VERSION = 1

#: Subdirectory of the cache root that holds all run ledgers.
RUNS_DIRNAME = "runs"


def describe_fn(fn: Callable) -> str:
    """Stable, process-independent identity of a mapped function.

    ``functools.partial`` unwraps to its target plus the repr of its
    bound arguments, so two partials over the same function with
    different bindings get different identities (the grid maps partials
    routinely).
    """
    if isinstance(fn, functools.partial):
        keywords = sorted((fn.keywords or {}).items())
        return (
            f"partial({describe_fn(fn.func)}, args={fn.args!r}, "
            f"kwargs={keywords!r})"
        )
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", getattr(fn, "__name__", repr(fn)))
    return f"{module}:{qualname}"


def point_key(fn: Callable, point) -> str:
    """Content address of one (function, grid point) work item."""
    material = repr((LEDGER_VERSION, describe_fn(fn), repr(point)))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


class RunLedger:
    """Append-only checkpoint log of one named run.

    ``resume=False`` (a fresh run) requires the run directory to not
    already hold a ledger — silently appending to a stranger's run
    would corrupt both.  ``resume=True`` replays the existing manifest
    (tolerating a torn tail line) into memory, after which
    :meth:`lookup` serves recorded points without recomputation.
    """

    def __init__(self, cache_root: str, run_id: str, stats=None,
                 resume: bool = False):
        if not run_id or os.sep in run_id or run_id in (".", ".."):
            raise ValueError(f"invalid run id {run_id!r}")
        self.run_id = run_id
        self.dir = os.path.join(
            os.path.abspath(cache_root), RUNS_DIRNAME, run_id
        )
        self.points_dir = os.path.join(self.dir, "points")
        self.manifest_path = os.path.join(self.dir, "ledger.jsonl")
        self.stats = stats
        self._lock = threading.Lock()
        self._seq = 0
        self._recorded: Dict[str, str] = {}  # key -> payload sha256
        self._handle = None
        exists = os.path.exists(self.manifest_path)
        if exists and not resume:
            raise FileExistsError(
                f"run {run_id!r} already has a ledger at "
                f"{self.manifest_path}; pass --resume to continue it "
                "or pick a fresh --run-id"
            )
        os.makedirs(self.points_dir, exist_ok=True)
        if exists:
            self._replay()
        self._handle = open(self.manifest_path, "a", encoding="utf-8")
        if not exists:
            self._append_line({
                "type": "header",
                "version": LEDGER_VERSION,
                "run_id": run_id,
            })

    # -- internals -------------------------------------------------------

    def _bump(self, counter: str, amount: int = 1) -> None:
        if self.stats is not None:
            self.stats.bump(counter, amount)

    def _append_line(self, payload: Dict[str, object]) -> None:
        line = json.dumps(payload, sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        journal_mod.fsync_fd(self._handle.fileno())

    def _replay(self) -> None:
        """Load every intact manifest line; drop torn tails and lines
        whose side file is missing or damaged (those points recompute)."""
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return
        saw_header = False
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                entry = json.loads(raw)
            except ValueError:
                # A torn tail line from a killed writer — or garbage.
                # Either way: not a checkpoint.
                continue
            if not isinstance(entry, dict):
                continue
            if entry.get("type") == "header":
                if entry.get("version") != LEDGER_VERSION:
                    raise ValueError(
                        f"ledger {self.manifest_path} is version "
                        f"{entry.get('version')!r}; this build reads "
                        f"version {LEDGER_VERSION}"
                    )
                saw_header = True
                continue
            if entry.get("type") != "point":
                continue
            key = entry.get("key")
            digest = entry.get("sha256")
            if not isinstance(key, str) or not isinstance(digest, str):
                continue
            path = self._point_path(key)
            try:
                with open(path, "rb") as handle:
                    payload = handle.read()
            except OSError:
                continue
            if hashlib.sha256(payload).hexdigest() != digest:
                continue
            self._recorded[key] = digest
            self._seq = max(self._seq, int(entry.get("seq", 0)))
        if not saw_header:
            raise ValueError(
                f"ledger {self.manifest_path} has no intact header; "
                "refusing to resume from it"
            )

    def _point_path(self, key: str) -> str:
        return os.path.join(self.points_dir, f"{key}.pkl")

    # -- the checkpoint protocol ----------------------------------------

    def lookup(self, key: str) -> Tuple[bool, object]:
        """``(True, value)`` when ``key`` was completed by a previous
        (or this) process; ``(False, None)`` when it must compute."""
        with self._lock:
            known = key in self._recorded
        if not known:
            self._bump("checkpoint.miss")
            return False, None
        try:
            with open(self._point_path(key), "rb") as handle:
                value = pickle.loads(handle.read())
        except Exception:
            self._bump("checkpoint.miss")
            with self._lock:
                self._recorded.pop(key, None)
            return False, None
        self._bump("checkpoint.hit")
        return True, value

    def record(self, key: str, value) -> bool:
        """Checkpoint one completed point; False if unpicklable or the
        write failed (the run continues, that point just won't resume)."""
        try:
            payload = pickle.dumps(value, protocol=4)
        except Exception:
            return False
        digest = hashlib.sha256(payload).hexdigest()
        with self._lock:
            if key in self._recorded:
                return True
            try:
                fd, tmp = tempfile.mkstemp(
                    dir=self.points_dir, suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(payload)
                        handle.flush()
                        journal_mod.fsync_fd(handle.fileno())
                    os.replace(tmp, self._point_path(key))
                except BaseException:
                    try:
                        os.remove(tmp)
                    except OSError:
                        pass
                    raise
                self._seq += 1
                self._append_line({
                    "type": "point",
                    "key": key,
                    "sha256": digest,
                    "seq": self._seq,
                })
            except OSError:
                return False
            self._recorded[key] = digest
        self._bump("checkpoint.store")
        return True

    def flush(self) -> None:
        """Force the manifest to disk (drain paths call this)."""
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                try:
                    self._handle.flush()
                    journal_mod.fsync_fd(self._handle.fileno())
                except (OSError, ValueError):
                    pass

    def close(self) -> None:
        self.flush()
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._recorded)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._recorded

    def digest_map(self) -> Dict[str, str]:
        """key → payload sha256 for every recorded point."""
        with self._lock:
            return dict(self._recorded)

    @property
    def results_digest(self) -> str:
        """One order-independent digest over all recorded results —
        two runs that completed the same points with identical values
        agree on it, whatever order the points resolved in."""
        with self._lock:
            material = json.dumps(
                sorted(self._recorded.items()), sort_keys=True
            )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class graceful_drain:
    """Context manager: SIGTERM behaves like Ctrl-C while active.

    ``repro`` commands running a ledgered grid wrap the evaluation in
    this, so a polite kill (systemd stop, CI timeout, ``kill <pid>``)
    takes the same path as a keyboard interrupt: the grid flushes the
    ledger and unwinds, and the CLI prints the resume hint.  Only
    SIGKILL skips the drain — which is exactly what the journal and
    ledger replay exist for.

    The previous SIGTERM disposition is restored on exit.  Bumps
    ``checkpoint.drain`` on the stats object each time a drain signal
    actually arrives.  No-ops quietly off the main thread, where signal
    handlers cannot be installed.
    """

    def __init__(self, stats=None):
        self.stats = stats
        self._previous = None
        self.drained = False

    def _handler(self, signum, frame):
        self.drained = True
        if self.stats is not None:
            self.stats.bump("checkpoint.drain")
        raise KeyboardInterrupt(f"drain on signal {signum}")

    def __enter__(self) -> "graceful_drain":
        if threading.current_thread() is threading.main_thread():
            try:
                self._previous = signal.signal(
                    signal.SIGTERM, self._handler
                )
            except (ValueError, OSError):
                self._previous = None
        return self

    def __exit__(self, *exc) -> None:
        if self._previous is not None:
            try:
                signal.signal(signal.SIGTERM, self._previous)
            except (ValueError, OSError):
                pass
            self._previous = None


def iter_run_ids(cache_root: str) -> Iterator[str]:
    """Run IDs with a ledger under ``cache_root`` (for diagnostics)."""
    base = os.path.join(os.path.abspath(cache_root), RUNS_DIRNAME)
    try:
        names = sorted(os.listdir(base))
    except OSError:
        return
    for name in names:
        if os.path.exists(os.path.join(base, name, "ledger.jsonl")):
            yield name

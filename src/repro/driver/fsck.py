"""Offline consistency checker for the on-disk artifact store.

``repro fsck`` is the store's independent auditor: where
:meth:`~repro.driver.journal.IntentJournal.recover` repairs what it can
at attach time, fsck *classifies everything* — every entry, temp file,
intent record, and lease under a cache root — and either reports
(read-only, the default) or repairs (``--repair``).  The crash-chaos
harness and CI assert on its verdict: after any SIGKILL the store must
fsck clean, or clean after one ``--repair`` pass.

Finding kinds, from worst to mildest:

``corrupt_entry``
    A ``.pkl`` whose header fails to parse, whose payload digest
    disagrees with its header, or whose header schema disagrees with the
    ``v<N>/`` directory it sits in.  Repair quarantines the file
    (renamed ``*.quarantine`` so evidence survives for a post-mortem;
    readers ignore it).
``dangling_intent``
    An intent record whose owner PID is dead — a writer died
    mid-transaction.  Repair replays it exactly as attach-time recovery
    would: destination intact → roll forward, else roll back.
``orphan_tmp``
    A ``.tmp`` with no intent record and no live excuse: its writer died
    before journaling (or predates the journal).  Repair unlinks it.
``stale_lease``
    A lease file naming a dead PID.  Repair reaps it.
``live_tmp`` *(informational)*
    A ``.tmp`` owned by a provably live writer (journaled intent with a
    live PID, or young enough for the age heuristic).  Never repaired —
    a concurrent writer is not damage.
``foreign_schema`` *(informational)*
    A self-consistent entry under a non-current ``v<N>/`` subtree.
    Stale but harmless (trim evicts by age); never repaired.

Only the non-informational kinds make a store inconsistent.  Exit code
(see :attr:`FsckReport.exit_code`): 0 when consistent — including after
repairs, which is what "repairable" means — 1 when damage remains.

Counters (on a caller-supplied ``CacheStats``): ``fsck.scanned`` per
``.pkl`` examined, ``fsck.<kind>`` per finding, ``fsck.repaired`` per
repair action taken.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from . import journal as journal_mod
from .cache import SCHEMA_VERSION, TMP_REAP_AGE_SECONDS

#: Finding kinds that leave the store damaged (vs merely noteworthy).
DAMAGE_KINDS = (
    "corrupt_entry",
    "dangling_intent",
    "orphan_tmp",
    "stale_lease",
)
INFO_KINDS = ("live_tmp", "foreign_schema")

#: Suffix repair gives corrupt entries instead of deleting them: the
#: bytes stay on disk for a post-mortem, readers never see the file.
QUARANTINE_SUFFIX = ".quarantine"


class Finding:
    """One classified irregularity (or notable fact) in the store."""

    __slots__ = ("kind", "path", "detail", "repaired", "action")

    def __init__(self, kind: str, path: str, detail: str):
        self.kind = kind
        self.path = path
        self.detail = detail
        #: set by the repair pass.
        self.repaired = False
        self.action: Optional[str] = None

    @property
    def damage(self) -> bool:
        return self.kind in DAMAGE_KINDS

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "path": self.path,
            "detail": self.detail,
            "damage": self.damage,
            "repaired": self.repaired,
            "action": self.action,
        }

    def __repr__(self) -> str:
        return f"Finding({self.kind}, {self.path!r})"


class FsckReport:
    """Everything one fsck pass learned about a store root."""

    def __init__(self, root: str, repair: bool):
        self.root = root
        self.repair = repair
        self.findings: List[Finding] = []
        self.scanned = 0
        self.valid = 0

    def add(self, finding: Finding) -> Finding:
        self.findings.append(finding)
        return finding

    def by_kind(self, kind: str) -> List[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for finding in self.findings:
            tally[finding.kind] = tally.get(finding.kind, 0) + 1
        return tally

    @property
    def consistent(self) -> bool:
        """No damage outstanding (repaired damage doesn't count)."""
        return not any(f.damage and not f.repaired for f in self.findings)

    @property
    def exit_code(self) -> int:
        return 0 if self.consistent else 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "repair": self.repair,
            "scanned": self.scanned,
            "valid": self.valid,
            "consistent": self.consistent,
            "exit_code": self.exit_code,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        lines = [f"fsck {self.root}"]
        lines.append(
            f"  scanned {self.scanned} entries, {self.valid} valid"
        )
        for finding in self.findings:
            status = ""
            if finding.repaired:
                status = f" [repaired: {finding.action}]"
            elif not finding.damage:
                status = " [info]"
            lines.append(
                f"  {finding.kind}: {finding.path} — "
                f"{finding.detail}{status}"
            )
        verdict = "consistent" if self.consistent else "INCONSISTENT"
        lines.append(f"  store is {verdict}")
        return "\n".join(lines)


def _bump(stats, counter: str, amount: int = 1) -> None:
    if stats is not None:
        stats.bump(counter, amount)


def _classify_entry(path: str, current_subtree: bool) -> Optional[Finding]:
    """A finding for one ``.pkl``, or None when the entry is healthy."""
    import hashlib
    import json

    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        return Finding("corrupt_entry", path, f"unreadable: {error}")
    header_line, _, payload = data.partition(b"\n")
    try:
        header = json.loads(header_line.decode("utf-8"))
        if not isinstance(header, dict):
            raise ValueError("header is not an object")
    except Exception:
        return Finding("corrupt_entry", path, "unparseable header")
    if header.get("sha256") != hashlib.sha256(payload).hexdigest():
        return Finding("corrupt_entry", path, "payload digest mismatch")
    schema = header.get("schema")
    if current_subtree:
        if schema != SCHEMA_VERSION:
            # A valid entry filed under the wrong version directory can
            # only come from tampering or a copy gone wrong; readers
            # would reject it anyway, so it is damage, not history.
            return Finding(
                "corrupt_entry", path,
                f"header schema {schema!r} under v{SCHEMA_VERSION}/ subtree",
            )
        return None
    return Finding(
        "foreign_schema", path,
        f"valid entry of schema {schema!r} (current is {SCHEMA_VERSION})",
    )


def run_fsck(root: str, repair: bool = False, stats=None) -> FsckReport:
    """Scan (and with ``repair=True``, mend) the store at ``root``.

    Safe to run against a store other processes are actively writing:
    repairs only ever touch state whose owning PID is provably dead,
    quarantined corruption, or unjournaled orphans past the age
    threshold — the same discretion attach-time recovery exercises.
    """
    root = os.path.abspath(root)
    report = FsckReport(root, repair)
    journal = journal_mod.IntentJournal(root, stats)
    leases = journal_mod.LeaseManager(root, stats)
    pending = journal.pending_tmps()
    now = time.time()
    current_prefix = os.path.join(root, f"v{SCHEMA_VERSION}") + os.sep

    # -- pass 1: every entry and temp file in every schema subtree -----
    for directory, _, files in os.walk(root):
        # The journal/lease directories have their own passes.
        relative = os.path.relpath(directory, root)
        top = relative.split(os.sep, 1)[0]
        if top in (journal_mod.JOURNAL_DIRNAME, journal_mod.LEASE_DIRNAME,
                   "runs"):
            continue
        for name in sorted(files):
            path = os.path.join(directory, name)
            if name.endswith(".pkl"):
                report.scanned += 1
                _bump(stats, "fsck.scanned")
                in_current = (path.startswith(current_prefix)
                              or directory == root)
                finding = _classify_entry(path, in_current)
                if finding is None:
                    report.valid += 1
                    continue
                report.add(finding)
                _bump(stats, f"fsck.{finding.kind}")
                if repair and finding.kind == "corrupt_entry":
                    try:
                        os.replace(path, path + QUARANTINE_SUFFIX)
                        finding.repaired = True
                        finding.action = "quarantined"
                        _bump(stats, "fsck.repaired")
                    except OSError as error:
                        finding.detail += f"; quarantine failed: {error}"
            elif name.endswith(".tmp"):
                record = pending.get(os.path.abspath(path))
                if record is not None and journal_mod.pid_alive(record.pid):
                    report.add(Finding(
                        "live_tmp", path,
                        f"journaled writer pid {record.pid} is alive",
                    ))
                    _bump(stats, "fsck.live_tmp")
                    continue
                if record is not None:
                    # Classified (and repaired) with its intent record
                    # in pass 2; counting it here too would double-book.
                    continue
                try:
                    age = now - os.stat(path).st_mtime
                except OSError:
                    continue
                if age < TMP_REAP_AGE_SECONDS:
                    report.add(Finding(
                        "live_tmp", path,
                        f"unjournaled but young ({age:.0f}s); "
                        "possibly a pre-journal writer",
                    ))
                    _bump(stats, "fsck.live_tmp")
                    continue
                finding = report.add(Finding(
                    "orphan_tmp", path,
                    f"no intent record, {age:.0f}s old",
                ))
                _bump(stats, "fsck.orphan_tmp")
                if repair:
                    try:
                        os.remove(path)
                        finding.repaired = True
                        finding.action = "unlinked"
                        _bump(stats, "fsck.repaired")
                    except OSError as error:
                        finding.detail += f"; unlink failed: {error}"

    # -- pass 2: intent records -----------------------------------------
    for record in journal.records():
        if journal_mod.pid_alive(record.pid):
            continue
        valid_dest = (
            os.path.exists(record.dest)
            and journal_mod.validate_entry_file(record.dest)
        )
        direction = "roll forward" if valid_dest else "roll back"
        finding = report.add(Finding(
            "dangling_intent", record.path or record.txn,
            f"writer pid {record.pid} is dead; "
            f"destination {'intact' if valid_dest else 'absent or torn'} "
            f"({direction})",
        ))
        _bump(stats, "fsck.dangling_intent")
        if not repair:
            continue
        try:
            if not valid_dest and os.path.exists(record.dest):
                os.remove(record.dest)
            for leftover in (record.tmp, record.path):
                if leftover and os.path.exists(leftover):
                    os.remove(leftover)
            finding.repaired = True
            finding.action = direction.replace(" ", "_")
            _bump(stats, "fsck.repaired")
        except OSError as error:
            finding.detail += f"; replay failed: {error}"

    # -- pass 3: leases --------------------------------------------------
    for pid, lease_path in sorted(leases.holders().items()):
        if journal_mod.pid_alive(pid):
            continue
        finding = report.add(Finding(
            "stale_lease", lease_path, f"pid {pid} is dead"
        ))
        _bump(stats, "fsck.stale_lease")
        if repair:
            try:
                os.remove(lease_path)
                finding.repaired = True
                finding.action = "reaped"
                _bump(stats, "fsck.repaired")
            except OSError as error:
                finding.detail += f"; reap failed: {error}"

    return report

"""``python -m repro`` — the command-line front door to the pipeline.

Subcommands:

* ``compile`` — run the staged pipeline over a bundled design preset or
  a Lilac source file, printing the schedule, per-stage timings, the
  synthesis report, and (optionally) Verilog.
* ``table``  — regenerate Table 1, 2 or 3.
* ``figure`` — regenerate Figure 8 or 13.
* ``ablation`` — the optimization ablation (pre/post cell counts,
  differential-simulation equivalence, sim speedup per design).
* ``profile`` — simulate catalog designs over the evaluation grid under
  the whole-run wall-time profiler, printing a flame-style attribution
  of compute vs waiting (pool queue, disk I/O, cache-lock contention).
* ``chaos``  — the fault-injection sweep: catalog designs under seeded
  fault plans (disk, worker, solver groups), each run asserted
  bit-identical to a fault-free baseline with every injected fault
  accounted and no exception escaping.  ``--crash`` switches to the
  kill-9 harness: real child processes SIGKILLed at seeded
  ``proc.kill.*`` sites, the store fsck'd and the run resumed.
* ``sweep``  — a deterministic catalog sweep printing one JSON line of
  content digests, checkpoint and fault accounting; the unit of work
  the crash-chaos harness launches (and kills, and resumes) as a
  subprocess.
* ``fsck``   — offline store consistency check: digest-verify every
  entry, classify orphan temp files against the write-ahead journal,
  reap dead writers' leases; ``--repair`` quarantines/mends.  Exit 0
  iff the store is consistent.
* ``all``    — every table, figure and the ablation on one shared
  session, with cache statistics showing the artifacts reused across
  them.

Grid-shaped subcommands take ``--run-id NAME`` to checkpoint every
completed grid point into a per-run ledger under
``<cache>/runs/NAME/``, and ``--resume`` to continue a previous run of
that name, serving its checkpoints verbatim (bit-identical by
construction) and computing only what is missing.  SIGINT/SIGTERM
drain gracefully — the ledger is flushed, exit code 130.

Every subcommand accepts ``-O{0,1,2,3}`` to select the netlist
optimization level (the pass pipeline of :mod:`repro.rtl.passes`;
``-O3`` is profile-guided — it specializes against persisted activity
profiles and degrades to ``-O2`` when none exist),
``--sim-backend {auto,batched,compiled,interp,vector}`` to pick the
simulation engine (``auto`` resolves per design from persisted tuner
calibrations), ``--sim-lanes K`` to batch K stimulus lanes through
each simulate run (one lane-parallel step function advances all of
them on the codegen backends),
``--cache-dir``/``--no-disk-cache`` to steer the persistent
artifact cache (on by default — a second ``repro all -O2`` run is
served from disk, including the compiled backend's generated step
sources), and ``--stats json`` to emit cache + disk + per-pass
statistics as a single JSON line at the end of the run.  Grid-shaped
subcommands additionally take ``--executor {thread,process,auto}``:
process mode fans the evaluation grid over worker processes that
rendezvous through the disk cache instead of a shared in-memory
session.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from ..designs.catalog import DESIGNS, design_point
from ..filament import FilamentError
from ..generators.base import GeneratorError
from ..lilac.ast import LilacError
from ..rtl import backend_choices
from ..rtl.passes import OPT_LEVELS
from .cache import DiskCache
from .chaos import SITE_GROUPS
from .grid import EXECUTORS
from .session import CompileSession
from .artifact import CompileResult

#: Bundled design presets for ``compile --design`` (the catalog's keys).
PRESETS = DESIGNS


def _session_from_args(args) -> CompileSession:
    """One place that turns CLI flags into a configured session.

    The persistent disk cache is *on by default* for the CLI — the whole
    point is that a second ``repro all -O2`` invocation starts warm —
    and resolves to ``--cache-dir``, else ``$REPRO_CACHE_DIR``, else the
    user cache directory.  ``--no-disk-cache`` turns the layer off.
    """
    cache_dir = None
    if not args.no_disk_cache:
        cache_dir = args.cache_dir or DiskCache.default_root()
    return CompileSession(
        opt_level=args.opt_level,
        sim_backend=args.sim_backend,
        cache_dir=cache_dir,
        sim_lanes=args.sim_lanes,
        typecheck_jobs=args.typecheck_jobs,
        typecheck_executor=args.typecheck_executor,
    )


def _attach_ledger(session: CompileSession, args) -> None:
    """Wire ``--run-id``/``--resume`` into a session-held RunLedger."""
    run_id = getattr(args, "run_id", None)
    resume = bool(getattr(args, "resume", False))
    if run_id is None:
        if resume:
            raise SystemExit("--resume requires --run-id")
        return
    if session.cache_dir is None:
        raise SystemExit(
            "--run-id needs the disk cache (drop --no-disk-cache): the "
            "ledger lives under <cache>/runs/"
        )
    from .ledger import RunLedger

    try:
        session.ledger = RunLedger(
            session.cache_dir, run_id, session.stats, resume=resume
        )
    except FileExistsError as error:
        raise SystemExit(str(error))
    except ValueError as error:
        raise SystemExit(f"cannot open run {run_id!r}: {error}")


def _print_stats(session: CompileSession, mode: Optional[str]) -> None:
    """End-of-run statistics: human text or one machine-readable line."""
    if mode == "json":
        print(json.dumps(session.stats_dict(), sort_keys=True))
    elif mode == "text":
        print(session.stats.render())
        print(session.render_pass_stats())


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_params(pairs: List[str]) -> Dict[str, int]:
    params: Dict[str, int] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        try:
            if not sep:
                raise ValueError
            params[name.strip()] = int(value)
        except ValueError:
            raise SystemExit(f"bad --param {pair!r}: expected NAME=INT")
    return params


def _cmd_compile(args) -> int:
    session = _session_from_args(args)
    if args.source:
        with open(args.source) as handle:
            source = handle.read()
        component = args.component
        generators, params = None, {}
        if component is None:
            raise SystemExit("--component is required with --source")
    else:
        source, component, generators, params = design_point(
            args.design, args.freq, args.parallelism
        )
        if args.component:
            component = args.component
    params.update(_parse_params(args.param))

    stages = ["parse", "elaborate", "synthesize"]
    if args.check:
        stages.insert(1, "typecheck")
    if args.opt_level > 0:
        stages.insert(stages.index("synthesize"), "optimize")
    if args.verilog is not None:
        stages.insert(stages.index("synthesize"), "emit_verilog")
    result = session.compile(
        source, component, params, generators, stages=stages
    )

    check = result.get("typecheck")
    if check is not None and not check.ok:
        print(f"{component}: type check FAILED")
        for diagnostic in check.diagnostics:
            print(diagnostic.render())
        return 1
    elab = result.elab
    print(f"{component}  params={elab.params}  "
          f"latency={elab.latency}  II={elab.delay}  "
          f"out_params={elab.out_params}")
    report = result.report
    print(f"synthesis: {report.luts} LUTs, {report.registers} registers, "
          f"{report.fmax_mhz:.1f} MHz")
    optimized = result.optimized
    if optimized is not None:
        print(
            f"optimize (-O{optimized.opt_level}): "
            f"{optimized.cells_before} -> {optimized.cells_after} cells"
        )
    print("stage timings (ms):")
    for stage, seconds in result.timings().items():
        print(f"  {stage:12s} {seconds * 1000.0:8.2f}")
    if args.verilog is not None:
        text = result.verilog
        if args.verilog == "-":
            print(text)
        else:
            with open(args.verilog, "w") as handle:
                handle.write(text)
            print(f"wrote {args.verilog}")
    if args.stats:
        _print_stats(session, args.stats)
    elif args.opt_level > 0:
        print(session.render_pass_stats())
    return 0


def _run_artifacts(names: List[str], args) -> int:
    from .. import evalx
    from .ledger import graceful_drain

    session = _session_from_args(args)
    _attach_ledger(session, args)
    try:
        with graceful_drain(session.stats):
            for name in names:
                print(f"== {name} ==")
                print(
                    evalx.run_artifact(
                        name,
                        session=session,
                        workers=args.workers,
                        executor=args.executor,
                    )
                )
                print()
    finally:
        if session.ledger is not None:
            session.ledger.close()
    if args.stats == "json":
        _print_stats(session, "json")
    else:
        print(session.stats.render())
        if session.pass_log():
            print(session.render_pass_stats())
        disk = session.disk_stats()
        if disk["enabled"]:
            rate = disk["hit_rate"]
            rendered = "n/a" if rate is None else f"{rate * 100.0:.1f}%"
            print(
                f"disk cache: {disk['hits']} hits  {disk['misses']} misses  "
                f"{disk['writes']} writes  (hit rate {rendered}) at "
                f"{disk['dir']}"
            )
    return 0


def _cmd_typecheck(args) -> int:
    session = _session_from_args(args)
    if args.source:
        with open(args.source) as handle:
            source = handle.read()
    else:
        source, _, _, _ = design_point(
            args.design, args.freq, args.parallelism
        )
    artifact = session.typecheck(source, component=args.component)
    reports = artifact.value
    if not isinstance(reports, list):
        reports = [reports]
    failures = 0
    for report in reports:
        if report.obligations == 0 and not report.errors:
            continue
        status = "ok" if report.ok else f"{len(report.errors)} ERROR(S)"
        print(
            f"  {report.component:24s} {report.obligations:4d} obligations"
            f"  {status}"
        )
        failures += len(report.errors)
        for error in report.errors:
            print("    " + error.render().replace("\n", "\n    "))
    total = sum(r.obligations for r in reports)
    tc = session.typecheck_stats()
    print(
        f"{'FAILED' if failures else 'ok'}: {total} obligations, "
        f"{tc['solver_queries']} solver queries, "
        f"{tc['memo_hits']} memo hits, {tc['disk_hits']} disk hits "
        f"({artifact.seconds * 1000.0:.0f} ms"
        f"{', cached artifact' if artifact.from_cache else ''})"
    )
    if args.stats:
        _print_stats(session, args.stats)
    return 1 if failures else 0


def _cmd_table(args) -> int:
    return _run_artifacts([f"table{args.number}"], args)


def _cmd_figure(args) -> int:
    return _run_artifacts([f"figure{args.number}"], args)


def _cmd_ablation(args) -> int:
    return _run_artifacts(["ablation"], args)


def _cmd_profile(args) -> int:
    import functools

    from .grid import EvalGrid
    from .ledger import graceful_drain
    from .profiler import RunProfiler, simulate_catalog_point

    session = _session_from_args(args)
    _attach_ledger(session, args)
    names = args.designs or sorted(PRESETS)
    grid = EvalGrid(
        session, max_workers=args.workers, executor=args.executor
    )
    try:
        with graceful_drain(session.stats):
            with RunProfiler(session) as profiler:
                rows = grid.map(
                    simulate_catalog_point,
                    [(name, args.cycles, args.opt_level) for name in names],
                )
    finally:
        if session.ledger is not None:
            session.ledger.close()
    report = profiler.report()
    if args.json:
        payload = report.to_dict()
        payload["designs"] = rows
        print(json.dumps(payload, sort_keys=True))
        return 0
    for row in rows:
        print(
            f"{row['design']:8s} {row['cells']:6d} cells  "
            f"{row['backend']:8s} lanes={row['lanes']}  "
            f"sim {row['run_seconds'] * 1000.0:8.2f} ms"
        )
    print(report.render())
    if args.stats:
        _print_stats(session, args.stats)
    return 0


def _cmd_sweep(args) -> int:
    """A deterministic catalog sweep with machine-readable output.

    The crash-chaos harness's unit of work: the printed JSON carries
    per-design *content digests* (trace bits and typecheck verdicts —
    nothing wall-clock-shaped), the checkpoint picture, and fault-plan
    accounting, so a killed-and-resumed sweep can be compared
    bit-for-bit against an uninterrupted one.
    """
    from . import faults
    from .chaos import _chaos_point, _digest
    from .grid import EvalGrid
    from .ledger import graceful_drain

    session = _session_from_args(args)
    if session.fault_plan is None:
        # Even a fault-free sweep installs an (empty) plan: the crash
        # harness reads a baseline's per-site consultation counts to
        # derive kill offsets, and only an installed plan counts calls.
        session.fault_plan = faults.FaultPlan()
        faults.install(session.fault_plan.bind(session.stats))
    _attach_ledger(session, args)
    names = args.designs or sorted(PRESETS)
    points = [
        (name, args.cycles, args.opt_level, args.check) for name in names
    ]
    grid = EvalGrid(
        session, max_workers=args.workers, executor=args.executor
    )
    try:
        with graceful_drain(session.stats):
            results = grid.map(_chaos_point, points)
    finally:
        if session.ledger is not None:
            session.ledger.close()
    payload = session.stats_dict()
    payload["digests"] = {
        design: {part: _digest(value) for part, value in parts.items()}
        for design, parts in results
    }
    print(json.dumps(payload, sort_keys=True))
    return 0


def _cmd_fsck(args) -> int:
    from .fsck import run_fsck

    root = args.cache_dir or DiskCache.default_root()
    report = run_fsck(root, repair=args.repair)
    if args.stats == "json":
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.render())
    return report.exit_code


def _cmd_chaos(args) -> int:
    from .chaos import run_chaos, run_crash_chaos
    from .faults import CRASH_SITES

    if args.crash:
        report = run_crash_chaos(
            designs=args.designs,
            seeds=args.seeds,
            sites=args.sites or list(CRASH_SITES),
            cycles=args.cycles,
            opt_level=args.opt_level,
            timeout=args.timeout,
        )
        if args.json:
            print(json.dumps(report.to_dict(), sort_keys=True))
        else:
            print(report.render())
        return 0 if report.ok else 1
    if args.sites:
        raise SystemExit("--sites only applies with --crash")
    report = run_chaos(
        designs=args.designs,
        seeds=args.seeds,
        groups=args.groups,
        cycles=args.cycles,
        opt_level=args.opt_level,
        count=args.count,
        sim_backend=args.sim_backend,
        workers=args.workers,
        executor=args.executor,
    )
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_all(args) -> int:
    from .. import evalx

    return _run_artifacts(sorted(evalx.ARTIFACTS), args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Staged compiler driver for the Lilac reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_ = sub.add_parser(
        "compile", help="compile a design through the staged pipeline"
    )
    group = compile_.add_mutually_exclusive_group()
    group.add_argument(
        "--design", choices=sorted(PRESETS), default="fpu",
        help="bundled design preset (default: fpu)",
    )
    group.add_argument("--source", help="path to a Lilac source file")
    compile_.add_argument("--component", help="top-level component name")
    compile_.add_argument(
        "-p", "--param", action="append", default=[], metavar="NAME=INT",
        help="override a top-level parameter (repeatable)",
    )
    compile_.add_argument(
        "--freq", type=int, default=400,
        help="FloPoCo frequency goal in MHz (default: 400)",
    )
    compile_.add_argument(
        "--parallelism", type=int, default=16,
        help="Aetherling parallelism for the gbp preset (default: 16)",
    )
    compile_.add_argument(
        "--check", action="store_true",
        help="run the (slow, exhaustive) typecheck stage first",
    )
    compile_.add_argument(
        "--verilog", nargs="?", const="-", metavar="PATH",
        help="emit structural Verilog to PATH (default: stdout)",
    )
    compile_.set_defaults(fn=_cmd_compile)

    typecheck = sub.add_parser(
        "typecheck",
        help="run the SMT-backed type checker over a design or source "
             "(per-component obligations, solver query counts, cache "
             "hits; warm runs answer from the persistent 'smt' store)",
    )
    tc_group = typecheck.add_mutually_exclusive_group()
    tc_group.add_argument(
        "--design", choices=sorted(PRESETS), default="fpu",
        help="bundled design preset (default: fpu)",
    )
    tc_group.add_argument("--source", help="path to a Lilac source file")
    typecheck.add_argument(
        "--component", default=None,
        help="check one component only (default: every comp)",
    )
    typecheck.add_argument(
        "--freq", type=int, default=400,
        help="FloPoCo frequency goal in MHz (default: 400)",
    )
    typecheck.add_argument(
        "--parallelism", type=int, default=16,
        help="Aetherling parallelism for the gbp preset (default: 16)",
    )
    typecheck.set_defaults(fn=_cmd_typecheck, opt_level=0)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(1, 2, 3))
    table.set_defaults(fn=_cmd_table)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=(8, 13))
    figure.set_defaults(fn=_cmd_figure)

    ablation = sub.add_parser(
        "ablation",
        help="optimization ablation: cells, speedup and differential "
             "simulation per design (always compares -O2 against -O0, "
             "so it takes no -O flag)",
    )
    ablation.set_defaults(fn=_cmd_ablation, opt_level=0)

    profile = sub.add_parser(
        "profile",
        help="simulate catalog designs over the evaluation grid under "
             "the whole-run wall-time profiler (compute vs waiting: "
             "pool queue, disk I/O, cache-lock contention)",
    )
    profile.add_argument(
        "--designs", nargs="*", choices=sorted(PRESETS), default=None,
        metavar="NAME",
        help="catalog designs to simulate (default: all)",
    )
    profile.add_argument(
        "--cycles", type=_positive_int, default=256,
        help="cycles to simulate per design (default: 256)",
    )
    profile.add_argument(
        "--json", action="store_true",
        help="emit the attribution report as one JSON line",
    )
    profile.set_defaults(fn=_cmd_profile)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: run the catalog designs under "
             "seeded fault plans (disk, worker, solver groups) into "
             "fresh throwaway caches and assert every run is "
             "bit-identical to a fault-free baseline, every injected "
             "fault accounted, no exception escaping",
    )
    chaos.add_argument(
        "--designs", nargs="*", choices=sorted(PRESETS), default=None,
        metavar="NAME",
        help="catalog designs to sweep (default: all)",
    )
    chaos.add_argument(
        "--seeds", nargs="*", type=int, default=[0], metavar="N",
        help="fault-plan seeds; each seed shifts which invocation of "
             "each site fails (default: 0)",
    )
    chaos.add_argument(
        "--groups", nargs="*", choices=sorted(SITE_GROUPS),
        default=["disk", "worker", "solver"], metavar="GROUP",
        help="fault-site groups to sweep, one plan per (group, seed) "
             "(default: all three)",
    )
    chaos.add_argument(
        "--cycles", type=_positive_int, default=64,
        help="cycles to simulate per design (default: 64)",
    )
    chaos.add_argument(
        "--count", type=_positive_int, default=2,
        help="failures injected per fault site per plan (default: 2)",
    )
    chaos.add_argument(
        "--workers", type=int, default=None,
        help="evaluation-grid workers per run (default: cpu count)",
    )
    chaos.add_argument(
        "--executor", choices=EXECUTORS, default="thread",
        help="evaluation-grid pool for each run; 'process' exercises "
             "real worker-process deaths and the process->thread->"
             "serial degradation ladder (default: thread)",
    )
    chaos.add_argument(
        "-O", dest="opt_level", type=int, choices=OPT_LEVELS, default=2,
        metavar="LEVEL",
        help="netlist optimization level for the sweep (default: 2)",
    )
    chaos.add_argument(
        "--sim-backend", choices=backend_choices(), default="interp",
        help="simulation engine for the sweep (default: interp)",
    )
    chaos.add_argument(
        "--json", action="store_true",
        help="emit the chaos report as one JSON line",
    )
    chaos.add_argument(
        "--crash", action="store_true",
        help="kill-9 mode: SIGKILL real child sweeps at seeded "
             "proc.kill.* sites, assert the store fscks consistent and "
             "a --resume completes bit-identical to an uninterrupted "
             "baseline",
    )
    chaos.add_argument(
        "--sites", nargs="*", default=None, metavar="SITE",
        choices=("proc.kill.write", "proc.kill.point", "proc.kill.solver"),
        help="crash sites for --crash (default: all three)",
    )
    chaos.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="per-child wall-clock bound in --crash mode (default: 300)",
    )
    chaos.set_defaults(fn=_cmd_chaos)

    sweep = sub.add_parser(
        "sweep",
        help="deterministic catalog sweep printing one JSON line of "
             "per-design content digests + checkpoint/fault accounting "
             "(the subprocess unit the crash-chaos harness kills and "
             "resumes)",
    )
    sweep.add_argument(
        "--designs", nargs="*", choices=sorted(PRESETS), default=None,
        metavar="NAME",
        help="catalog designs to sweep (default: all)",
    )
    sweep.add_argument(
        "--cycles", type=_positive_int, default=32,
        help="cycles to simulate per design (default: 32)",
    )
    sweep.add_argument(
        "--check", action="store_true",
        help="also run (and digest) the SMT typecheck per design",
    )
    sweep.set_defaults(fn=_cmd_sweep)

    fsck = sub.add_parser(
        "fsck",
        help="offline store consistency check: digest-verify entries, "
             "classify temp files against the write-ahead journal, "
             "reap dead writers' leases; exit 0 iff consistent",
    )
    fsck.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="store root to check (default: $REPRO_CACHE_DIR, else the "
             "user cache dir)",
    )
    fsck.add_argument(
        "--repair", action="store_true",
        help="mend what a dead writer left behind: quarantine corrupt "
             "entries, replay dangling write intents, unlink orphan "
             "temp files, reap stale leases",
    )
    fsck.add_argument(
        "--stats", choices=("text", "json"), default="text",
        help="'json' emits the machine-readable findings as one line",
    )
    fsck.set_defaults(fn=_cmd_fsck)

    all_ = sub.add_parser(
        "all",
        help="regenerate every table, figure and the ablation on one "
             "session",
    )
    all_.set_defaults(fn=_cmd_all)

    for command in (table, figure, ablation, profile, all_, sweep):
        command.add_argument(
            "--workers", type=int, default=None,
            help="evaluation-grid worker threads (default: cpu count)",
        )
        command.add_argument(
            "--executor", choices=EXECUTORS, default="thread",
            help="evaluation-grid pool: 'thread' shares one in-memory "
                 "session; 'process' sidesteps the GIL, workers "
                 "rendezvous through the disk cache; 'auto' picks "
                 "process for cacheable CPU-bound sweeps",
        )
        command.add_argument(
            "--run-id", default=None, metavar="NAME",
            help="checkpoint completed grid points into a per-run "
                 "ledger at <cache>/runs/NAME/ (requires the disk "
                 "cache)",
        )
        command.add_argument(
            "--resume", action="store_true",
            help="continue the --run-id run: previously completed "
                 "points are served from the ledger bit-identically, "
                 "only the remainder computes",
        )
    for command in (compile_, table, figure, profile, all_, sweep):
        command.add_argument(
            "-O", dest="opt_level", type=int, choices=OPT_LEVELS, default=0,
            metavar="LEVEL",
            help="netlist optimization level (default: 0 — no passes; "
                 "3 = profile-guided, degrades to 2 without a profile)",
        )
    for command in (compile_, typecheck, table, figure, ablation, profile,
                    all_, sweep):
        command.add_argument(
            "--typecheck-jobs", type=_positive_int, default=None,
            metavar="N",
            help="fan whole-program typechecks over N parallel workers "
                 "(default: sequential)",
        )
        command.add_argument(
            "--typecheck-executor", choices=("thread", "process"),
            default="thread",
            help="pool for --typecheck-jobs: threads share the session; "
                 "processes sidestep the GIL and rendezvous through the "
                 "disk cache's 'smt' store",
        )
    for command in (compile_, typecheck, table, figure, ablation, profile,
                    all_, sweep):
        command.add_argument(
            "--stats", choices=("text", "json"), default=None,
            help="end-of-run cache + per-pass statistics; 'json' prints "
                 "one machine-readable line",
        )
        command.add_argument(
            "--sim-backend", choices=backend_choices(), default="interp",
            help="simulation engine for the simulate stage (default: "
                 "interp; 'compiled'/'batched'/'vector' code-generate "
                 "scalar, SWAR-packed or mega-lane vectorized step "
                 "functions; 'auto' picks per design from persisted "
                 "tuner measurements)",
        )
        command.add_argument(
            "--sim-lanes", type=_positive_int, default=1, metavar="K",
            help="stimulus lanes batched per simulate run (default: 1; "
                 "on the compiled backend K lanes advance through one "
                 "lane-packed step function per cycle)",
        )
        command.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="persistent artifact cache directory (default: "
                 "$REPRO_CACHE_DIR, else the user cache dir)",
        )
        command.add_argument(
            "--no-disk-cache", action="store_true",
            help="disable the persistent artifact cache for this run",
        )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        hint = ""
        if getattr(args, "run_id", None):
            hint = (
                f" — completed points are checkpointed; continue with "
                f"--run-id {args.run_id} --resume"
            )
        print(f"interrupted{hint}", file=sys.stderr)
        return 130
    except (LilacError, GeneratorError, FilamentError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""``python -m repro`` — the command-line front door to the pipeline.

Subcommands:

* ``compile`` — run the staged pipeline over a bundled design preset or
  a Lilac source file, printing the schedule, per-stage timings, the
  synthesis report, and (optionally) Verilog.
* ``table``  — regenerate Table 1, 2 or 3.
* ``figure`` — regenerate Figure 8 or 13.
* ``all``    — every table and figure on one shared session, with cache
  statistics showing the artifacts reused across them.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from ..filament import FilamentError
from ..generators.base import GeneratorError
from ..lilac.ast import LilacError
from .session import CompileSession
from .artifact import CompileResult


def _fpu_preset(args):
    from ..designs.fpu import FPU_LA_SOURCE, fpu_generators

    return FPU_LA_SOURCE, "FPU", fpu_generators(args.freq), {"#W": 32}


def _fft_preset(args):
    from ..designs.fft import FFT_LILAC
    from ..generators.flopoco import FloPoCoGenerator

    return FFT_LILAC, "Fft16", [FloPoCoGenerator(args.freq)], {"#W": 16}


def _flofft_preset(args):
    from ..designs.fft import FFT_FLOPOCO
    from ..generators.flopoco import FloPoCoGenerator

    return FFT_FLOPOCO, "FloFft16", [FloPoCoGenerator(args.freq)], {"#W": 32}


def _risc_preset(args):
    from ..designs.risc import RISC_SOURCE

    return RISC_SOURCE, "Risc3", None, {}


def _gbp_preset(args):
    from ..designs.gbp_la import GBP_SOURCE, gbp_registry

    return GBP_SOURCE, "GBP", gbp_registry(args.parallelism), {"#W": 16}


def _blas_preset(args):
    from ..designs.blas import BLAS_SOURCE, blas_registry

    return BLAS_SOURCE, "Dot", blas_registry(), {"#W": 16, "#ML": 2}


PRESETS = {
    "fpu": _fpu_preset,
    "fft": _fft_preset,
    "flofft": _flofft_preset,
    "risc": _risc_preset,
    "gbp": _gbp_preset,
    "blas": _blas_preset,
}


def _parse_params(pairs: List[str]) -> Dict[str, int]:
    params: Dict[str, int] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        try:
            if not sep:
                raise ValueError
            params[name.strip()] = int(value)
        except ValueError:
            raise SystemExit(f"bad --param {pair!r}: expected NAME=INT")
    return params


def _cmd_compile(args) -> int:
    session = CompileSession()
    if args.source:
        with open(args.source) as handle:
            source = handle.read()
        component = args.component
        generators, params = None, {}
        if component is None:
            raise SystemExit("--component is required with --source")
    else:
        source, component, generators, params = PRESETS[args.design](args)
        if args.component:
            component = args.component
    params.update(_parse_params(args.param))

    stages = ["parse", "elaborate", "synthesize"]
    if args.check:
        stages.insert(1, "typecheck")
    if args.verilog is not None:
        stages.insert(stages.index("synthesize"), "emit_verilog")
    result = session.compile(
        source, component, params, generators, stages=stages
    )

    check = result.get("typecheck")
    if check is not None and not check.ok:
        print(f"{component}: type check FAILED")
        for diagnostic in check.diagnostics:
            print(diagnostic.render())
        return 1
    elab = result.elab
    print(f"{component}  params={elab.params}  "
          f"latency={elab.latency}  II={elab.delay}  "
          f"out_params={elab.out_params}")
    report = result.report
    print(f"synthesis: {report.luts} LUTs, {report.registers} registers, "
          f"{report.fmax_mhz:.1f} MHz")
    print("stage timings (ms):")
    for stage, seconds in result.timings().items():
        print(f"  {stage:12s} {seconds * 1000.0:8.2f}")
    if args.verilog is not None:
        text = result.verilog
        if args.verilog == "-":
            print(text)
        else:
            with open(args.verilog, "w") as handle:
                handle.write(text)
            print(f"wrote {args.verilog}")
    return 0


def _run_artifacts(names: List[str], workers: Optional[int]) -> int:
    from .. import evalx

    session = CompileSession()
    for name in names:
        print(f"== {name} ==")
        print(evalx.run_artifact(name, session=session, workers=workers))
        print()
    print(session.stats.render())
    return 0


def _cmd_table(args) -> int:
    return _run_artifacts([f"table{args.number}"], args.workers)


def _cmd_figure(args) -> int:
    return _run_artifacts([f"figure{args.number}"], args.workers)


def _cmd_all(args) -> int:
    from .. import evalx

    return _run_artifacts(sorted(evalx.ARTIFACTS), args.workers)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Staged compiler driver for the Lilac reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_ = sub.add_parser(
        "compile", help="compile a design through the staged pipeline"
    )
    group = compile_.add_mutually_exclusive_group()
    group.add_argument(
        "--design", choices=sorted(PRESETS), default="fpu",
        help="bundled design preset (default: fpu)",
    )
    group.add_argument("--source", help="path to a Lilac source file")
    compile_.add_argument("--component", help="top-level component name")
    compile_.add_argument(
        "-p", "--param", action="append", default=[], metavar="NAME=INT",
        help="override a top-level parameter (repeatable)",
    )
    compile_.add_argument(
        "--freq", type=int, default=400,
        help="FloPoCo frequency goal in MHz (default: 400)",
    )
    compile_.add_argument(
        "--parallelism", type=int, default=16,
        help="Aetherling parallelism for the gbp preset (default: 16)",
    )
    compile_.add_argument(
        "--check", action="store_true",
        help="run the (slow, exhaustive) typecheck stage first",
    )
    compile_.add_argument(
        "--verilog", nargs="?", const="-", metavar="PATH",
        help="emit structural Verilog to PATH (default: stdout)",
    )
    compile_.set_defaults(fn=_cmd_compile)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(1, 2, 3))
    table.set_defaults(fn=_cmd_table)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=(8, 13))
    figure.set_defaults(fn=_cmd_figure)

    all_ = sub.add_parser(
        "all", help="regenerate every table and figure on one session"
    )
    all_.set_defaults(fn=_cmd_all)

    for command in (table, figure, all_):
        command.add_argument(
            "--workers", type=int, default=None,
            help="evaluation-grid worker threads (default: cpu count)",
        )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (LilacError, GeneratorError, FilamentError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

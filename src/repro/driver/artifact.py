"""Typed stage artifacts produced by :class:`repro.driver.CompileSession`.

Every stage of the staged pipeline (``parse``, ``typecheck``,
``elaborate``, ``wellformed``, ``lower``, ``emit_verilog``,
``synthesize``) yields a :class:`StageArtifact`: the stage's value plus
structured diagnostics, the wall-clock cost of producing it, and the
content-addressed key it is cached under.  Artifacts are immutable once
published to the cache — a cache hit returns the *same* object, timings
and all, so downstream consumers can distinguish "recomputed" from
"reused" via :attr:`StageArtifact.from_cache` without ever observing a
half-built value.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Canonical stage order of the pipeline.  ``wellformed`` and ``lower``
#: run *inside* elaboration (the elaborator is recursive, so they happen
#: once per component); their timings are surfaced as sub-stage entries
#: on the elaborate artifact rather than as separately cached artifacts.
#: ``optimize`` flattens the lowered netlist and runs the ``-O<n>`` pass
#: pipeline over it; ``simulate`` drives the optimized netlist with
#: seeded random stimulus.
STAGES = (
    "parse",
    "typecheck",
    "elaborate",
    "wellformed",
    "lower",
    "optimize",
    "emit_verilog",
    "synthesize",
    "simulate",
)


class Diagnostic:
    """One structured message attached to a stage artifact."""

    def __init__(self, severity: str, stage: str, message: str):
        self.severity = severity  # "error" | "warning" | "info"
        self.stage = stage
        self.message = message

    def __repr__(self):
        return f"Diagnostic({self.severity}, {self.stage}, {self.message!r})"

    def render(self) -> str:
        return f"[{self.stage}] {self.severity}: {self.message}"


class StageArtifact:
    """The output of one pipeline stage for one cache key."""

    def __init__(
        self,
        stage: str,
        key: Tuple,
        value: Any,
        seconds: float,
        diagnostics: Optional[List[Diagnostic]] = None,
        sub_timings: Optional[Dict[str, float]] = None,
    ):
        self.stage = stage
        self.key = key
        self.value = value
        #: wall-clock seconds the stage took when it actually ran; a
        #: cache hit preserves the original figure.
        self.seconds = seconds
        self.diagnostics = list(diagnostics or [])
        #: timings of nested sub-stages (wellformed/lower inside
        #: elaborate), aggregated across the recursive elaboration.
        self.sub_timings = dict(sub_timings or {})
        #: set by the cache: False until the artifact is first *reused*;
        #: True ever after (the same object is handed to every hit, so
        #: this is a property of the artifact, not of one request —
        #: per-request accounting lives in ``CacheStats``).
        self.from_cache = False

    @property
    def millis(self) -> float:
        return self.seconds * 1000.0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def __repr__(self):
        origin = "cached" if self.from_cache else "computed"
        return (
            f"StageArtifact({self.stage}, {origin}, "
            f"{self.millis:.1f}ms, diagnostics={len(self.diagnostics)})"
        )


class OptimizedNetlist:
    """Value of the ``optimize`` stage: a flat netlist after the pass
    pipeline, plus what every pass did to it.

    At ``-O3`` the artifact additionally carries the
    :class:`~repro.rtl.passes.pgo.PgoPlan` derived from the design's
    activity profile (``pgo_plan``); the simulate stage hands it to
    :func:`repro.rtl.make_simulator` so the scalar engines specialize.
    ``pgo_plan`` is None below ``-O3`` and when ``-O3`` degraded to
    ``-O2`` because no profile was available.
    """

    def __init__(
        self, module, opt_level: int, cells_before: int, pass_stats,
        pgo_plan=None,
    ):
        self.module = module
        self.opt_level = opt_level
        self.cells_before = cells_before
        self.pass_stats = list(pass_stats)
        self.pgo_plan = pgo_plan

    @property
    def cells_after(self) -> int:
        return len(self.module.cells)

    @property
    def cells_removed(self) -> int:
        return self.cells_before - self.cells_after

    def __repr__(self):
        return (
            f"OptimizedNetlist({self.module.name}, -O{self.opt_level}, "
            f"{self.cells_before}->{self.cells_after} cells)"
        )


class SimTrace:
    """Value of the ``simulate`` stage: sampled outputs per cycle of a
    seeded random-stimulus run, plus the pure simulation wall-clock.

    With ``lanes == 1``, ``outputs`` is one trace (a list of per-cycle
    output dicts).  With ``lanes > 1`` it is a list of ``lanes`` such
    traces — one per stimulus lane, lane ``k`` driven by the stream
    seeded with ``derive_lane_seed(seed, k)``, so lane 0 reproduces the
    single-lane trace for the same seed exactly.
    """

    def __init__(
        self,
        outputs: List[Dict[str, int]],
        cycles: int,
        seed: int,
        opt_level: int,
        run_seconds: float,
        cells: int,
        backend: str = "interp",
        lanes: int = 1,
    ):
        self.outputs = outputs
        self.cycles = cycles
        self.seed = seed
        self.opt_level = opt_level
        #: time spent inside the backend's ``run`` (netlist construction
        #: and stimulus generation excluded) — the figure speedups compare.
        self.run_seconds = run_seconds
        self.cells = cells
        #: which engine produced the trace ("interp" or "compiled") —
        #: traces are bit-identical across backends by contract, but the
        #: perf numbers are only comparable within one backend.
        self.backend = backend
        #: stimulus lanes simulated together (1 = plain single run).
        self.lanes = lanes

    @property
    def lane_cycles(self) -> int:
        """Total simulated lane-cycles (what throughput divides by)."""
        return self.cycles * self.lanes

    def __repr__(self):
        return (
            f"SimTrace({self.cycles} cycles, seed={self.seed}, "
            f"-O{self.opt_level}, {self.backend}, lanes={self.lanes}, "
            f"{self.run_seconds * 1000.0:.1f}ms)"
        )


class CompileResult:
    """An ordered bundle of artifacts from one :meth:`compile` call."""

    def __init__(self, component: str, params: Dict[str, int]):
        self.component = component
        self.params = dict(params)
        self.artifacts: Dict[str, StageArtifact] = {}

    def add(self, artifact: StageArtifact) -> None:
        self.artifacts[artifact.stage] = artifact

    def __contains__(self, stage: str) -> bool:
        return stage in self.artifacts

    def __getitem__(self, stage: str) -> StageArtifact:
        return self.artifacts[stage]

    def get(self, stage: str) -> Optional[StageArtifact]:
        return self.artifacts.get(stage)

    @property
    def elab(self):
        """The ElabResult, if the elaborate stage ran."""
        artifact = self.artifacts.get("elaborate")
        return artifact.value if artifact else None

    @property
    def verilog(self) -> Optional[str]:
        artifact = self.artifacts.get("emit_verilog")
        return artifact.value if artifact else None

    @property
    def report(self):
        """The SynthReport, if the synthesize stage ran."""
        artifact = self.artifacts.get("synthesize")
        return artifact.value if artifact else None

    @property
    def optimized(self) -> Optional[OptimizedNetlist]:
        artifact = self.artifacts.get("optimize")
        return artifact.value if artifact else None

    @property
    def trace(self) -> Optional[SimTrace]:
        artifact = self.artifacts.get("simulate")
        return artifact.value if artifact else None

    @property
    def ok(self) -> bool:
        return all(a.ok for a in self.artifacts.values())

    def timings(self) -> Dict[str, float]:
        """Per-stage wall-clock seconds, in canonical stage order."""
        out: Dict[str, float] = {}
        for stage in STAGES:
            artifact = self.artifacts.get(stage)
            if artifact is None:
                continue
            out[stage] = artifact.seconds
            for sub, seconds in artifact.sub_timings.items():
                out[sub] = seconds
        return out

    def __repr__(self):
        stages = ", ".join(self.artifacts)
        return f"CompileResult({self.component}, stages=[{stages}])"

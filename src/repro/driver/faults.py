"""Deterministic, seeded fault injection for the whole accelerator stack.

The reliability mirror of the perf work: every layer that got a fast
path (disk cache, codegen/profile/tuner/obligation stores, batched and
vectorized simulation, the incremental solver, the process grid) also
has a *failure* path, and nothing short of injecting the failures
proves those paths degrade gracefully instead of corrupting results.
This module is the injection substrate: a :class:`FaultPlan` names
*sites* (fixed strings compiled into the hardened code) and decides —
deterministically, from explicit counts and skip offsets or from a
seed — which invocations of each site fail.  The hardened layers then
recover along the degradation ladder (disk→memory, -O3→-O2,
vector→compiled→interp, incremental→one-shot solver, process→thread→
serial grid), all of whose rungs are bit-identical by the differential
contracts PRs 2–8 established, so an injected fault costs speed, never
correctness.

Sites (the complete set — the hardened code asserts membership)::

    disk.read      DiskCache entry read fails (transient EIO; retried)
    disk.write     DiskCache temp-file write fails (EIO, or #enospc /
                   #erofs to exercise the one-way memory-only degrade)
    disk.replace   the atomic os.replace publishing an entry fails
    pickle.load    a stored payload deserializes as garbage
                   (quarantined like any corrupt entry)
    cache.lock     a single-flight key lock is unavailable (dedup lost,
                   the requester computes privately)
    worker.spawn   the process pool cannot be created (grid degrades
                   to threads)
    worker.crash   a grid worker dies mid-point (a real ``os._exit``
                   in process mode; the grid retries / degrades)
    solver.budget  an obligation's DPLL(T) conflict budget exhausts
                   (typecheck falls back to the one-shot engine)

and the *crash* family — sites that SIGKILL the whole process, for the
kill-9 chaos harness (:mod:`repro.driver.chaos` ``--crash``).  Unlike
every other site there is no recovery in-process: the process dies for
real (``os.kill(getpid(), SIGKILL)``), and consistency is judged
offline by ``repro fsck`` plus a ``--resume`` of the run::

    proc.kill.write   inside DiskCache._write_entry — consulted twice
                      per store (before the atomic replace, and after
                      it but before the journal commit), so seeds walk
                      the kill through both crash windows
    proc.kill.point   in the EvalGrid parent, after a grid point
                      completes and its ledger checkpoint is recorded
    proc.kill.solver  in ObligationStore.save, as a solver verdict is
                      about to be persisted mid-discharge

Plans are spelled in a tiny grammar, one entry per site, comma
separated::

    site[#mode][:count][@skip]

``count`` is how many invocations fail (default 1), ``skip`` how many
invocations pass before the first failure (default 0), and ``mode``
refines the failure kind (``transient`` — the default — or ``enospc``
/ ``erofs`` on the write sites).  ``disk.read:2@1,worker.crash`` fails
the second and third disk reads and the first grid point.  The same
grammar rides ``$REPRO_FAULTS`` (picked up by every
:class:`~repro.driver.session.CompileSession` that isn't given an
explicit plan) and round-trips through ``session.spec()`` so process-
pool workers rebuild the plan — with their own fresh counters — in
their own interpreter.

Injection is *accounted*: every fired fault bumps
``fault.injected.<site>`` on the plan and on the stats object the
firing site supplied, every recovery bumps a ``retry.<site>`` or
``degrade.<path>`` counter next to it, and ``repro chaos``
(:mod:`repro.driver.chaos`) closes the loop by asserting the counters
match the plan and the run's outputs match a fault-free baseline
bit for bit.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import os
import signal
import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Every site the hardened layers compile in.  Plans may only name
#: these — a typo'd site would silently never fire otherwise.
FAULT_SITES = (
    "disk.read",
    "disk.write",
    "disk.replace",
    "pickle.load",
    "cache.lock",
    "worker.spawn",
    "worker.crash",
    "solver.budget",
    "proc.kill.write",
    "proc.kill.point",
    "proc.kill.solver",
)

#: The crash family: consulted only through :func:`kill_here`, which
#: SIGKILLs the process instead of raising.  Kept out of every in-
#: process chaos group — a plan that schedules one of these is asking
#: for the process to die.
CRASH_SITES = (
    "proc.kill.write",
    "proc.kill.point",
    "proc.kill.solver",
)

#: Failure-kind refinements.  ``transient`` is retryable (EIO-class);
#: ``enospc``/``erofs`` are the unrecoverable-root kinds that must tip
#: the disk cache into memory-only mode.
FAULT_MODES = ("transient", "enospc", "erofs")

#: The environment spelling every session without an explicit plan
#: honors.
FAULTS_ENV = "REPRO_FAULTS"


class FaultPlanError(ValueError):
    """A fault-plan spec string does not parse."""


class InjectedFault(RuntimeError):
    """An injected failure with no OS-level analogue (``pickle.load``,
    ``cache.lock``).  Hardened sites catch it exactly where they catch
    the real failure it stands in for."""

    def __init__(self, site: str):
        super().__init__(f"injected fault at {site}")
        self.site = site


class InjectedCrash(RuntimeError):
    """A grid worker death, as seen by a thread or serial executor
    (process executors die for real via ``os._exit``)."""


class InjectedOSError(OSError):
    """An injected I/O failure.  A plain :class:`OSError` subclass so
    the hardened code's errno classification treats it exactly like
    the genuine article."""

    def __init__(self, err: int, site: str):
        super().__init__(err, f"injected fault at {site}: {os.strerror(err)}")
        self.site = site


#: mode -> errno for the disk sites (transient reads/writes are EIO).
_MODE_ERRNO = {
    "transient": errno.EIO,
    "enospc": errno.ENOSPC,
    "erofs": errno.EROFS,
}


class FaultSite:
    """One site's failure schedule inside a plan.

    Invocations ``skip .. skip+count-1`` (0-based, counted per plan
    instance — i.e. per process) fire; every other invocation passes.
    """

    __slots__ = ("site", "mode", "count", "skip")

    def __init__(
        self, site: str, count: int = 1, skip: int = 0,
        mode: str = "transient",
    ):
        if site not in FAULT_SITES:
            raise FaultPlanError(
                f"unknown fault site {site!r}; available: {FAULT_SITES}"
            )
        if mode not in FAULT_MODES:
            raise FaultPlanError(
                f"unknown fault mode {mode!r}; available: {FAULT_MODES}"
            )
        if count < 1:
            raise FaultPlanError(f"fault count must be >= 1, got {count}")
        if skip < 0:
            raise FaultPlanError(f"fault skip must be >= 0, got {skip}")
        self.site = site
        self.mode = mode
        self.count = int(count)
        self.skip = int(skip)

    def spec(self) -> str:
        """The entry's grammar spelling (round-trips through parse)."""
        text = self.site
        if self.mode != "transient":
            text += f"#{self.mode}"
        if self.count != 1:
            text += f":{self.count}"
        if self.skip:
            text += f"@{self.skip}"
        return text

    def covers(self, call_index: int) -> bool:
        return self.skip <= call_index < self.skip + self.count

    def exception(self) -> Exception:
        """The exception an :func:`inject` at this site raises."""
        if self.site in ("disk.read", "disk.write", "disk.replace"):
            return InjectedOSError(_MODE_ERRNO[self.mode], self.site)
        if self.site == "worker.spawn":
            return InjectedOSError(errno.EAGAIN, self.site)
        if self.site == "worker.crash":
            return InjectedCrash(f"injected fault at {self.site}")
        return InjectedFault(self.site)

    def __repr__(self) -> str:
        return f"FaultSite({self.spec()!r})"


def _parse_entry(text: str) -> FaultSite:
    entry = text.strip()
    site, mode, count, skip = entry, "transient", 1, 0
    if "@" in site:
        site, _, raw = site.partition("@")
        try:
            skip = int(raw)
        except ValueError:
            raise FaultPlanError(f"bad skip in fault entry {entry!r}")
    if ":" in site:
        site, _, raw = site.partition(":")
        try:
            count = int(raw)
        except ValueError:
            raise FaultPlanError(f"bad count in fault entry {entry!r}")
    if "#" in site:
        site, _, mode = site.partition("#")
    return FaultSite(site.strip(), count, skip, mode)


class FaultPlan:
    """A deterministic schedule of injected failures, with accounting.

    The plan is pure data plus per-site invocation counters: the
    ``n``-th time a site is consulted (per plan instance — a process-
    pool worker rebuilding the plan from its spec string starts its
    own count) it fires iff some :class:`FaultSite` entry covers
    ``n``.  Thread-safe; every fire is recorded in :attr:`fired` and,
    when a stats object is supplied or bound, bumped as
    ``fault.injected.<site>`` there — which is what lets ``repro
    chaos`` prove no injected fault went unaccounted.
    """

    def __init__(self, sites: Iterable[FaultSite] = (), seed: Optional[int] = None):
        self.seed = seed
        self._sites: Dict[str, List[FaultSite]] = {}
        for spec in sites:
            self._sites.setdefault(spec.site, []).append(spec)
        self._lock = threading.Lock()
        self._stats = None
        self.calls: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def parse(cls, text: str, seed: Optional[int] = None) -> "FaultPlan":
        """A plan from its grammar spelling (see the module docstring)."""
        entries = [
            _parse_entry(chunk)
            for chunk in (text or "").split(",")
            if chunk.strip()
        ]
        return cls(entries, seed=seed)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The ``$REPRO_FAULTS`` plan, or None when unset/empty."""
        text = os.environ.get(FAULTS_ENV, "").strip()
        if not text:
            return None
        return cls.parse(text)

    @classmethod
    def seeded(
        cls,
        seed: int,
        sites: Iterable[str] = FAULT_SITES,
        count: int = 1,
        max_skip: int = 3,
    ) -> "FaultPlan":
        """A deterministic plan over ``sites`` with seed-derived skip
        offsets.

        The skip offset for each site is
        ``sha256(f"{seed}:{site}") % (max_skip + 1)`` — stable across
        processes and platforms, so the same seed always schedules the
        same failures, while different seeds exercise different
        invocations of each site.
        """
        entries = []
        for site in sites:
            digest = hashlib.sha256(f"{seed}:{site}".encode("utf-8"))
            skip = int(digest.hexdigest(), 16) % (max_skip + 1)
            entries.append(FaultSite(site, count=count, skip=skip))
        return cls(entries, seed=seed)

    # -- the injection decision -----------------------------------------

    def bind(self, stats) -> "FaultPlan":
        """Route fire accounting into ``stats`` (a
        :class:`~repro.driver.cache.CacheStats`) in addition to the
        plan's own counters.  Returns the plan for chaining."""
        self._stats = stats
        return self

    def check(self, site: str, stats=None) -> Optional[FaultSite]:
        """Consult the plan for one invocation of ``site``.

        Returns the covering :class:`FaultSite` (recording the fire)
        when this invocation fails, else None.  Exactly one of the
        plan's entries can cover a given invocation index; the first
        in spec order wins.
        """
        with self._lock:
            index = self.calls.get(site, 0)
            self.calls[site] = index + 1
            spec = next(
                (s for s in self._sites.get(site, ()) if s.covers(index)),
                None,
            )
            if spec is None:
                return None
            self.fired[site] = self.fired.get(site, 0) + 1
            sink = stats if stats is not None else self._stats
        if sink is not None:
            sink.bump(f"fault.injected.{site}")
        return spec

    # -- introspection --------------------------------------------------

    def planned(self, site: str) -> int:
        """Failures the plan schedules for ``site`` in total."""
        return sum(spec.count for spec in self._sites.get(site, ()))

    def sites(self) -> Tuple[str, ...]:
        return tuple(sorted(self._sites))

    def spec_string(self) -> str:
        """The grammar spelling (round-trips; ships in session specs)."""
        return ",".join(
            spec.spec()
            for site in sorted(self._sites)
            for spec in self._sites[site]
        )

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-site accounting: planned / consulted / fired."""
        with self._lock:
            return {
                site: {
                    "planned": self.planned(site),
                    "calls": self.calls.get(site, 0),
                    "fired": self.fired.get(site, 0),
                }
                for site in sorted(self._sites)
            }

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec_string()!r}, seed={self.seed!r})"


# ---------------------------------------------------------------------------
# The process-global active plan.  Injection sites live deep in layers
# that never see a session (the SAT solver, the disk cache's internals),
# so the plan is installed process-wide — by the CompileSession that
# owns it, or a test's `installed(...)` block — rather than threaded
# through every call signature.  One plan at a time; installing a new
# one replaces the old.

_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_LOCK = threading.Lock()


def install(plan: Optional[FaultPlan]) -> None:
    """Make ``plan`` the process's active plan (None uninstalls)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = plan


def uninstall() -> None:
    install(None)


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


@contextlib.contextmanager
def installed(plan: Optional[FaultPlan]):
    """Scoped install (tests and the chaos harness): restores the
    previously active plan on exit."""
    with _ACTIVE_LOCK:
        previous = _ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def check(site: str, stats=None) -> Optional[FaultSite]:
    """One invocation of ``site`` against the active plan (None when no
    plan is installed or this invocation passes)."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.check(site, stats)


def should_fire(site: str, stats=None) -> bool:
    """For sites whose failure is not an exception raised *here* (a
    worker deciding to die, a solver budget registering as exhausted):
    True when this invocation fails, with the fire fully accounted."""
    return check(site, stats) is not None


def inject(site: str, stats=None) -> None:
    """The standard injection hook: raise the site's failure exception
    when the active plan schedules this invocation to fail."""
    spec = check(site, stats)
    if spec is not None:
        raise spec.exception()


def kill_here(site: str, stats=None) -> None:
    """The crash-family injection hook: SIGKILL this process when the
    active plan schedules this invocation of ``site`` to fire.

    Deliberately unsurvivable — no cleanup handler, no atexit, no
    flushing runs: SIGKILL is the fault model.  Whatever state the
    process leaves behind is exactly what the write-ahead journal,
    ``repro fsck`` and the run ledger exist to make consistent, which
    is why ``repro chaos --crash`` schedules these sites only in child
    processes it launched for that purpose."""
    if site not in CRASH_SITES:
        raise ValueError(f"{site!r} is not a crash site; see CRASH_SITES")
    if check(site, stats) is not None:
        os.kill(os.getpid(), signal.SIGKILL)

"""``repro chaos`` — prove the fault tolerance, don't just claim it.

The harness closes the loop the fault-injection substrate
(:mod:`repro.driver.faults`) opens: for each seeded :class:`FaultPlan`
it runs the catalog designs through a fresh session — simulate for
every group, plus the SMT typecheck for the solver group — into a
fresh throwaway disk cache, and holds the run to three obligations:

1. **Bit-identical** — every design's trace (and typecheck report)
   digest equals the fault-free baseline's.  The degradation ladders
   (disk→memory, process→thread→serial, vector→compiled→interp,
   incremental→one-shot solver, -O3→-O2) are allowed to cost time,
   never bits.
2. **Accounted** — every fault the plan fired shows up as a
   ``fault.injected.<site>`` counter on the session's stats, so no
   injection was silently swallowed (or silently skipped).
3. **Contained** — no exception escapes the run.  Injected failures
   must be absorbed by a retry or a degradation, not surface.

Fault plans are grouped by the subsystem they attack, one run per
(group, seed)::

    disk    disk.read, disk.write, disk.replace, pickle.load, cache.lock
    worker  worker.spawn, worker.crash
    solver  solver.budget

Seeds choose *which* invocation of each site fails
(:meth:`FaultPlan.seeded` — skip offsets derived from
``sha256(seed:site)``), so a seed sweep walks the failure through cold
reads, warm reads, first writes, mid-grid points… while staying exactly
reproducible: the same seed always breaks the same calls.

Every run gets its own ``mkdtemp`` cache directory — determinism of the
call indices requires starting cold — and uninstalls its plan on the
way out, so chaos runs compose with whatever the process does next.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import faults

#: group name → the fault sites a group's plans schedule.  Groups
#: partition the *in-process* fault sites: every non-crash site is
#: chaos-tested by exactly one group (asserted by the test suite).
#: The ``proc.kill.*`` crash family is deliberately absent — those
#: sites SIGKILL the process, so only :func:`run_crash_chaos` (which
#: schedules them in child processes) may plan them.
SITE_GROUPS = {
    "disk": (
        "disk.read", "disk.write", "disk.replace", "pickle.load",
        "cache.lock",
    ),
    "worker": ("worker.spawn", "worker.crash"),
    "solver": ("solver.budget",),
}


def _digest(payload) -> str:
    """Canonical digest of a run payload (sorted-key JSON → SHA-256)."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _chaos_point(session, point):
    """Grid worker (module-level: process pools must pickle it).

    ``point`` is ``(design, cycles, opt_level, check)``; returns
    ``(design, payload)`` where payload holds the *bits the run is
    judged on*: the simulate trace outputs and, when ``check`` is set,
    the typecheck verdicts.  Deliberately excludes anything a healthy
    degradation may change — wall clocks, the engine a trace landed on,
    cache hit counts."""
    from ..designs.catalog import design_point

    design, cycles, opt_level, check = point
    source, component, generators, params = design_point(design)
    payload: Dict[str, object] = {}
    if check:
        reports = session.typecheck(source).value
        payload["typecheck"] = [
            {
                "component": report.component,
                "obligations": report.obligations,
                "errors": [error.render() for error in report.errors],
            }
            for report in reports
        ]
    trace = session.simulate(
        source, component, params, generators,
        cycles=cycles, opt_level=opt_level,
    ).value
    payload["trace"] = trace.outputs
    return design, payload


class ChaosRun:
    """Outcome of one plan (or the baseline) over the design grid.

    ``digests`` maps each design to its payload-part digests
    (``{"trace": ..., "typecheck": ...}``).  ``identical`` compares
    every digest the run produced against the baseline (the baseline
    always carries the typecheck part, so solver-group runs have
    something to match).  ``accounted`` holds iff, for every site, the
    plan's own fire count equals the session's
    ``fault.injected.<site>`` counter — in process-executor runs both
    views are parent-side by construction (worker processes rebuild
    the plan with their own counters), so the equality stays exact.
    """

    def __init__(
        self,
        label: str,
        plan_spec: Optional[str],
        seed: Optional[int],
        digests: Dict[str, Dict[str, str]],
        fired: Dict[str, int],
        injected: Dict[str, int],
        degrades: Dict[str, int],
        retries: Dict[str, int],
        error: Optional[str] = None,
    ):
        self.label = label
        self.plan_spec = plan_spec
        self.seed = seed
        self.digests = digests
        self.fired = dict(fired)
        self.injected = dict(injected)
        self.degrades = dict(degrades)
        self.retries = dict(retries)
        self.error = error
        self.identical: Optional[bool] = None  # set against the baseline

    @property
    def accounted(self) -> bool:
        return self.fired == self.injected

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.accounted
            and (self.identical is not False)
        )

    def judge(self, baseline: "ChaosRun") -> None:
        """Set :attr:`identical` by comparing every digest this run
        produced against the baseline's."""
        self.identical = bool(self.digests) and all(
            baseline.digests.get(design, {}).get(part) == digest
            for design, parts in self.digests.items()
            for part, digest in parts.items()
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "plan": self.plan_spec,
            "seed": self.seed,
            "identical": self.identical,
            "accounted": self.accounted,
            "error": self.error,
            "fired": dict(self.fired),
            "injected": dict(self.injected),
            "retries": dict(self.retries),
            "degrades": dict(self.degrades),
            "digests": {k: dict(v) for k, v in self.digests.items()},
        }


class ChaosReport:
    """The whole sweep: one baseline plus one run per (group, seed)."""

    def __init__(self, baseline: ChaosRun, runs: List[ChaosRun]):
        self.baseline = baseline
        self.runs = runs

    @property
    def ok(self) -> bool:
        return self.baseline.error is None and all(r.ok for r in self.runs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "baseline": self.baseline.to_dict(),
            "runs": [run.to_dict() for run in self.runs],
        }

    def render(self) -> str:
        lines = ["chaos sweep (every run judged against a fault-free "
                 "baseline):"]
        for run in self.runs:
            fired = sum(run.fired.values())
            status = "ok" if run.ok else "FAILED"
            details = []
            if run.error is not None:
                details.append(f"escaped: {run.error}")
            if run.identical is False:
                details.append("outputs diverged")
            if not run.accounted:
                details.append(
                    f"unaccounted faults (plan {run.fired} != "
                    f"stats {run.injected})"
                )
            recovered = sum(run.retries.values()) + sum(
                run.degrades.values()
            )
            lines.append(
                f"  {run.label:18s} {fired:2d} injected  "
                f"{recovered:2d} recoveries  {status}"
                + (f"  [{'; '.join(details)}]" if details else "")
            )
        verdict = (
            "all runs bit-identical, all faults accounted"
            if self.ok
            else "CHAOS FAILURES — see runs above"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _fault_slices(stats) -> Tuple[Dict[str, int], ...]:
    counters = stats.snapshot()["counters"]

    def _slice(prefix: str) -> Dict[str, int]:
        return {
            name[len(prefix):]: count
            for name, count in counters.items()
            if name.startswith(prefix)
        }

    return (
        _slice("fault.injected."),
        _slice("degrade."),
        _slice("retry."),
    )


def _run_once(
    label: str,
    plan: Optional["faults.FaultPlan"],
    designs: Sequence[str],
    cycles: int,
    opt_level: int,
    check: bool,
    sim_backend: str,
    workers: Optional[int],
    executor: str,
) -> ChaosRun:
    """One sweep over the designs in a fresh session + fresh cold cache."""
    from .. import smt
    from ..lilac.typecheck.check import clear_obligation_memo
    from .grid import EvalGrid
    from .session import CompileSession

    # Deterministic call indices need every run to start *cold*: the
    # process-global solver memos (obligation verdicts, theory lemmas)
    # would otherwise answer queries the plan scheduled to fail, so the
    # same sweep would inject different faults depending on what ran in
    # the process before it.
    clear_obligation_memo()
    smt.clear_solver_caches()
    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    digests: Dict[str, Dict[str, str]] = {}
    error: Optional[str] = None
    injected: Dict[str, int] = {}
    degrades: Dict[str, int] = {}
    retries: Dict[str, int] = {}
    try:
        session = CompileSession(
            opt_level=opt_level,
            sim_backend=sim_backend,
            cache_dir=cache_dir,
            # The baseline gets an explicit *empty* plan, not None — a
            # None plan would fall back to $REPRO_FAULTS and a stray
            # environment would poison the reference run.
            fault_plan=plan if plan is not None else faults.FaultPlan(),
        )
        try:
            grid = EvalGrid(session, max_workers=workers, executor=executor)
            points = [(name, cycles, opt_level, check) for name in designs]
            for design, payload in grid.map(_chaos_point, points):
                digests[design] = {
                    part: _digest(value) for part, value in payload.items()
                }
        except BaseException as escaped:  # containment IS the test
            error = f"{type(escaped).__name__}: {escaped}"
        injected, degrades, retries = _fault_slices(session.stats)
    finally:
        faults.uninstall()
        shutil.rmtree(cache_dir, ignore_errors=True)
    return ChaosRun(
        label,
        plan.spec_string() if plan is not None else None,
        plan.seed if plan is not None else None,
        digests,
        dict(plan.fired) if plan is not None else {},
        injected,
        degrades,
        retries,
        error=error,
    )


def run_chaos(
    designs: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = (0,),
    groups: Sequence[str] = ("disk", "worker", "solver"),
    cycles: int = 64,
    opt_level: int = 2,
    count: int = 2,
    sim_backend: str = "interp",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> ChaosReport:
    """The full sweep: a fault-free baseline, then one faulted run per
    (group, seed), every run judged for bit-identity, accounting and
    containment.

    ``count`` is how many invocations of each site fail per plan;
    ``seeds`` shift which invocations those are.  The baseline always
    runs the typecheck part so solver-group runs have a reference.
    """
    from ..designs.catalog import DESIGNS

    designs = list(designs) if designs else sorted(DESIGNS)
    unknown = [group for group in groups if group not in SITE_GROUPS]
    if unknown:
        raise ValueError(
            f"unknown chaos groups {unknown}; available: "
            f"{sorted(SITE_GROUPS)}"
        )
    baseline = _run_once(
        "baseline", None, designs, cycles, opt_level, True,
        sim_backend, workers, executor,
    )
    runs: List[ChaosRun] = []
    for seed in seeds:
        for group in groups:
            plan = faults.FaultPlan.seeded(
                seed, sites=SITE_GROUPS[group], count=count
            )
            run = _run_once(
                f"{group}@seed={seed}",
                plan,
                designs,
                cycles,
                opt_level,
                group == "solver",
                sim_backend,
                workers,
                executor,
            )
            run.judge(baseline)
            runs.append(run)
    return ChaosReport(baseline, runs)


# ---------------------------------------------------------------------------
# Kill-9 chaos: real subprocesses, real SIGKILLs, consistency judged
# offline by fsck and a resumed run.


class CrashChaosRun:
    """Outcome of one (site, seed) kill-9 experiment.

    The experiment: an uninterrupted baseline child establishes the
    reference digests and the site's consultation count; a kill child
    runs the same sweep cold with ``REPRO_FAULTS=<site>:1@<skip>`` and
    must die by SIGKILL; ``repro fsck`` must find (or ``--repair`` to)
    a consistent store; a resume child over the same store and run id
    must exit cleanly with digests bit-identical to the baseline, while
    re-computing strictly fewer points whenever the killed child
    checkpointed any.
    """

    def __init__(self, site: str, seed: int):
        self.site = site
        self.seed = seed
        self.skip: Optional[int] = None
        self.calls: int = 0
        self.kill_rc: Optional[int] = None
        self.fsck_counts: Dict[str, int] = {}
        self.fsck_consistent: Optional[bool] = None
        self.resume_rc: Optional[int] = None
        self.identical: Optional[bool] = None
        self.total_points: int = 0
        self.resumed_points: int = 0   # served from the killed run's ledger
        self.recomputed_points: int = 0
        self.error: Optional[str] = None

    @property
    def ok(self) -> bool:
        if self.error is not None:
            return False
        strictly_fewer = (
            self.resumed_points == 0
            or self.recomputed_points < self.total_points
        )
        return (
            self.kill_rc == -9
            and self.fsck_consistent is True
            and self.resume_rc == 0
            and self.identical is True
            and strictly_fewer
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "seed": self.seed,
            "skip": self.skip,
            "calls": self.calls,
            "kill_rc": self.kill_rc,
            "fsck_counts": dict(self.fsck_counts),
            "fsck_consistent": self.fsck_consistent,
            "resume_rc": self.resume_rc,
            "identical": self.identical,
            "total_points": self.total_points,
            "resumed_points": self.resumed_points,
            "recomputed_points": self.recomputed_points,
            "error": self.error,
            "ok": self.ok,
        }


class CrashChaosReport:
    """The whole kill-9 sweep: one experiment per (site, seed)."""

    def __init__(self, runs: List[CrashChaosRun]):
        self.runs = runs

    @property
    def ok(self) -> bool:
        return bool(self.runs) and all(run.ok for run in self.runs)

    def to_dict(self) -> Dict[str, object]:
        return {"ok": self.ok, "runs": [run.to_dict() for run in self.runs]}

    def render(self) -> str:
        lines = ["crash chaos (SIGKILL at seeded sites, judged by fsck "
                 "+ resume):"]
        for run in self.runs:
            status = "ok" if run.ok else "FAILED"
            detail = ""
            if run.error is not None:
                detail = f"  [{run.error}]"
            elif not run.ok:
                parts = []
                if run.kill_rc != -9:
                    parts.append(f"kill rc={run.kill_rc}")
                if run.fsck_consistent is not True:
                    parts.append("store inconsistent")
                if run.resume_rc != 0:
                    parts.append(f"resume rc={run.resume_rc}")
                if run.identical is not True:
                    parts.append("outputs diverged")
                detail = f"  [{'; '.join(parts)}]"
            lines.append(
                f"  {run.site:18s} seed={run.seed}  kill@{run.skip}"
                f"/{run.calls}  resumed {run.resumed_points}"
                f"/{run.total_points} points  {status}{detail}"
            )
        verdict = (
            "every killed store fsck-consistent, every resume "
            "bit-identical"
            if self.ok
            else "CRASH-CHAOS FAILURES — see runs above"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _sweep_command(
    store: str, run_id: str, designs: Sequence[str], cycles: int,
    opt_level: int, check: bool, resume: bool,
) -> List[str]:
    command = [
        sys.executable, "-m", "repro", "sweep",
        "--designs", *designs,
        "--cycles", str(cycles),
        "-O", str(opt_level),
        "--cache-dir", store,
        "--run-id", run_id,
        "--stats", "json",
    ]
    if check:
        command.append("--check")
    if resume:
        command.append("--resume")
    return command


def _child_env(fault_spec: Optional[str]) -> Dict[str, str]:
    """The environment a chaos child runs under: this interpreter's
    ``repro`` importable, fsyncs off (SIGKILL consistency needs only
    ordering, and the sweep runs dozens of stores), and exactly the
    requested fault plan — never an inherited one."""
    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_dir + (os.pathsep + existing if existing else "")
    )
    env[faults.FAULTS_ENV] = fault_spec or ""
    env.setdefault("REPRO_CACHE_FSYNC", "0")
    return env


def _run_sweep_child(
    store: str, run_id: str, designs: Sequence[str], cycles: int,
    opt_level: int, check: bool, resume: bool,
    fault_spec: Optional[str], timeout: float,
) -> Tuple[int, Optional[Dict[str, object]], str]:
    """Launch one ``repro sweep`` child; returns ``(returncode, parsed
    stats payload or None, captured stderr tail)``."""
    command = _sweep_command(
        store, run_id, designs, cycles, opt_level, check, resume
    )
    proc = subprocess.run(
        command,
        env=_child_env(fault_spec),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        timeout=timeout,
        text=True,
    )
    payload: Optional[Dict[str, object]] = None
    if proc.returncode == 0:
        try:
            payload = json.loads(proc.stdout)
        except ValueError:
            payload = None
    return proc.returncode, payload, proc.stderr[-2000:]


def run_crash_chaos(
    designs: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = (0,),
    sites: Sequence[str] = faults.CRASH_SITES,
    cycles: int = 32,
    opt_level: int = 2,
    timeout: float = 300.0,
) -> CrashChaosReport:
    """Kill-9 the pipeline for real and prove the store survives.

    For each (site, seed): run an uninterrupted ``repro sweep`` child
    against a fresh store (the digest baseline, and the source of the
    site's consultation count, from which the seed derives a valid skip
    offset exactly as :meth:`FaultPlan.seeded` would); SIGKILL a second
    cold child at that consultation via ``REPRO_FAULTS``; fsck the
    carnage (report first, then ``--repair``, which must leave the
    store consistent); finally resume the killed run in a third child,
    which must complete bit-identical to the baseline while serving the
    killed child's checkpoints instead of recomputing them.
    """
    from ..designs.catalog import DESIGNS
    from .fsck import run_fsck

    unknown = [site for site in sites if site not in faults.CRASH_SITES]
    if unknown:
        raise ValueError(
            f"unknown crash sites {unknown}; available: "
            f"{list(faults.CRASH_SITES)}"
        )
    designs = list(designs) if designs else sorted(DESIGNS)
    runs: List[CrashChaosRun] = []
    for seed in seeds:
        for site in sites:
            run = CrashChaosRun(site, seed)
            runs.append(run)
            check = site == "proc.kill.solver"
            run.total_points = len(designs)
            baseline_store = tempfile.mkdtemp(prefix="repro-crash-base-")
            kill_store = tempfile.mkdtemp(prefix="repro-crash-kill-")
            try:
                rc, baseline, stderr = _run_sweep_child(
                    baseline_store, "baseline", designs, cycles,
                    opt_level, check, False, None, timeout,
                )
                if rc != 0 or baseline is None:
                    run.error = (
                        f"baseline child failed (rc={rc}): {stderr}"
                    )
                    continue
                calls = (
                    baseline.get("faults", {})
                    .get("calls", {})
                    .get(site, 0)
                )
                run.calls = int(calls)
                if run.calls <= 0:
                    run.error = (
                        f"site {site} never consulted by the baseline "
                        "sweep — nothing to kill"
                    )
                    continue
                digest_material = hashlib.sha256(
                    f"{seed}:{site}".encode("utf-8")
                ).hexdigest()
                run.skip = int(digest_material, 16) % run.calls
                fault_spec = f"{site}:1@{run.skip}"
                try:
                    proc = subprocess.run(
                        _sweep_command(
                            kill_store, "killed", designs, cycles,
                            opt_level, check, False,
                        ),
                        env=_child_env(fault_spec),
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        timeout=timeout,
                        text=True,
                    )
                    run.kill_rc = proc.returncode
                except subprocess.TimeoutExpired:
                    run.error = "kill child timed out"
                    continue
                if run.kill_rc != -9:
                    run.error = (
                        f"kill child exited {run.kill_rc}, expected "
                        "death by SIGKILL"
                    )
                    continue
                # The carnage, classified — then repaired.
                report = run_fsck(kill_store)
                run.fsck_counts = report.counts()
                repaired = run_fsck(kill_store, repair=True)
                verify = run_fsck(kill_store)
                run.fsck_consistent = (
                    repaired.consistent and verify.consistent
                )
                rc, resumed, stderr = _run_sweep_child(
                    kill_store, "killed", designs, cycles,
                    opt_level, check, True, None, timeout,
                )
                run.resume_rc = rc
                if rc != 0 or resumed is None:
                    run.error = f"resume child failed (rc={rc}): {stderr}"
                    continue
                checkpoint = resumed.get("checkpoint", {})
                run.resumed_points = int(checkpoint.get("hits", 0))
                run.recomputed_points = int(checkpoint.get("stores", 0))
                run.identical = (
                    resumed.get("digests") == baseline.get("digests")
                )
            except subprocess.TimeoutExpired:
                run.error = "chaos child timed out"
            finally:
                shutil.rmtree(baseline_store, ignore_errors=True)
                shutil.rmtree(kill_store, ignore_errors=True)
    return CrashChaosReport(runs)

"""``repro chaos`` — prove the fault tolerance, don't just claim it.

The harness closes the loop the fault-injection substrate
(:mod:`repro.driver.faults`) opens: for each seeded :class:`FaultPlan`
it runs the catalog designs through a fresh session — simulate for
every group, plus the SMT typecheck for the solver group — into a
fresh throwaway disk cache, and holds the run to three obligations:

1. **Bit-identical** — every design's trace (and typecheck report)
   digest equals the fault-free baseline's.  The degradation ladders
   (disk→memory, process→thread→serial, vector→compiled→interp,
   incremental→one-shot solver, -O3→-O2) are allowed to cost time,
   never bits.
2. **Accounted** — every fault the plan fired shows up as a
   ``fault.injected.<site>`` counter on the session's stats, so no
   injection was silently swallowed (or silently skipped).
3. **Contained** — no exception escapes the run.  Injected failures
   must be absorbed by a retry or a degradation, not surface.

Fault plans are grouped by the subsystem they attack, one run per
(group, seed)::

    disk    disk.read, disk.write, disk.replace, pickle.load, cache.lock
    worker  worker.spawn, worker.crash
    solver  solver.budget

Seeds choose *which* invocation of each site fails
(:meth:`FaultPlan.seeded` — skip offsets derived from
``sha256(seed:site)``), so a seed sweep walks the failure through cold
reads, warm reads, first writes, mid-grid points… while staying exactly
reproducible: the same seed always breaks the same calls.

Every run gets its own ``mkdtemp`` cache directory — determinism of the
call indices requires starting cold — and uninstalls its plan on the
way out, so chaos runs compose with whatever the process does next.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import faults

#: group name → the fault sites a group's plans schedule.  Groups
#: partition FAULT_SITES: every site is chaos-tested by exactly one
#: group (asserted by the test suite).
SITE_GROUPS = {
    "disk": (
        "disk.read", "disk.write", "disk.replace", "pickle.load",
        "cache.lock",
    ),
    "worker": ("worker.spawn", "worker.crash"),
    "solver": ("solver.budget",),
}


def _digest(payload) -> str:
    """Canonical digest of a run payload (sorted-key JSON → SHA-256)."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _chaos_point(session, point):
    """Grid worker (module-level: process pools must pickle it).

    ``point`` is ``(design, cycles, opt_level, check)``; returns
    ``(design, payload)`` where payload holds the *bits the run is
    judged on*: the simulate trace outputs and, when ``check`` is set,
    the typecheck verdicts.  Deliberately excludes anything a healthy
    degradation may change — wall clocks, the engine a trace landed on,
    cache hit counts."""
    from ..designs.catalog import design_point

    design, cycles, opt_level, check = point
    source, component, generators, params = design_point(design)
    payload: Dict[str, object] = {}
    if check:
        reports = session.typecheck(source).value
        payload["typecheck"] = [
            {
                "component": report.component,
                "obligations": report.obligations,
                "errors": [error.render() for error in report.errors],
            }
            for report in reports
        ]
    trace = session.simulate(
        source, component, params, generators,
        cycles=cycles, opt_level=opt_level,
    ).value
    payload["trace"] = trace.outputs
    return design, payload


class ChaosRun:
    """Outcome of one plan (or the baseline) over the design grid.

    ``digests`` maps each design to its payload-part digests
    (``{"trace": ..., "typecheck": ...}``).  ``identical`` compares
    every digest the run produced against the baseline (the baseline
    always carries the typecheck part, so solver-group runs have
    something to match).  ``accounted`` holds iff, for every site, the
    plan's own fire count equals the session's
    ``fault.injected.<site>`` counter — in process-executor runs both
    views are parent-side by construction (worker processes rebuild
    the plan with their own counters), so the equality stays exact.
    """

    def __init__(
        self,
        label: str,
        plan_spec: Optional[str],
        seed: Optional[int],
        digests: Dict[str, Dict[str, str]],
        fired: Dict[str, int],
        injected: Dict[str, int],
        degrades: Dict[str, int],
        retries: Dict[str, int],
        error: Optional[str] = None,
    ):
        self.label = label
        self.plan_spec = plan_spec
        self.seed = seed
        self.digests = digests
        self.fired = dict(fired)
        self.injected = dict(injected)
        self.degrades = dict(degrades)
        self.retries = dict(retries)
        self.error = error
        self.identical: Optional[bool] = None  # set against the baseline

    @property
    def accounted(self) -> bool:
        return self.fired == self.injected

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.accounted
            and (self.identical is not False)
        )

    def judge(self, baseline: "ChaosRun") -> None:
        """Set :attr:`identical` by comparing every digest this run
        produced against the baseline's."""
        self.identical = bool(self.digests) and all(
            baseline.digests.get(design, {}).get(part) == digest
            for design, parts in self.digests.items()
            for part, digest in parts.items()
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "plan": self.plan_spec,
            "seed": self.seed,
            "identical": self.identical,
            "accounted": self.accounted,
            "error": self.error,
            "fired": dict(self.fired),
            "injected": dict(self.injected),
            "retries": dict(self.retries),
            "degrades": dict(self.degrades),
            "digests": {k: dict(v) for k, v in self.digests.items()},
        }


class ChaosReport:
    """The whole sweep: one baseline plus one run per (group, seed)."""

    def __init__(self, baseline: ChaosRun, runs: List[ChaosRun]):
        self.baseline = baseline
        self.runs = runs

    @property
    def ok(self) -> bool:
        return self.baseline.error is None and all(r.ok for r in self.runs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "baseline": self.baseline.to_dict(),
            "runs": [run.to_dict() for run in self.runs],
        }

    def render(self) -> str:
        lines = ["chaos sweep (every run judged against a fault-free "
                 "baseline):"]
        for run in self.runs:
            fired = sum(run.fired.values())
            status = "ok" if run.ok else "FAILED"
            details = []
            if run.error is not None:
                details.append(f"escaped: {run.error}")
            if run.identical is False:
                details.append("outputs diverged")
            if not run.accounted:
                details.append(
                    f"unaccounted faults (plan {run.fired} != "
                    f"stats {run.injected})"
                )
            recovered = sum(run.retries.values()) + sum(
                run.degrades.values()
            )
            lines.append(
                f"  {run.label:18s} {fired:2d} injected  "
                f"{recovered:2d} recoveries  {status}"
                + (f"  [{'; '.join(details)}]" if details else "")
            )
        verdict = (
            "all runs bit-identical, all faults accounted"
            if self.ok
            else "CHAOS FAILURES — see runs above"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _fault_slices(stats) -> Tuple[Dict[str, int], ...]:
    counters = stats.snapshot()["counters"]

    def _slice(prefix: str) -> Dict[str, int]:
        return {
            name[len(prefix):]: count
            for name, count in counters.items()
            if name.startswith(prefix)
        }

    return (
        _slice("fault.injected."),
        _slice("degrade."),
        _slice("retry."),
    )


def _run_once(
    label: str,
    plan: Optional["faults.FaultPlan"],
    designs: Sequence[str],
    cycles: int,
    opt_level: int,
    check: bool,
    sim_backend: str,
    workers: Optional[int],
    executor: str,
) -> ChaosRun:
    """One sweep over the designs in a fresh session + fresh cold cache."""
    from .. import smt
    from ..lilac.typecheck.check import clear_obligation_memo
    from .grid import EvalGrid
    from .session import CompileSession

    # Deterministic call indices need every run to start *cold*: the
    # process-global solver memos (obligation verdicts, theory lemmas)
    # would otherwise answer queries the plan scheduled to fail, so the
    # same sweep would inject different faults depending on what ran in
    # the process before it.
    clear_obligation_memo()
    smt.clear_solver_caches()
    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    digests: Dict[str, Dict[str, str]] = {}
    error: Optional[str] = None
    injected: Dict[str, int] = {}
    degrades: Dict[str, int] = {}
    retries: Dict[str, int] = {}
    try:
        session = CompileSession(
            opt_level=opt_level,
            sim_backend=sim_backend,
            cache_dir=cache_dir,
            # The baseline gets an explicit *empty* plan, not None — a
            # None plan would fall back to $REPRO_FAULTS and a stray
            # environment would poison the reference run.
            fault_plan=plan if plan is not None else faults.FaultPlan(),
        )
        try:
            grid = EvalGrid(session, max_workers=workers, executor=executor)
            points = [(name, cycles, opt_level, check) for name in designs]
            for design, payload in grid.map(_chaos_point, points):
                digests[design] = {
                    part: _digest(value) for part, value in payload.items()
                }
        except BaseException as escaped:  # containment IS the test
            error = f"{type(escaped).__name__}: {escaped}"
        injected, degrades, retries = _fault_slices(session.stats)
    finally:
        faults.uninstall()
        shutil.rmtree(cache_dir, ignore_errors=True)
    return ChaosRun(
        label,
        plan.spec_string() if plan is not None else None,
        plan.seed if plan is not None else None,
        digests,
        dict(plan.fired) if plan is not None else {},
        injected,
        degrades,
        retries,
        error=error,
    )


def run_chaos(
    designs: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = (0,),
    groups: Sequence[str] = ("disk", "worker", "solver"),
    cycles: int = 64,
    opt_level: int = 2,
    count: int = 2,
    sim_backend: str = "interp",
    workers: Optional[int] = None,
    executor: str = "thread",
) -> ChaosReport:
    """The full sweep: a fault-free baseline, then one faulted run per
    (group, seed), every run judged for bit-identity, accounting and
    containment.

    ``count`` is how many invocations of each site fail per plan;
    ``seeds`` shift which invocations those are.  The baseline always
    runs the typecheck part so solver-group runs have a reference.
    """
    from ..designs.catalog import DESIGNS

    designs = list(designs) if designs else sorted(DESIGNS)
    unknown = [group for group in groups if group not in SITE_GROUPS]
    if unknown:
        raise ValueError(
            f"unknown chaos groups {unknown}; available: "
            f"{sorted(SITE_GROUPS)}"
        )
    baseline = _run_once(
        "baseline", None, designs, cycles, opt_level, True,
        sim_backend, workers, executor,
    )
    runs: List[ChaosRun] = []
    for seed in seeds:
        for group in groups:
            plan = faults.FaultPlan.seeded(
                seed, sites=SITE_GROUPS[group], count=count
            )
            run = _run_once(
                f"{group}@seed={seed}",
                plan,
                designs,
                cycles,
                opt_level,
                group == "solver",
                sim_backend,
                workers,
                executor,
            )
            run.judge(baseline)
            runs.append(run)
    return ChaosReport(baseline, runs)

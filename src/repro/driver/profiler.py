"""Whole-run wall-time attribution: where did a grid run spend its time?

The cache layer's :class:`~repro.driver.cache.CacheStats` accumulates
timers at every instrumented site — ``compute.<stage>`` around each
stage computation, ``wait.disk_read``/``wait.disk_write`` around disk
cache I/O, ``wait.cache_lock`` for time blocked behind another thread's
single-flight computation, ``wait.pool_queue`` for grid points sitting
unstarted in the executor queue.  :class:`RunProfiler` brackets a run
(a ``repro all``, one evaluation grid, a single compile) and turns the
timer *deltas* into a :class:`RunReport`: compute vs waiting, with a
flame-style text rendering and a JSON form for machines.

Two caveats the report states explicitly rather than hiding:

* Timers attribute by *site*, they do not partition wall time.  A
  stage computation that reads the disk cache counts under both
  ``compute.<stage>`` and ``wait.disk_read``, and with a worker pool
  many sites tick concurrently — total attributed seconds can exceed
  the wall clock.  The per-bucket shares are still the right relative
  picture of where time goes.
* ``unattributed`` is the wall time no compute bucket claims (stimulus
  generation, Python import, report rendering, the profiler itself).
  Under parallelism it clamps at zero.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

#: timer-name prefixes the report splits on.
_COMPUTE_PREFIX = "compute."
_WAIT_PREFIX = "wait."

#: counter-name prefixes the robustness section splits on: injected
#: faults, the retries/degradations that absorbed them, and the
#: crash-consistency machinery (intent journal, fsck, run checkpoints,
#: worker watchdog).
_FAULT_PREFIXES = (
    "fault.injected.",
    "retry.",
    "degrade.",
    "journal.",
    "fsck.",
    "checkpoint.",
    "watchdog.",
)


class RunReport:
    """Attribution of one profiled run's wall clock.

    ``compute`` maps stage names to seconds spent computing them (cache
    hits cost nothing, so a warm run's compute collapses toward zero);
    ``waits`` maps wait sites (``disk_read``, ``disk_write``,
    ``cache_lock``, ``pool_queue``) to seconds spent there.

    ``faults`` maps the robustness counters (``fault.injected.<site>``,
    ``retry.<site>``, ``degrade.<path>``) that ticked during the run —
    empty in a fault-free, fully healthy run.
    """

    def __init__(
        self,
        wall_seconds: float,
        compute: Dict[str, float],
        waits: Dict[str, float],
        faults: Optional[Dict[str, int]] = None,
    ):
        self.wall_seconds = wall_seconds
        self.compute = dict(compute)
        self.waits = dict(waits)
        self.faults = dict(faults or {})

    @property
    def compute_seconds(self) -> float:
        return sum(self.compute.values())

    @property
    def wait_seconds(self) -> float:
        return sum(self.waits.values())

    @property
    def unattributed_seconds(self) -> float:
        return max(0.0, self.wall_seconds - self.compute_seconds)

    def to_dict(self) -> Dict[str, object]:
        return {
            "wall_seconds": self.wall_seconds,
            "compute_seconds": self.compute_seconds,
            "wait_seconds": self.wait_seconds,
            "unattributed_seconds": self.unattributed_seconds,
            "compute": dict(self.compute),
            "waits": dict(self.waits),
            "faults": dict(self.faults),
        }

    def _bar(self, seconds: float, width: int = 28) -> str:
        if self.wall_seconds <= 0.0:
            return ""
        filled = int(round(width * min(1.0, seconds / self.wall_seconds)))
        return "█" * filled

    def _share(self, seconds: float) -> str:
        if self.wall_seconds <= 0.0:
            return "  n/a"
        return f"{100.0 * seconds / self.wall_seconds:5.1f}%"

    def render(self) -> str:
        lines = [f"run profile: {self.wall_seconds:.3f}s wall"]
        lines.append(
            f"  compute   {self.compute_seconds:8.3f}s "
            f"{self._share(self.compute_seconds)}"
        )
        for name, seconds in sorted(
            self.compute.items(), key=lambda item: -item[1]
        ):
            lines.append(
                f"    {name:14s} {seconds:8.3f}s {self._share(seconds)} "
                f"{self._bar(seconds)}"
            )
        lines.append(
            f"  waiting   {self.wait_seconds:8.3f}s "
            f"{self._share(self.wait_seconds)}  "
            "(overlaps compute; a site view, not a partition)"
        )
        for name, seconds in sorted(
            self.waits.items(), key=lambda item: -item[1]
        ):
            lines.append(
                f"    {name:14s} {seconds:8.3f}s {self._share(seconds)} "
                f"{self._bar(seconds)}"
            )
        lines.append(
            f"  unattributed {self.unattributed_seconds:5.3f}s "
            f"{self._share(self.unattributed_seconds)}  "
            "(stimulus, imports, rendering)"
        )
        if self.faults:
            lines.append("  faults    (injected / recovered)")
            for name, count in sorted(self.faults.items()):
                lines.append(f"    {name:28s} {count:4d}")
        return "\n".join(lines)


class RunProfiler:
    """Context manager bracketing a run over one session.

    Snapshots the session's timers on entry and reports the *deltas*
    on exit, so several profiled regions over one long-lived session
    don't bleed into each other::

        with RunProfiler(session) as profiler:
            grid.map(fn, points)
        print(profiler.report().render())
    """

    def __init__(self, session):
        self.session = session
        self._baseline: Dict[str, float] = {}
        self._counter_baseline: Dict[str, int] = {}
        self._started = 0.0
        self._wall: Optional[float] = None

    def __enter__(self) -> "RunProfiler":
        snapshot = self.session.stats.snapshot()
        self._baseline = dict(snapshot["timers"])
        self._counter_baseline = dict(snapshot["counters"])
        self._wall = None
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._wall = time.perf_counter() - self._started
        return None

    def report(self) -> RunReport:
        """The attribution so far (inside the block: a running total)."""
        wall = (
            self._wall
            if self._wall is not None
            else time.perf_counter() - self._started
        )
        snapshot = self.session.stats.snapshot()
        compute: Dict[str, float] = {}
        waits: Dict[str, float] = {}
        for name, seconds in snapshot["timers"].items():
            delta = seconds - self._baseline.get(name, 0.0)
            if delta <= 0.0:
                continue
            if name.startswith(_COMPUTE_PREFIX):
                compute[name[len(_COMPUTE_PREFIX):]] = delta
            elif name.startswith(_WAIT_PREFIX):
                waits[name[len(_WAIT_PREFIX):]] = delta
        faults: Dict[str, int] = {}
        for name, count in snapshot["counters"].items():
            if not name.startswith(_FAULT_PREFIXES):
                continue
            delta = count - self._counter_baseline.get(name, 0)
            if delta > 0:
                faults[name] = delta
        return RunReport(wall, compute, waits, faults)


def simulate_catalog_point(session, point):
    """Grid worker for ``repro profile`` (module-level: process pools
    must pickle it).  ``point`` is ``(design_name, cycles, opt_level)``;
    returns plain data for the per-design summary line."""
    from ..designs.catalog import design_point

    name, cycles, opt_level = point
    source, component, generators, params = design_point(name)
    trace = session.simulate(
        source, component, params, generators,
        cycles=cycles, opt_level=opt_level,
    ).value
    return {
        "design": name,
        "cells": trace.cells,
        "backend": trace.backend,
        "lanes": trace.lanes,
        "run_seconds": trace.run_seconds,
    }

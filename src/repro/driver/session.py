"""The staged compiler driver: one front door for the whole pipeline.

A :class:`CompileSession` runs the compilation pipeline as explicit,
inspectable stages —

    parse → typecheck → elaborate (→ wellformed → lower) → emit_verilog
                                                         → synthesize

— each producing a :class:`~repro.driver.artifact.StageArtifact` with
structured diagnostics and wall-clock timings.  Artifacts live in a
content-addressed in-memory cache keyed on ``(stage, source digest,
component, frozen parameter binding, generator-registry fingerprint)``,
so repeated elaborations and synthesis runs across designs, tables and
benchmarks are computed once per session.  Sessions are thread-safe and
feed the :class:`~repro.driver.grid.EvalGrid` worker pool.

Elaborator instances are shared per ``(source, registry, verify)``
triple: elaborating ``FPU`` and then ``FPAdd`` from the same program
reuses the child artifacts the first call already produced, on top of
the session-level artifact cache.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..generators.base import Generator, GeneratorRegistry
from ..lilac.elaborate import Elaborator
from ..lilac.stdlib import stdlib_program
from ..lilac.parser import parse_program
from ..lilac.typecheck import check_component, check_program
from ..rtl import emit_verilog
from ..synth import synthesize
from .artifact import CompileResult, Diagnostic, StageArtifact
from .cache import ArtifactCache, CacheStats, freeze_params, source_digest

Generators = Union[GeneratorRegistry, Iterable[Generator], None]

#: Stages `compile` runs when none are requested explicitly.
DEFAULT_STAGES = ("parse", "elaborate", "emit_verilog", "synthesize")


class _ElabObserver:
    """Per-call accumulator plugged into the shared elaborator."""

    def __init__(self, stats: CacheStats):
        self._stats = stats
        self.components = 0
        self.sub_timings: Dict[str, float] = {}

    def component_elaborated(self, name: str, env: Dict[str, int]) -> None:
        self.components += 1
        self._stats.bump("elaborate.components")

    def stage_time(self, stage: str, seconds: float) -> None:
        self.sub_timings[stage] = self.sub_timings.get(stage, 0.0) + seconds


class CompileSession:
    """Staged, cached, thread-safe driver over the Lilac pipeline."""

    def __init__(self, verify: bool = True):
        self.verify = verify
        self.stats = CacheStats()
        self.cache = ArtifactCache(self.stats)
        self._mutex = threading.Lock()
        # (source digest, registry fingerprint, verify)
        #   -> (Elaborator, per-elaborator lock)
        self._elaborators: Dict[Tuple, Tuple[Elaborator, threading.Lock]] = {}

    # -- key helpers ----------------------------------------------------

    @staticmethod
    def _registry_of(generators: Generators) -> GeneratorRegistry:
        if generators is None:
            return GeneratorRegistry()
        if isinstance(generators, GeneratorRegistry):
            return generators
        registry = GeneratorRegistry()
        for generator in generators:
            registry.register(generator)
        return registry

    @staticmethod
    def _source_key(source: str, stdlib: bool) -> Tuple:
        return (source_digest(source), bool(stdlib))

    # -- stages ---------------------------------------------------------

    def parse(self, source: str, stdlib: bool = True) -> StageArtifact:
        """source text → Program (standard library merged in by default)."""
        key = ("parse", self._source_key(source, stdlib))

        def compute() -> StageArtifact:
            start = time.perf_counter()
            if stdlib:
                program = stdlib_program(source)
            else:
                program = parse_program(source)
            return StageArtifact(
                "parse", key, program, time.perf_counter() - start
            )

        return self.cache.get_or_compute(key, compute)

    def typecheck(
        self,
        source: str,
        component: Optional[str] = None,
        stdlib: bool = True,
    ) -> StageArtifact:
        """Check one component (or, with ``component=None``, every
        ``comp`` in the program).  Errors become diagnostics — the
        artifact is returned either way; inspect ``artifact.ok``."""
        key = ("typecheck", self._source_key(source, stdlib), component)

        def compute() -> StageArtifact:
            program = self.parse(source, stdlib).value
            start = time.perf_counter()
            if component is None:
                reports = check_program(program, raise_on_error=False)
            else:
                reports = [check_component(program, component)]
            seconds = time.perf_counter() - start
            diagnostics = [
                Diagnostic("error", "typecheck", error.render())
                for report in reports
                for error in report.errors
            ]
            value = reports[0] if component is not None else reports
            return StageArtifact("typecheck", key, value, seconds, diagnostics)

        return self.cache.get_or_compute(key, compute)

    def _elaborator_for(
        self, source: str, stdlib: bool, registry: GeneratorRegistry
    ) -> Tuple[Elaborator, threading.Lock]:
        ekey = (
            self._source_key(source, stdlib),
            registry.fingerprint(),
            self.verify,
        )
        # Parse outside the session mutex: it is single-flighted by the
        # artifact cache, and holding _mutex across it would serialize
        # every grid worker on an unrelated source's first parse.
        program = self.parse(source, stdlib).value
        with self._mutex:
            entry = self._elaborators.get(ekey)
            if entry is None:
                entry = (
                    Elaborator(program, registry, verify=self.verify),
                    threading.Lock(),
                )
                self._elaborators[ekey] = entry
            return entry

    def elaborate(
        self,
        source: str,
        component: str,
        params: Union[Dict[str, int], Sequence[int], None] = None,
        generators: Generators = None,
        stdlib: bool = True,
    ) -> StageArtifact:
        """program + concrete parameters → ElabResult (RTL + schedule)."""
        registry = self._registry_of(generators)
        key = (
            "elaborate",
            self._source_key(source, stdlib),
            component,
            freeze_params(params),
            registry.fingerprint(),
            self.verify,
        )

        def compute() -> StageArtifact:
            elaborator, lock = self._elaborator_for(source, stdlib, registry)
            observer = _ElabObserver(self.stats)
            with lock:
                # Start the clock under the lock: waiting for another
                # grid worker's elaboration is not this stage's cost.
                start = time.perf_counter()
                elaborator.observer = observer
                try:
                    result = elaborator.elaborate(component, params)
                finally:
                    elaborator.observer = None
                seconds = time.perf_counter() - start
            return StageArtifact(
                "elaborate",
                key,
                result,
                seconds,
                sub_timings=observer.sub_timings,
            )

        return self.cache.get_or_compute(key, compute)

    def emit_verilog(
        self,
        source: str,
        component: str,
        params: Union[Dict[str, int], Sequence[int], None] = None,
        generators: Generators = None,
        stdlib: bool = True,
    ) -> StageArtifact:
        """elaborated design → structural Verilog text."""
        registry = self._registry_of(generators)
        key = (
            "emit_verilog",
            self._source_key(source, stdlib),
            component,
            freeze_params(params),
            registry.fingerprint(),
            self.verify,
        )

        def compute() -> StageArtifact:
            elab = self.elaborate(
                source, component, params, registry, stdlib
            ).value
            start = time.perf_counter()
            text = emit_verilog(elab.module)
            return StageArtifact(
                "emit_verilog", key, text, time.perf_counter() - start
            )

        return self.cache.get_or_compute(key, compute)

    def synthesize(
        self,
        source: str,
        component: str,
        params: Union[Dict[str, int], Sequence[int], None] = None,
        generators: Generators = None,
        stdlib: bool = True,
    ) -> StageArtifact:
        """elaborated design → SynthReport from the area/timing model."""
        registry = self._registry_of(generators)
        key = (
            "synthesize",
            self._source_key(source, stdlib),
            component,
            freeze_params(params),
            registry.fingerprint(),
            self.verify,
        )

        def compute() -> StageArtifact:
            elab = self.elaborate(
                source, component, params, registry, stdlib
            ).value
            start = time.perf_counter()
            report = synthesize(elab.module)
            return StageArtifact(
                "synthesize", key, report, time.perf_counter() - start
            )

        return self.cache.get_or_compute(key, compute)

    # -- the pipeline front door ----------------------------------------

    def compile(
        self,
        source: str,
        component: str,
        params: Union[Dict[str, int], Sequence[int], None] = None,
        generators: Generators = None,
        stdlib: bool = True,
        stages: Sequence[str] = DEFAULT_STAGES,
    ) -> CompileResult:
        """Run the requested stages in pipeline order and bundle the
        artifacts.  A failing typecheck stops the pipeline (its artifact
        carries the diagnostics); other stage errors raise as usual."""
        result = CompileResult(
            component, params if isinstance(params, dict) else {}
        )
        wanted = set(stages)
        unknown = wanted - {
            "parse", "typecheck", "elaborate", "emit_verilog", "synthesize"
        }
        if unknown:
            raise ValueError(f"unknown pipeline stages: {sorted(unknown)}")
        if "parse" in wanted:
            result.add(self.parse(source, stdlib))
        if "typecheck" in wanted:
            artifact = self.typecheck(source, component, stdlib)
            result.add(artifact)
            if not artifact.ok:
                return result
        for stage in ("elaborate", "emit_verilog", "synthesize"):
            if stage in wanted:
                result.add(
                    getattr(self, stage)(
                        source, component, params, generators, stdlib
                    )
                )
        return result


# ---------------------------------------------------------------------------
# The process-wide default session: designs and evalx modules share it so
# that independent callers (tables, figures, examples) reuse artifacts
# without threading a session argument everywhere.

_DEFAULT: Optional[CompileSession] = None
_DEFAULT_LOCK = threading.Lock()


def default_session() -> CompileSession:
    """The shared process-wide session (created on first use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = CompileSession()
        return _DEFAULT


def reset_default_session() -> CompileSession:
    """Replace the shared session with a fresh one (mainly for tests)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = CompileSession()
        return _DEFAULT

"""The staged compiler driver: one front door for the whole pipeline.

A :class:`CompileSession` runs the compilation pipeline as explicit,
inspectable stages —

    parse → typecheck → elaborate (→ wellformed → lower) → optimize
                                     → emit_verilog → synthesize
                                     → simulate

— each producing a :class:`~repro.driver.artifact.StageArtifact` with
structured diagnostics and wall-clock timings.  Artifacts live in a
content-addressed in-memory cache keyed on ``(stage, source digest,
component, frozen parameter binding, generator-registry fingerprint)``,
so repeated elaborations and synthesis runs across designs, tables and
benchmarks are computed once per session.  Sessions are thread-safe and
feed the :class:`~repro.driver.grid.EvalGrid` worker pool.

The ``optimize`` stage flattens the lowered netlist and runs the
``-O<n>`` pass pipeline (:mod:`repro.rtl.passes`) over it; its cache key
— and that of every stage downstream of it — additionally carries the
pipeline *fingerprint*, so changing the pass pipeline (level, pass set,
or a pass's version) invalidates exactly the artifacts that depended on
it.  ``simulate`` drives the optimized netlist with seeded random
stimulus for a requested number of cycles; two simulate artifacts that
differ only in optimization level are therefore directly comparable —
the differential-simulation check the ablation harness builds on.

Elaborator instances are shared per ``(source, registry, verify)``
triple: elaborating ``FPU`` and then ``FPAdd`` from the same program
reuses the child artifacts the first call already produced, on top of
the session-level artifact cache.

Two session-level knobs extend the reach of all this: ``sim_backend``
selects the simulation engine — ``"interp"``, the codegen engines
``"compiled"``/``"batched"``/``"vector"`` (bit-identical by
differential contract), or ``"auto"``, which resolves per design from
the persisted calibration profiles of :mod:`repro.rtl.tuner` — and
``cache_dir`` layers a persistent
:class:`~repro.driver.cache.DiskCache` under the in-memory cache so
artifacts survive the process and a second run starts warm.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..generators.base import Generator, GeneratorRegistry
from ..lilac.elaborate import Elaborator
from ..lilac.stdlib import stdlib_program
from ..lilac.parser import parse_program
from ..lilac.typecheck import check_component, check_program
from ..rtl import (
    BACKEND_FALLBACKS,
    SimBackendUnavailable,
    SimProfile,
    backend_fingerprint,
    collect_profile,
    emit_verilog,
    flatten,
    make_simulator,
    random_stimulus,
    random_stimulus_batch,
    tune,
)
from ..rtl.passes import (
    PGO_VERSION,
    PassManager,
    PassStats,
    pgo_passes,
    pipeline_for_level,
)
from ..synth import synthesize
from . import faults
from .artifact import (
    CompileResult,
    Diagnostic,
    OptimizedNetlist,
    SimTrace,
    StageArtifact,
)
from .cache import (
    ArtifactCache,
    CacheStats,
    CodegenStore,
    DiskCache,
    ObligationStore,
    ProfileStore,
    TunerStore,
    freeze_params,
    source_digest,
)

Generators = Union[GeneratorRegistry, Iterable[Generator], None]

#: Stages `compile` runs when none are requested explicitly.
DEFAULT_STAGES = ("parse", "elaborate", "emit_verilog", "synthesize")


class _ElabObserver:
    """Per-call accumulator plugged into the shared elaborator."""

    def __init__(self, stats: CacheStats):
        self._stats = stats
        self.components = 0
        self.sub_timings: Dict[str, float] = {}

    def component_elaborated(self, name: str, env: Dict[str, int]) -> None:
        self.components += 1
        self._stats.bump("elaborate.components")

    def stage_time(self, stage: str, seconds: float) -> None:
        self.sub_timings[stage] = self.sub_timings.get(stage, 0.0) + seconds


class CompileSession:
    """Staged, cached, thread-safe driver over the Lilac pipeline.

    ``opt_level`` is the session default for every stage downstream of
    lowering; individual stage calls can override it per request.  The
    same holds for ``sim_backend`` (the engines of
    :data:`repro.rtl.SIM_BACKENDS`, or ``"auto"`` for the measured
    per-design choice) and the ``simulate`` stage.  A non-None
    ``cache_dir`` layers a persistent
    :class:`~repro.driver.cache.DiskCache` under the in-memory artifact
    cache, so artifacts survive the process and a second session over
    the same sources starts warm.
    """

    def __init__(
        self,
        verify: bool = True,
        opt_level: int = 0,
        sim_backend: str = "interp",
        cache_dir: Optional[str] = None,
        sim_lanes: int = 1,
        typecheck_jobs: Optional[int] = None,
        typecheck_executor: str = "thread",
        profile_auto: bool = True,
        fault_plan: Union["faults.FaultPlan", str, None] = None,
    ):
        self.profile_auto = bool(profile_auto)
        self.verify = verify
        self.opt_level = int(opt_level)
        pipeline_for_level(self.opt_level)  # reject bad levels eagerly
        # Reject bad backends eagerly too; fingerprinting accepts every
        # selectable spelling including "auto" (resolve_backend would
        # reject the selection policy that is not itself an engine).
        backend_fingerprint(sim_backend)
        self.sim_backend = sim_backend
        self.sim_lanes = int(sim_lanes)
        if self.sim_lanes < 1:
            raise ValueError(f"sim_lanes must be >= 1, got {sim_lanes!r}")
        self.typecheck_jobs = (
            None if typecheck_jobs is None else int(typecheck_jobs)
        )
        if self.typecheck_jobs is not None and self.typecheck_jobs < 1:
            raise ValueError(
                f"typecheck_jobs must be >= 1, got {typecheck_jobs!r}"
            )
        if typecheck_executor not in ("thread", "process"):
            raise ValueError(
                f"unknown typecheck executor {typecheck_executor!r}"
            )
        self.typecheck_executor = typecheck_executor
        self.stats = CacheStats()
        # Fault injection: an explicit plan (object or spec string)
        # wins; otherwise $REPRO_FAULTS is honored, so chaos runs and
        # CI smokes can knock out any entry point without plumbing.
        # The plan is installed process-globally — injection sites live
        # in layers (the SAT solver, the disk cache internals) that
        # never see a session — with fires accounted on this session's
        # stats as ``fault.injected.<site>``.
        if isinstance(fault_plan, str):
            fault_plan = faults.FaultPlan.parse(fault_plan)
        if fault_plan is None:
            fault_plan = faults.FaultPlan.from_env()
        self.fault_plan = fault_plan
        if fault_plan is not None:
            faults.install(fault_plan.bind(self.stats))
        disk = DiskCache(cache_dir, self.stats) if cache_dir else None
        self.cache_dir = disk.root if disk is not None else None
        self.cache = ArtifactCache(self.stats, disk=disk)
        #: persistent step-source store for the compiled backend; the
        #: simulate stage hands it to make_simulator so warm processes
        #: skip levelization + code generation.
        self._codegen_store = (
            CodegenStore(self.cache.disk)
            if self.cache.disk is not None
            else None
        )
        #: persistent obligation-verdict store for the typecheck stage;
        #: warm sessions answer solver queries from disk (the "smt"
        #: pseudo-stage) instead of running DPLL(T).
        self._obligation_store = (
            ObligationStore(self.cache.disk)
            if self.cache.disk is not None
            else None
        )
        #: persistent backend-calibration store for the "auto" backend;
        #: warm sessions resolve the measured per-design engine choice
        #: from disk (the "tuner" pseudo-stage) without re-calibrating.
        self._tuner_store = (
            TunerStore(self.cache.disk)
            if self.cache.disk is not None
            else None
        )
        #: persistent activity-profile store for the -O3 pipeline; warm
        #: sessions specialize from the persisted profile (the "profile"
        #: pseudo-stage) without re-simulating the design.
        self._profile_store = (
            ProfileStore(self.cache.disk)
            if self.cache.disk is not None
            else None
        )
        #: run ledger for checkpoint/resume (attached by the CLI's
        #: ``--run-id``/``--resume`` plumbing; grids pick it up via
        #: ``getattr(session, "ledger", None)``).
        self.ledger = None
        #: in-session profile memo keyed by structural hash (value None
        #: caches the *absence* of a profile when auto-collection is off).
        self._profiles: Dict[str, Optional[SimProfile]] = {}
        self._mutex = threading.Lock()
        #: every PassStats any optimize stage produced, in completion
        #: order — the CLI's end-of-run per-pass report reads this.
        self._pass_log: List[PassStats] = []
        # (source digest, registry fingerprint, verify)
        #   -> (Elaborator, per-elaborator lock)
        self._elaborators: Dict[Tuple, Tuple[Elaborator, threading.Lock]] = {}

    # -- process-pool plumbing ------------------------------------------

    def spec(self) -> Dict[str, object]:
        """The picklable recipe for an equivalent session.

        Sessions hold live unpicklable state (programs, locks, netlist
        objects), so :class:`~repro.driver.grid.EvalGrid`'s process mode
        ships this dict to each worker instead and rebuilds with
        :meth:`from_spec`; workers sharing a ``cache_dir`` then
        rendezvous on artifacts through the disk layer.
        """
        return {
            "verify": self.verify,
            "opt_level": self.opt_level,
            "sim_backend": self.sim_backend,
            "sim_lanes": self.sim_lanes,
            "cache_dir": self.cache_dir,
            # Workers never fan out further: nested pools would
            # oversubscribe, and the outer grid already parallelizes.
            "typecheck_jobs": None,
            "typecheck_executor": self.typecheck_executor,
            "profile_auto": self.profile_auto,
            # Workers rebuild the plan from its grammar spelling with
            # fresh counters — each process schedules its own failures.
            "fault_plan": (
                self.fault_plan.spec_string()
                if self.fault_plan is not None
                else None
            ),
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "CompileSession":
        return cls(**spec)

    # -- key helpers ----------------------------------------------------

    @staticmethod
    def _registry_of(generators: Generators) -> GeneratorRegistry:
        if generators is None:
            return GeneratorRegistry()
        if isinstance(generators, GeneratorRegistry):
            return generators
        registry = GeneratorRegistry()
        for generator in generators:
            registry.register(generator)
        return registry

    @staticmethod
    def _source_key(source: str, stdlib: bool) -> Tuple:
        return (source_digest(source), bool(stdlib))

    def _pipeline(self, opt_level: Optional[int]) -> Tuple[int, PassManager]:
        level = self.opt_level if opt_level is None else int(opt_level)
        return level, pipeline_for_level(level)

    # -- stages ---------------------------------------------------------

    def parse(self, source: str, stdlib: bool = True) -> StageArtifact:
        """source text → Program (standard library merged in by default)."""
        key = ("parse", self._source_key(source, stdlib))

        def compute() -> StageArtifact:
            start = time.perf_counter()
            if stdlib:
                program = stdlib_program(source)
            else:
                program = parse_program(source)
            return StageArtifact(
                "parse", key, program, time.perf_counter() - start
            )

        return self.cache.get_or_compute(key, compute)

    def typecheck(
        self,
        source: str,
        component: Optional[str] = None,
        stdlib: bool = True,
        jobs: Optional[int] = None,
    ) -> StageArtifact:
        """Check one component (or, with ``component=None``, every
        ``comp`` in the program).  Errors become diagnostics — the
        artifact is returned either way; inspect ``artifact.ok``.

        Obligation verdicts are answered through the session's
        persistent :class:`~repro.driver.cache.ObligationStore` when a
        disk cache is attached, so a warm session skips the SMT solver.
        ``jobs`` (session's ``typecheck_jobs`` when None) fans whole-
        program checks out over an :class:`~repro.driver.grid.EvalGrid`,
        one component per point; per-component stage artifacts make the
        fan-out cacheable and, in process mode, let workers rendezvous
        through the disk cache.
        """
        key = ("typecheck", self._source_key(source, stdlib), component)
        n_jobs = self.typecheck_jobs if jobs is None else int(jobs)

        def compute() -> StageArtifact:
            program = self.parse(source, stdlib).value
            start = time.perf_counter()
            if component is None:
                names = [c.name for c in program]
                if n_jobs is not None and n_jobs > 1 and len(names) > 1:
                    reports = self._typecheck_parallel(
                        source, stdlib, names, n_jobs
                    )
                else:
                    reports = check_program(
                        program,
                        raise_on_error=False,
                        obligation_store=self._obligation_store,
                        stats=self.stats,
                    )
            else:
                reports = [
                    check_component(
                        program,
                        component,
                        obligation_store=self._obligation_store,
                        stats=self.stats,
                    )
                ]
            seconds = time.perf_counter() - start
            diagnostics = [
                Diagnostic("error", "typecheck", error.render())
                for report in reports
                for error in report.errors
            ]
            sub_timings: Dict[str, float] = {}
            for report in reports:
                for name, value in report.timings.items():
                    sub_timings[name] = sub_timings.get(name, 0.0) + value
            value = reports[0] if component is not None else reports
            return StageArtifact(
                "typecheck", key, value, seconds, diagnostics,
                sub_timings=sub_timings,
            )

        return self.cache.get_or_compute(key, compute)

    def _typecheck_parallel(
        self, source: str, stdlib: bool, names: List[str], jobs: int
    ):
        """Whole-program typecheck over the evaluation grid.

        Components are independent; each grid point runs the cached
        per-component typecheck stage.  In process mode the obligation
        store doubles as the rendezvous: workers persist their verdicts
        and the parent (re-)assembles reports from per-component
        artifacts served warm from disk.
        """
        import functools

        from .grid import EvalGrid  # local import: grid imports session

        grid = EvalGrid(
            self, max_workers=jobs, executor=self.typecheck_executor
        )
        return grid.map(
            functools.partial(_typecheck_point, stdlib=stdlib),
            [(source, name) for name in names],
        )

    def _elaborator_for(
        self, source: str, stdlib: bool, registry: GeneratorRegistry
    ) -> Tuple[Elaborator, threading.Lock]:
        ekey = (
            self._source_key(source, stdlib),
            registry.fingerprint(),
            self.verify,
        )
        # Parse outside the session mutex: it is single-flighted by the
        # artifact cache, and holding _mutex across it would serialize
        # every grid worker on an unrelated source's first parse.
        program = self.parse(source, stdlib).value
        with self._mutex:
            entry = self._elaborators.get(ekey)
            if entry is None:
                entry = (
                    Elaborator(program, registry, verify=self.verify),
                    threading.Lock(),
                )
                self._elaborators[ekey] = entry
            return entry

    def elaborate(
        self,
        source: str,
        component: str,
        params: Union[Dict[str, int], Sequence[int], None] = None,
        generators: Generators = None,
        stdlib: bool = True,
    ) -> StageArtifact:
        """program + concrete parameters → ElabResult (RTL + schedule)."""
        registry = self._registry_of(generators)
        key = (
            "elaborate",
            self._source_key(source, stdlib),
            component,
            freeze_params(params),
            registry.fingerprint(),
            self.verify,
        )

        def compute() -> StageArtifact:
            elaborator, lock = self._elaborator_for(source, stdlib, registry)
            observer = _ElabObserver(self.stats)
            with lock:
                # Start the clock under the lock: waiting for another
                # grid worker's elaboration is not this stage's cost.
                start = time.perf_counter()
                elaborator.observer = observer
                try:
                    result = elaborator.elaborate(component, params)
                finally:
                    elaborator.observer = None
                seconds = time.perf_counter() - start
            return StageArtifact(
                "elaborate",
                key,
                result,
                seconds,
                sub_timings=observer.sub_timings,
            )

        return self.cache.get_or_compute(key, compute)

    def optimize(
        self,
        source: str,
        component: str,
        params: Union[Dict[str, int], Sequence[int], None] = None,
        generators: Generators = None,
        stdlib: bool = True,
        opt_level: Optional[int] = None,
    ) -> StageArtifact:
        """lowered netlist → flattened, pass-optimized netlist.

        At ``-O0`` the pipeline is empty: the artifact is the flattened
        netlist exactly as lowered, which is what the differential
        checks compare optimized netlists against.

        ``-O3`` is the profile-guided level: it first produces the
        ``-O2`` artifact (cached like any other), then specializes it
        against the design's activity profile — persisted in the
        ``"profile"`` pseudo-stage, or collected on the spot when
        ``profile_auto`` is set.  Without a profile the level degrades
        to ``-O2`` semantics exactly (``pgo_plan`` stays None).
        """
        registry = self._registry_of(generators)
        level, pipeline = self._pipeline(opt_level)
        if level >= 3:
            return self._optimize_pgo(
                source, component, params, registry, stdlib, level
            )
        key = (
            "optimize",
            self._source_key(source, stdlib),
            component,
            freeze_params(params),
            registry.fingerprint(),
            self.verify,
            pipeline.fingerprint(),
        )

        def compute() -> StageArtifact:
            elab = self.elaborate(
                source, component, params, registry, stdlib
            ).value
            start = time.perf_counter()
            module = flatten(elab.module)
            cells_before = len(module.cells)
            pass_stats = pipeline.run(module)
            seconds = time.perf_counter() - start
            with self._mutex:
                self._pass_log.extend(pass_stats)
            sub_timings: Dict[str, float] = {}
            for stat in pass_stats:
                name = f"pass.{stat.name}"
                sub_timings[name] = sub_timings.get(name, 0.0) + stat.seconds
            value = OptimizedNetlist(module, level, cells_before, pass_stats)
            return StageArtifact(
                "optimize", key, value, seconds, sub_timings=sub_timings
            )

        return self.cache.get_or_compute(key, compute)

    def _profile_for(self, module, structural: str) -> Optional[SimProfile]:
        """The activity profile for ``module``, or None.

        Resolution order: in-session memo → persistent
        :class:`~repro.driver.cache.ProfileStore` → fresh collection
        (256 profiling cycles on the compiled engine) when
        ``profile_auto`` is set.  A fresh collection is written back to
        the store, so one profiling run serves every later process.
        """
        with self._mutex:
            if structural in self._profiles:
                return self._profiles[structural]
        profile: Optional[SimProfile] = None
        if self._profile_store is not None:
            payload = self._profile_store.load(structural)
            if payload is not None:
                profile = SimProfile.from_payload(payload)
        if profile is None and self.profile_auto:
            start = time.perf_counter()
            try:
                profile = collect_profile(
                    module, codegen_store=self._codegen_store
                )
            except Exception as error:
                # -O3 without a profile *is* -O2 (pgo_plan stays None),
                # so a failed profiling run degrades, never fails.
                self.stats.bump("degrade.pgo")
                warnings.warn(
                    f"activity profiling failed ({error!r}); "
                    "-O3 degrading to -O2 semantics",
                    RuntimeWarning,
                    stacklevel=2,
                )
                profile = None
            else:
                self.stats.bump("profile.collected")
                if self._profile_store is not None:
                    self._profile_store.save(profile.to_payload())
            self.stats.add_seconds(
                "profile.collect", time.perf_counter() - start
            )
        with self._mutex:
            self._profiles[structural] = profile
        return profile

    def _optimize_pgo(
        self, source, component, params, registry, stdlib, level: int
    ) -> StageArtifact:
        """The ``-O3`` optimize stage: ``-O2`` plus a profile-guided
        specialization plan.

        The cache key extends the ``-O2`` pipeline fingerprint with
        ``("pgo", PGO_VERSION, <profile digest>)`` — a new profile (or
        losing the profile) re-specializes exactly the artifacts that
        depended on it, while the underlying ``-O2`` artifact stays
        warm.  The PGO passes are annotation-only, so the ``-O3``
        artifact shares the ``-O2`` module object unchanged.
        """
        base = self.optimize(
            source, component, params, registry, stdlib, opt_level=2
        ).value
        module = base.module
        structural = module.structural_hash()
        profile = self._profile_for(module, structural)
        digest = profile.digest() if profile is not None else "none"
        key = (
            "optimize",
            self._source_key(source, stdlib),
            component,
            freeze_params(params),
            registry.fingerprint(),
            self.verify,
            pipeline_for_level(2).fingerprint(),
            ("pgo", PGO_VERSION, digest),
        )

        def compute() -> StageArtifact:
            start = time.perf_counter()
            plan = None
            pass_stats: List[PassStats] = []
            if profile is not None:
                passes, builder = pgo_passes(profile)
                pass_stats = PassManager(passes).run(module)
                plan = builder.plan
                with self._mutex:
                    self._pass_log.extend(pass_stats)
            sub_timings: Dict[str, float] = {}
            for stat in pass_stats:
                name = f"pass.{stat.name}"
                sub_timings[name] = sub_timings.get(name, 0.0) + stat.seconds
            value = OptimizedNetlist(
                module, level, base.cells_before,
                base.pass_stats + pass_stats, pgo_plan=plan,
            )
            return StageArtifact(
                "optimize", key, value, time.perf_counter() - start,
                sub_timings=sub_timings,
            )

        return self.cache.get_or_compute(key, compute)

    def simulate(
        self,
        source: str,
        component: str,
        params: Union[Dict[str, int], Sequence[int], None] = None,
        generators: Generators = None,
        stdlib: bool = True,
        cycles: int = 128,
        seed: int = 0,
        opt_level: Optional[int] = None,
        backend: Optional[str] = None,
        lanes: Optional[int] = None,
    ) -> StageArtifact:
        """optimized netlist → per-cycle output trace under seeded
        random stimulus (reproducible across runs and machines).

        ``backend`` picks the simulation engine (session default when
        None).  Backends are bit-identical by contract, but each gets
        its own cache key: the artifact records which engine produced it
        and its wall-clock, and the differential gates exist precisely
        to compare the two sides as independently computed traces.
        ``"auto"`` resolves to a concrete engine inside the computation
        via :func:`repro.rtl.tuner.tune` — measured per design when a
        disk cache holds (or can record) a calibration profile, static
        fallback otherwise; the produced ``SimTrace.backend`` records
        the resolved engine.

        ``lanes`` (session's ``sim_lanes`` when None) batches that many
        independent stimulus streams through one run — on the compiled
        backend a single lane-packed step function advances all of them
        per call.  The artifact's ``SimTrace.outputs`` then holds one
        trace per lane; lane seeds derive deterministically from
        ``seed`` (lane 0 *is* ``seed``, so its trace equals the
        single-lane artifact's).
        """
        registry = self._registry_of(generators)
        level, pipeline = self._pipeline(opt_level)
        engine = self.sim_backend if backend is None else backend
        n_lanes = self.sim_lanes if lanes is None else int(lanes)
        if n_lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes!r}")
        key = (
            "simulate",
            self._source_key(source, stdlib),
            component,
            freeze_params(params),
            registry.fingerprint(),
            self.verify,
            pipeline.fingerprint(),
            # The explicit level keeps -O2 and -O3 apart: both resolve
            # to the same static pass fingerprint (PGO passes enter the
            # pipeline only once a profile is in hand), but the -O3
            # trace's perf figures come from a specialized engine.
            int(level),
            int(cycles),
            int(seed),
            # name@version, mirroring the pass-pipeline fingerprint: a
            # backend semantics bump invalidates its persisted traces.
            backend_fingerprint(engine),
            n_lanes,
        )

        def compute() -> StageArtifact:
            optimized = self.optimize(
                source, component, params, registry, stdlib, opt_level=level
            ).value
            start = time.perf_counter()
            resolved = engine
            if engine == "auto":
                tune_start = time.perf_counter()
                decision = tune(
                    optimized.module,
                    n_lanes,
                    store=self._tuner_store,
                    codegen_store=self._codegen_store,
                    # Without a disk cache a calibration could never be
                    # reused, so don't pay for one — static fallback.
                    calibrate=self._tuner_store is not None,
                )
                resolved = decision.backend
                self.stats.add_seconds(
                    "tuner.resolve", time.perf_counter() - tune_start
                )
                self.stats.bump(f"tuner.chose.{resolved}")
            # Degradation ladder vector -> compiled -> interp: a
            # backend that cannot run here (missing numpy, a faulted
            # codegen path) falls to the next rung instead of failing
            # the stage.  Every rung is bit-identical by the
            # differential contract, so the trace — and the cache key,
            # which carries the *requested* engine — is unchanged; only
            # SimTrace.backend records where the run actually landed.
            while True:
                try:
                    simulator = make_simulator(
                        optimized.module, resolved,
                        lanes=n_lanes,
                        codegen_store=self._codegen_store,
                        plan=getattr(optimized, "pgo_plan", None),
                    )
                    break
                except SimBackendUnavailable as error:
                    fallback = BACKEND_FALLBACKS.get(resolved)
                    if fallback is None:
                        raise
                    self.stats.bump("degrade.sim_backend")
                    warnings.warn(
                        f"sim backend {resolved!r} unavailable "
                        f"({error}); degrading to {fallback!r}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    resolved = fallback
            if n_lanes == 1:
                stimulus = random_stimulus(optimized.module, cycles, seed)
                run_start = time.perf_counter()
                outputs = simulator.run(stimulus)
            else:
                streams = random_stimulus_batch(
                    optimized.module, cycles, n_lanes, seed
                )
                run_start = time.perf_counter()
                outputs = simulator.run_batch(streams)
            run_seconds = time.perf_counter() - run_start
            value = SimTrace(
                outputs, cycles, seed, level, run_seconds,
                len(optimized.module.cells), backend=resolved, lanes=n_lanes,
            )
            return StageArtifact(
                "simulate", key, value, time.perf_counter() - start
            )

        return self.cache.get_or_compute(key, compute)

    def emit_verilog(
        self,
        source: str,
        component: str,
        params: Union[Dict[str, int], Sequence[int], None] = None,
        generators: Generators = None,
        stdlib: bool = True,
        opt_level: Optional[int] = None,
    ) -> StageArtifact:
        """optimized design → structural Verilog text."""
        registry = self._registry_of(generators)
        level, pipeline = self._pipeline(opt_level)
        key = (
            "emit_verilog",
            self._source_key(source, stdlib),
            component,
            freeze_params(params),
            registry.fingerprint(),
            self.verify,
            pipeline.fingerprint(),
        )

        def compute() -> StageArtifact:
            if level == 0:
                # Unoptimized: emit the lowered hierarchy directly.
                module = self.elaborate(
                    source, component, params, registry, stdlib
                ).value.module
            else:
                module = self.optimize(
                    source, component, params, registry, stdlib,
                    opt_level=level,
                ).value.module
            start = time.perf_counter()
            text = emit_verilog(module)
            return StageArtifact(
                "emit_verilog", key, text, time.perf_counter() - start
            )

        return self.cache.get_or_compute(key, compute)

    def synthesize(
        self,
        source: str,
        component: str,
        params: Union[Dict[str, int], Sequence[int], None] = None,
        generators: Generators = None,
        stdlib: bool = True,
        opt_level: Optional[int] = None,
    ) -> StageArtifact:
        """optimized design → SynthReport from the area/timing model."""
        registry = self._registry_of(generators)
        level, pipeline = self._pipeline(opt_level)
        key = (
            "synthesize",
            self._source_key(source, stdlib),
            component,
            freeze_params(params),
            registry.fingerprint(),
            self.verify,
            pipeline.fingerprint(),
        )

        def compute() -> StageArtifact:
            if level == 0:
                module = self.elaborate(
                    source, component, params, registry, stdlib
                ).value.module
            else:
                module = self.optimize(
                    source, component, params, registry, stdlib,
                    opt_level=level,
                ).value.module
            start = time.perf_counter()
            report = synthesize(module)
            return StageArtifact(
                "synthesize", key, report, time.perf_counter() - start
            )

        return self.cache.get_or_compute(key, compute)

    # -- the pipeline front door ----------------------------------------

    def compile(
        self,
        source: str,
        component: str,
        params: Union[Dict[str, int], Sequence[int], None] = None,
        generators: Generators = None,
        stdlib: bool = True,
        stages: Sequence[str] = DEFAULT_STAGES,
    ) -> CompileResult:
        """Run the requested stages in pipeline order and bundle the
        artifacts.  A failing typecheck stops the pipeline (its artifact
        carries the diagnostics); other stage errors raise as usual."""
        result = CompileResult(
            component, params if isinstance(params, dict) else {}
        )
        wanted = set(stages)
        unknown = wanted - {
            "parse", "typecheck", "elaborate", "optimize",
            "emit_verilog", "synthesize", "simulate",
        }
        if unknown:
            raise ValueError(f"unknown pipeline stages: {sorted(unknown)}")
        if "parse" in wanted:
            result.add(self.parse(source, stdlib))
        if "typecheck" in wanted:
            artifact = self.typecheck(source, component, stdlib)
            result.add(artifact)
            if not artifact.ok:
                return result
        for stage in (
            "elaborate", "optimize", "emit_verilog", "synthesize", "simulate"
        ):
            if stage in wanted:
                result.add(
                    getattr(self, stage)(
                        source, component, params, generators, stdlib
                    )
                )
        return result

    # -- pass statistics -------------------------------------------------

    def pass_log(self) -> List[PassStats]:
        """Every pass execution this session ran, in completion order."""
        with self._mutex:
            return list(self._pass_log)

    def pass_summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate per-pass totals across every optimize stage run."""
        summary: Dict[str, Dict[str, float]] = {}
        for stat in self.pass_log():
            entry = summary.setdefault(
                stat.name,
                {"runs": 0, "seconds": 0.0, "cells_removed": 0,
                 "nets_removed": 0},
            )
            entry["runs"] += 1
            entry["seconds"] += stat.seconds
            entry["cells_removed"] += stat.cells_removed
            entry["nets_removed"] += stat.nets_removed
        return summary

    def render_pass_stats(self) -> str:
        """Human-readable per-pass totals (mirrors CacheStats.render)."""
        summary = self.pass_summary()
        if not summary:
            return "pass statistics: (no optimization passes ran)"
        lines = ["pass statistics:"]
        for name, entry in summary.items():
            lines.append(
                f"  {name:20s} {entry['runs']:3d} runs  "
                f"{entry['cells_removed']:5d} cells removed  "
                f"{entry['seconds'] * 1000.0:8.2f} ms"
            )
        return "\n".join(lines)

    def disk_stats(self) -> Dict[str, object]:
        """The persistent layer's warm/cold picture for this session."""
        enabled = self.cache.disk is not None
        counters = self.stats.snapshot()["counters"]
        hits = counters.get("disk.hit", 0)
        misses = counters.get("disk.miss", 0)
        lookups = hits + misses
        return {
            "enabled": enabled,
            "dir": self.cache_dir,
            "hits": hits,
            "misses": misses,
            "writes": counters.get("disk.write", 0),
            "corrupt": counters.get("disk.corrupt", 0),
            "hit_rate": (hits / lookups) if lookups else None,
        }

    def typecheck_stats(self) -> Dict[str, object]:
        """The front end's solver picture: query counts, cache layers.

        ``queries`` is the number of obligations the DPLL(T) engine
        actually solved; ``memo_hits``/``disk_hits`` were answered by
        the in-process canonical memo and the persistent "smt" store.
        """
        counters = self.stats.snapshot()["counters"]
        queries = counters.get("smt.queries", 0)
        memo_hits = counters.get("smt.memo_hit", 0)
        disk_hits = counters.get("smt.disk_hit", 0)
        total = queries + memo_hits + disk_hits
        return {
            "jobs": self.typecheck_jobs,
            "executor": self.typecheck_executor,
            "solver_queries": queries,
            "memo_hits": memo_hits,
            "disk_hits": disk_hits,
            "disk_stores": counters.get("smt.store", 0),
            "obligations": total,
            "cache_hit_rate": (
                (memo_hits + disk_hits) / total if total else None
            ),
        }

    def tuner_stats(self) -> Dict[str, object]:
        """The auto-backend picture: calibration reuse and choices.

        ``chosen`` maps each concrete engine to how many ``"auto"``
        resolutions picked it; ``resolve_seconds`` is total wall time
        inside :func:`repro.rtl.tuner.tune` (near zero when profiles
        are served from disk).
        """
        snap = self.stats.snapshot()
        counters = snap["counters"]
        prefix = "tuner.chose."
        return {
            "disk_hits": counters.get("tuner.disk_hit", 0),
            "disk_misses": counters.get("tuner.disk_miss", 0),
            "disk_stores": counters.get("tuner.store", 0),
            "resolve_seconds": snap["timers"].get("tuner.resolve", 0.0),
            "chosen": {
                name[len(prefix):]: count
                for name, count in sorted(counters.items())
                if name.startswith(prefix)
            },
        }

    def profile_stats(self) -> Dict[str, object]:
        """The -O3 activity-profile picture: reuse vs fresh collection.

        ``collected`` counts fresh profiling runs this session paid
        for; ``disk_hits`` were served from the persistent "profile"
        pseudo-stage without re-simulating.
        """
        snap = self.stats.snapshot()
        counters = snap["counters"]
        return {
            "auto": self.profile_auto,
            "collected": counters.get("profile.collected", 0),
            "collect_seconds": snap["timers"].get("profile.collect", 0.0),
            "disk_hits": counters.get("profile.disk_hit", 0),
            "disk_misses": counters.get("profile.disk_miss", 0),
            "disk_stores": counters.get("profile.store", 0),
        }

    def fault_stats(self) -> Dict[str, object]:
        """The robustness picture: injected faults and how the stack
        absorbed them.

        ``injected`` maps each fault site to fires accounted on this
        session, ``retries`` counts in-place recoveries, and
        ``degrades`` counts rungs taken down the degradation ladders
        (disk→memory, process→thread→serial, vector→compiled→interp,
        incremental→one-shot solver, -O3→-O2).  All zero / empty in a
        fault-free run.
        """
        counters = self.stats.snapshot()["counters"]

        def _slice(prefix: str) -> Dict[str, int]:
            return {
                name[len(prefix):]: count
                for name, count in sorted(counters.items())
                if name.startswith(prefix)
            }

        return {
            "plan": (
                self.fault_plan.spec_string()
                if self.fault_plan is not None
                else None
            ),
            "injected": _slice("fault.injected."),
            "retries": _slice("retry."),
            "degrades": _slice("degrade."),
            # Per-site consultation counts from the installed plan: the
            # crash-chaos harness reads a baseline child's counts to
            # derive valid skip offsets for its kill runs.
            "calls": (
                dict(self.fault_plan.calls)
                if self.fault_plan is not None
                else {}
            ),
        }

    def checkpoint_stats(self) -> Dict[str, object]:
        """The resume picture: ledger identity and checkpoint traffic.

        ``hits`` are points served from a previous (or this) process's
        ledger without recomputation, ``stores`` are fresh checkpoints,
        ``drains`` counts graceful SIGINT/SIGTERM unwinds.
        ``results_digest`` is the order-independent digest over all
        recorded results — the cross-run bit-identity witness.
        """
        counters = self.stats.snapshot()["counters"]
        return {
            "run_id": self.ledger.run_id if self.ledger else None,
            "recorded": len(self.ledger) if self.ledger else 0,
            "hits": counters.get("checkpoint.hit", 0),
            "stores": counters.get("checkpoint.store", 0),
            "drains": counters.get("checkpoint.drain", 0),
            "results_digest": (
                self.ledger.results_digest if self.ledger else None
            ),
        }

    def stats_dict(self) -> Dict[str, object]:
        """Machine-readable cache + pass statistics (``--stats json``)."""
        return {
            "opt_level": self.opt_level,
            "sim_backend": self.sim_backend,
            "sim_lanes": self.sim_lanes,
            "cache": self.stats.snapshot(),
            "disk": self.disk_stats(),
            "passes": self.pass_summary(),
            "typecheck": self.typecheck_stats(),
            "tuner": self.tuner_stats(),
            "profile": self.profile_stats(),
            "faults": self.fault_stats(),
            "checkpoint": self.checkpoint_stats(),
        }


def _typecheck_point(session: "CompileSession", point, stdlib: bool = True):
    """Grid worker for parallel typecheck (module-level: process pools
    must pickle it)."""
    source, name = point
    return session.typecheck(source, component=name, stdlib=stdlib).value


# ---------------------------------------------------------------------------
# The process-wide default session: designs and evalx modules share it so
# that independent callers (tables, figures, examples) reuse artifacts
# without threading a session argument everywhere.

_DEFAULT: Optional[CompileSession] = None
_DEFAULT_LOCK = threading.Lock()


def default_session() -> CompileSession:
    """The shared process-wide session (created on first use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = CompileSession()
        return _DEFAULT


def reset_default_session() -> CompileSession:
    """Replace the shared session with a fresh one (mainly for tests)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = CompileSession()
        return _DEFAULT

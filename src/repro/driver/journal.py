"""Write-ahead intent journal and writer leases for the disk cache.

PR 9 hardened the store against *injected* I/O failures, but the
process itself was still free to die between ``mkstemp`` and
``os.replace`` — leaving orphaned ``.tmp`` files that only the trim
heuristic's age threshold (or PR 9's lazy read-time quarantine) would
ever notice, and leaving nothing on disk that says whether a given
``.tmp`` belongs to a live writer or a corpse.  This module is the
crash-consistency substrate that closes that hole:

* An **intent journal**: before a writer publishes an entry it appends
  a durable *intent record* (one small JSON file under
  ``<root>/journal/``) naming the temp file, the destination, and the
  writing PID; after the atomic ``os.replace`` succeeds the record is
  retired.  A record that survives a crash therefore pins down exactly
  which window the writer died in, and :func:`IntentJournal.recover`
  (run when a :class:`~repro.driver.cache.DiskCache` attaches) replays
  it: destination valid → roll forward (drop the leftovers);
  destination missing or torn → roll back (drop the temp file and the
  torn destination).  Either way the store ends consistent — a crashed
  write degrades to a dropped write-back, never to a torn entry.
* **Writer leases**: every process that writes a store root holds a
  lease file (``<root>/leases/<pid>.json``).  Leases make *liveness*
  checkable offline: ``repro fsck`` and the trim pass classify a
  ``.tmp`` by its intent record's owner — a live owner's temp file is
  never reaped (no matter how old: a writer stalled behind a slow pickle
  is still a writer), a dead owner's is reclaimed immediately instead
  of waiting out the age threshold.  Leases of dead PIDs are reaped on
  attach and by ``fsck``.

Durability: temp-file contents, the intent record, and the directory
entries are ``fsync``\\ ed so a *committed* entry survives power loss,
not just a process kill.  ``$REPRO_CACHE_FSYNC=0`` disables the syncs
(the test suite does — SIGKILL consistency needs only the ordering,
which the journal provides either way; only power-loss durability needs
the syncs).

Counters (on whatever ``CacheStats`` the owner supplies):
``journal.begin`` / ``journal.commit`` per write transaction,
``journal.recovered.forward`` / ``journal.recovered.rollback`` per
replayed record, ``journal.lease_reaped`` per dead lease dropped.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from typing import Dict, List, Optional, Tuple

#: Subdirectories of a cache root this module owns.  Both live *outside*
#: the ``v<schema>/`` subtree: journal records and leases describe the
#: store as a filesystem, not any one schema's payloads.
JOURNAL_DIRNAME = "journal"
LEASE_DIRNAME = "leases"

#: Record-format epoch; recovery skips (and fsck flags) records from a
#: different epoch instead of misreading them.
JOURNAL_VERSION = 1

#: ``$REPRO_CACHE_FSYNC=0`` turns every fsync in the store into a no-op.
FSYNC_ENV = "REPRO_CACHE_FSYNC"


def fsync_enabled() -> bool:
    """Whether the store pays for real ``fsync`` calls (default: yes)."""
    return os.environ.get(FSYNC_ENV, "1") != "0"


def fsync_fd(fd: int) -> None:
    if fsync_enabled():
        os.fsync(fd)


def fsync_dir(path: str) -> None:
    """Flush a directory's entry table (the rename/replace itself)."""
    if not fsync_enabled():
        return
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0; EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def validate_entry_bytes(data: bytes) -> bool:
    """Whether raw entry bytes are a self-consistent store entry
    (parseable JSON header whose payload digest matches).  Schema
    agreement with the *path* is the reader's concern; self-consistency
    is all recovery and fsck need to call a destination "not torn"."""
    try:
        header_line, _, payload = data.partition(b"\n")
        header = json.loads(header_line.decode("utf-8"))
        return (
            isinstance(header, dict)
            and header.get("sha256") == hashlib.sha256(payload).hexdigest()
        )
    except Exception:
        return False


def validate_entry_file(path: str) -> bool:
    try:
        with open(path, "rb") as handle:
            return validate_entry_bytes(handle.read())
    except OSError:
        return False


class IntentRecord:
    """One write transaction's durable intent."""

    __slots__ = ("txn", "pid", "dest", "tmp", "created", "path")

    def __init__(self, txn: str, pid: int, dest: str, tmp: str,
                 created: float, path: Optional[str] = None):
        self.txn = txn
        self.pid = pid
        self.dest = dest
        self.tmp = tmp
        self.created = created
        #: the record file itself (set when loaded from disk).
        self.path = path

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": JOURNAL_VERSION,
            "txn": self.txn,
            "pid": self.pid,
            "dest": self.dest,
            "tmp": self.tmp,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object],
                  path: Optional[str] = None) -> "IntentRecord":
        if data.get("version") != JOURNAL_VERSION:
            raise ValueError(f"journal record version {data.get('version')!r}")
        return cls(
            str(data["txn"]), int(data["pid"]), str(data["dest"]),
            str(data["tmp"]), float(data.get("created", 0.0)), path=path,
        )

    def __repr__(self) -> str:
        return f"IntentRecord(txn={self.txn!r}, pid={self.pid}, dest={self.dest!r})"


class IntentJournal:
    """The write-ahead intent journal of one store root.

    Lifecycle of a journaled write (see ``DiskCache._write_entry``)::

        tmp written + fsynced
        begin()      -> intent record durable on disk      (write-ahead)
        os.replace(tmp, dest) + directory fsync            (publish)
        commit()     -> record retired                     (done)

    A crash before ``begin`` leaves an unreferenced ``.tmp`` (reaped by
    trim/fsck via the age heuristic).  A crash between ``begin`` and
    the replace leaves a record whose destination is stale or absent —
    rolled *back*.  A crash between the replace and ``commit`` leaves a
    record whose destination is valid — rolled *forward*.  Recovery
    never touches records whose owner PID is still alive: that is a
    concurrent writer mid-flight, not a corpse.
    """

    def __init__(self, root: str, stats=None):
        self.root = os.path.abspath(root)
        self.dir = os.path.join(self.root, JOURNAL_DIRNAME)
        self.stats = stats
        self._lock = threading.Lock()
        self._counter = 0

    def _bump(self, counter: str, amount: int = 1) -> None:
        if self.stats is not None:
            self.stats.bump(counter, amount)

    def _next_txn(self) -> str:
        with self._lock:
            self._counter += 1
            serial = self._counter
        token = hashlib.sha256(
            f"{os.getpid()}:{serial}:{id(self)}".encode("utf-8")
        ).hexdigest()[:12]
        return f"{os.getpid()}-{serial}-{token}"

    # -- the write-ahead protocol ---------------------------------------

    def begin(self, dest: str, tmp: str) -> Optional[IntentRecord]:
        """Durably record the intent to publish ``tmp`` at ``dest``.

        Returns the record, or None when the journal directory cannot
        be written (the caller's write proceeds unjournaled — exactly
        the pre-journal behavior, no worse)."""
        record = IntentRecord(
            self._next_txn(), os.getpid(),
            os.path.abspath(dest), os.path.abspath(tmp),
            os.stat(tmp).st_mtime if os.path.exists(tmp) else 0.0,
        )
        record.path = os.path.join(self.dir, f"{record.txn}.json")
        data = json.dumps(record.to_dict(), sort_keys=True).encode("utf-8")
        try:
            os.makedirs(self.dir, exist_ok=True)
            fd, tmp_record = tempfile.mkstemp(
                dir=self.dir, suffix=".rec.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    fsync_fd(handle.fileno())
                os.replace(tmp_record, record.path)
            except BaseException:
                try:
                    os.remove(tmp_record)
                except OSError:
                    pass
                raise
            fsync_dir(self.dir)
        except OSError:
            return None
        self._bump("journal.begin")
        return record

    def commit(self, record: Optional[IntentRecord]) -> None:
        """Retire a completed transaction's record."""
        if record is None or record.path is None:
            return
        try:
            os.remove(record.path)
            fsync_dir(self.dir)
        except OSError:
            pass
        self._bump("journal.commit")

    def abort(self, record: Optional[IntentRecord]) -> None:
        """Retire an abandoned transaction's record (the write failed
        before publishing; the caller already removed the temp file)."""
        if record is None or record.path is None:
            return
        try:
            os.remove(record.path)
            fsync_dir(self.dir)
        except OSError:
            pass
        self._bump("journal.abort")

    # -- introspection and recovery -------------------------------------

    def records(self) -> List[IntentRecord]:
        """Every intent record currently on disk (unparseable record
        files are skipped — fsck reports them; recovery must not)."""
        found: List[IntentRecord] = []
        try:
            names = sorted(os.listdir(self.dir))
        except OSError:
            return found
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    found.append(
                        IntentRecord.from_dict(json.load(handle), path=path)
                    )
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return found

    def pending_tmps(self) -> Dict[str, IntentRecord]:
        """Map of temp-file path → intent record, for every record on
        disk.  The trim pass uses it to tell live writers from corpses."""
        return {record.tmp: record for record in self.records()}

    def recover(self) -> Tuple[int, int]:
        """Replay every dead writer's dangling intent; returns
        ``(rolled_forward, rolled_back)``.

        Roll-forward (destination is a self-consistent entry: the
        ``os.replace`` happened, only the commit was lost) retires the
        record and any leftover temp file.  Roll-back (destination
        absent or torn) removes the temp file, removes a torn
        destination, and retires the record.  Records owned by live
        PIDs — concurrent writers mid-transaction — are left alone.
        """
        forward = rollback = 0
        me = os.getpid()
        for record in self.records():
            if record.pid != me and pid_alive(record.pid):
                continue
            if os.path.exists(record.dest) and validate_entry_file(
                record.dest
            ):
                forward += 1
                self._bump("journal.recovered.forward")
            else:
                rollback += 1
                self._bump("journal.recovered.rollback")
                if os.path.exists(record.dest):
                    # Torn destination: a replace that half-happened on
                    # a non-atomic filesystem, or a record written for a
                    # write that then failed.  Quarantine it.
                    try:
                        os.remove(record.dest)
                    except OSError:
                        pass
            for leftover in (record.tmp, record.path):
                if leftover is None:
                    continue
                try:
                    os.remove(leftover)
                except OSError:
                    pass
        if forward or rollback:
            fsync_dir(self.dir)
        return forward, rollback


class LeaseManager:
    """Per-process writer leases under ``<root>/leases/``.

    A lease is one JSON file named by PID.  It claims nothing
    exclusive — concurrent writers are already safe via atomic
    replaces — it only makes *liveness* an offline-checkable fact, so
    fsck and trim can classify another process's half-finished state
    without guessing from file ages alone.
    """

    def __init__(self, root: str, stats=None):
        self.root = os.path.abspath(root)
        self.dir = os.path.join(self.root, LEASE_DIRNAME)
        self.stats = stats
        self._held: Optional[str] = None
        self._lock = threading.Lock()

    def _bump(self, counter: str, amount: int = 1) -> None:
        if self.stats is not None:
            self.stats.bump(counter, amount)

    def lease_path(self, pid: Optional[int] = None) -> str:
        return os.path.join(
            self.dir, f"{os.getpid() if pid is None else pid}.json"
        )

    def acquire(self) -> Optional[str]:
        """Claim (or refresh) this process's lease; None on I/O failure.
        Idempotent — one lease per (root, PID) no matter how many
        sessions attach."""
        with self._lock:
            path = self.lease_path()
            payload = json.dumps(
                {
                    "version": JOURNAL_VERSION,
                    "pid": os.getpid(),
                    "host": os.uname().nodename if hasattr(os, "uname")
                    else "",
                },
                sort_keys=True,
            ).encode("utf-8")
            try:
                os.makedirs(self.dir, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=self.dir, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(payload)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.remove(tmp)
                    except OSError:
                        pass
                    raise
            except OSError:
                return None
            self._held = path
            return path

    def release(self) -> None:
        with self._lock:
            if self._held is None:
                return
            try:
                os.remove(self._held)
            except OSError:
                pass
            self._held = None

    def holders(self) -> Dict[int, str]:
        """PID → lease path for every lease file on disk."""
        found: Dict[int, str] = {}
        try:
            names = os.listdir(self.dir)
        except OSError:
            return found
        for name in names:
            stem, _, extension = name.partition(".")
            if extension != "json":
                continue
            try:
                found[int(stem)] = os.path.join(self.dir, name)
            except ValueError:
                continue
        return found

    def live_pids(self) -> Tuple[int, ...]:
        return tuple(
            pid for pid in sorted(self.holders()) if pid_alive(pid)
        )

    def reap_stale(self) -> int:
        """Drop leases whose PID is dead; returns how many."""
        reaped = 0
        for pid, path in self.holders().items():
            if pid_alive(pid):
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            reaped += 1
        if reaped:
            self._bump("journal.lease_reaped", reaped)
        return reaped

"""Parallel evaluation grid over a shared :class:`CompileSession`.

Tables and figures sweep a design over a grid of points (FloPoCo
frequency goals, Aetherling parallelisms, …).  :class:`EvalGrid` fans
the points out over a ``concurrent.futures`` thread pool; the session's
single-flight artifact cache guarantees each distinct ``(component,
binding, registry)`` is elaborated exactly once no matter how workers
interleave, so results are deterministic and independent of the worker
count.

Threads (not processes) are the right pool here: sessions hold
unpicklable live objects (programs, netlists, locks), the workloads are
pure Python either way, and a thread pool keeps every worker on the
*same* cache so the grid benefits from sharing instead of duplicating
work per process.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from .session import CompileSession, default_session

Point = TypeVar("Point")
Result = TypeVar("Result")


class EvalGrid:
    """Maps a worker function over grid points, preserving point order."""

    def __init__(
        self,
        session: Optional[CompileSession] = None,
        max_workers: Optional[int] = None,
    ):
        self.session = session if session is not None else default_session()
        self.max_workers = max_workers

    def _worker_count(self, points: int) -> int:
        if self.max_workers is not None:
            return max(1, min(self.max_workers, points))
        return max(1, min(os.cpu_count() or 1, points))

    def map(
        self,
        fn: Callable[[CompileSession, Point], Result],
        points: Sequence[Point],
    ) -> List[Result]:
        """Run ``fn(session, point)`` for every point.

        Results come back in point order.  The first exception raised by
        a worker propagates to the caller (after the pool drains).
        """
        points = list(points)
        workers = self._worker_count(len(points))
        if workers <= 1 or len(points) <= 1:
            return [fn(self.session, point) for point in points]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(fn, self.session, point) for point in points
            ]
            return [future.result() for future in futures]

"""Parallel evaluation grid over a shared :class:`CompileSession`.

Tables and figures sweep a design over a grid of points (FloPoCo
frequency goals, Aetherling parallelisms, …).  :class:`EvalGrid` fans
the points out over a ``concurrent.futures`` pool; the session's
single-flight artifact cache guarantees each distinct ``(component,
binding, registry)`` is elaborated exactly once no matter how workers
interleave, so results are deterministic and independent of the worker
count.  When a worker raises, outstanding not-yet-started points are
cancelled immediately instead of draining the whole pool first.

Two executors:

* ``"thread"`` (default) — every worker shares the session and its
  in-memory cache, so overlapping points are computed once.  Right for
  elaboration/synthesis sweeps, which spend their time in shared
  sub-elaborations, and the only mode that can run closures.
* ``"process"`` — sidesteps the GIL for CPU-bound sweeps (levelized
  simulation, differential verification).  Sessions hold unpicklable
  live objects, so each worker process rebuilds its own from
  ``session.spec()`` and the workers *rendezvous through the
  schema-versioned disk cache* instead of sharing memory: the first to
  need an artifact computes and persists it, the rest load it.  Worker
  functions must be picklable (module-level defs or ``functools.partial``
  over them) and results travel back through pickles, so both must be
  plain data.

``"auto"`` picks ``"process"`` for multi-point sweeps when the session
has a disk cache to rendezvous through and the worker function pickles,
else falls back to ``"thread"``.

Fault tolerance (the degradation ladder *process → thread → serial*):
a worker-process crash (:class:`BrokenProcessPool` — real, or injected
via the ``worker.crash`` fault site, which in process mode kills the
worker with ``os._exit``) or a failed pool spawn (``worker.spawn``)
no longer cancels the run.  The grid re-runs the sweep one rung down
the ladder — every rung produces bit-identical results, the in-memory
and disk caches make re-visiting completed points cheap — warning once
and bumping ``degrade.executor``.  Within a rung, *transient* per-point
failures (an injected crash in thread/serial mode, a ``point_timeout``
expiry) are retried with exponential backoff up to ``point_retries``
times (``retry.worker`` counter).  Genuine worker exceptions keep their
PR 4 semantics: first failure in point order propagates, outstanding
points are cancelled.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from . import faults
from .session import CompileSession, default_session

Point = TypeVar("Point")
Result = TypeVar("Result")

EXECUTORS = ("thread", "process", "auto")

#: Per-point transient failures, retried in place (never escalated to
#: a different executor): an injected worker crash surfacing as an
#: exception, or a ``point_timeout`` expiry.
_TRANSIENT = (faults.InjectedCrash, FuturesTimeout, TimeoutError)

#: spec-key → session, one per worker *process* (module globals are
#: per-process, so this is the workers' session memo, not the parent's).
_WORKER_SESSIONS: Dict[Tuple, CompileSession] = {}


class _ExecutorFailure(Exception):
    """The *pool itself* failed (spawn refused, worker process died).

    Internal signal that separates "this executor rung is broken —
    degrade down the ladder" from "a worker function raised — cancel
    and propagate", which must keep reaching the caller unchanged.
    """

    def __init__(self, message: str, cause: BaseException):
        super().__init__(message)
        self.cause = cause


def _worker_session(spec: Dict[str, object]) -> CompileSession:
    key = tuple(sorted(spec.items(), key=lambda item: item[0]))
    session = _WORKER_SESSIONS.get(key)
    if session is None:
        session = CompileSession.from_spec(spec)
        _WORKER_SESSIONS[key] = session
    return session


def _process_point(spec: Dict[str, object], fn, point, submitted=None,
                   crash: bool = False):
    """Executed inside a pool worker: rebuild the session, run the point.

    Returns ``(queue_wait_seconds, result)``: how long the point sat in
    the pool queue before a worker picked it up (``time.time()`` deltas
    — wall clock is the only timebase comparable across processes —
    clamped at zero against clock skew), and the worker function's
    value.  The parent unwraps the pair and accounts the wait under
    ``wait.pool_queue`` on its own session stats.

    ``crash`` is the parent-side ``worker.crash`` injection decision:
    the worker dies for real (``os._exit``), so the parent observes a
    genuine :class:`BrokenProcessPool` — the exact failure the
    degradation ladder exists for.
    """
    if crash:
        os._exit(13)
    wait = 0.0 if submitted is None else max(0.0, time.time() - submitted)
    return wait, fn(_worker_session(spec), point)


def _picklable(fn) -> bool:
    try:
        pickle.dumps(fn)
        return True
    except Exception:
        return False


class EvalGrid:
    """Maps a worker function over grid points, preserving point order.

    ``point_timeout`` bounds each point's wall clock (None — the
    default — disables the bound; expiries count as transient failures
    and are retried).  ``point_retries`` is how many times a transient
    per-point failure is retried before it propagates;
    ``retry_backoff`` seeds the exponential backoff between attempts.
    """

    def __init__(
        self,
        session: Optional[CompileSession] = None,
        max_workers: Optional[int] = None,
        executor: str = "thread",
        point_timeout: Optional[float] = None,
        point_retries: int = 2,
        retry_backoff: float = 0.05,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; available: {EXECUTORS}"
            )
        self.session = session if session is not None else default_session()
        self.max_workers = max_workers
        self.executor = executor
        self.point_timeout = point_timeout
        self.point_retries = int(point_retries)
        self.retry_backoff = float(retry_backoff)

    def _worker_count(self, points: int) -> int:
        if self.max_workers is not None:
            return max(1, min(self.max_workers, points))
        return max(1, min(os.cpu_count() or 1, points))

    def _resolve_executor(self, fn, points: int, workers: int) -> str:
        if self.executor != "auto":
            return self.executor
        # Process mode only pays off when there is real fan-out, the
        # workers can rendezvous on a shared disk cache, and the worker
        # function survives a pickle round-trip.
        if workers <= 1 or points <= 1:
            return "thread"
        if self.session.cache_dir is None:
            return "thread"
        if not _picklable(fn):
            return "thread"
        return "process"

    def map(
        self,
        fn: Callable[[CompileSession, Point], Result],
        points: Sequence[Point],
    ) -> List[Result]:
        """Run ``fn(session, point)`` for every point.

        Results come back in point order.  The first exception raised
        by a worker (in point order) propagates to the caller; pending
        points that have not started yet are cancelled rather than run
        to completion first.  Executor-level failures (a crashed worker
        process, a refused spawn) degrade the pool down the
        process → thread → serial ladder and re-run the sweep instead
        of propagating.
        """
        points = list(points)
        workers = self._worker_count(len(points))
        if workers <= 1 or len(points) <= 1:
            return self._map_serial(fn, points)
        mode = self._resolve_executor(fn, len(points), workers)
        ladder = (
            ("process", "thread", "serial")
            if mode == "process"
            else ("thread", "serial")
        )
        failure: Optional[_ExecutorFailure] = None
        for step, rung in enumerate(ladder):
            if step:
                self.session.stats.bump("degrade.executor")
                warnings.warn(
                    f"evaluation grid degraded {ladder[step - 1]} -> "
                    f"{rung} executor after: {failure.cause!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            try:
                if rung == "serial":
                    return self._map_serial(fn, points)
                return self._map_pool(rung, fn, points, workers)
            except _ExecutorFailure as error:
                failure = error
        raise failure.cause  # unreachable: serial never raises this

    # -- the three executor rungs ---------------------------------------

    def _map_serial(
        self, fn, points: Sequence[Point]
    ) -> List[Result]:
        stats = self.session.stats
        results: List[Result] = []
        for point in points:
            attempts = 0
            while True:
                try:
                    if faults.should_fire("worker.crash", stats):
                        raise faults.InjectedCrash(
                            "injected fault at worker.crash"
                        )
                    results.append(fn(self.session, point))
                    break
                except _TRANSIENT:
                    attempts += 1
                    if attempts > self.point_retries:
                        raise
                    stats.bump("retry.worker")
                    time.sleep(self.retry_backoff * (2 ** (attempts - 1)))
        return results

    def _map_pool(
        self, mode: str, fn, points: Sequence[Point], workers: int
    ) -> List[Result]:
        stats = self.session.stats
        if mode == "process":
            try:
                faults.inject("worker.spawn", stats)
                pool = ProcessPoolExecutor(max_workers=workers)
            except OSError as error:
                raise _ExecutorFailure("process pool unavailable", error)
            spec = self.session.spec()

            def submit(point):
                crash = faults.should_fire("worker.crash", stats)
                return pool.submit(
                    _process_point, spec, fn, point, time.time(), crash
                )

            def resolve(future):
                wait, result = future.result(self.point_timeout)
                stats.add_seconds("wait.pool_queue", wait)
                return result

        else:
            pool = ThreadPoolExecutor(max_workers=workers)

            def run_point(point, submitted, crash):
                stats.add_seconds(
                    "wait.pool_queue", max(0.0, time.time() - submitted)
                )
                if crash:
                    raise faults.InjectedCrash(
                        "injected fault at worker.crash"
                    )
                return fn(self.session, point)

            def submit(point):
                crash = faults.should_fire("worker.crash", stats)
                return pool.submit(run_point, point, time.time(), crash)

            def resolve(future):
                return future.result(self.point_timeout)

        with pool:
            futures = [submit(point) for point in points]
            results: List[Optional[Result]] = [None] * len(points)
            for index, point in enumerate(points):
                attempts = 0
                while True:
                    try:
                        results[index] = resolve(futures[index])
                        break
                    except BrokenProcessPool as error:
                        self._cancel(futures)
                        raise _ExecutorFailure(
                            "worker process crashed", error
                        )
                    except _TRANSIENT as error:
                        attempts += 1
                        if attempts > self.point_retries:
                            self._cancel(futures)
                            raise
                        stats.bump("retry.worker")
                        time.sleep(
                            self.retry_backoff * (2 ** (attempts - 1))
                        )
                        try:
                            futures[index] = submit(point)
                        except (BrokenProcessPool, RuntimeError) as broken:
                            # The pool died between the failure and the
                            # resubmit: escalate down the ladder.
                            self._cancel(futures)
                            raise _ExecutorFailure(
                                "pool lost during retry", broken
                            )
                    except BaseException:
                        # Genuine worker failure: prune the queue before
                        # the pool shutdown joins running workers —
                        # already-running futures finish, never-started
                        # ones are dropped.
                        self._cancel(futures)
                        raise
            return results

    @staticmethod
    def _cancel(futures) -> None:
        for future in futures:
            future.cancel()

"""Parallel evaluation grid over a shared :class:`CompileSession`.

Tables and figures sweep a design over a grid of points (FloPoCo
frequency goals, Aetherling parallelisms, …).  :class:`EvalGrid` fans
the points out over a ``concurrent.futures`` pool; the session's
single-flight artifact cache guarantees each distinct ``(component,
binding, registry)`` is elaborated exactly once no matter how workers
interleave, so results are deterministic and independent of the worker
count.  When a worker raises, outstanding not-yet-started points are
cancelled immediately instead of draining the whole pool first.

Two executors:

* ``"thread"`` (default) — every worker shares the session and its
  in-memory cache, so overlapping points are computed once.  Right for
  elaboration/synthesis sweeps, which spend their time in shared
  sub-elaborations, and the only mode that can run closures.
* ``"process"`` — sidesteps the GIL for CPU-bound sweeps (levelized
  simulation, differential verification).  Sessions hold unpicklable
  live objects, so each worker process rebuilds its own from
  ``session.spec()`` and the workers *rendezvous through the
  schema-versioned disk cache* instead of sharing memory: the first to
  need an artifact computes and persists it, the rest load it.  Worker
  functions must be picklable (module-level defs or ``functools.partial``
  over them) and results travel back through pickles, so both must be
  plain data.

``"auto"`` picks ``"process"`` for multi-point sweeps when the session
has a disk cache to rendezvous through and the worker function pickles,
else falls back to ``"thread"``.

Checkpointing (:mod:`repro.driver.ledger`): when a
:class:`~repro.driver.ledger.RunLedger` is attached — explicitly, or on
the session — every resolved point is recorded under its
:func:`~repro.driver.ledger.point_key` as it lands, and every rung of
the degradation ladder *re-filters* the point list against the ledger
before running.  That one mechanism is resume, requeue, and crash
recovery at once: a ``--resume`` run skips previously completed points
(``checkpoint.hit``), a rung that dies mid-sweep only re-runs what its
predecessor didn't finish, and a SIGKILLed process leaves a ledger the
next one picks up.  Recorded values are served verbatim, so a resumed
grid is bit-identical to an uninterrupted one by construction.
``KeyboardInterrupt`` (and SIGTERM, via
:class:`~repro.driver.ledger.graceful_drain`) flushes the ledger and
propagates immediately — no retries, no draining the pool first.

The worker watchdog (process mode, opt-in via ``watchdog_timeout``):
workers write per-PID heartbeat files around each point; a parent-side
thread SIGKILLs any worker that has sat *busy* past the timeout
(``watchdog.kill``).  The kill surfaces as ``BrokenProcessPool``, which
rides the existing degradation ladder — and with a ledger attached the
re-run skips completed points, so a hung point costs one rung and one
requeue (``watchdog.requeue``), not the whole sweep.

Fault tolerance (the degradation ladder *process → thread → serial*):
a worker-process crash (:class:`BrokenProcessPool` — real, or injected
via the ``worker.crash`` fault site, which in process mode kills the
worker with ``os._exit``) or a failed pool spawn (``worker.spawn``)
no longer cancels the run.  The grid re-runs the sweep one rung down
the ladder — every rung produces bit-identical results, the in-memory
and disk caches make re-visiting completed points cheap — warning once
and bumping ``degrade.executor``.  Within a rung, *transient* per-point
failures (an injected crash in thread/serial mode, a ``point_timeout``
expiry) are retried with exponential backoff up to ``point_retries``
times (``retry.worker`` counter).  Genuine worker exceptions keep their
PR 4 semantics: first failure in point order propagates, outstanding
points are cancelled.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import signal
import tempfile
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from . import faults, journal as journal_mod, ledger as ledger_mod
from .session import CompileSession, default_session

Point = TypeVar("Point")
Result = TypeVar("Result")

EXECUTORS = ("thread", "process", "auto")

#: Per-point transient failures, retried in place (never escalated to
#: a different executor): an injected worker crash surfacing as an
#: exception, or a ``point_timeout`` expiry.
_TRANSIENT = (faults.InjectedCrash, FuturesTimeout, TimeoutError)

#: spec-key → session, one per worker *process* (module globals are
#: per-process, so this is the workers' session memo, not the parent's).
_WORKER_SESSIONS: Dict[Tuple, CompileSession] = {}


class _ExecutorFailure(Exception):
    """The *pool itself* failed (spawn refused, worker process died).

    Internal signal that separates "this executor rung is broken —
    degrade down the ladder" from "a worker function raised — cancel
    and propagate", which must keep reaching the caller unchanged.
    """

    def __init__(self, message: str, cause: BaseException):
        super().__init__(message)
        self.cause = cause


def _worker_session(spec: Dict[str, object]) -> CompileSession:
    key = tuple(sorted(spec.items(), key=lambda item: item[0]))
    session = _WORKER_SESSIONS.get(key)
    if session is None:
        session = CompileSession.from_spec(spec)
        _WORKER_SESSIONS[key] = session
    return session


def _heartbeat(hb_dir: Optional[str], state: str) -> None:
    """Worker-side liveness beacon: overwrite this PID's heartbeat file.

    The file's mtime is the beat; ``state`` says whether a point is in
    flight (only *busy* workers can be hung).  Best-effort — a worker
    that can't write heartbeats just isn't watchdog-protected.
    """
    if hb_dir is None:
        return
    try:
        path = os.path.join(hb_dir, f"{os.getpid()}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"pid": os.getpid(), "state": state}, handle)
    except OSError:
        pass


def _process_point(spec: Dict[str, object], fn, point, submitted=None,
                   crash: bool = False, hb_dir: Optional[str] = None):
    """Executed inside a pool worker: rebuild the session, run the point.

    Returns ``(queue_wait_seconds, result)``: how long the point sat in
    the pool queue before a worker picked it up (``time.time()`` deltas
    — wall clock is the only timebase comparable across processes —
    clamped at zero against clock skew), and the worker function's
    value.  The parent unwraps the pair and accounts the wait under
    ``wait.pool_queue`` on its own session stats.

    ``crash`` is the parent-side ``worker.crash`` injection decision:
    the worker dies for real (``os._exit``), so the parent observes a
    genuine :class:`BrokenProcessPool` — the exact failure the
    degradation ladder exists for.  ``hb_dir`` is the watchdog's
    heartbeat directory (None when no watchdog is running).
    """
    if crash:
        os._exit(13)
    wait = 0.0 if submitted is None else max(0.0, time.time() - submitted)
    _heartbeat(hb_dir, "busy")
    try:
        result = fn(_worker_session(spec), point)
    finally:
        _heartbeat(hb_dir, "idle")
    return wait, result


class _Watchdog:
    """Parent-side hung-worker detector for process pools.

    A background thread polls the heartbeat directory; any worker whose
    file says *busy* and whose mtime is older than the timeout gets
    SIGKILLed (``watchdog.kill``).  The pool then reports
    ``BrokenProcessPool``, and the degradation ladder — with the ledger
    re-filter — turns the kill into a requeue instead of a lost run.
    The timeout therefore bounds a single point's wall clock in process
    mode: pick one comfortably above the slowest legitimate point.
    """

    def __init__(self, hb_dir: str, timeout: float, stats):
        self.hb_dir = hb_dir
        self.timeout = float(timeout)
        self.stats = stats
        self.kills = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="grid-watchdog", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _run(self) -> None:
        interval = max(0.02, min(self.timeout / 4.0, 1.0))
        while not self._stop.wait(interval):
            self._scan()

    def _scan(self) -> None:
        now = time.time()
        try:
            names = os.listdir(self.hb_dir)
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.hb_dir, name)
            try:
                info = os.stat(path)
                with open(path, "r", encoding="utf-8") as handle:
                    beat = json.load(handle)
            except (OSError, ValueError):
                continue
            if not isinstance(beat, dict) or beat.get("state") != "busy":
                continue
            if now - info.st_mtime < self.timeout:
                continue
            pid = beat.get("pid")
            if not isinstance(pid, int) or not journal_mod.pid_alive(pid):
                continue
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                continue
            self.kills += 1
            self.stats.bump("watchdog.kill")
            try:
                os.remove(path)
            except OSError:
                pass


def _picklable(fn) -> bool:
    try:
        pickle.dumps(fn)
        return True
    except Exception:
        return False


class EvalGrid:
    """Maps a worker function over grid points, preserving point order.

    ``point_timeout`` bounds each point's wall clock (None — the
    default — disables the bound; expiries count as transient failures
    and are retried).  ``point_retries`` is how many times a transient
    per-point failure is retried before it propagates;
    ``retry_backoff`` seeds the exponential backoff between attempts.

    ``ledger`` attaches a :class:`~repro.driver.ledger.RunLedger` for
    checkpoint/resume; when None, the session's ``ledger`` attribute is
    used (the CLI sets it for ``--run-id`` runs), and when that is also
    None the grid runs unledgered.  ``watchdog_timeout`` arms the
    hung-worker watchdog in process mode (seconds a single point may
    stay busy; None — the default — disarms it).
    """

    def __init__(
        self,
        session: Optional[CompileSession] = None,
        max_workers: Optional[int] = None,
        executor: str = "thread",
        point_timeout: Optional[float] = None,
        point_retries: int = 2,
        retry_backoff: float = 0.05,
        ledger: Optional["ledger_mod.RunLedger"] = None,
        watchdog_timeout: Optional[float] = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; available: {EXECUTORS}"
            )
        self.session = session if session is not None else default_session()
        self.max_workers = max_workers
        self.executor = executor
        self.point_timeout = point_timeout
        self.point_retries = int(point_retries)
        self.retry_backoff = float(retry_backoff)
        self.ledger = ledger
        self.watchdog_timeout = watchdog_timeout

    def _worker_count(self, points: int) -> int:
        if self.max_workers is not None:
            return max(1, min(self.max_workers, points))
        return max(1, min(os.cpu_count() or 1, points))

    def _resolve_executor(self, fn, points: int, workers: int) -> str:
        if self.executor != "auto":
            return self.executor
        # Process mode only pays off when there is real fan-out, the
        # workers can rendezvous on a shared disk cache, and the worker
        # function survives a pickle round-trip.
        if workers <= 1 or points <= 1:
            return "thread"
        if self.session.cache_dir is None:
            return "thread"
        if not _picklable(fn):
            return "thread"
        return "process"

    def map(
        self,
        fn: Callable[[CompileSession, Point], Result],
        points: Sequence[Point],
    ) -> List[Result]:
        """Run ``fn(session, point)`` for every point.

        Results come back in point order.  The first exception raised
        by a worker (in point order) propagates to the caller; pending
        points that have not started yet are cancelled rather than run
        to completion first.  Executor-level failures (a crashed worker
        process, a refused spawn, a watchdog kill) degrade the pool
        down the process → thread → serial ladder and re-run the sweep
        instead of propagating — with a ledger attached, the re-run
        skips every already-recorded point.  ``KeyboardInterrupt``
        flushes the ledger and propagates immediately.
        """
        points = list(points)
        ledger = (
            self.ledger
            if self.ledger is not None
            else getattr(self.session, "ledger", None)
        )
        keys = (
            [ledger_mod.point_key(fn, point) for point in points]
            if ledger is not None
            else None
        )
        results: List[Optional[Result]] = [None] * len(points)
        workers = self._worker_count(len(points))
        if workers <= 1 or len(points) <= 1:
            ladder: Tuple[str, ...] = ("serial",)
        else:
            mode = self._resolve_executor(fn, len(points), workers)
            ladder = (
                ("process", "thread", "serial")
                if mode == "process"
                else ("thread", "serial")
            )
        failure: Optional[_ExecutorFailure] = None
        for step, rung in enumerate(ladder):
            if step:
                self.session.stats.bump("degrade.executor")
                warnings.warn(
                    f"evaluation grid degraded {ladder[step - 1]} -> "
                    f"{rung} executor after: {failure.cause!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            # The ledger re-filter: resume on the first rung, requeue on
            # every later one — either way, recorded points are served
            # verbatim and only the remainder runs.
            if ledger is not None:
                pending = []
                for index in range(len(points)):
                    found, value = ledger.lookup(keys[index])
                    if found:
                        results[index] = value
                    else:
                        pending.append(index)
            else:
                pending = list(range(len(points)))
            if step and getattr(failure, "watchdog_kills", 0):
                self.session.stats.bump("watchdog.requeue", len(pending))
            if not pending:
                return results
            sub_points = [points[i] for i in pending]
            sub_keys = (
                [keys[i] for i in pending] if keys is not None else None
            )
            try:
                if rung == "serial":
                    sub_results = self._map_serial(
                        fn, sub_points, ledger, sub_keys
                    )
                else:
                    sub_results = self._map_pool(
                        rung, fn, sub_points, workers, ledger, sub_keys
                    )
            except _ExecutorFailure as error:
                failure = error
                continue
            for offset, index in enumerate(pending):
                results[index] = sub_results[offset]
            return results
        raise failure.cause  # unreachable: serial never raises this

    def _record_point(self, ledger, key, result) -> None:
        """Checkpoint one resolved point, then consult the crash site.

        The kill site sits *after* the record on purpose: a chaos kill
        here proves the checkpoint survived the death of the process
        that wrote it.
        """
        if ledger is not None and key is not None:
            ledger.record(key, result)
        faults.kill_here("proc.kill.point", self.session.stats)

    # -- the three executor rungs ---------------------------------------

    def _map_serial(
        self, fn, points: Sequence[Point], ledger=None, keys=None
    ) -> List[Result]:
        stats = self.session.stats
        results: List[Result] = []
        try:
            for offset, point in enumerate(points):
                attempts = 0
                while True:
                    try:
                        if faults.should_fire("worker.crash", stats):
                            raise faults.InjectedCrash(
                                "injected fault at worker.crash"
                            )
                        result = fn(self.session, point)
                        results.append(result)
                        self._record_point(
                            ledger, keys[offset] if keys else None, result
                        )
                        break
                    except KeyboardInterrupt:
                        raise
                    except _TRANSIENT:
                        attempts += 1
                        if attempts > self.point_retries:
                            raise
                        stats.bump("retry.worker")
                        time.sleep(
                            self.retry_backoff * (2 ** (attempts - 1))
                        )
        except KeyboardInterrupt:
            # Ctrl-C / drain: flush what completed and exit promptly —
            # never down the retry path, never on to the next point.
            if ledger is not None:
                ledger.flush()
            raise
        return results

    def _map_pool(
        self, mode: str, fn, points: Sequence[Point], workers: int,
        ledger=None, keys=None,
    ) -> List[Result]:
        stats = self.session.stats
        watchdog: Optional[_Watchdog] = None
        hb_dir: Optional[str] = None
        if mode == "process":
            try:
                faults.inject("worker.spawn", stats)
                pool = ProcessPoolExecutor(max_workers=workers)
            except OSError as error:
                raise _ExecutorFailure("process pool unavailable", error)
            if self.watchdog_timeout:
                hb_dir = tempfile.mkdtemp(prefix="repro-heartbeat-")
                watchdog = _Watchdog(
                    hb_dir, self.watchdog_timeout, stats
                )
                watchdog.start()
            spec = self.session.spec()

            def submit(point):
                crash = faults.should_fire("worker.crash", stats)
                return pool.submit(
                    _process_point, spec, fn, point, time.time(), crash,
                    hb_dir,
                )

            def resolve(future):
                wait, result = future.result(self.point_timeout)
                stats.add_seconds("wait.pool_queue", wait)
                return result

        else:
            pool = ThreadPoolExecutor(max_workers=workers)

            def run_point(point, submitted, crash):
                stats.add_seconds(
                    "wait.pool_queue", max(0.0, time.time() - submitted)
                )
                if crash:
                    raise faults.InjectedCrash(
                        "injected fault at worker.crash"
                    )
                return fn(self.session, point)

            def submit(point):
                crash = faults.should_fire("worker.crash", stats)
                return pool.submit(run_point, point, time.time(), crash)

            def resolve(future):
                return future.result(self.point_timeout)

        try:
            with pool:
                futures = [submit(point) for point in points]
                results: List[Optional[Result]] = [None] * len(points)
                try:
                    for index, point in enumerate(points):
                        attempts = 0
                        while True:
                            try:
                                results[index] = resolve(futures[index])
                                self._record_point(
                                    ledger,
                                    keys[index] if keys else None,
                                    results[index],
                                )
                                break
                            except BrokenProcessPool as error:
                                self._cancel(futures)
                                failure = _ExecutorFailure(
                                    "worker process crashed", error
                                )
                                failure.watchdog_kills = (
                                    watchdog.kills if watchdog else 0
                                )
                                raise failure
                            except _TRANSIENT as error:
                                attempts += 1
                                if attempts > self.point_retries:
                                    self._cancel(futures)
                                    raise
                                stats.bump("retry.worker")
                                time.sleep(
                                    self.retry_backoff
                                    * (2 ** (attempts - 1))
                                )
                                try:
                                    futures[index] = submit(point)
                                except (
                                    BrokenProcessPool, RuntimeError
                                ) as broken:
                                    # The pool died between the failure
                                    # and the resubmit: escalate down
                                    # the ladder.
                                    self._cancel(futures)
                                    raise _ExecutorFailure(
                                        "pool lost during retry", broken
                                    )
                            except BaseException:
                                # Genuine worker failure: prune the
                                # queue before the pool shutdown joins
                                # running workers — already-running
                                # futures finish, never-started ones
                                # are dropped.
                                self._cancel(futures)
                                raise
                except KeyboardInterrupt:
                    if ledger is not None:
                        ledger.flush()
                    raise
                return results
        finally:
            if watchdog is not None:
                watchdog.stop()
            if hb_dir is not None:
                shutil.rmtree(hb_dir, ignore_errors=True)

    @staticmethod
    def _cancel(futures) -> None:
        for future in futures:
            future.cancel()

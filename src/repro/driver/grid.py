"""Parallel evaluation grid over a shared :class:`CompileSession`.

Tables and figures sweep a design over a grid of points (FloPoCo
frequency goals, Aetherling parallelisms, …).  :class:`EvalGrid` fans
the points out over a ``concurrent.futures`` pool; the session's
single-flight artifact cache guarantees each distinct ``(component,
binding, registry)`` is elaborated exactly once no matter how workers
interleave, so results are deterministic and independent of the worker
count.  When a worker raises, outstanding not-yet-started points are
cancelled immediately instead of draining the whole pool first.

Two executors:

* ``"thread"`` (default) — every worker shares the session and its
  in-memory cache, so overlapping points are computed once.  Right for
  elaboration/synthesis sweeps, which spend their time in shared
  sub-elaborations, and the only mode that can run closures.
* ``"process"`` — sidesteps the GIL for CPU-bound sweeps (levelized
  simulation, differential verification).  Sessions hold unpicklable
  live objects, so each worker process rebuilds its own from
  ``session.spec()`` and the workers *rendezvous through the
  schema-versioned disk cache* instead of sharing memory: the first to
  need an artifact computes and persists it, the rest load it.  Worker
  functions must be picklable (module-level defs or ``functools.partial``
  over them) and results travel back through pickles, so both must be
  plain data.

``"auto"`` picks ``"process"`` for multi-point sweeps when the session
has a disk cache to rendezvous through and the worker function pickles,
else falls back to ``"thread"``.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from .session import CompileSession, default_session

Point = TypeVar("Point")
Result = TypeVar("Result")

EXECUTORS = ("thread", "process", "auto")

#: spec-key → session, one per worker *process* (module globals are
#: per-process, so this is the workers' session memo, not the parent's).
_WORKER_SESSIONS: Dict[Tuple, CompileSession] = {}


def _worker_session(spec: Dict[str, object]) -> CompileSession:
    key = tuple(sorted(spec.items(), key=lambda item: item[0]))
    session = _WORKER_SESSIONS.get(key)
    if session is None:
        session = CompileSession.from_spec(spec)
        _WORKER_SESSIONS[key] = session
    return session


def _process_point(spec: Dict[str, object], fn, point, submitted=None):
    """Executed inside a pool worker: rebuild the session, run the point.

    Returns ``(queue_wait_seconds, result)``: how long the point sat in
    the pool queue before a worker picked it up (``time.time()`` deltas
    — wall clock is the only timebase comparable across processes —
    clamped at zero against clock skew), and the worker function's
    value.  The parent unwraps the pair and accounts the wait under
    ``wait.pool_queue`` on its own session stats.
    """
    wait = 0.0 if submitted is None else max(0.0, time.time() - submitted)
    return wait, fn(_worker_session(spec), point)


def _picklable(fn) -> bool:
    try:
        pickle.dumps(fn)
        return True
    except Exception:
        return False


class EvalGrid:
    """Maps a worker function over grid points, preserving point order."""

    def __init__(
        self,
        session: Optional[CompileSession] = None,
        max_workers: Optional[int] = None,
        executor: str = "thread",
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; available: {EXECUTORS}"
            )
        self.session = session if session is not None else default_session()
        self.max_workers = max_workers
        self.executor = executor

    def _worker_count(self, points: int) -> int:
        if self.max_workers is not None:
            return max(1, min(self.max_workers, points))
        return max(1, min(os.cpu_count() or 1, points))

    def _resolve_executor(self, fn, points: int, workers: int) -> str:
        if self.executor != "auto":
            return self.executor
        # Process mode only pays off when there is real fan-out, the
        # workers can rendezvous on a shared disk cache, and the worker
        # function survives a pickle round-trip.
        if workers <= 1 or points <= 1:
            return "thread"
        if self.session.cache_dir is None:
            return "thread"
        if not _picklable(fn):
            return "thread"
        return "process"

    def map(
        self,
        fn: Callable[[CompileSession, Point], Result],
        points: Sequence[Point],
    ) -> List[Result]:
        """Run ``fn(session, point)`` for every point.

        Results come back in point order.  The first exception raised
        by a worker (in point order) propagates to the caller; pending
        points that have not started yet are cancelled rather than run
        to completion first.
        """
        points = list(points)
        workers = self._worker_count(len(points))
        if workers <= 1 or len(points) <= 1:
            return [fn(self.session, point) for point in points]
        mode = self._resolve_executor(fn, len(points), workers)
        stats = self.session.stats
        if mode == "process":
            spec = self.session.spec()
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _process_point, spec, fn, point, time.time()
                    )
                    for point in points
                ]
                pairs = self._gather(futures)
            for wait, _ in pairs:
                stats.add_seconds("wait.pool_queue", wait)
            return [result for _, result in pairs]

        def run_point(point, submitted):
            stats.add_seconds(
                "wait.pool_queue", max(0.0, time.time() - submitted)
            )
            return fn(self.session, point)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(run_point, point, time.time())
                for point in points
            ]
            return self._gather(futures)

    @staticmethod
    def _gather(futures) -> List[Result]:
        try:
            return [future.result() for future in futures]
        except BaseException:
            # Prune the queue before the pool shutdown joins running
            # workers: already-running futures finish, never-started
            # ones are dropped.
            for future in futures:
                future.cancel()
            raise

"""Content-addressed, in-memory artifact cache with single-flight misses.

Keys are value-based: a source text is identified by its SHA-256 digest,
a parameter binding by its frozen item tuple, and a generator registry by
its configuration fingerprint — so two independently constructed but
identically configured requests share one artifact.  The cache is safe
under the :class:`repro.driver.EvalGrid`'s thread pool: concurrent
requests for the same key block on a per-key lock and all but the first
are served the first computation's artifact (counted as hits).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Callable, Dict, Sequence, Tuple, Union

from .artifact import StageArtifact


def source_digest(source: str) -> str:
    """Stable content address of a Lilac source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def freeze_params(params: Union[Dict[str, int], Sequence[int], None]) -> Tuple:
    """Canonical hashable form of a parameter binding.

    Dict bindings are order-insensitive; positional bindings keep their
    order (the signature defines it).  The two spellings are distinct
    keys by design — mapping positions to names would require the parsed
    signature, which the cache deliberately knows nothing about.
    """
    if params is None:
        return ("kw",)
    if isinstance(params, dict):
        return ("kw",) + tuple(sorted((k, int(v)) for k, v in params.items()))
    return ("pos",) + tuple(int(v) for v in params)


class CacheStats:
    """Hit/miss counters per stage plus free-form work counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}

    def record_hit(self, stage: str) -> None:
        with self._lock:
            self.hits[stage] = self.hits.get(stage, 0) + 1

    def record_miss(self, stage: str) -> None:
        with self._lock:
            self.misses[stage] = self.misses.get(stage, 0) + 1

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + amount

    def hit_count(self, stage: str = None) -> int:
        with self._lock:
            if stage is None:
                return sum(self.hits.values())
            return self.hits.get(stage, 0)

    def miss_count(self, stage: str = None) -> int:
        with self._lock:
            if stage is None:
                return sum(self.misses.values())
            return self.misses.get(stage, 0)

    def counter(self, name: str) -> int:
        with self._lock:
            return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {
                "hits": dict(self.hits),
                "misses": dict(self.misses),
                "counters": dict(self.counters),
            }

    def render(self) -> str:
        snap = self.snapshot()
        stages = sorted(set(snap["hits"]) | set(snap["misses"]))
        lines = ["cache statistics:"]
        for stage in stages:
            hits = snap["hits"].get(stage, 0)
            misses = snap["misses"].get(stage, 0)
            lines.append(f"  {stage:12s} {hits:4d} hits  {misses:4d} misses")
        for name, value in sorted(snap["counters"].items()):
            lines.append(f"  {name}: {value}")
        return "\n".join(lines)


class ArtifactCache:
    """Keyed store of :class:`StageArtifact` with single-flight compute."""

    def __init__(self, stats: CacheStats = None):
        self.stats = stats or CacheStats()
        self._mutex = threading.Lock()
        self._artifacts: Dict[Tuple, StageArtifact] = {}
        self._key_locks: Dict[Tuple, threading.Lock] = {}

    def __len__(self) -> int:
        with self._mutex:
            return len(self._artifacts)

    def peek(self, key: Tuple):
        with self._mutex:
            return self._artifacts.get(key)

    def get_or_compute(
        self, key: Tuple, compute: Callable[[], StageArtifact]
    ) -> StageArtifact:
        """Return the artifact for ``key``, computing it at most once.

        The first requester runs ``compute`` under a per-key lock;
        concurrent requesters for the same key block and then receive the
        published artifact.  A failed compute publishes nothing, so the
        next request retries.
        """
        stage = key[0]
        with self._mutex:
            artifact = self._artifacts.get(key)
            if artifact is not None:
                self.stats.record_hit(stage)
                artifact.from_cache = True
                return artifact
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._mutex:
                artifact = self._artifacts.get(key)
            if artifact is not None:
                self.stats.record_hit(stage)
                artifact.from_cache = True
                return artifact
            self.stats.record_miss(stage)
            artifact = compute()
            with self._mutex:
                self._artifacts[key] = artifact
                self._key_locks.pop(key, None)
            return artifact

    def clear(self) -> None:
        with self._mutex:
            self._artifacts.clear()
            self._key_locks.clear()

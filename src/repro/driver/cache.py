"""Content-addressed artifact cache: in-memory single-flight, plus an
optional persistent on-disk layer.

Keys are value-based: a source text is identified by its SHA-256 digest,
a parameter binding by its frozen item tuple, and a generator registry by
its configuration fingerprint — so two independently constructed but
identically configured requests share one artifact.  The cache is safe
under the :class:`repro.driver.EvalGrid`'s thread pool: concurrent
requests for the same key block on a per-key lock and all but the first
are served the first computation's artifact (counted as hits).

The disk layer (:class:`DiskCache`) sits *under* the in-memory cache: a
memory miss consults the cache directory before computing, and every
fresh computation is written back, so a second process over the same
sources is served warm.  Entries are content-addressed files — a JSON
header carrying a schema version and an integrity digest, followed by a
pickled :class:`StageArtifact` — and every fingerprint that feeds a key
is value-based (no ``id()``, no memory addresses), which is what makes
keys stable across processes.  Corrupt, truncated, or schema-mismatched
entries are deleted and treated as misses, never served.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
import warnings
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from . import faults, journal as journal_mod
from .artifact import StageArtifact

#: The disk format's epoch.  Bump whenever old entries must not survive
#: the current code: artifact values or key composition changing shape,
#: or a *stage's semantics* changing without its own fingerprint in the
#: key (pass pipelines carry ``Pass.version``, simulate keys carry the
#: backend's ``name@version`` — anything else rides on this constant).
#: Readers reject (and delete) entries from any other schema, so a
#: stale cache degrades to cold, never to wrong.
#:
#: v2: simulate keys gained a lane count and ``SimTrace`` gained the
#: ``lanes`` attribute (multi-lane batched simulation).
#:
#: v3: new ``"smt"`` pseudo-stage (persistent obligation verdicts keyed
#: ``(digest, SOLVER_VERSION)`` — see :class:`ObligationStore`), and SMT
#: terms inside pickled typecheck artifacts became hash-consed (their
#: pickle shape re-enters the intern table via ``__reduce__``).
#:
#: v4: new ``"tuner"`` pseudo-stage (persistent backend calibration
#: profiles keyed ``(structural_hash, flavor, TUNER_VERSION)`` — see
#: :class:`TunerStore`), and ``"codegen"`` keys gained a backend tag
#: now that three generators (scalar/SWAR/vector) share the stage.
#:
#: v5: new ``"profile"`` pseudo-stage (persistent per-net activity
#: profiles keyed ``(structural_hash, PROFILE_VERSION)`` — see
#: :class:`ProfileStore`), ``optimize``/``simulate`` keys distinguish
#: the profile-guided ``-O3`` pipeline, and ``CODEGEN_VERSION`` → 3
#: (payloads gained ``extra_slots``/``inlined_nets``).
SCHEMA_VERSION = 5

#: Soft size bound for a cache root, in bytes; the oldest entries are
#: trimmed at attach time once the tree exceeds it.  Overridable via
#: ``$REPRO_CACHE_MAX_MB`` (0 disables trimming).
DEFAULT_MAX_BYTES = 2 * 1024 * 1024 * 1024

#: Disk I/O retry policy: transient errors (EIO-class, including every
#: injected ``disk.*`` fault in its default mode) are retried this many
#: times with exponential backoff before the operation degrades to a
#: miss (reads) or a dropped write-back (writes).
DISK_RETRY_LIMIT = 3
DISK_RETRY_BACKOFF_SECONDS = 0.005

#: ``.tmp`` files younger than this are *live writers* (between
#: ``mkstemp`` and ``os.replace``) as far as :meth:`DiskCache._trim` is
#: concerned: they count toward the size bound but are never reaped.
#: Older ones are orphans from writers that died mid-store.
TMP_REAP_AGE_SECONDS = 3600.0

#: errnos that mean "retry might work" vs "this root is done for":
#: a full or read-only cache directory cannot heal within a run, so
#: those degrade the disk layer to memory-only mode instead of burning
#: retries on every later operation.
_TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.EAGAIN, errno.EINTR, errno.EBUSY, errno.ETIMEDOUT}
)
_DEGRADE_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EROFS, errno.EACCES, errno.EPERM, errno.EDQUOT}
)


def source_digest(source: str) -> str:
    """Stable content address of a Lilac source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def _freeze_value(value) -> object:
    """One parameter value in canonical, collision-free form.

    ``bool`` is a subclass of ``int``, so ``int(True) == 1`` would fold
    ``True`` and ``1`` into one cache-key spelling — distinct bindings
    silently sharing artifacts.  Bools therefore get their own tag.
    """
    if isinstance(value, bool):
        return ("bool", value)
    return int(value)


def freeze_params(params: Union[Dict[str, int], Sequence[int], None]) -> Tuple:
    """Canonical hashable form of a parameter binding.

    Dict bindings are order-insensitive; positional bindings keep their
    order (the signature defines it).  The two spellings are distinct
    keys by design — mapping positions to names would require the parsed
    signature, which the cache deliberately knows nothing about.
    """
    if params is None:
        return ("kw",)
    if isinstance(params, dict):
        return ("kw",) + tuple(
            sorted((k, _freeze_value(v)) for k, v in params.items())
        )
    return ("pos",) + tuple(_freeze_value(v) for v in params)


class CacheStats:
    """Hit/miss counters per stage plus free-form work counters and
    wall-time attribution timers.

    Timers are the substrate of the whole-run profiler
    (:mod:`repro.driver.profiler`): every instrumented wait or compute
    site accumulates seconds under a dotted name — ``compute.<stage>``
    for stage computations, ``wait.disk_read`` / ``wait.disk_write``
    for disk-cache I/O, ``wait.cache_lock`` for time blocked behind
    another thread's single-flight computation, ``wait.pool_queue`` for
    grid tasks sitting unstarted in the executor queue.  Nested sites
    both record (a stage computation that reads the disk counts under
    both names), so timers attribute wall time by *site*, they do not
    partition it.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}

    def record_hit(self, stage: str) -> None:
        with self._lock:
            self.hits[stage] = self.hits.get(stage, 0) + 1

    def record_miss(self, stage: str) -> None:
        with self._lock:
            self.misses[stage] = self.misses.get(stage, 0) + 1

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + amount

    def add_seconds(self, timer: str, seconds: float) -> None:
        with self._lock:
            self.timers[timer] = self.timers.get(timer, 0.0) + seconds

    def seconds(self, timer: str) -> float:
        with self._lock:
            return self.timers.get(timer, 0.0)

    def hit_count(self, stage: str = None) -> int:
        with self._lock:
            if stage is None:
                return sum(self.hits.values())
            return self.hits.get(stage, 0)

    def miss_count(self, stage: str = None) -> int:
        with self._lock:
            if stage is None:
                return sum(self.misses.values())
            return self.misses.get(stage, 0)

    def counter(self, name: str) -> int:
        with self._lock:
            return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {
                "hits": dict(self.hits),
                "misses": dict(self.misses),
                "counters": dict(self.counters),
                "timers": dict(self.timers),
            }

    def render(self) -> str:
        snap = self.snapshot()
        stages = sorted(set(snap["hits"]) | set(snap["misses"]))
        lines = ["cache statistics:"]
        for stage in stages:
            hits = snap["hits"].get(stage, 0)
            misses = snap["misses"].get(stage, 0)
            lines.append(f"  {stage:12s} {hits:4d} hits  {misses:4d} misses")
        for name, value in sorted(snap["counters"].items()):
            lines.append(f"  {name}: {value}")
        for name, value in sorted(snap["timers"].items()):
            lines.append(f"  {name}: {value:.3f}s")
        return "\n".join(lines)


class DiskCache:
    """Persistent, content-addressed artifact store under one directory.

    Layout: ``<root>/v<schema>/<stage>/<sha256-of-key>.pkl``.  Each entry
    is one JSON header line — schema version, stage, the key's repr, and
    the SHA-256 of the payload — followed by the pickled artifact.  The
    schema version appears both in the path (so a bump strands old
    entries where a ``rm -rf`` of the versioned subtree reclaims them)
    and in the header (so a hand-moved file still can't cross versions).

    Writes are atomic (temp file + ``os.replace``), which is all the
    cross-process coordination needed: concurrent writers of the same
    key write identical content, and readers only ever observe complete
    files.  Load failures of any kind — bad header, wrong schema, digest
    mismatch, unpicklable payload — delete the entry and report a miss.

    Fault tolerance: transient I/O errors (EIO-class) are retried up to
    :data:`DISK_RETRY_LIMIT` times with exponential backoff
    (``retry.disk.read`` / ``retry.disk.write`` counters); exhausted
    retries degrade the single operation to a miss or dropped write.
    Unrecoverable roots — ENOSPC, read-only filesystems, permission
    loss — flip the whole layer into *memory-only mode*: a one-way
    degradation (``degrade.disk`` counter, one warning) after which
    every load is a miss and every store a no-op, so a full disk slows
    the pipeline down instead of failing it.

    Crash consistency (:mod:`repro.driver.journal`): every store is a
    journaled transaction — the temp file is fsynced, a write-ahead
    *intent record* goes durable before the ``os.replace``, the
    directory entry is fsynced after it, and only then is the record
    retired.  Attaching a cache replays any dead writer's dangling
    intents (roll forward when the destination landed intact, roll back
    otherwise) and reaps dead-PID writer leases, so a SIGKILLed — or
    power-lost — predecessor leaves this store exactly as consistent
    as a clean shutdown would have.  ``repro fsck`` runs the same
    classification offline.  ``$REPRO_CACHE_FSYNC=0`` skips the fsyncs
    (kill-safety needs only the ordering; power-loss durability needs
    the syncs).
    """

    def __init__(
        self,
        root: Optional[str] = None,
        stats: CacheStats = None,
        max_bytes: Optional[int] = None,
    ):
        self.root = os.path.abspath(root or self.default_root())
        self.stats = stats or CacheStats()
        self._degraded = False
        self._degrade_lock = threading.Lock()
        #: write-ahead intent journal + writer leases; both live outside
        #: the schema-versioned subtree and survive schema bumps.
        self.journal = journal_mod.IntentJournal(self.root, self.stats)
        self.leases = journal_mod.LeaseManager(self.root, self.stats)
        self._lease_held = False
        if os.path.isdir(self.root):
            # Crash recovery before anything reads or trims: replay any
            # dead predecessor's dangling write intents and drop its
            # lease, so the rest of this session sees a clean store.
            self.journal.recover()
            self.leases.reap_stale()
        if max_bytes is None:
            override = os.environ.get("REPRO_CACHE_MAX_MB")
            if override is not None:
                try:
                    max_bytes = int(override) * 1024 * 1024
                except ValueError:
                    max_bytes = DEFAULT_MAX_BYTES
            else:
                max_bytes = DEFAULT_MAX_BYTES
        self.max_bytes = max_bytes
        if self.max_bytes:
            self._trim()

    @staticmethod
    def default_root() -> str:
        """``$REPRO_CACHE_DIR`` → ``$XDG_CACHE_HOME/repro-lilac`` →
        ``~/.cache/repro-lilac``."""
        explicit = os.environ.get("REPRO_CACHE_DIR")
        if explicit:
            return explicit
        xdg = os.environ.get("XDG_CACHE_HOME")
        base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
        return os.path.join(base, "repro-lilac")

    def _entry_path(self, key: Tuple) -> str:
        stage = str(key[0])
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return os.path.join(
            self.root, f"v{SCHEMA_VERSION}", stage, f"{digest}.pkl"
        )

    def bind_stats(self, stats: CacheStats) -> None:
        """Route this layer's counters (and the journal's / leases')
        into ``stats`` — the session's shared object — from now on."""
        self.stats = stats
        self.journal.stats = stats
        self.leases.stats = stats

    @property
    def degraded(self) -> bool:
        """True once the layer has dropped to memory-only mode."""
        return self._degraded

    def _degrade(self, error: OSError) -> None:
        """One-way drop to memory-only mode (full/read-only root)."""
        with self._degrade_lock:
            if self._degraded:
                return
            self._degraded = True
        self.stats.bump("degrade.disk")
        warnings.warn(
            f"disk cache at {self.root} degraded to memory-only mode: "
            f"{error}",
            RuntimeWarning,
            stacklevel=3,
        )

    @staticmethod
    def _is_fatal(error: OSError) -> bool:
        return error.errno in _DEGRADE_ERRNOS

    def load(self, key: Tuple) -> Optional[StageArtifact]:
        """The artifact stored for ``key``, or None (miss/corrupt)."""
        if self._degraded:
            return None
        started = time.perf_counter()
        try:
            return self._load(key)
        finally:
            self.stats.add_seconds(
                "wait.disk_read", time.perf_counter() - started
            )

    def _read_entry(self, path: str) -> Optional[bytes]:
        """Raw entry bytes, retrying transient I/O errors; None on a
        plain miss, on exhausted retries, or once the root degrades."""
        for attempt in range(DISK_RETRY_LIMIT):
            try:
                faults.inject("disk.read", self.stats)
                with open(path, "rb") as handle:
                    return handle.read()
            except FileNotFoundError:
                return None
            except OSError as error:
                if self._is_fatal(error):
                    self._degrade(error)
                    return None
                if attempt + 1 >= DISK_RETRY_LIMIT:
                    self.stats.bump("disk.read_error")
                    return None
                self.stats.bump("retry.disk.read")
                time.sleep(DISK_RETRY_BACKOFF_SECONDS * (2 ** attempt))
        return None

    def _load(self, key: Tuple) -> Optional[StageArtifact]:
        path = self._entry_path(key)
        data = self._read_entry(path)
        if data is None:
            return None
        try:
            header_line, _, payload = data.partition(b"\n")
            header = json.loads(header_line.decode("utf-8"))
            if header.get("schema") != SCHEMA_VERSION:
                raise ValueError("schema version mismatch")
            if header.get("key") != repr(key):
                raise ValueError("key collision or renamed entry")
            if header.get("sha256") != hashlib.sha256(payload).hexdigest():
                raise ValueError("payload digest mismatch")
            faults.inject("pickle.load", self.stats)
            artifact = pickle.loads(payload)
            if not isinstance(artifact, StageArtifact):
                raise ValueError("payload is not a StageArtifact")
            return artifact
        except Exception:
            # Integrity failure: drop the entry so it cannot keep
            # poisoning this key, and treat the lookup as a miss.
            self.stats.bump("disk.corrupt")
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def store(self, key: Tuple, artifact: StageArtifact) -> bool:
        """Persist ``artifact`` under ``key``; False if unpicklable."""
        if self._degraded:
            return False
        started = time.perf_counter()
        try:
            return self._store(key, artifact)
        finally:
            self.stats.add_seconds(
                "wait.disk_write", time.perf_counter() - started
            )

    def _write_entry(self, path: str, header: bytes, payload: bytes) -> None:
        """One atomic, journaled write attempt (may raise OSError).

        The crash-consistency protocol, in order: (1) temp file written
        and fsynced — a later replace never publishes torn bytes;
        (2) write-ahead intent record made durable — any crash from
        here on is classifiable by recovery/fsck; (3) atomic
        ``os.replace`` plus a directory fsync — the publish itself
        survives power loss; (4) the record retired.  The two
        ``proc.kill.write`` consultations bracket the replace: the
        first dies in the roll-*back* window (intent durable, entry
        unpublished), the second in the roll-*forward* window (entry
        published, commit lost).
        """
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        self._ensure_lease()
        faults.inject("disk.write", self.stats)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        record = None
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(header)
                handle.write(b"\n")
                handle.write(payload)
                handle.flush()
                journal_mod.fsync_fd(handle.fileno())
            record = self.journal.begin(path, tmp_path)
            faults.kill_here("proc.kill.write", self.stats)
            faults.inject("disk.replace", self.stats)
            os.replace(tmp_path, path)
            journal_mod.fsync_dir(directory)
            faults.kill_here("proc.kill.write", self.stats)
            self.journal.commit(record)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            self.journal.abort(record)
            raise

    def _ensure_lease(self) -> None:
        """Hold this process's writer lease (idempotent, first write)."""
        if not self._lease_held:
            self.leases.acquire()
            self._lease_held = True

    def _store(self, key: Tuple, artifact: StageArtifact) -> bool:
        try:
            payload = pickle.dumps(artifact, protocol=4)
        except Exception:
            self.stats.bump("disk.unpicklable")
            return False
        header = json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "stage": str(key[0]),
                "key": repr(key),
                "sha256": hashlib.sha256(payload).hexdigest(),
                "size": len(payload),
            },
            sort_keys=True,
        ).encode("utf-8")
        path = self._entry_path(key)
        for attempt in range(DISK_RETRY_LIMIT):
            try:
                self._write_entry(path, header, payload)
                self.stats.bump("disk.write")
                return True
            except OSError as error:
                if self._is_fatal(error):
                    # A full or read-only cache root can't heal within
                    # this run: drop the whole layer to memory-only
                    # mode rather than failing the compilation (or
                    # paying retries on every later write).
                    self._degrade(error)
                    return False
                if attempt + 1 >= DISK_RETRY_LIMIT:
                    self.stats.bump("disk.write_error")
                    return False
                self.stats.bump("retry.disk.write")
                time.sleep(DISK_RETRY_BACKOFF_SECONDS * (2 ** attempt))
        return False

    def entry_count(self) -> int:
        """Entries currently on disk for the active schema version."""
        count = 0
        base = os.path.join(self.root, f"v{SCHEMA_VERSION}")
        for _, _, files in os.walk(base):
            count += sum(1 for f in files if f.endswith(".pkl"))
        return count

    def _trim(self) -> int:
        """Evict oldest entries (by mtime) until under ``max_bytes``.

        Runs once when the cache is attached, bounding the default-on
        CLI cache: steady-state iteration on changing sources accretes
        dead content digests forever otherwise.  Every schema subtree
        counts toward the bound (stale schemas are pure waste, so they
        are the first candidates by age).  Returns entries removed.
        """
        entries = []
        total = 0
        now = time.time()
        pending = self.journal.pending_tmps()
        for directory, _, files in os.walk(self.root):
            for name in files:
                if not name.endswith((".pkl", ".tmp")):
                    continue
                path = os.path.join(directory, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                total += info.st_size
                # A .tmp file may be a *live* writer in another process,
                # mid-way between mkstemp and os.replace — unlinking it
                # would lose that writer's entry.  The intent journal
                # makes this exact, where the age heuristic only guesses:
                # a tmp whose intent record's owner PID is alive is never
                # an eviction candidate no matter how old (a writer
                # stalled behind a slow pickle is still a writer), while
                # a dead owner's tmp is a reapable orphan immediately.
                # Unjournaled tmps (a writer that died before its
                # ``begin()``) fall back to the age heuristic.
                if name.endswith(".tmp"):
                    record = pending.get(os.path.abspath(path))
                    if record is not None:
                        if journal_mod.pid_alive(record.pid):
                            continue
                    elif now - info.st_mtime < TMP_REAP_AGE_SECONDS:
                        continue
                entries.append((info.st_mtime, info.st_size, path))
        if total <= self.max_bytes:
            return 0
        removed = 0
        for _, size, path in sorted(entries):
            if total <= self.max_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            removed += 1
        if removed:
            self.stats.bump("disk.trimmed", removed)
        return removed


class CodegenStore:
    """Persists compiled-simulator step sources in a :class:`DiskCache`.

    The adapter :func:`repro.rtl.compile.compile_netlist` plugs into:
    codegen payloads (generated source + slot layout, plain picklable
    dicts) are wrapped in a ``StageArtifact`` under the pseudo-stage
    ``"codegen"`` and keyed by ``(structural_hash, backend, lanes,
    CODEGEN_VERSION)`` — fully value-based, so every process over a
    structurally equal netlist shares one levelization + generation.
    The backend tag (``"scalar"``, ``"swar"``, ``"vector-numpy"``,
    ``"vector-stdlib"``) keeps the generators' entries apart now that
    three codegen targets share the stage.  Grid workers in process
    mode rendezvous here: the first worker to compile a netlist pays
    codegen, the rest load the source and only pay ``compile()`` +
    ``exec()``.

    Counters on the shared :class:`CacheStats`: ``codegen.disk_hit`` /
    ``codegen.disk_miss`` per lookup, ``codegen.store`` per write-back
    (a warm run therefore shows hits and zero stores).
    """

    def __init__(self, disk: DiskCache):
        self.disk = disk

    @staticmethod
    def _key(structural_hash: str, lanes, backend: str) -> Tuple:
        from ..rtl.compile import CODEGEN_VERSION

        return ("codegen", structural_hash, backend, lanes, CODEGEN_VERSION)

    def load(self, structural_hash: str, lanes, backend: str) -> Optional[dict]:
        from ..rtl.compile import valid_codegen_payload

        artifact = self.disk.load(self._key(structural_hash, lanes, backend))
        # Validate *before* counting: a hit means a usable entry, not
        # merely a readable file.
        if artifact is None or not valid_codegen_payload(
            artifact.value, structural_hash, lanes, backend
        ):
            self.disk.stats.bump("codegen.disk_miss")
            return None
        self.disk.stats.bump("codegen.disk_hit")
        return artifact.value

    def save(self, payload: dict) -> bool:
        key = self._key(
            payload["structural_hash"], payload["lanes"], payload["backend"]
        )
        stored = self.disk.store(
            key, StageArtifact("codegen", key, payload, 0.0)
        )
        if stored:
            self.disk.stats.bump("codegen.store")
        return stored


class ObligationStore:
    """Persists SMT obligation verdicts in a :class:`DiskCache`.

    The adapter the type checker's discharge loop plugs into: verdict
    payloads (status plus the SAT model in *canonical* variable names —
    see :mod:`repro.smt.canon`) are wrapped in a ``StageArtifact`` under
    the pseudo-stage ``"smt"`` and keyed by ``(obligation_digest,
    SOLVER_VERSION)``.  The digest is the alpha-renamed, sorted,
    structural hash of the full assertion set, so every process that
    reaches a structurally equal obligation — across components,
    designs, and runs — shares one solver verdict, and a warm
    ``repro all`` skips the solver entirely.

    Counters on the shared :class:`CacheStats`: ``smt.disk_hit`` /
    ``smt.disk_miss`` per lookup, ``smt.store`` per write-back.
    Corrupt or shape-invalid entries are quarantined by the underlying
    :class:`DiskCache` exactly like any other artifact.
    """

    #: statuses a payload may carry (mirrors repro.smt.solver).
    _STATUSES = ("sat", "unsat")

    def __init__(self, disk: DiskCache):
        self.disk = disk

    @staticmethod
    def _key(digest: str) -> Tuple:
        from ..smt.solver import SOLVER_VERSION

        return ("smt", digest, SOLVER_VERSION)

    def load(self, digest: str) -> Optional[dict]:
        artifact = self.disk.load(self._key(digest))
        payload = artifact.value if artifact is not None else None
        # Validate before counting: a hit means a usable verdict.
        if (
            not isinstance(payload, dict)
            or payload.get("digest") != digest
            or payload.get("status") not in self._STATUSES
            or not (
                payload.get("model") is None
                or isinstance(payload.get("model"), dict)
            )
        ):
            self.disk.stats.bump("smt.disk_miss")
            return None
        self.disk.stats.bump("smt.disk_hit")
        return payload

    def save(self, digest: str, status: str, model) -> bool:
        # Crash-chaos site: die with a discharged-but-unpersisted
        # verdict in hand, the worst possible moment for this store.
        faults.kill_here("proc.kill.solver", self.disk.stats)
        key = self._key(digest)
        payload = {"digest": digest, "status": status, "model": model}
        stored = self.disk.store(
            key, StageArtifact("smt", key, payload, 0.0)
        )
        if stored:
            self.disk.stats.bump("smt.store")
        return stored


class TunerStore:
    """Persists backend calibration profiles in a :class:`DiskCache`.

    The adapter :func:`repro.rtl.tuner.tune` plugs into: measurement
    payloads (lane-cycles/s per candidate engine, plain picklable
    dicts) are wrapped in a ``StageArtifact`` under the pseudo-stage
    ``"tuner"`` and keyed by ``(structural_hash, flavor,
    TUNER_VERSION)``.  The structural hash identifies the design, the
    vector flavor records which kernel family the profile timed (a
    numpy profile must not steer a numpy-less process), and the tuner
    version retires profiles whose measured quantities or decision rule
    changed.  One calibration run per design per machine, every later
    ``--sim-backend auto`` resolves from disk.

    Counters on the shared :class:`CacheStats`: ``tuner.disk_hit`` /
    ``tuner.disk_miss`` per lookup, ``tuner.store`` per write-back.
    """

    def __init__(self, disk: DiskCache):
        self.disk = disk

    @staticmethod
    def _key(structural_hash: str, flavor: str) -> Tuple:
        from ..rtl.tuner import TUNER_VERSION

        return ("tuner", structural_hash, flavor, TUNER_VERSION)

    def load(self, structural_hash: str, flavor: str) -> Optional[dict]:
        from ..rtl.tuner import valid_tuner_payload

        artifact = self.disk.load(self._key(structural_hash, flavor))
        # Validate before counting: a hit means a usable profile.
        if artifact is None or not valid_tuner_payload(
            artifact.value, structural_hash, flavor
        ):
            self.disk.stats.bump("tuner.disk_miss")
            return None
        self.disk.stats.bump("tuner.disk_hit")
        return artifact.value

    def save(self, payload: dict) -> bool:
        key = self._key(payload["structural_hash"], payload["flavor"])
        stored = self.disk.store(
            key, StageArtifact("tuner", key, payload, 0.0)
        )
        if stored:
            self.disk.stats.bump("tuner.store")
        return stored


class ProfileStore:
    """Persists per-net activity profiles in a :class:`DiskCache`.

    The adapter the profile-guided ``-O3`` pipeline plugs into:
    profile payloads (toggle counts, observed-constant nets and mux
    select skew from :meth:`repro.rtl.profile.SimProfile.to_payload`,
    plain picklable dicts) are wrapped in a ``StageArtifact`` under the
    pseudo-stage ``"profile"`` and keyed by ``(structural_hash,
    PROFILE_VERSION)``.  The structural hash identifies the optimized
    netlist the activity was observed on, and the profile version
    retires profiles whose recorded quantities changed shape.  One
    profiling run per design per machine; every later ``-O3`` compile
    specializes from disk without re-simulating.

    Counters on the shared :class:`CacheStats`: ``profile.disk_hit`` /
    ``profile.disk_miss`` per lookup, ``profile.store`` per write-back.
    """

    def __init__(self, disk: DiskCache):
        self.disk = disk

    @staticmethod
    def _key(structural_hash: str) -> Tuple:
        from ..rtl.profile import PROFILE_VERSION

        return ("profile", structural_hash, PROFILE_VERSION)

    def load(self, structural_hash: str) -> Optional[dict]:
        from ..rtl.profile import valid_profile_payload

        artifact = self.disk.load(self._key(structural_hash))
        # Validate before counting: a hit means a usable profile.
        if artifact is None or not valid_profile_payload(
            artifact.value, structural_hash
        ):
            self.disk.stats.bump("profile.disk_miss")
            return None
        self.disk.stats.bump("profile.disk_hit")
        return artifact.value

    def save(self, payload: dict) -> bool:
        key = self._key(payload["structural_hash"])
        stored = self.disk.store(
            key, StageArtifact("profile", key, payload, 0.0)
        )
        if stored:
            self.disk.stats.bump("profile.store")
        return stored


class ArtifactCache:
    """Keyed store of :class:`StageArtifact` with single-flight compute.

    With a :class:`DiskCache` attached, a memory miss falls through to
    disk (still under the per-key single-flight lock, so one thread does
    the I/O) and fresh computations are written back for the next
    process.
    """

    def __init__(self, stats: CacheStats = None, disk: Optional[DiskCache] = None):
        self.stats = stats or CacheStats()
        self.disk = disk
        if disk is not None:
            disk.bind_stats(self.stats)
        self._mutex = threading.Lock()
        self._artifacts: Dict[Tuple, StageArtifact] = {}
        self._key_locks: Dict[Tuple, threading.Lock] = {}

    def __len__(self) -> int:
        with self._mutex:
            return len(self._artifacts)

    def peek(self, key: Tuple):
        with self._mutex:
            return self._artifacts.get(key)

    def get_or_compute(
        self, key: Tuple, compute: Callable[[], StageArtifact]
    ) -> StageArtifact:
        """Return the artifact for ``key``, computing it at most once.

        The first requester runs ``compute`` under a per-key lock;
        concurrent requesters for the same key block and then receive the
        published artifact.  A failed compute publishes nothing, so the
        next request retries.
        """
        stage = key[0]
        with self._mutex:
            artifact = self._artifacts.get(key)
            if artifact is not None:
                self.stats.record_hit(stage)
                artifact.from_cache = True
                return artifact
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        try:
            faults.inject("cache.lock", self.stats)
        except faults.InjectedFault:
            # Single-flight dedup lost for this request: degrade to a
            # private lock (no contention, no sharing).  At worst the
            # same artifact is computed twice — identical content, so
            # correctness is untouched; last publisher wins in memory.
            self.stats.bump("degrade.cache_lock")
            key_lock = threading.Lock()
        lock_started = time.perf_counter()
        with key_lock:
            self.stats.add_seconds(
                "wait.cache_lock", time.perf_counter() - lock_started
            )
            with self._mutex:
                artifact = self._artifacts.get(key)
            if artifact is not None:
                self.stats.record_hit(stage)
                artifact.from_cache = True
                return artifact
            if self.disk is not None:
                artifact = self.disk.load(key)
                if artifact is not None:
                    self.stats.bump("disk.hit")
                    self.stats.record_hit(stage)
                    artifact.from_cache = True
                    with self._mutex:
                        self._artifacts[key] = artifact
                        self._key_locks.pop(key, None)
                    return artifact
                self.stats.bump("disk.miss")
            self.stats.record_miss(stage)
            compute_started = time.perf_counter()
            artifact = compute()
            self.stats.add_seconds(
                f"compute.{stage}", time.perf_counter() - compute_started
            )
            with self._mutex:
                self._artifacts[key] = artifact
                self._key_locks.pop(key, None)
        # Write-back happens outside the single-flight lock: waiters can
        # be served from memory while this thread pays the pickle + I/O.
        if self.disk is not None:
            self.disk.store(key, artifact)
        return artifact

    def clear(self) -> None:
        with self._mutex:
            self._artifacts.clear()
            self._key_locks.clear()

"""Staged compiler driver: sessions, artifacts, caching, and the grid.

The one front door to the reproduction's pipeline::

    from repro.driver import CompileSession

    session = CompileSession()
    result = session.compile(MY_LILAC_SOURCE, "Top", {"#W": 32},
                             generators=[FloPoCoGenerator(400)])
    result.elab      # the ElabResult (schedule + RTL)
    result.verilog   # structural Verilog text
    result.report    # SynthReport from the cost model
    result.timings() # per-stage wall-clock seconds

Repeated requests — across designs, tables, figures and benchmarks —
are served from the session's content-addressed artifact cache.  Grids
of design points fan out over :class:`EvalGrid`.
"""

from .artifact import (
    CompileResult,
    Diagnostic,
    OptimizedNetlist,
    STAGES,
    SimTrace,
    StageArtifact,
)
from .cache import (
    SCHEMA_VERSION,
    ArtifactCache,
    CacheStats,
    CodegenStore,
    DiskCache,
    ObligationStore,
    ProfileStore,
    TunerStore,
    freeze_params,
    source_digest,
)
from .chaos import (
    SITE_GROUPS,
    ChaosReport,
    ChaosRun,
    CrashChaosReport,
    CrashChaosRun,
    run_chaos,
    run_crash_chaos,
)
from .faults import (
    CRASH_SITES,
    FAULT_MODES,
    FAULT_SITES,
    FaultPlan,
    FaultPlanError,
    FaultSite,
    InjectedCrash,
    InjectedFault,
    InjectedOSError,
)
from .fsck import Finding, FsckReport, run_fsck
from .grid import EXECUTORS, EvalGrid
from .journal import IntentJournal, LeaseManager
from .ledger import RunLedger, graceful_drain, point_key
from .profiler import RunProfiler, RunReport
from .session import (
    CompileSession,
    DEFAULT_STAGES,
    default_session,
    reset_default_session,
)

__all__ = [
    "CRASH_SITES",
    "EXECUTORS",
    "FAULT_MODES",
    "FAULT_SITES",
    "SCHEMA_VERSION",
    "SITE_GROUPS",
    "ArtifactCache",
    "CacheStats",
    "ChaosReport",
    "ChaosRun",
    "CodegenStore",
    "CompileResult",
    "CompileSession",
    "CrashChaosReport",
    "CrashChaosRun",
    "DEFAULT_STAGES",
    "Diagnostic",
    "DiskCache",
    "EvalGrid",
    "FaultPlan",
    "FaultPlanError",
    "FaultSite",
    "Finding",
    "FsckReport",
    "InjectedCrash",
    "InjectedFault",
    "InjectedOSError",
    "IntentJournal",
    "LeaseManager",
    "ObligationStore",
    "OptimizedNetlist",
    "ProfileStore",
    "RunLedger",
    "RunProfiler",
    "RunReport",
    "STAGES",
    "SimTrace",
    "StageArtifact",
    "TunerStore",
    "default_session",
    "freeze_params",
    "graceful_drain",
    "point_key",
    "reset_default_session",
    "run_chaos",
    "run_crash_chaos",
    "run_fsck",
    "source_digest",
]

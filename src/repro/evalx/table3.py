"""Table 3: generators integrated with Lilac and the interface features
needed to capture them.

    Generator     Features
    PipelineC     in-dep
    FloPoCo       in-dep, out-dep
    XLS           in-dep, ii-gt-1
    Spiral FFT    in-dep, out-dep, ii-gt-1
    Aetherling    in-dep, out-dep, ii-gt-1, multi

Features are *computed* from the Lilac interface declarations in
``repro.generators.interfaces`` rather than restated:

* ``in-dep``  — the generator consumes input parameters (they influence
  the produced module, and hence its timing);
* ``out-dep`` — output parameters appear in timing positions (intervals
  or the event delay);
* ``ii-gt-1`` — the event delay is not the constant 1;
* ``multi``   — some input port's availability interval can span more
  than one cycle.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..driver import CompileSession, default_session
from ..lilac.ast import GEN, Signature
from ..params import PInt, free_params, pretty
from ..generators.interfaces import ALL_INTERFACES, TABLE3_FEATURES
from ..synth import format_table

# Display name of each generator tool.
TOOL_NAMES = {
    "pipelinec": "PipelineC",
    "flopoco": "FloPoCo",
    "xls": "XLS",
    "spiral": "Spiral FFT",
    "aetherling": "Aetherling",
    "vivado-mult": "Vivado Multiplier",
    "vivado-div": "Vivado Divider",
    "vivado-fft": "Vivado FFT",
    "serializer": "Serializer",
}

PAPER_ROWS = ("PipelineC", "FloPoCo", "XLS", "Spiral FFT", "Aetherling")


def _timing_exprs(sig: Signature):
    yield sig.event.delay
    for port in sig.inputs + sig.outputs:
        if port.interface:
            continue
        yield port.interval.start
        yield port.interval.end


def features_of_signature(sig: Signature) -> FrozenSet[str]:
    features = set()
    if sig.params:
        features.add("in-dep")
    out_names = set(sig.out_param_names())
    for expr in _timing_exprs(sig):
        if free_params(expr) & out_names:
            features.add("out-dep")
    if sig.event.delay != PInt(1):
        features.add("ii-gt-1")
    for port in sig.inputs:
        if port.interface:
            continue
        length = _constant_window(port)
        if length is None or length > 1:
            features.add("multi")
    return frozenset(features)


def _constant_window(port):
    """Window length if constant, else None (parameter-dependent)."""
    start, end = port.interval.start, port.interval.end
    if isinstance(start, PInt) and isinstance(end, PInt):
        return end.value - start.value
    if free_params(end) == free_params(start) and pretty(end) == pretty(start):
        return 0
    # [G+e, G+e+1) style windows: end - start == 1 syntactically.
    from ..params import PBin

    if isinstance(end, PBin) and end.op == "+" and end.lhs == start:
        if isinstance(end.rhs, PInt):
            return end.rhs.value
    return None


def compute_features(
    session: Optional[CompileSession] = None,
) -> Dict[str, FrozenSet[str]]:
    """Feature set per generator, aggregated over its declarations."""
    session = session or default_session()
    program = session.parse(ALL_INTERFACES, stdlib=False).value
    by_tool: Dict[str, set] = {}
    for component in program:
        sig = component.signature
        if sig.kind != GEN:
            continue
        name = TOOL_NAMES.get(sig.gen_tool, sig.gen_tool)
        by_tool.setdefault(name, set()).update(features_of_signature(sig))
    return {tool: frozenset(features) for tool, features in by_tool.items()}


FEATURE_ORDER = ("in-dep", "out-dep", "ii-gt-1", "multi")


def build_rows(
    session: Optional[CompileSession] = None,
) -> List[Tuple[str, str]]:
    computed = compute_features(session)
    rows = []
    for tool in PAPER_ROWS:
        features = computed.get(tool, frozenset())
        ordered = [f for f in FEATURE_ORDER if f in features]
        rows.append((tool, ", ".join(ordered)))
    return rows


def render(rows: List[Tuple[str, str]]) -> str:
    return format_table(["Generator", "Features"], rows)


def run(
    session: Optional[CompileSession] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> str:
    # No grid here: workers/executor accepted for the uniform artifact
    # surface and ignored.
    rows = build_rows(session=session)
    check_shape(rows)
    return render(rows)


def check_shape(rows: List[Tuple[str, str]]) -> None:
    computed = {tool: frozenset(f.split(", ")) - {""} for tool, f in rows}
    for tool, expected in TABLE3_FEATURES.items():
        assert computed[tool] == expected, (
            f"{tool}: computed {sorted(computed[tool])}, "
            f"paper says {sorted(expected)}"
        )

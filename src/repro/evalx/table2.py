"""Table 2: when an interface's timing behaviour is known.

    Interface                Design  Compile  Execute
    Latency Sensitive (LS)   yes     yes      yes
    Latency Abstract (LA)    no      yes      yes
    Latency Insensitive (LI) no      no       yes

Rather than hard-coding the matrix, we *derive* each cell from the three
artifact kinds in this repository:

* design time  — timing is syntactically concrete in the (un-elaborated)
  signature: no output parameters in timing positions;
* compile time — the elaborated artifact has a static schedule (concrete
  latency/II);
* execute time — timing is resolved by runtime handshakes at the latest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..designs.fpu import FPU_LA_SOURCE, LiFpu, elaborate_fpu_ls
from ..driver import CompileSession, default_session
from ..params import free_params, instance_outs
from ..synth import format_table


def _timing_uses_out_params(signature) -> bool:
    out_names = set(signature.out_param_names())
    exprs = [signature.event.delay]
    for port in signature.inputs + signature.outputs:
        if port.interface:
            continue
        exprs.append(port.interval.start)
        exprs.append(port.interval.end)
    for expr in exprs:
        if free_params(expr) & out_names:
            return True
        if instance_outs(expr):
            return True
    return False


def classify(
    session: Optional[CompileSession] = None,
) -> List[Tuple[str, bool, bool, bool]]:
    """Return (interface, design, compile, execute) truth rows."""
    session = session or default_session()
    program = session.parse(FPU_LA_SOURCE, stdlib=False).value

    # LS: the *elaborated* FPU's schedule, re-expressed as a signature,
    # is concrete at design time — model with the stdlib Shift signature,
    # whose timing mentions only input parameters.
    from ..lilac.stdlib import standard_library

    shift_sig = standard_library().get("Shift").signature
    ls_design_known = not _timing_uses_out_params(shift_sig)

    # LA: the FloPoCo adder's signature abstracts latency behind #L.
    la_sig = program.get("FPAdd").signature
    la_design_known = not _timing_uses_out_params(la_sig)
    # ...but elaboration produces a concrete static schedule:
    elaborated = elaborate_fpu_ls(400, session=session)
    la_compile_known = isinstance(elaborated.latency, int)

    # LI: even after building the RTL, completion is signalled by a
    # runtime valid bit — the presence of the handshake ports means no
    # static schedule exists even post-compilation.
    li = LiFpu(400, session=session)
    li_has_handshake = (
        "out_valid" in li.module.ports and "in_ready" in li.module.ports
    )
    return [
        ("Latency Sensitive (LS)", ls_design_known, True, True),
        ("Latency Abstract (LA)", la_design_known, la_compile_known, True),
        ("Latency Insensitive (LI)", False, not li_has_handshake, True),
    ]


def render(rows) -> str:
    def mark(value: bool) -> str:
        return "yes" if value else "no"

    return format_table(
        ["Interface", "Design", "Compile", "Execute"],
        [[name, mark(d), mark(c), mark(e)] for name, d, c, e in rows],
    )


EXPECTED = {
    "Latency Sensitive (LS)": (True, True, True),
    "Latency Abstract (LA)": (False, True, True),
    "Latency Insensitive (LI)": (False, False, True),
}


def check_shape(rows) -> None:
    for name, design, compile_time, execute in rows:
        assert EXPECTED[name] == (design, compile_time, execute), name


def run(
    session: Optional[CompileSession] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> str:
    # No grid here: workers/executor accepted for the uniform artifact
    # surface and ignored.
    rows = classify(session=session)
    check_shape(rows)
    return render(rows)

"""Optimization ablation: what the ``-O2`` pass pipeline buys per design.

For every design in the catalog, the staged driver produces the
flattened-but-unoptimized netlist (``-O0``) and the pass-optimized one
(``-O2``), then drives both with the *same* seeded random stimulus for
the same number of cycles.  The table reports pre/post cell counts, the
per-design simulation speedup, and — the correctness gate — whether the
optimized netlist's outputs are bit-identical to the unoptimized one's
on every cycle (differential simulation).

The same machinery gates the compiled simulation backend: for every
design, both optimization levels are re-simulated on the ``compiled``
engine and must agree bit-for-bit with the interpreter (the "Backends"
column), and the lane-parallel engines re-simulate the ``-O2`` netlist
with K stimulus lanes in one pass, which must agree lane for lane with
K independent single-lane runs at the derived lane seeds — the SWAR
batched engine in the "Lanes" column and the word-packed vector
backend in the "Vector" column, both against the same per-lane
reference traces.  The profile-guided level rides the same gate: the
"O3" column re-simulates each design at ``-O3`` (activity-profiled
specialization) on the compiled engine and must reproduce the ``-O0``
interpreter trace exactly.

:func:`check_shape` asserts the claims this artifact exists for:

* **soundness** — every design is output-equivalent across levels
  (including the profile-guided ``-O3``), the compiled backend is
  output-equivalent to the interpreter, and both lane engines (SWAR
  batched, vectorized) are output-equivalent to sequential runs;
* **profit** — dead-cell elimination plus common-cell sharing reduce
  the total cell count on at least three designs.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional

from ..designs.catalog import DESIGNS, design_point
from ..driver import CompileSession, EvalGrid
from ..rtl import derive_lane_seed
from ..synth import format_table

#: Deterministic row order over the whole catalog.
ABLATION_DESIGNS = tuple(sorted(DESIGNS))

#: Shared differential-stimulus shape: same seed and length on both
#: sides of every comparison, reproducible across runs and machines.
CYCLES = 128
SEED = 0xA5

#: Stimulus lanes the batched differential drives together (kept small:
#: the point is exercising the lane-packed codegen, not throughput).
LANES = 4


class AblationRow:
    def __init__(
        self,
        name: str,
        cells_base: int,
        cells_opt: int,
        equivalent: bool,
        sim_base_seconds: float,
        sim_opt_seconds: float,
        removed_by: Dict[str, int],
        backends_agree: bool = True,
        lanes_agree: bool = True,
        vector_agree: bool = True,
        o3_agree: bool = True,
    ):
        self.name = name
        self.cells_base = cells_base
        self.cells_opt = cells_opt
        self.equivalent = equivalent
        self.sim_base_seconds = sim_base_seconds
        self.sim_opt_seconds = sim_opt_seconds
        #: pass name → cells removed by that pass on this design.
        self.removed_by = dict(removed_by)
        #: compiled backend bit-identical to the interpreter at both
        #: optimization levels under the shared stimulus.
        self.backends_agree = backends_agree
        #: batched multi-lane run bit-identical, lane for lane, to the
        #: corresponding independent single-lane runs.
        self.lanes_agree = lanes_agree
        #: word-packed vector run bit-identical, lane for lane, to the
        #: same independent single-lane reference traces.
        self.vector_agree = vector_agree
        #: profile-guided -O3 run (compiled engine, specialized against
        #: the design's activity profile) bit-identical to the -O0
        #: interpreter trace.
        self.o3_agree = o3_agree

    @property
    def reduction(self) -> float:
        if not self.cells_base:
            return 0.0
        return 1.0 - self.cells_opt / self.cells_base

    @property
    def speedup(self) -> float:
        if not self.sim_opt_seconds:
            return 1.0
        return self.sim_base_seconds / self.sim_opt_seconds

    def cleanup_removed(self) -> int:
        """Cells removed by dead-cell elimination + common-cell sharing."""
        return self.removed_by.get("dead-cell-elim", 0) + self.removed_by.get(
            "common-cell-sharing", 0
        )

    def cells(self) -> List[object]:
        return [
            self.name,
            self.cells_base,
            self.cells_opt,
            f"{self.reduction * 100.0:.1f}%",
            f"{self.speedup:.2f}x",
            "yes" if self.equivalent else "NO",
            "yes" if self.backends_agree else "NO",
            "yes" if self.lanes_agree else "NO",
            "yes" if self.vector_agree else "NO",
            "yes" if self.o3_agree else "NO",
        ]


def _build_row(
    session: CompileSession,
    name: str,
    cycles: int = CYCLES,
    seed: int = SEED,
    lanes: int = LANES,
) -> AblationRow:
    source, component, generators, params = design_point(name)
    base = session.optimize(
        source, component, params, generators, opt_level=0
    ).value
    opt = session.optimize(
        source, component, params, generators, opt_level=2
    ).value
    # Every reference trace pins lanes=1 explicitly: the session-level
    # sim_lanes default must not silently batch the single-run sides of
    # these comparisons.
    trace_base = session.simulate(
        source, component, params, generators,
        cycles=cycles, seed=seed, opt_level=0, backend="interp", lanes=1,
    ).value
    trace_opt = session.simulate(
        source, component, params, generators,
        cycles=cycles, seed=seed, opt_level=2, backend="interp", lanes=1,
    ).value
    # The backend differential: the compiled engine independently
    # re-simulates both levels and must agree bit-for-bit with the
    # interpreter under the very same stimulus.
    backends_agree = all(
        session.simulate(
            source, component, params, generators,
            cycles=cycles, seed=seed, opt_level=level, backend="compiled",
            lanes=1,
        ).value.outputs == interp.outputs
        for level, interp in ((0, trace_base), (2, trace_opt))
    )
    # The batching differential: one K-lane pass over the optimized
    # netlist, checked lane-by-lane against the K independent runs at
    # the derived lane seeds (lane 0's seed is the batch seed, so that
    # lane also revalidates against trace-opt's stimulus).  The per-lane
    # reference traces are computed once and shared with the vector
    # differential below.
    lane_refs = [
        session.simulate(
            source, component, params, generators,
            cycles=cycles, seed=derive_lane_seed(seed, lane),
            opt_level=2, backend="compiled", lanes=1,
        ).value.outputs
        for lane in range(lanes)
    ]
    batch = session.simulate(
        source, component, params, generators,
        cycles=cycles, seed=seed, opt_level=2, backend="compiled",
        lanes=lanes,
    ).value
    lanes_agree = list(batch.outputs) == lane_refs
    # The vector differential: same contract, word-packed columns
    # instead of SWAR words, against the very same reference traces.
    vector = session.simulate(
        source, component, params, generators,
        cycles=cycles, seed=seed, opt_level=2, backend="vector",
        lanes=lanes,
    ).value
    vector_agree = list(vector.outputs) == lane_refs
    # The profile-guided differential: -O3 specializes the compiled
    # program against the design's activity profile (hot-cone fusion,
    # observed-constant guards, change-driven gating) and must still
    # reproduce the unoptimized interpreter trace bit for bit.
    o3 = session.simulate(
        source, component, params, generators,
        cycles=cycles, seed=seed, opt_level=3, backend="compiled", lanes=1,
    ).value
    o3_agree = o3.outputs == trace_base.outputs
    removed_by: Dict[str, int] = {}
    for stat in opt.pass_stats:
        removed_by[stat.name] = (
            removed_by.get(stat.name, 0) + stat.cells_removed
        )
    return AblationRow(
        name,
        base.cells_after,
        opt.cells_after,
        trace_base.outputs == trace_opt.outputs,
        trace_base.run_seconds,
        trace_opt.run_seconds,
        removed_by,
        backends_agree=backends_agree,
        lanes_agree=lanes_agree,
        vector_agree=vector_agree,
        o3_agree=o3_agree,
    )


def build_rows(
    session: Optional[CompileSession] = None,
    workers: Optional[int] = None,
    cycles: int = CYCLES,
    seed: int = SEED,
    lanes: int = LANES,
    executor: str = "thread",
) -> List[AblationRow]:
    grid = EvalGrid(session, max_workers=workers, executor=executor)
    # partial over the module-level builder (not a lambda) so the grid's
    # process mode can pickle the worker function.
    return grid.map(
        functools.partial(_build_row, cycles=cycles, seed=seed, lanes=lanes),
        ABLATION_DESIGNS,
    )


def render(rows: List[AblationRow]) -> str:
    return format_table(
        ["Design", "Cells -O0", "Cells -O2", "Reduction", "Sim speedup",
         "Equivalent", "Backends", "Lanes", "Vector", "O3"],
        [row.cells() for row in rows],
    )


def check_shape(rows: List[AblationRow]) -> Dict[str, float]:
    """Assert soundness + profit; return the measured ratios."""
    stats: Dict[str, float] = {}
    for row in rows:
        assert row.equivalent, (
            f"{row.name}: -O2 netlist diverges from -O0 under shared "
            f"stimulus — optimization is unsound"
        )
        assert row.backends_agree, (
            f"{row.name}: compiled backend diverges from the interpreter "
            f"under shared stimulus — code generation is unsound"
        )
        assert row.lanes_agree, (
            f"{row.name}: batched multi-lane run diverges from the "
            f"independent single-lane runs — lane batching is unsound"
        )
        assert row.vector_agree, (
            f"{row.name}: vectorized multi-lane run diverges from the "
            f"independent single-lane runs — vector codegen is unsound"
        )
        assert row.o3_agree, (
            f"{row.name}: profile-guided -O3 run diverges from the -O0 "
            f"interpreter trace — PGO specialization is unsound"
        )
        assert row.cells_opt <= row.cells_base, (
            f"{row.name}: optimization grew the netlist"
        )
        stats[f"reduction {row.name}"] = row.reduction
    cleaned = [row for row in rows if row.cleanup_removed() > 0]
    assert len(cleaned) >= 3, (
        "dead-cell elimination + common-cell sharing should reduce cell "
        f"count on at least three designs, got {len(cleaned)}: "
        f"{[row.name for row in cleaned]}"
    )
    return stats


def run(
    session: Optional[CompileSession] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> str:
    # A session tuned for more lanes (--sim-lanes) widens the batched
    # differential accordingly.
    lanes = LANES
    if session is not None and session.sim_lanes > 1:
        lanes = session.sim_lanes
    rows = build_rows(
        session=session, workers=workers, lanes=lanes, executor=executor
    )
    stats = check_shape(rows)
    lines = [render(rows), "", "shape statistics:"]
    for key, value in stats.items():
        lines.append(f"  {key}: {value:+.3f}")
    return "\n".join(lines)

"""Figure 13 and the section 7.2 summary statistics: GBP LA vs LI.

Paper rows (Lilac / RV = ready-valid, per convolution parallelism N)::

    Design (N)      LUTs         Registers    Freq. (MHz)
    Lilac / RV (1)  1824 / 2093  2532 / 3254  258 / 236
    Lilac / RV (2)  1762 / 2062  2464 / 3165  284 / 219
    Lilac / RV (4)  1627 / 1983  2373 / 3129  270 / 306
    Lilac / RV (8)  1227 / 2146  1733 / 3058  223 / 231
    Lilac / RV (16) 1311 / 2099  1688 / 3244  211 / 183

Headline statistics: LI designs achieve 6.8% worse frequency (geomean),
use 26.2% more LUTs and 33.0% more registers.  The LA register count
*decreases* as N grows (less serialization logic), while the LI cost
stays roughly constant.
"""

from __future__ import annotations

import functools
from typing import Dict, List, NamedTuple, Optional

from ..designs.gbp_la import GBP_SOURCE, gbp_registry
from ..designs.gbp_li import build_li_gbp
from ..driver import CompileSession, EvalGrid
from ..synth import SynthReport, format_table, geomean, synthesize

PARALLELISMS = (1, 2, 4, 8, 16)


class Figure13Row(NamedTuple):
    parallelism: int
    lilac: SynthReport
    rv: SynthReport


def _build_point(
    session: CompileSession, parallelism: int, width: int = 16
) -> Figure13Row:
    lilac = session.synthesize(
        GBP_SOURCE, "GBP", {"#W": width}, gbp_registry(parallelism)
    ).value
    rv = synthesize(build_li_gbp(parallelism, width, session=session))
    return Figure13Row(parallelism, lilac, rv)


def build_rows(
    parallelisms=PARALLELISMS,
    width: int = 16,
    session: Optional[CompileSession] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> List[Figure13Row]:
    grid = EvalGrid(session, max_workers=workers, executor=executor)
    # partial over the module-level builder (not a lambda) so the grid's
    # process mode can pickle the worker function.
    return grid.map(
        functools.partial(_build_point, width=width), parallelisms
    )


def render(rows: List[Figure13Row]) -> str:
    body = []
    for row in rows:
        body.append(
            [
                f"Lilac / RV ({row.parallelism})",
                f"{row.lilac.luts} / {row.rv.luts}",
                f"{row.lilac.registers} / {row.rv.registers}",
                f"{row.lilac.fmax_mhz:.0f} / {row.rv.fmax_mhz:.0f}",
            ]
        )
    return format_table(["Design (N)", "LUTs", "Registers", "Freq. (MHz)"], body)


def summary(rows: List[Figure13Row]) -> Dict[str, float]:
    """Geomean overheads in the paper's section 7.2 framing."""
    lut_ratio = geomean([row.rv.luts / row.lilac.luts for row in rows])
    reg_ratio = geomean(
        [row.rv.registers / row.lilac.registers for row in rows]
    )
    freq_ratio = geomean(
        [row.rv.fmax_mhz / row.lilac.fmax_mhz for row in rows]
    )
    return {
        "li_extra_luts_pct": (lut_ratio - 1) * 100,
        "li_extra_registers_pct": (reg_ratio - 1) * 100,
        "li_frequency_loss_pct": (1 - freq_ratio) * 100,
    }


def run(
    session: Optional[CompileSession] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> str:
    rows = build_rows(session=session, workers=workers, executor=executor)
    stats = check_shape(rows)
    lines = [render(rows), "", "section 7.2 headline statistics:"]
    for key, value in stats.items():
        lines.append(f"  {key}: {value:+.1f}%")
    return "\n".join(lines)


def check_shape(rows: List[Figure13Row]) -> Dict[str, float]:
    """The relative claims that must hold in any faithful reproduction."""
    stats = summary(rows)
    assert stats["li_extra_luts_pct"] > 0, "LI should use more LUTs overall"
    assert stats["li_extra_registers_pct"] > 0, (
        "LI should use more registers overall"
    )
    # LA serialization cost falls with parallelism: registers at N=16
    # must undercut N=1 (paper: 1688 vs 2532).
    by_n = {row.parallelism: row for row in rows}
    if 1 in by_n and 16 in by_n:
        assert by_n[16].lilac.registers < by_n[1].lilac.registers, (
            "LA register count should fall as parallelism rises"
        )
        # The paper: Lilac-16 uses ~48% fewer registers than RV-16 while
        # Lilac-1 only ~22% fewer — the gap should widen with N.
        gap_1 = by_n[1].rv.registers / by_n[1].lilac.registers
        gap_16 = by_n[16].rv.registers / by_n[16].lilac.registers
        assert gap_16 > gap_1, "register advantage should grow with N"
    return stats

"""Figure 8: type-checker performance over the six evaluation designs.

Paper rows (lines of Lilac, type-check wall time)::

    RISC 3-stage Base          480   160 ms
    Gaussian Blur Pyramid      595   205 ms
    FFT (Lilac only)          1207   403 ms
    FFT (using FloPoCo)       1221   442 ms
    Lilac's standard library  1310   900 ms
    BLAS Level 1 Kernels      1346  1295 ms

We measure our own checker (pure Python + the bundled SMT solver, so
absolute times are larger than the paper's Rust + Z3) over the same six
designs.  Line counts are of the Lilac sources in this repository.
"""

from __future__ import annotations

import time
from typing import Callable, List, NamedTuple

from ..designs.blas import BLAS_SOURCE, blas_program
from ..designs.fft import FFT_FLOPOCO, FFT_LILAC, fft_flopoco_program, fft_lilac_program
from ..designs.gbp_la import GBP_SOURCE, gbp_program
from ..designs.risc import RISC_SOURCE, risc_program
from ..lilac.stdlib import STDLIB_SOURCE, standard_library
from ..lilac.typecheck import check_program
from ..synth import format_table


class Figure8Row(NamedTuple):
    design: str
    lines: int
    millis: float
    ok: bool


def _count_lines(source: str) -> int:
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("//")
    )


DESIGNS: List = [
    ("RISC 3-stage Base", RISC_SOURCE, risc_program),
    ("Gaussian Blur Pyramid", GBP_SOURCE, gbp_program),
    ("FFT (Lilac only)", FFT_LILAC, fft_lilac_program),
    ("FFT (using FloPoCo)", FFT_FLOPOCO, fft_flopoco_program),
    ("Lilac's standard library", STDLIB_SOURCE, lambda: standard_library()),
    ("BLAS Level 1 Kernels", BLAS_SOURCE, blas_program),
]


def build_rows(designs=None) -> List[Figure8Row]:
    rows: List[Figure8Row] = []
    for name, source, program_fn in designs or DESIGNS:
        program = program_fn()
        start = time.perf_counter()
        reports = check_program(program, raise_on_error=False)
        elapsed = (time.perf_counter() - start) * 1000
        ok = all(r.ok for r in reports)
        rows.append(Figure8Row(name, _count_lines(source), elapsed, ok))
    return rows


def render(rows: List[Figure8Row]) -> str:
    return format_table(
        ["Design", "Lines", "Time (ms)", "Status"],
        [
            [row.design, row.lines, f"{row.millis:.0f}", "ok" if row.ok else "ERROR"]
            for row in rows
        ],
    )


def check_shape(rows: List[Figure8Row]) -> None:
    for row in rows:
        assert row.ok, f"{row.design} failed to type check"
        assert row.lines > 20, f"{row.design} suspiciously small"

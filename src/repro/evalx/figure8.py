"""Figure 8: type-checker performance over the six evaluation designs.

Paper rows (lines of Lilac, type-check wall time)::

    RISC 3-stage Base          480   160 ms
    Gaussian Blur Pyramid      595   205 ms
    FFT (Lilac only)          1207   403 ms
    FFT (using FloPoCo)       1221   442 ms
    Lilac's standard library  1310   900 ms
    BLAS Level 1 Kernels      1346  1295 ms

We measure our own checker (pure Python + the bundled SMT solver, so
absolute times are larger than the paper's Rust + Z3) over the same six
designs.  Line counts are of the Lilac sources in this repository.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional

from ..designs.blas import BLAS_SOURCE
from ..designs.fft import FFT_FLOPOCO, FFT_LILAC
from ..designs.gbp_la import GBP_SOURCE
from ..designs.risc import RISC_SOURCE
from ..driver import CompileSession, default_session
from ..lilac.stdlib import STDLIB_SOURCE
from ..synth import format_table


class Figure8Row(NamedTuple):
    design: str
    lines: int
    millis: float
    ok: bool


def _count_lines(source: str) -> int:
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("//")
    )


#: (row label, Lilac source, merge the standard library before checking)
DESIGNS: List = [
    ("RISC 3-stage Base", RISC_SOURCE, True),
    ("Gaussian Blur Pyramid", GBP_SOURCE, True),
    ("FFT (Lilac only)", FFT_LILAC, True),
    ("FFT (using FloPoCo)", FFT_FLOPOCO, True),
    ("Lilac's standard library", STDLIB_SOURCE, False),
    ("BLAS Level 1 Kernels", BLAS_SOURCE, True),
]


def build_rows(
    designs=None, session: Optional[CompileSession] = None
) -> List[Figure8Row]:
    """Type check each design through the session's typecheck stage.

    The checks run sequentially on purpose: the row *is* the per-design
    wall-clock measurement, and interleaving GIL-bound checks on a pool
    would inflate every individual timing.  A cache hit reports the
    original measured time.
    """
    session = session or default_session()
    rows: List[Figure8Row] = []
    for name, source, with_stdlib in designs or DESIGNS:
        artifact = session.typecheck(source, stdlib=with_stdlib)
        rows.append(
            Figure8Row(name, _count_lines(source), artifact.millis, artifact.ok)
        )
    return rows


def render(rows: List[Figure8Row]) -> str:
    return format_table(
        ["Design", "Lines", "Time (ms)", "Status"],
        [
            [row.design, row.lines, f"{row.millis:.0f}", "ok" if row.ok else "ERROR"]
            for row in rows
        ],
    )


def check_shape(rows: List[Figure8Row]) -> None:
    for row in rows:
        assert row.ok, f"{row.design} failed to type check"
        assert row.lines > 20, f"{row.design} suspiciously small"


def run(
    session: Optional[CompileSession] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> str:
    # No grid here: workers/executor accepted for the uniform artifact
    # surface and ignored.
    rows = build_rows(session=session)
    check_shape(rows)
    return render(rows)

"""Evaluation harness: regenerates every table and figure in the paper.

Every artifact module exposes the same surface:

* ``build_rows(...)`` / ``classify(...)`` — compute the rows, accepting
  an optional shared :class:`~repro.driver.CompileSession` (and, for the
  grid-shaped artifacts, a worker count for the
  :class:`~repro.driver.EvalGrid`);
* ``render(rows)`` — the formatted table;
* ``check_shape(rows)`` — assert the paper's relative claims;
* ``run(session=None, workers=None, executor="thread")`` — build +
  check + render in one call (what ``python -m repro table/figure/all``
  invokes via :func:`run_artifact`).  ``executor`` selects the
  :class:`~repro.driver.EvalGrid` pool — ``"process"`` fans the grid
  out over worker processes that rendezvous through the session's disk
  cache; artifacts without a grid accept and ignore it.
"""

from typing import Optional

from . import ablation, figure8, figure13, table1, table2, table3

#: name → module, for the CLI and for sweep-everything helpers.
ARTIFACTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "figure8": figure8,
    "figure13": figure13,
    "ablation": ablation,
}


def run_artifact(
    name: str,
    session=None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> str:
    """Build, shape-check and render one table/figure by name."""
    module = ARTIFACTS.get(name)
    if module is None:
        raise KeyError(
            f"unknown artifact {name!r}; available: {sorted(ARTIFACTS)}"
        )
    return module.run(session=session, workers=workers, executor=executor)


__all__ = [
    "ARTIFACTS",
    "ablation",
    "figure8",
    "figure13",
    "run_artifact",
    "table1",
    "table2",
    "table3",
]

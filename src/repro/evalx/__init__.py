"""Evaluation harness: regenerates every table and figure in the paper."""

from . import figure8, figure13, table1, table2, table3

__all__ = ["figure8", "figure13", "table1", "table2", "table3"]

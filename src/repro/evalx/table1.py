"""Table 1: resource usage of LS vs LI FPU implementations.

Paper rows (Vivado, 32-bit FloPoCo cores)::

    Configuration   LUTs  Registers  Freq. (MHz)
    LI (A=1, M=1)   614   824        134.5
    LS (A=1, M=1)   441   205        163.0
    LI (A=4, M=2)   662   1426       224.4
    LS (A=4, M=2)   459   482        280.8

We regenerate the same grid from our FloPoCo stand-in (100 MHz goal gives
A=1/M=1; 400 MHz gives A=4/M=2) and the synthesis model.  Absolute
numbers differ from Vivado; the shape claims that must hold are encoded
in :func:`check_shape`.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Tuple

from ..designs.fpu import FPU_LA_SOURCE, LiFpu, fpu_generators
from ..driver import CompileSession, EvalGrid
from ..generators.flopoco import adder_depth, multiplier_depth
from ..synth import SynthReport, format_table, synthesize

DESIGN_POINTS = (100, 400)  # FloPoCo frequency goals


class Table1Row:
    def __init__(self, label: str, report: SynthReport):
        self.label = label
        self.report = report

    def cells(self) -> List[object]:
        return [
            self.label,
            self.report.luts,
            self.report.registers,
            f"{self.report.fmax_mhz:.1f}",
        ]


def _build_point(
    session: CompileSession, frequency: int, width: int = 32
) -> List[Table1Row]:
    a = adder_depth(width, frequency)
    m = multiplier_depth(width, frequency)
    label = f"(A={a}, M={m})"
    li = LiFpu(frequency, width, session=session)
    ls = session.synthesize(
        FPU_LA_SOURCE, "FPU", {"#W": width}, fpu_generators(frequency)
    ).value
    return [
        Table1Row(f"LI {label}", synthesize(li.module)),
        Table1Row(f"LS {label}", ls),
    ]


def build_rows(
    width: int = 32,
    session: Optional[CompileSession] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> List[Table1Row]:
    grid = EvalGrid(session, max_workers=workers, executor=executor)
    # partial over the module-level builder (not a lambda) so the grid's
    # process mode can pickle the worker function.
    per_point = grid.map(
        functools.partial(_build_point, width=width), DESIGN_POINTS
    )
    return [row for rows in per_point for row in rows]


def render(rows: List[Table1Row]) -> str:
    return format_table(
        ["Configuration", "LUTs", "Registers", "Freq. (MHz)"],
        [row.cells() for row in rows],
    )


def run(
    session: Optional[CompileSession] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> str:
    """Build, verify and render the table (the CLI entry point)."""
    rows = build_rows(session=session, workers=workers, executor=executor)
    stats = check_shape(rows)
    lines = [render(rows), "", "shape statistics:"]
    for key, value in stats.items():
        lines.append(f"  {key}: {value:+.3f}")
    return "\n".join(lines)


def check_shape(rows: List[Table1Row]) -> Dict[str, float]:
    """Verify the relative claims of Table 1; returns the measured ratios.

    * LI uses more LUTs than LS at each design point (paper: +29-31%);
    * LI uses substantially more registers (paper: 3-4x);
    * LI achieves a lower maximum frequency (paper: -21-25%).
    """
    stats: Dict[str, float] = {}
    for index in range(0, len(rows), 2):
        li = rows[index].report
        ls = rows[index + 1].report
        point = rows[index].label.split(" ", 1)[1]
        assert li.luts > ls.luts, f"{point}: LI should use more LUTs"
        assert li.registers > 1.5 * ls.registers, (
            f"{point}: LI should use far more registers"
        )
        assert li.fmax_mhz < ls.fmax_mhz, f"{point}: LI should be slower"
        stats[f"lut_overhead {point}"] = li.luts / ls.luts - 1
        stats[f"reg_ratio {point}"] = li.registers / ls.registers
        stats[f"freq_loss {point}"] = 1 - li.fmax_mhz / ls.fmax_mhz
    return stats

"""Parameter expressions and constraints — the ``P`` and ``C`` grammars of
Figure 7 in the paper.

Parameter expressions appear everywhere constants are allowed in Filament:
availability intervals, event delays, scheduling offsets, port widths, loop
bounds.  They are compile-time values; during type checking they are encoded
into SMT terms (symbolically), and during elaboration they are evaluated to
concrete integers.

Grammar reproduced here:

    P ::= n | #p | bop(P, P) | unop(P) | X[P*]::#o | Inst::#o | C ? P : P
    C ::= P == P | P <= P | ... | !C | C & C | C | C | true | false

``X[P*]::#o`` is a *parameter access*: instantiate component ``X`` purely as
a function over parameters and read its output parameter (the paper's
``Max[#A,#B]::#Out``).  ``Inst::#o`` reads an output parameter of an
instance already in scope (``Add::#L``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Union


class ParamError(Exception):
    """Raised on malformed or unevaluable parameter expressions."""


class PExpr:
    """Base class for parameter expressions."""

    def __add__(self, other):
        return PBin("+", self, wrap(other))

    def __radd__(self, other):
        return PBin("+", wrap(other), self)

    def __sub__(self, other):
        return PBin("-", self, wrap(other))

    def __rsub__(self, other):
        return PBin("-", wrap(other), self)

    def __mul__(self, other):
        return PBin("*", self, wrap(other))

    def __rmul__(self, other):
        return PBin("*", wrap(other), self)

    def __floordiv__(self, other):
        return PBin("/", self, wrap(other))

    def __mod__(self, other):
        return PBin("%", self, wrap(other))

    # Comparisons build constraints, not booleans.
    def eq(self, other) -> "Constraint":
        return CCmp("==", self, wrap(other))

    def ne(self, other) -> "Constraint":
        return CCmp("!=", self, wrap(other))

    def __le__(self, other) -> "Constraint":
        return CCmp("<=", self, wrap(other))

    def __lt__(self, other) -> "Constraint":
        return CCmp("<", self, wrap(other))

    def __ge__(self, other) -> "Constraint":
        return CCmp(">=", self, wrap(other))

    def __gt__(self, other) -> "Constraint":
        return CCmp(">", self, wrap(other))

    def __repr__(self):
        return f"PExpr({pretty(self)})"


class PInt(PExpr):
    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def __eq__(self, other):
        return isinstance(other, PInt) and self.value == other.value

    def __hash__(self):
        return hash(("PInt", self.value))


class PVar(PExpr):
    """Reference to a parameter in scope (``#W``, loop index ``#k``...)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, PVar) and self.name == other.name

    def __hash__(self):
        return hash(("PVar", self.name))


class PBin(PExpr):
    __slots__ = ("op", "lhs", "rhs")

    OPS = ("+", "-", "*", "/", "%")

    def __init__(self, op: str, lhs: PExpr, rhs: PExpr):
        if op not in self.OPS:
            raise ParamError(f"unknown binary operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def __eq__(self, other):
        return (
            isinstance(other, PBin)
            and self.op == other.op
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self):
        return hash(("PBin", self.op, self.lhs, self.rhs))


class PUn(PExpr):
    __slots__ = ("op", "arg")

    OPS = ("log2", "exp2")

    def __init__(self, op: str, arg: PExpr):
        if op not in self.OPS:
            raise ParamError(f"unknown unary operator {op!r}")
        self.op = op
        self.arg = arg

    def __eq__(self, other):
        return isinstance(other, PUn) and self.op == other.op and self.arg == other.arg

    def __hash__(self):
        return hash(("PUn", self.op, self.arg))


class PAccess(PExpr):
    """Functional parameter access: ``Comp[P*]::#out``."""

    __slots__ = ("comp", "args", "out")

    def __init__(self, comp: str, args: Sequence[PExpr], out: str):
        self.comp = comp
        self.args = tuple(args)
        self.out = out

    def __eq__(self, other):
        return (
            isinstance(other, PAccess)
            and self.comp == other.comp
            and self.args == other.args
            and self.out == other.out
        )

    def __hash__(self):
        return hash(("PAccess", self.comp, self.args, self.out))


class PInstOut(PExpr):
    """Output parameter of an instance in scope: ``Add::#L``."""

    __slots__ = ("instance", "out")

    def __init__(self, instance: str, out: str):
        self.instance = instance
        self.out = out

    def __eq__(self, other):
        return (
            isinstance(other, PInstOut)
            and self.instance == other.instance
            and self.out == other.out
        )

    def __hash__(self):
        return hash(("PInstOut", self.instance, self.out))


class PIte(PExpr):
    """Conditional parameter expression ``C ? P : P`` (Figure 9b)."""

    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: "Constraint", then: PExpr, other: PExpr):
        self.cond = cond
        self.then = then
        self.other = other

    def __eq__(self, rhs):
        return (
            isinstance(rhs, PIte)
            and self.cond == rhs.cond
            and self.then == rhs.then
            and self.other == rhs.other
        )

    def __hash__(self):
        return hash(("PIte", self.cond, self.then, self.other))


# --------------------------------------------------------------------------
# Constraints (the C grammar).


class Constraint:
    def land(self, other) -> "Constraint":
        return CAnd(self, other)

    def lor(self, other) -> "Constraint":
        return COr(self, other)

    def neg(self) -> "Constraint":
        return CNot(self)

    def __repr__(self):
        return f"Constraint({pretty_constraint(self)})"


class CBool(Constraint):
    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = bool(value)

    def __eq__(self, other):
        return isinstance(other, CBool) and self.value == other.value

    def __hash__(self):
        return hash(("CBool", self.value))


class CCmp(Constraint):
    __slots__ = ("op", "lhs", "rhs")

    OPS = ("==", "!=", "<=", "<", ">=", ">")

    def __init__(self, op: str, lhs: PExpr, rhs: PExpr):
        if op not in self.OPS:
            raise ParamError(f"unknown comparison {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def __eq__(self, other):
        return (
            isinstance(other, CCmp)
            and self.op == other.op
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self):
        return hash(("CCmp", self.op, self.lhs, self.rhs))


class CNot(Constraint):
    __slots__ = ("arg",)

    def __init__(self, arg: Constraint):
        self.arg = arg

    def __eq__(self, other):
        return isinstance(other, CNot) and self.arg == other.arg

    def __hash__(self):
        return hash(("CNot", self.arg))


class CAnd(Constraint):
    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Constraint, rhs: Constraint):
        self.lhs = lhs
        self.rhs = rhs

    def __eq__(self, other):
        return isinstance(other, CAnd) and self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self):
        return hash(("CAnd", self.lhs, self.rhs))


class COr(Constraint):
    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Constraint, rhs: Constraint):
        self.lhs = lhs
        self.rhs = rhs

    def __eq__(self, other):
        return isinstance(other, COr) and self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self):
        return hash(("COr", self.lhs, self.rhs))


# --------------------------------------------------------------------------
# Helpers.


def wrap(value: Union[int, PExpr]) -> PExpr:
    """Coerce Python ints (and strings naming parameters) to expressions."""
    if isinstance(value, PExpr):
        return value
    if isinstance(value, int):
        return PInt(value)
    if isinstance(value, str):
        return PVar(value)
    raise ParamError(f"cannot interpret {value!r} as a parameter expression")


def P(value: Union[int, str, PExpr]) -> PExpr:
    """Public constructor: ``P(4)``, ``P("#W")``."""
    return wrap(value)


def access(comp: str, args: Sequence[Union[int, str, PExpr]], out: str) -> PAccess:
    return PAccess(comp, [wrap(a) for a in args], out)


def inst_out(instance: str, out: str) -> PInstOut:
    return PInstOut(instance, out)


def ite(cond: Constraint, then, other) -> PIte:
    return PIte(cond, wrap(then), wrap(other))


def free_params(node: Union[PExpr, Constraint]) -> Set[str]:
    """Names of parameters referenced by a P expression or constraint."""
    out: Set[str] = set()

    def go(n):
        if isinstance(n, PVar):
            out.add(n.name)
        elif isinstance(n, PBin):
            go(n.lhs)
            go(n.rhs)
        elif isinstance(n, PUn):
            go(n.arg)
        elif isinstance(n, PAccess):
            for a in n.args:
                go(a)
        elif isinstance(n, PIte):
            go(n.cond)
            go(n.then)
            go(n.other)
        elif isinstance(n, CCmp):
            go(n.lhs)
            go(n.rhs)
        elif isinstance(n, CNot):
            go(n.arg)
        elif isinstance(n, (CAnd, COr)):
            go(n.lhs)
            go(n.rhs)

    go(node)
    return out


def instance_outs(node: Union[PExpr, Constraint]) -> Set[PInstOut]:
    """All instance-output accesses in an expression or constraint."""
    out: Set[PInstOut] = set()

    def go(n):
        if isinstance(n, PInstOut):
            out.add(n)
        elif isinstance(n, PBin):
            go(n.lhs)
            go(n.rhs)
        elif isinstance(n, PUn):
            go(n.arg)
        elif isinstance(n, PAccess):
            for a in n.args:
                go(a)
        elif isinstance(n, PIte):
            go(n.cond)
            go(n.then)
            go(n.other)
        elif isinstance(n, CCmp):
            go(n.lhs)
            go(n.rhs)
        elif isinstance(n, CNot):
            go(n.arg)
        elif isinstance(n, (CAnd, COr)):
            go(n.lhs)
            go(n.rhs)

    go(node)
    return out


def substitute_params(
    node: Union[PExpr, Constraint], mapping: Dict[str, PExpr]
) -> Union[PExpr, Constraint]:
    """Substitute parameter variables by expressions."""

    def go(n):
        if isinstance(n, PInt):
            return n
        if isinstance(n, PVar):
            return mapping.get(n.name, n)
        if isinstance(n, PBin):
            return PBin(n.op, go(n.lhs), go(n.rhs))
        if isinstance(n, PUn):
            return PUn(n.op, go(n.arg))
        if isinstance(n, PAccess):
            return PAccess(n.comp, [go(a) for a in n.args], n.out)
        if isinstance(n, PInstOut):
            return n
        if isinstance(n, PIte):
            return PIte(go(n.cond), go(n.then), go(n.other))
        if isinstance(n, CBool):
            return n
        if isinstance(n, CCmp):
            return CCmp(n.op, go(n.lhs), go(n.rhs))
        if isinstance(n, CNot):
            return CNot(go(n.arg))
        if isinstance(n, CAnd):
            return CAnd(go(n.lhs), go(n.rhs))
        if isinstance(n, COr):
            return COr(go(n.lhs), go(n.rhs))
        raise ParamError(f"unknown node {n!r}")

    return go(node)


def substitute_inst_outs(
    node: Union[PExpr, Constraint], mapping: Dict[PInstOut, PExpr]
) -> Union[PExpr, Constraint]:
    """Substitute instance-output accesses by expressions."""

    def go(n):
        if isinstance(n, PInstOut):
            return mapping.get(n, n)
        if isinstance(n, (PInt, PVar, CBool)):
            return n
        if isinstance(n, PBin):
            return PBin(n.op, go(n.lhs), go(n.rhs))
        if isinstance(n, PUn):
            return PUn(n.op, go(n.arg))
        if isinstance(n, PAccess):
            return PAccess(n.comp, [go(a) for a in n.args], n.out)
        if isinstance(n, PIte):
            return PIte(go(n.cond), go(n.then), go(n.other))
        if isinstance(n, CCmp):
            return CCmp(n.op, go(n.lhs), go(n.rhs))
        if isinstance(n, CNot):
            return CNot(go(n.arg))
        if isinstance(n, CAnd):
            return CAnd(go(n.lhs), go(n.rhs))
        if isinstance(n, COr):
            return COr(go(n.lhs), go(n.rhs))
        raise ParamError(f"unknown node {n!r}")

    return go(node)


# --------------------------------------------------------------------------
# Pretty printing (paper-style).


def pretty(expr: PExpr) -> str:
    if isinstance(expr, PInt):
        return str(expr.value)
    if isinstance(expr, PVar):
        return expr.name
    if isinstance(expr, PBin):
        return f"({pretty(expr.lhs)} {expr.op} {pretty(expr.rhs)})"
    if isinstance(expr, PUn):
        return f"{expr.op}({pretty(expr.arg)})"
    if isinstance(expr, PAccess):
        args = ", ".join(pretty(a) for a in expr.args)
        return f"{expr.comp}[{args}]::{expr.out}"
    if isinstance(expr, PInstOut):
        return f"{expr.instance}::{expr.out}"
    if isinstance(expr, PIte):
        return (
            f"({pretty_constraint(expr.cond)} ? {pretty(expr.then)}"
            f" : {pretty(expr.other)})"
        )
    raise ParamError(f"unknown expression {expr!r}")


def pretty_constraint(constraint: Constraint) -> str:
    if isinstance(constraint, CBool):
        return "true" if constraint.value else "false"
    if isinstance(constraint, CCmp):
        return f"{pretty(constraint.lhs)} {constraint.op} {pretty(constraint.rhs)}"
    if isinstance(constraint, CNot):
        return f"!({pretty_constraint(constraint.arg)})"
    if isinstance(constraint, CAnd):
        return (
            f"({pretty_constraint(constraint.lhs)} & "
            f"{pretty_constraint(constraint.rhs)})"
        )
    if isinstance(constraint, COr):
        return (
            f"({pretty_constraint(constraint.lhs)} | "
            f"{pretty_constraint(constraint.rhs)})"
        )
    raise ParamError(f"unknown constraint {constraint!r}")

"""Concrete evaluation of parameter expressions (used by the elaborator)
and symbolic encoding into SMT terms (used by the type checker).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from .. import smt
from .expr import (
    CAnd,
    CBool,
    CCmp,
    CNot,
    COr,
    Constraint,
    ParamError,
    PAccess,
    PBin,
    PExpr,
    PInstOut,
    PInt,
    PIte,
    PUn,
    PVar,
)

# Resolver signatures used by callers:
#   access_fn(PAccess, env)   -> int     (elaborator: run the component)
#   inst_out_fn(PInstOut)     -> int     (elaborator: read bound instance)
AccessFn = Callable[[PAccess, Dict[str, int]], int]
InstOutFn = Callable[[PInstOut], int]


def _log2(value: int) -> int:
    if value < 1:
        raise ParamError(f"log2 of non-positive value {value}")
    return value.bit_length() - 1


def evaluate(
    expr: PExpr,
    env: Dict[str, int],
    access_fn: Optional[AccessFn] = None,
    inst_out_fn: Optional[InstOutFn] = None,
) -> int:
    """Evaluate a parameter expression to a concrete integer."""
    if isinstance(expr, PInt):
        return expr.value
    if isinstance(expr, PVar):
        if expr.name not in env:
            raise ParamError(f"unbound parameter {expr.name}")
        return env[expr.name]
    if isinstance(expr, PBin):
        lhs = evaluate(expr.lhs, env, access_fn, inst_out_fn)
        rhs = evaluate(expr.rhs, env, access_fn, inst_out_fn)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "/":
            if rhs == 0:
                raise ParamError("division by zero in parameter expression")
            return lhs // rhs
        if expr.op == "%":
            if rhs == 0:
                raise ParamError("modulo by zero in parameter expression")
            return lhs % rhs
    if isinstance(expr, PUn):
        arg = evaluate(expr.arg, env, access_fn, inst_out_fn)
        if expr.op == "log2":
            return _log2(arg)
        if expr.op == "exp2":
            if arg < 0:
                raise ParamError(f"exp2 of negative value {arg}")
            return 2**arg
    if isinstance(expr, PAccess):
        if access_fn is None:
            raise ParamError(
                f"parameter access {expr.comp}::{expr.out} needs an elaborator"
            )
        return access_fn(expr, env)
    if isinstance(expr, PInstOut):
        if inst_out_fn is None:
            raise ParamError(
                f"instance output {expr.instance}::{expr.out} not in scope"
            )
        return inst_out_fn(expr)
    if isinstance(expr, PIte):
        if evaluate_constraint(expr.cond, env, access_fn, inst_out_fn):
            return evaluate(expr.then, env, access_fn, inst_out_fn)
        return evaluate(expr.other, env, access_fn, inst_out_fn)
    raise ParamError(f"cannot evaluate {expr!r}")


def evaluate_constraint(
    constraint: Constraint,
    env: Dict[str, int],
    access_fn: Optional[AccessFn] = None,
    inst_out_fn: Optional[InstOutFn] = None,
) -> bool:
    if isinstance(constraint, CBool):
        return constraint.value
    if isinstance(constraint, CCmp):
        lhs = evaluate(constraint.lhs, env, access_fn, inst_out_fn)
        rhs = evaluate(constraint.rhs, env, access_fn, inst_out_fn)
        return {
            "==": lhs == rhs,
            "!=": lhs != rhs,
            "<=": lhs <= rhs,
            "<": lhs < rhs,
            ">=": lhs >= rhs,
            ">": lhs > rhs,
        }[constraint.op]
    if isinstance(constraint, CNot):
        return not evaluate_constraint(constraint.arg, env, access_fn, inst_out_fn)
    if isinstance(constraint, CAnd):
        return evaluate_constraint(
            constraint.lhs, env, access_fn, inst_out_fn
        ) and evaluate_constraint(constraint.rhs, env, access_fn, inst_out_fn)
    if isinstance(constraint, COr):
        return evaluate_constraint(
            constraint.lhs, env, access_fn, inst_out_fn
        ) or evaluate_constraint(constraint.rhs, env, access_fn, inst_out_fn)
    raise ParamError(f"cannot evaluate constraint {constraint!r}")


# --------------------------------------------------------------------------
# Symbolic encoding (type checker).

# Encoders map PAccess / PInstOut to SMT terms; the type checker supplies
# them because the translation needs signature information (section 4.2:
# output parameters become uninterpreted functions of input parameters).
SymAccessFn = Callable[[PAccess], smt.Term]
SymInstOutFn = Callable[[PInstOut], smt.Term]


def encode(
    expr: PExpr,
    var_fn: Callable[[str], smt.Term],
    access_fn: Optional[SymAccessFn] = None,
    inst_out_fn: Optional[SymInstOutFn] = None,
) -> smt.Term:
    """Encode a parameter expression as an SMT integer term."""
    if isinstance(expr, PInt):
        return smt.IntVal(expr.value)
    if isinstance(expr, PVar):
        return var_fn(expr.name)
    if isinstance(expr, PBin):
        lhs = encode(expr.lhs, var_fn, access_fn, inst_out_fn)
        rhs = encode(expr.rhs, var_fn, access_fn, inst_out_fn)
        if expr.op == "+":
            return smt.Plus(lhs, rhs)
        if expr.op == "-":
            return smt.Minus(lhs, rhs)
        if expr.op == "*":
            return smt.Times(lhs, rhs)
        if expr.op == "/":
            return smt.Div(lhs, rhs)
        if expr.op == "%":
            return smt.Mod(lhs, rhs)
    if isinstance(expr, PUn):
        arg = encode(expr.arg, var_fn, access_fn, inst_out_fn)
        return smt.App(expr.op, arg)
    if isinstance(expr, PAccess):
        if access_fn is None:
            raise ParamError(f"no encoder for parameter access {expr!r}")
        return access_fn(expr)
    if isinstance(expr, PInstOut):
        if inst_out_fn is None:
            raise ParamError(f"no encoder for instance output {expr!r}")
        return inst_out_fn(expr)
    if isinstance(expr, PIte):
        cond = encode_constraint(expr.cond, var_fn, access_fn, inst_out_fn)
        then = encode(expr.then, var_fn, access_fn, inst_out_fn)
        other = encode(expr.other, var_fn, access_fn, inst_out_fn)
        return smt.Ite(cond, then, other)
    raise ParamError(f"cannot encode {expr!r}")


def encode_constraint(
    constraint: Constraint,
    var_fn: Callable[[str], smt.Term],
    access_fn: Optional[SymAccessFn] = None,
    inst_out_fn: Optional[SymInstOutFn] = None,
) -> smt.Term:
    """Encode a constraint as an SMT boolean term."""
    if isinstance(constraint, CBool):
        return smt.BoolVal(constraint.value)
    if isinstance(constraint, CCmp):
        lhs = encode(constraint.lhs, var_fn, access_fn, inst_out_fn)
        rhs = encode(constraint.rhs, var_fn, access_fn, inst_out_fn)
        return {
            "==": smt.Eq,
            "!=": smt.Ne,
            "<=": smt.Le,
            "<": smt.Lt,
            ">=": smt.Ge,
            ">": smt.Gt,
        }[constraint.op](lhs, rhs)
    if isinstance(constraint, CNot):
        return smt.Not(
            encode_constraint(constraint.arg, var_fn, access_fn, inst_out_fn)
        )
    if isinstance(constraint, CAnd):
        return smt.And(
            encode_constraint(constraint.lhs, var_fn, access_fn, inst_out_fn),
            encode_constraint(constraint.rhs, var_fn, access_fn, inst_out_fn),
        )
    if isinstance(constraint, COr):
        return smt.Or(
            encode_constraint(constraint.lhs, var_fn, access_fn, inst_out_fn),
            encode_constraint(constraint.rhs, var_fn, access_fn, inst_out_fn),
        )
    raise ParamError(f"cannot encode constraint {constraint!r}")

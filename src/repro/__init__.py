"""Reproduction of "Parameterized Hardware Design with Latency-Abstract
Interfaces" (Lilac, ASPLOS 2026).

Subpackages:

* ``repro.smt``        — QF_UFLIA SMT solver (the Z3 substitute)
* ``repro.params``     — parameter expressions and constraints
* ``repro.lilac``      — the HDL: parser, type checker, elaborator
* ``repro.filament``   — concrete structural IR
* ``repro.rtl``        — netlists, simulation, Verilog emission
* ``repro.generators`` — hardware generator stand-ins
* ``repro.li``         — latency-insensitive (ready-valid) substrate
* ``repro.synth``      — area/timing cost model
* ``repro.designs``    — the paper's evaluated designs
* ``repro.evalx``      — regenerates every table and figure

Quick start::

    from repro.lilac.stdlib import stdlib_program
    from repro.lilac.typecheck import check_program
    from repro.lilac.elaborate import Elaborator
    from repro.generators import default_registry

    program = stdlib_program(my_lilac_source)
    check_program(program)
    result = Elaborator(program, default_registry()).elaborate("Top", {...})
"""

__version__ = "1.0.0"

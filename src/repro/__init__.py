"""Reproduction of "Parameterized Hardware Design with Latency-Abstract
Interfaces" (Lilac, ASPLOS 2026).

Subpackages:

* ``repro.smt``        — QF_UFLIA SMT solver (the Z3 substitute)
* ``repro.params``     — parameter expressions and constraints
* ``repro.lilac``      — the HDL: parser, type checker, elaborator
* ``repro.filament``   — concrete structural IR
* ``repro.rtl``        — netlists, simulation, Verilog emission
* ``repro.generators`` — hardware generator stand-ins
* ``repro.li``         — latency-insensitive (ready-valid) substrate
* ``repro.synth``      — area/timing cost model
* ``repro.driver``     — staged compiler driver: sessions, artifact
  cache, parallel evaluation grid, and the ``python -m repro`` CLI
* ``repro.designs``    — the paper's evaluated designs
* ``repro.evalx``      — regenerates every table and figure

Quick start::

    from repro.driver import CompileSession
    from repro.generators import default_registry

    session = CompileSession()
    result = session.compile(my_lilac_source, "Top", {"#W": 32},
                             generators=default_registry())
    result.elab       # the elaborated design (schedule + RTL)
    result.verilog    # structural Verilog text
    result.report     # synthesis cost-model report
    result.timings()  # per-stage wall-clock seconds

Repeated compiles — same source, component, parameter binding and
generator configuration — are served from the session's
content-addressed artifact cache.  From the shell::

    python -m repro compile --design fpu --freq 400
    python -m repro all
"""

__version__ = "1.1.0"

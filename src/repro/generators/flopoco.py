"""FloPoCo stand-in (section 2 and Figure 4 of the paper).

FloPoCo [de Dinechin & Pasca 2011] accepts a computation (add, multiply),
a bitwidth, and performance goals (target frequency, FPGA family) and
emits a pipelined latency-sensitive core, *reporting* the resulting
pipeline depth on its command line.  Changing the performance goals
changes the latency in ways the user cannot predict — the motivating
example for latency-abstract interfaces.

This stand-in reproduces that contract:

* ``FPAdd[#W]`` / ``FPMul[#W]`` produce genuinely pipelined integer
  datapaths (the paper's evaluation depends on pipeline structure, not on
  IEEE-754 semantics — see DESIGN.md substitutions);
* the pipeline depth is a function of bitwidth and target frequency;
* the depth is *scraped from the textual report* via the registry's
  binding-pattern mechanism, mirroring how Lilac's compiler integrates
  the real tool.

Latency model (calibrated so the paper's Table 1 design points are
reachable): at 100 MHz a 32-bit adder fits in one stage (A=1, M=1); at
400 MHz it needs four (A=4, M=2).
"""

from __future__ import annotations

from math import ceil
from typing import Dict

from .base import GeneratedModule, Generator, GeneratorError
from .datapath import pipelined_adder, pipelined_multiplier


def adder_depth(width: int, frequency_mhz: int) -> int:
    """Pipeline depth FloPoCo would pick for an adder."""
    return max(1, round((width / 32) * (frequency_mhz / 100)))


def multiplier_depth(width: int, frequency_mhz: int) -> int:
    """Pipeline depth for a multiplier (DSP-assisted, so shallower)."""
    return max(1, round((width / 32) * (frequency_mhz / 200)))


class FloPoCoGenerator(Generator):
    name = "flopoco"
    binding_patterns = {"#L": r"Pipeline depth = (\d+)"}

    def __init__(self, frequency_mhz: int = 400, target: str = "Virtex6"):
        if frequency_mhz < 1:
            raise GeneratorError("target frequency must be positive")
        self.frequency_mhz = frequency_mhz
        self.target = target

    def generate(self, comp_name: str, params: Dict[str, int]) -> GeneratedModule:
        width = params.get("#W")
        if width is None or width < 1:
            raise GeneratorError(f"flopoco: {comp_name} needs parameter #W >= 1")
        if comp_name == "FPAdd":
            depth = adder_depth(width, self.frequency_mhz)
            module = pipelined_adder(
                f"FPAdd_W{width}_F{self.frequency_mhz}", width, depth
            )
            operator = "FPAdd"
        elif comp_name == "FPMul":
            depth = multiplier_depth(width, self.frequency_mhz)
            module = pipelined_multiplier(
                f"FPMul_W{width}_F{self.frequency_mhz}", width, depth
            )
            operator = "FPMult"
        else:
            raise GeneratorError(f"flopoco: unknown operator {comp_name!r}")
        report = self._report(operator, width, depth)
        return GeneratedModule(module, report=report)

    def _report(self, operator: str, width: int, depth: int) -> str:
        return "\n".join(
            [
                "FloPoCo 4.1 (reproduction stand-in)",
                f"> {operator} we=8 wf={width} "
                f"frequency={self.frequency_mhz} target={self.target}",
                f"  Entity {operator}_{width}_F{self.frequency_mhz}",
                f"  Pipeline depth = {depth}",
                "  Output file: flopoco.vhdl",
            ]
        )

"""Serializer backing (Figure 11 of the paper).

The paper's serializer "simply instantiates a register for each element
and forwards its output"; chunks become visible to the consumer at
parameter-dependent times.  We realize it as a generator-backed component
so the register bank plus the chunk-select mux tree appear as concrete
RTL:

* ``#NC * #B`` hold registers (one per element, enabled by the event);
* a phase counter advancing every cycle after the event;
* a ``#NC``-to-1 mux tree per output lane selecting the current chunk —
  the high-fanout select that the paper identifies as the LA critical
  path.

The mux tree shrinks as the convolution's parallelism grows (fewer
chunks), which is exactly the "less serialization logic" trend behind
Figure 13.

Interface (declared in ``repro.designs.gbp_la``)::

    gen "serializer" comp Ser[#W, #NC, #B, #C, #H]<G:#C*#NC>(
        en_i: interface[G], in[#NC*#B]: [G, G+1] #W
    ) -> (o[#B]: [G+1, G+#C*(#NC-1)+#H+1] #W)
      where #NC >= 1, #B >= 1, #C >= #H, #H >= 1;
"""

from __future__ import annotations

from typing import Dict

from .base import GeneratedModule, Generator, GeneratorError
from .control_util import phase_counter
from ..rtl import Module


class SerializerGenerator(Generator):
    name = "serializer"

    def generate(self, comp_name: str, params: Dict[str, int]) -> GeneratedModule:
        if comp_name != "Ser":
            raise GeneratorError(f"serializer: unknown component {comp_name!r}")
        width = params["#W"]
        chunks = params["#NC"]
        lane_count = params["#B"]
        gap = params["#C"]
        hold = params["#H"]
        if min(width, chunks, lane_count, gap, hold) < 1:
            raise GeneratorError("serializer: all parameters must be >= 1")
        module = self._build(width, chunks, lane_count, gap)
        report = (
            "Lilac serializer elaboration (Figure 11)\n"
            f"  elements={chunks * lane_count} chunk={lane_count} "
            f"gap={gap} hold={hold}"
        )
        return GeneratedModule(module, report=report)

    def _build(self, width: int, chunks: int, lanes: int, gap: int) -> Module:
        m = Module(f"Ser_W{width}_NC{chunks}_B{lanes}_C{gap}")
        en = m.add_input("en_i", 1)
        total = chunks * lanes
        packed_in = m.add_input("in", total * width)
        packed_out = m.add_output("o", lanes * width)
        # One hold register per element (the Figure 11 structure).
        held = []
        for index in range(total):
            element = m.unop(
                "slice", packed_in, width=width, lsb=index * width
            )
            q = m.fresh_net(width, f"hold{index}")
            m.add_cell("regen", {"d": element, "en": en, "q": q})
            held.append(q)
        if chunks == 1:
            lanes_out = held
        else:
            # A gap counter pulses every `gap` cycles; a chunk counter
            # advances on the pulse (no divider in real hardware).
            from ..rtl.netlist import onehot_mux

            chunk_index = self._chunk_counter(m, en, chunks, gap)
            selects = []
            for chunk in range(chunks):
                target = m.constant(chunk, chunk_index.width)
                selects.append(m.binop("eq", chunk_index, target, 1))
            lanes_out = []
            for lane in range(lanes):
                cases = [
                    (selects[chunk], held[chunk * lanes + lane])
                    for chunk in range(chunks)
                ]
                lanes_out.append(onehot_mux(m, cases, width))
        packed = lanes_out[-1]
        for lane_net in reversed(lanes_out[:-1]):
            widened = m.fresh_net(packed.width + width, "opack")
            m.add_cell("concat", {"a": packed, "b": lane_net, "out": widened})
            packed = widened
        m.add_cell("slice", {"a": packed, "out": packed_out}, {"lsb": 0})
        return m

    @staticmethod
    def _chunk_counter(m: Module, restart, chunks: int, gap: int):
        """chunk_index advances every ``gap`` cycles after ``restart``."""
        from math import ceil, log2

        gap_width = max(1, ceil(log2(gap + 1)))
        chunk_width = max(1, ceil(log2(chunks + 1)))
        gap_state = m.fresh_net(gap_width, "gapcnt")
        chunk_state = m.fresh_net(chunk_width, "chunkcnt")
        one_g = m.constant(1, gap_width)
        gap_last = m.binop("eq", gap_state, m.constant(gap - 1, gap_width), 1)
        bumped = m.binop("add", gap_state, one_g, gap_width)
        wrapped = m.mux(gap_last, m.constant(0, gap_width), bumped)
        next_gap = m.mux(restart, m.constant(0, gap_width), wrapped)
        m.add_cell("reg", {"d": next_gap, "q": gap_state}, {"init": 0})
        one_c = m.constant(1, chunk_width)
        at_top = m.binop(
            "eq", chunk_state, m.constant(chunks - 1, chunk_width), 1
        )
        hold = m.mux(at_top, chunk_state, m.binop("add", chunk_state, one_c, chunk_width))
        stepped = m.mux(gap_last, hold, chunk_state)
        next_chunk = m.mux(restart, m.constant(0, chunk_width), stepped)
        m.add_cell("reg", {"d": next_chunk, "q": chunk_state}, {"init": 0})
        return chunk_state

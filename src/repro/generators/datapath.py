"""Reusable pipelined datapath constructions for the generator stand-ins.

These build *structurally honest* pipelines: an L-stage adder really is
chunked with a carry pipeline (registers scale with L and W), and an
L-stage multiplier really accumulates partial products.  The synthesis
model (area, critical path) therefore responds to pipeline depth the way
real generated cores do.
"""

from __future__ import annotations

from math import ceil
from typing import List, Optional, Tuple

from ..rtl import Module, Net


def _chunk_bounds(width: int, stages: int) -> List[Tuple[int, int]]:
    """Split ``width`` bits into ``stages`` contiguous (lsb, size) chunks."""
    chunk = ceil(width / stages)
    bounds = []
    lsb = 0
    while lsb < width:
        size = min(chunk, width - lsb)
        bounds.append((lsb, size))
        lsb += size
    return bounds


def pipelined_adder(name: str, width: int, stages: int) -> Module:
    """An L-stage pipelined adder: ports a, b -> o with latency ``stages``.

    Stage ``s`` adds bit-chunk ``s`` (operands delayed ``s`` cycles) plus
    the carry from stage ``s-1``; chunk results are delayed to align at
    cycle ``stages``.
    """
    if stages < 1:
        raise ValueError("adder needs at least one stage")
    m = Module(name)
    a = m.add_input("l", width)
    b = m.add_input("r", width)
    out = m.add_output("o", width)
    bounds = _chunk_bounds(width, stages)
    actual_stages = len(bounds)
    # Align total latency to `stages` even if fewer chunks are needed.
    carry: Optional[Net] = None
    chunks: List[Tuple[Net, int]] = []  # (net at cycle s+1, stage index)
    a_delayed, b_delayed = a, b
    for stage, (lsb, size) in enumerate(bounds):
        chunk_a = m.unop("slice", a_delayed, width=size, lsb=lsb)
        chunk_b = m.unop("slice", b_delayed, width=size, lsb=lsb)
        total = m.binop("add", chunk_a, chunk_b, width=size + 1)
        if carry is not None:
            total = m.binop("add", total, carry, width=size + 1)
        summed = m.register(total)  # cycle stage+1
        low = m.unop("slice", summed, width=size, lsb=0)
        chunks.append((low, stage))
        carry = m.unop("slice", summed, width=1, lsb=size)
        if stage + 1 < actual_stages:
            a_delayed = m.register(a_delayed)
            b_delayed = m.register(b_delayed)
    # Delay each chunk to cycle `stages` and concatenate.
    aligned: List[Net] = []
    for net, stage in chunks:
        extra = stages - (stage + 1)
        aligned.append(m.delay_chain(net, extra))
    packed = aligned[0]
    for net in aligned[1:]:
        merged = m.fresh_net(packed.width + net.width, "sum")
        m.add_cell("concat", {"a": net, "b": packed, "out": merged})
        packed = merged
    m.add_cell("slice", {"a": packed, "out": out}, {"lsb": 0})
    return m


def pipelined_multiplier(name: str, width: int, stages: int) -> Module:
    """An L-stage shift-add multiplier: ports l, r -> o (low ``width`` bits).

    Stage ``s`` multiplies the delayed ``l`` by chunk ``s`` of ``r`` and
    accumulates into a pipelined partial sum.
    """
    if stages < 1:
        raise ValueError("multiplier needs at least one stage")
    m = Module(name)
    a = m.add_input("l", width)
    b = m.add_input("r", width)
    out = m.add_output("o", width)
    bounds = _chunk_bounds(width, stages)
    acc: Optional[Net] = None
    a_delayed, b_delayed = a, b
    for stage, (lsb, size) in enumerate(bounds):
        chunk_b = m.unop("slice", b_delayed, width=size, lsb=lsb)
        partial = m.binop("mul", a_delayed, chunk_b, width=width)
        shifted = m.unop("shl", partial, width=width, amount=lsb)
        if acc is not None:
            shifted = m.binop("add", shifted, acc, width=width)
        acc = m.register(shifted)
        if stage + 1 < len(bounds):
            a_delayed = m.register(a_delayed)
            b_delayed = m.register(b_delayed)
    extra = stages - len(bounds)
    acc = m.delay_chain(acc, extra)
    m.add_cell("slice", {"a": acc, "out": out}, {"lsb": 0})
    return m


def pipelined_divider(
    name: str,
    width: int,
    bits_per_stage: int,
    total_latency: int,
    num_name: str = "n",
    den_name: str = "d",
    quot_name: str = "q",
) -> Module:
    """A restoring divider: ``bits_per_stage`` quotient bits per pipeline
    stage, padded with alignment registers to ``total_latency``.

    This is the structure behind all three Vivado divider
    microarchitectures (Figure 9): LutMult packs many bits per stage,
    Radix-2 resolves one bit per stage, High-radix resolves four.
    """
    stages = ceil(width / bits_per_stage)
    if total_latency < stages:
        raise ValueError(
            f"latency {total_latency} below pipeline depth {stages}"
        )
    m = Module(name)
    n = m.add_input(num_name, width)
    d = m.add_input(den_name, width)
    q = m.add_output(quot_name, width)
    rem = m.constant(0, width + 1)
    n_cur, d_cur = n, d
    q_bits: List[Tuple[Net, int]] = []  # (bit net, ready cycle)
    bit = width - 1
    for stage in range(stages):
        for _ in range(bits_per_stage):
            if bit < 0:
                break
            n_bit = m.unop("slice", n_cur, width=1, lsb=bit)
            shifted = m.unop("shl", rem, width=width + 1, amount=1)
            candidate = m.binop("or", shifted, n_bit, width=width + 1)
            fits_net = m.fresh_net(1, "fits")
            m.add_cell("lt", {"a": d_cur, "b": candidate, "out": fits_net})
            eq_net = m.fresh_net(1, "deq")
            m.add_cell("eq", {"a": d_cur, "b": candidate, "out": eq_net})
            ge = m.binop("or", fits_net, eq_net, 1)
            reduced = m.binop("sub", candidate, d_cur, width=width + 1)
            rem = m.mux(ge, reduced, candidate)
            # ge is combinational during cycle `stage` (inputs are delayed
            # `stage` times); it needs total_latency - stage registers to
            # be valid during cycle `total_latency`.
            q_bits.append((ge, stage))
            bit -= 1
        rem = m.register(rem)
        n_cur = m.register(n_cur)
        d_cur = m.register(d_cur)
    # Align each quotient bit to total_latency and pack MSB..LSB.
    aligned = [
        m.delay_chain(net, total_latency - ready) for net, ready in q_bits
    ]
    packed = aligned[0]  # MSB first
    for net in aligned[1:]:
        widened = m.fresh_net(packed.width + 1, "qpack")
        m.add_cell("concat", {"a": packed, "b": net, "out": widened})
        packed = widened
    m.add_cell("slice", {"a": packed, "out": q}, {"lsb": 0})
    return m


def butterfly_network(
    name: str,
    num_points: int,
    width: int,
    extra_latency: int = 0,
    port_in: str = "x",
    port_out: str = "y",
) -> Module:
    """A pipelined add/sub butterfly network over ``num_points`` elements.

    One register level per butterfly stage (log2(num_points) stages), plus
    ``extra_latency`` alignment registers.  With unity twiddle factors this
    computes a Walsh--Hadamard transform — structurally identical to a
    radix-2 FFT datapath (see DESIGN.md substitutions).
    """
    if num_points & (num_points - 1):
        raise ValueError("num_points must be a power of two")
    m = Module(name)
    packed_in = m.add_input(port_in, num_points * width)
    packed_out = m.add_output(port_out, num_points * width)
    lanes = [
        m.unop("slice", packed_in, width=width, lsb=i * width)
        for i in range(num_points)
    ]
    span = num_points // 2
    while span >= 1:
        next_lanes = list(lanes)
        for base in range(0, num_points, span * 2):
            for offset in range(span):
                i, j = base + offset, base + offset + span
                next_lanes[i] = m.binop("add", lanes[i], lanes[j], width)
                next_lanes[j] = m.binop("sub", lanes[i], lanes[j], width)
        lanes = [m.register(lane) for lane in next_lanes]
        span //= 2
    lanes = [m.delay_chain(lane, extra_latency) for lane in lanes]
    packed = lanes[-1]
    for lane in reversed(lanes[:-1]):
        widened = m.fresh_net(packed.width + width, "pack")
        m.add_cell("concat", {"a": packed, "b": lane, "out": widened})
        packed = widened
    m.add_cell("slice", {"a": packed, "out": packed_out}, {"lsb": 0})
    return m


def combinational_block(name: str, width: int, op: str) -> Module:
    """Single-cycle (latency 0) two-input block used by simpler tools."""
    m = Module(name)
    a = m.add_input("l", width)
    b = m.add_input("r", width)
    out = m.add_output("o", width)
    m.add_cell(op, {"a": a, "b": b, "out": out})
    return m


def delayed_block(name: str, width: int, op: str, latency: int) -> Module:
    """A two-input op followed by ``latency`` alignment registers."""
    m = Module(name)
    a = m.add_input("l", width)
    b = m.add_input("r", width)
    out = m.add_output("o", width)
    result = m.binop(op, a, b, width=width)
    delayed = m.delay_chain(result, latency)
    m.add_cell("slice", {"a": delayed, "out": out}, {"lsb": 0})
    return m

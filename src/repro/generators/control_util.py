"""Shared control helpers for generator RTL (phase counters etc.)."""

from __future__ import annotations

from math import ceil, log2

from ..rtl import Module, Net


def phase_counter(m: Module, restart: Net, limit: int) -> Net:
    """A saturating cycle counter reset by ``restart``.

    During the cycle after ``restart`` is high the counter reads 0, then
    1, 2, ... up to ``limit`` (where it saturates until the next restart).
    """
    width = max(1, ceil(log2(limit + 2)))
    state = m.fresh_net(width, "phase")
    one = m.constant(1, width)
    bumped = m.binop("add", state, one, width)
    limit_net = m.constant(limit, width)
    at_limit = m.binop("eq", state, limit_net, 1)
    advanced = m.mux(at_limit, state, bumped)
    zero = m.constant(0, width)
    next_state = m.mux(restart, zero, advanced)
    m.add_cell("reg", {"d": next_state, "q": state}, {"init": 0})
    return state

"""Vivado LogiCORE multiplier stand-in (section 6.1).

"Like Shift, the multiplier core generator takes an explicit input
parameter to specify the output latency" — the canonical *in-dep*
generator: the user picks ``#L`` and the tool delivers exactly that
pipeline depth.

Lilac interface (from the paper)::

    comp Mult<G:1>[#W, #L](a: [G, G+1] #W, b: [G, G+1] #W)
        -> (o: [G+#L, G+#L+1] #W)
"""

from __future__ import annotations

from typing import Dict

from .base import GeneratedModule, Generator, GeneratorError
from .datapath import pipelined_multiplier
from ..rtl import Module


class VivadoMultGenerator(Generator):
    name = "vivado-mult"

    def generate(self, comp_name: str, params: Dict[str, int]) -> GeneratedModule:
        if comp_name != "Mult":
            raise GeneratorError(f"vivado-mult: unknown core {comp_name!r}")
        width = params.get("#W", 0)
        latency = params.get("#L", 0)
        if width < 1:
            raise GeneratorError("vivado-mult: #W must be >= 1")
        if latency < 1:
            raise GeneratorError("vivado-mult: #L must be >= 1")
        module = pipelined_multiplier(f"Mult_W{width}_L{latency}", width, latency)
        _rename_ports(module, {"l": "a", "r": "b"})
        report = (
            "Xilinx LogiCORE Multiplier v12.0 (reproduction stand-in)\n"
            f"  PortAWidth={width} PortBWidth={width} "
            f"PipeStages={latency} MultType=Parallel"
        )
        return GeneratedModule(module, report=report)


def _rename_ports(module: Module, mapping: Dict[str, str]) -> None:
    """Rename module ports in place (builder datapaths use l/r/o names)."""
    for old, new in mapping.items():
        net = module.ports.pop(old)
        direction = module.port_dirs.pop(old)
        net.name = new
        module.ports[new] = net
        module.port_dirs[new] = direction
        module.nets.pop(old, None)
        module.nets[new] = net

"""Hardware generator stand-ins (section 6 of the paper)."""

from .base import (
    GeneratedModule,
    Generator,
    GeneratorError,
    GeneratorRegistry,
    default_registry,
)

__all__ = [
    "GeneratedModule",
    "Generator",
    "GeneratorError",
    "GeneratorRegistry",
    "default_registry",
]

"""Latency-abstract Lilac interfaces for every supported generator.

These are the ``gen`` declarations the paper shows in Figures 4, 9 and
10a, written in our concrete syntax.  Table 3's feature taxonomy is
annotated on each entry:

* ``in-dep``   — input parameters affect timing behaviour
* ``out-dep``  — output parameters needed to describe timing
* ``ii-gt-1``  — initiation interval can exceed one
* ``multi``    — inputs must be held over multi-cycle intervals
"""

from __future__ import annotations

from typing import Dict, FrozenSet

# FloPoCo (Figure 4): out-dep.  Frequency goals change #L unpredictably.
FLOPOCO_INTERFACES = """
gen "flopoco" comp FPAdd[#W]<G:1>(
    l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L > 0; };

gen "flopoco" comp FPMul[#W]<G:1>(
    l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L > 0; };
"""

# Vivado multiplier (section 6.1): in-dep.  The user chooses #L.
VIVADO_MULT_INTERFACE = """
gen "vivado-mult" comp Mult[#W, #L]<G:1>(
    a: [G, G+1] #W, b: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) where #L >= 1;
"""

# Vivado dividers (Figure 9).
VIVADO_DIV_INTERFACES = """
// LutMult (Figure 9a): fixed latency-sensitive timing.
gen "vivado-div" comp LutMult[#W]<G:1>(
    n: [G, G+1] #W, d: [G, G+1] #W
) -> (q: [G+8, G+9] #W) where #W < 12;

// Radix-2 (Figure 9b): input-parameter-dependent timing.  The where
// clause publishes the closed-form latency formula, so parents can
// reason about the concrete value.
gen "vivado-div" comp Rad2[#W, #II, #Fr]<G:#II>(
    n: [G, G+1] #W, d: [G, G+1] #W
) -> (q: [G+#L, G+#L+1] #W) with {
    some #L where
        (#Fr > 0 & #II > 1 ? #L == #W+5 :
        (#Fr > 0 & #II <= 1 ? #L == #W+4 :
        (#II > 1 ? #L == #W+3 : #L == #W+2)));
} where #II >= 1, #II < 9, #II % 2 == 1, #W < 16;

// High-radix (Figure 9c): latency only known via the datasheet table —
// fully latency-abstract.
gen "vivado-div" comp HighRad[#W]<G:1>(
    n: [G, G+1] #W, d: [G, G+1] #W
) -> (q: [G+#L, G+#L+1] #W) with { some #L where #L > 0; }
  where #W >= 16;
"""

# Vivado FFT (section 6.1): out-dep, table-driven latency.
VIVADO_FFT_INTERFACE = """
gen "vivado-fft" comp XFft[#LogN, #W]<G:1>(
    x: [G, G+1] #W * exp2(#LogN)
) -> (y: [G+#L, G+#L+1] #W * exp2(#LogN)) with { some #L where #L > 0; };
"""

# Aetherling convolution (Figure 10a): every feature at once.
AETHERLING_INTERFACE = """
gen "aetherling" comp AethConv[#W]<G:#II>(
    val_i: interface[G],
    in[#N]: [G, G+#H] #W
) -> (out[#N]: [G+#L, G+#L+1] #W) with {
    some #H where #H > 0;
    some #N where 16 % #N == 0, #N > 0;
    some #L where #L > 0;
    some #II where #II >= #H, #II > 0;
};
"""

# PipelineC: in-dep, user-specified latency.
PIPELINEC_INTERFACES = """
gen "pipelinec" comp PipeAdd[#W, #L]<G:1>(
    l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) where #L >= 1;

gen "pipelinec" comp PipeMul[#W, #L]<G:1>(
    l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) where #L >= 1;
"""

# XLS: in-dep + ii-gt-1 (partially pipelined blocks).  The latency
# formula is deterministic in #II, so it appears directly in the
# interface (no output parameter needed — Table 3's XLS row).
XLS_INTERFACE = """
gen "xls" comp XlsMac[#W, #II]<G:#II>(
    a: [G, G+1] #W, b: [G, G+1] #W, c: [G, G+1] #W
) -> (o: [G+#II+2, G+#II+3] #W) where #II >= 1;
"""

# Spiral FFT: in-dep, out-dep, ii-gt-1.
SPIRAL_INTERFACE = """
gen "spiral" comp SpiralFft[#LogN, #W]<G:#II>(
    x: [G, G+1] #W * exp2(#LogN)
) -> (y: [G+#L, G+#L+1] #W * exp2(#LogN)) with {
    some #L where #L > 0;
    some #II where #II > 0;
} where #LogN >= 1;
"""

ALL_INTERFACES = "\n".join(
    [
        FLOPOCO_INTERFACES,
        VIVADO_MULT_INTERFACE,
        VIVADO_DIV_INTERFACES,
        VIVADO_FFT_INTERFACE,
        AETHERLING_INTERFACE,
        PIPELINEC_INTERFACES,
        XLS_INTERFACE,
        SPIRAL_INTERFACE,
    ]
)

# Table 3 of the paper: generator -> features needed to capture its
# interface.  Recomputed programmatically by repro.evalx.table3 and
# cross-checked against this expectation in the benchmark.
TABLE3_FEATURES: Dict[str, FrozenSet[str]] = {
    "PipelineC": frozenset({"in-dep"}),
    "FloPoCo": frozenset({"in-dep", "out-dep"}),
    "XLS": frozenset({"in-dep", "ii-gt-1"}),
    "Spiral FFT": frozenset({"in-dep", "out-dep", "ii-gt-1"}),
    "Aetherling": frozenset({"in-dep", "out-dep", "ii-gt-1", "multi"}),
}

"""Spiral FFT stand-in (Table 3: *in-dep*, *out-dep*, *ii-gt-1*).

Spiral [Milder et al. 2012] generates streaming linear-transform
datapaths; the streaming width is a quality knob that trades area for
initiation interval, and latency is reported by the tool.

Core: ``SpiralFft[#LogN, #W]`` — an N-point transform over a packed array
port.  The generator's streaming-width knob sets ``#II = N /
streaming_width`` and a latency of ``log2(N) + II + 1``.

The datapath is a pipelined butterfly network with unity twiddles (a
Walsh--Hadamard transform); see DESIGN.md on why this preserves the
pipeline structure the evaluation cares about.
"""

from __future__ import annotations

from typing import Dict

from .base import GeneratedModule, Generator, GeneratorError
from .datapath import butterfly_network


class SpiralFftGenerator(Generator):
    name = "spiral"
    binding_patterns = {
        "#L": r"latency = (\d+)",
        "#II": r"gap = (\d+)",
    }

    def __init__(self, streaming_width: int = 4):
        if streaming_width < 1 or streaming_width & (streaming_width - 1):
            raise GeneratorError("spiral: streaming width must be a power of two")
        self.streaming_width = streaming_width

    def generate(self, comp_name: str, params: Dict[str, int]) -> GeneratedModule:
        if comp_name != "SpiralFft":
            raise GeneratorError(f"spiral: unknown transform {comp_name!r}")
        log_n = params.get("#LogN", 0)
        width = params.get("#W", 0)
        if log_n < 1 or width < 1:
            raise GeneratorError("spiral: need #LogN >= 1 and #W >= 1")
        points = 1 << log_n
        ii = max(1, points // self.streaming_width)
        latency = log_n + ii + 1
        module = butterfly_network(
            f"SpiralFft_N{points}_W{width}_S{self.streaming_width}",
            points,
            width,
            extra_latency=latency - log_n,
        )
        report = (
            "Spiral DFT generator (reproduction stand-in)\n"
            f"  size={points} width={width} streaming={self.streaming_width}\n"
            f"  latency = {latency}\n"
            f"  gap = {ii}"
        )
        return GeneratedModule(module, report=report)

"""PipelineC stand-in (Table 3: *in-dep*).

PipelineC [Kemmerer 2022] lets the user request an exact pipeline latency
for a C-like function; the tool inserts the registers.  The Lilac
interface is therefore fully determined by input parameters — the
simplest generator class in Table 3.

Supported cores: ``PipeAdd``, ``PipeMul`` — ``[#W, #L]`` with the
requested latency.
"""

from __future__ import annotations

from typing import Dict

from .base import GeneratedModule, Generator, GeneratorError
from .datapath import delayed_block


class PipelineCGenerator(Generator):
    name = "pipelinec"

    CORES = {"PipeAdd": "add", "PipeMul": "mul"}

    def generate(self, comp_name: str, params: Dict[str, int]) -> GeneratedModule:
        op = self.CORES.get(comp_name)
        if op is None:
            raise GeneratorError(f"pipelinec: unknown function {comp_name!r}")
        width = params.get("#W", 0)
        latency = params.get("#L", 0)
        if width < 1:
            raise GeneratorError("pipelinec: #W must be >= 1")
        if latency < 1:
            raise GeneratorError("pipelinec: #L must be >= 1")
        module = delayed_block(
            f"{comp_name}_W{width}_L{latency}", width, op, latency
        )
        report = (
            "PipelineC (reproduction stand-in)\n"
            f"  func={comp_name} width={width} requested_latency={latency}\n"
            f"  inserted {latency} register stages"
        )
        return GeneratedModule(module, report=report)

"""Generator interface: how the elaborator invokes external tools.

Section 5 of the paper: "Each generator provides a configuration file that
defines the modules it produces and the mechanism to extract bindings for
output parameters for each module (reading the command-line output, looking
for a file, etc.)."

Our generator stand-ins produce real RTL netlists plus a textual report in
the style of the tool they simulate; output-parameter bindings are
extracted from the report via the generator's ``binding_patterns`` (regular
expressions), or returned directly when a generator opts out of the
report mechanism.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from ..rtl import Module


class GeneratorError(Exception):
    pass


class GeneratedModule:
    """What a generator hands back to the elaborator."""

    def __init__(
        self,
        module: Module,
        out_params: Optional[Dict[str, int]] = None,
        report: str = "",
    ):
        self.module = module
        self.out_params = dict(out_params or {})
        self.report = report


class Generator:
    """Base class for tool stand-ins.

    Subclasses implement :meth:`generate`, returning a
    :class:`GeneratedModule`.  If ``binding_patterns`` is non-empty the
    registry extracts output parameters from the textual report instead of
    (or in addition to) the ``out_params`` dict — mirroring how the real
    Lilac compiler scrapes FloPoCo's command-line output.
    """

    #: tool name used in ``gen "<name>" comp ...`` declarations.
    name: str = "abstract"

    #: out-param name -> regex with one capture group, matched on report.
    binding_patterns: Dict[str, str] = {}

    def generate(self, comp_name: str, params: Dict[str, int]) -> GeneratedModule:
        raise NotImplementedError

    def fingerprint(self) -> Tuple:
        """Value-based identity of this generator's configuration.

        Two generators with the same class and the same configuration
        attributes produce identical modules, so artifact caches may
        treat them as interchangeable.  Every attribute participates
        (via its repr): dropping one would let differently configured
        generators collide in the cache and serve each other's RTL.
        """
        config = tuple(
            (key, repr(value)) for key, value in sorted(vars(self).items())
        )
        return (type(self).__name__, self.name, config)


class GeneratorRegistry:
    def __init__(self):
        self._generators: Dict[str, Generator] = {}

    def register(self, generator: Generator) -> "GeneratorRegistry":
        self._generators[generator.name] = generator
        return self

    def get(self, name: str) -> Generator:
        generator = self._generators.get(name)
        if generator is None:
            raise GeneratorError(f"no generator registered for tool {name!r}")
        return generator

    def has(self, name: str) -> bool:
        return name in self._generators

    def fingerprint(self) -> Tuple:
        """Combined fingerprint of every registered generator.

        Registries built from equally configured generators fingerprint
        identically, so ``(source, component, params, fingerprint)`` is a
        sound content-addressed cache key across registry instances.
        """
        return tuple(
            sorted(g.fingerprint() for g in self._generators.values())
        )

    def run(
        self, tool: str, comp_name: str, params: Dict[str, int]
    ) -> GeneratedModule:
        """Invoke a generator and extract output-parameter bindings."""
        generator = self.get(tool)
        result = generator.generate(comp_name, params)
        for out_name, pattern in generator.binding_patterns.items():
            match = re.search(pattern, result.report)
            if match is None:
                if out_name in result.out_params:
                    continue
                raise GeneratorError(
                    f"{tool}: could not extract {out_name} from report"
                )
            result.out_params[out_name] = int(match.group(1))
        return result


def default_registry(
    flopoco_mhz: int = 400,
    aetherling_parallelism: int = 16,
    spiral_streaming_width: int = 4,
    fft_target: str = "artix7",
) -> GeneratorRegistry:
    """Registry with every bundled generator stand-in installed.

    The keyword arguments are the tools' *performance goals* — the knobs
    the paper turns to change timing behaviour without touching designs.
    """
    from .flopoco import FloPoCoGenerator
    from .vivado_mult import VivadoMultGenerator
    from .vivado_div import VivadoDividerGenerator
    from .vivado_fft import VivadoFftGenerator
    from .aetherling import AetherlingGenerator
    from .pipelinec import PipelineCGenerator
    from .serializer import SerializerGenerator
    from .xls import XlsGenerator
    from .spiral import SpiralFftGenerator

    registry = GeneratorRegistry()
    registry.register(FloPoCoGenerator(flopoco_mhz))
    registry.register(VivadoMultGenerator())
    registry.register(VivadoDividerGenerator())
    registry.register(VivadoFftGenerator(fft_target))
    registry.register(AetherlingGenerator(aetherling_parallelism))
    registry.register(PipelineCGenerator())
    registry.register(SerializerGenerator())
    registry.register(XlsGenerator())
    registry.register(SpiralFftGenerator(spiral_streaming_width))
    return registry

"""Google XLS stand-in (Table 3: *in-dep* + *ii-gt-1*).

XLS can emit partially pipelined blocks whose initiation interval exceeds
one; the II may be requested via input parameters while the resulting
latency is reported by the tool (abstract to the user).

Core: ``XlsMac[#W, #II]`` — a multiply-accumulate ``o = a*b + c`` whose
pipeline registers are shared across ``#II`` issue slots.  Latency is the
tool's choice: ``#L = #II + 2``.
"""

from __future__ import annotations

from typing import Dict

from .base import GeneratedModule, Generator, GeneratorError
from ..rtl import Module


def xls_latency(ii: int) -> int:
    return ii + 2


class XlsGenerator(Generator):
    name = "xls"
    binding_patterns = {"#L": r"worst-case latency: (\d+) cycles"}

    def generate(self, comp_name: str, params: Dict[str, int]) -> GeneratedModule:
        if comp_name != "XlsMac":
            raise GeneratorError(f"xls: unknown block {comp_name!r}")
        width = params.get("#W", 0)
        ii = params.get("#II", 0)
        if width < 1:
            raise GeneratorError("xls: #W must be >= 1")
        if ii < 1:
            raise GeneratorError("xls: #II must be >= 1")
        latency = xls_latency(ii)
        module = self._build(width, ii, latency)
        report = (
            "XLS[cc] block generator (reproduction stand-in)\n"
            f"  proc XlsMac width={width} initiation_interval={ii}\n"
            f"  worst-case latency: {latency} cycles"
        )
        return GeneratedModule(module, report=report)

    def _build(self, width: int, ii: int, latency: int) -> Module:
        m = Module(f"XlsMac_W{width}_II{ii}")
        a = m.add_input("a", width)
        b = m.add_input("b", width)
        c = m.add_input("c", width)
        o = m.add_output("o", width)
        product = m.binop("mul", a, b, width)
        total = m.binop("add", product, c, width)
        delayed = m.delay_chain(total, latency)
        m.add_cell("slice", {"a": delayed, "out": o}, {"lsb": 0})
        return m

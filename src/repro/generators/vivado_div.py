"""Vivado LogiCORE Divider Generator stand-in (Figure 9 of the paper).

The divider generator offers three microarchitectures with very different
timing contracts:

* **LutMult** (recommended for ``#W < 12``) — fully pipelined, fixed
  eight-cycle latency (Figure 9a, latency-sensitive interface).
* **Radix-2** (recommended for ``#W < 16``) — one quotient bit per stage;
  the initiation interval ``#II`` is an input parameter (odd, < 9) and the
  latency follows a published closed-form formula that depends on ``#II``
  and on whether a fractional remainder is requested (Figure 9b,
  input-parameter-dependent timing).
* **High-radix** (``#W >= 16``) — four bits per stage; the latency comes
  from a table in the user guide with *no closed form* (Figure 9c, fully
  latency-abstract: only an output parameter can describe it).

Latency formulas implemented (the paper quotes the first two)::

    Radix-2:    Fr and II > 1  ->  W + 5
                Fr and II == 1 ->  W + 4
                !Fr and II > 1 ->  W + 3
                !Fr and II == 1->  W + 2
    High-radix: table lookup on W (interpolated upward between entries)
"""

from __future__ import annotations

from typing import Dict

from .base import GeneratedModule, Generator, GeneratorError
from .datapath import pipelined_divider

# The user-guide style latency table for the high-radix core.  Keys are
# the smallest bitwidth the row applies to.
HIGH_RADIX_LATENCY_TABLE = {
    16: 12,
    20: 14,
    24: 15,
    28: 17,
    32: 18,
    40: 21,
    48: 24,
    56: 27,
    64: 30,
}


def radix2_latency(width: int, ii: int, fractional: bool) -> int:
    if fractional:
        return width + 5 if ii > 1 else width + 4
    return width + 3 if ii > 1 else width + 2


def high_radix_latency(width: int) -> int:
    best = None
    for threshold in sorted(HIGH_RADIX_LATENCY_TABLE):
        if width >= threshold:
            best = HIGH_RADIX_LATENCY_TABLE[threshold]
    if best is None:
        raise GeneratorError(
            f"vivado-div: high-radix table has no entry for width {width}"
        )
    return best


class VivadoDividerGenerator(Generator):
    name = "vivado-div"

    def generate(self, comp_name: str, params: Dict[str, int]) -> GeneratedModule:
        width = params.get("#W", 0)
        if width < 1:
            raise GeneratorError("vivado-div: #W must be >= 1")
        if comp_name == "LutMult":
            if width >= 12:
                raise GeneratorError(
                    "vivado-div: LutMult only supports widths below 12"
                )
            latency = 8
            module = pipelined_divider(
                f"DivLutMult_W{width}", width,
                bits_per_stage=max(1, -(-width // 8)),
                total_latency=latency,
            )
            report = self._report("LutMult", width, latency, 1)
            return GeneratedModule(module, report=report)
        if comp_name == "Rad2":
            ii = params.get("#II", 1)
            fractional = bool(params.get("#Fr", 0))
            if ii < 1 or ii >= 9 or ii % 2 == 0:
                raise GeneratorError(
                    "vivado-div: Radix-2 #II must be odd and below 9"
                )
            latency = radix2_latency(width, ii, fractional)
            module = pipelined_divider(
                f"DivRad2_W{width}_II{ii}_Fr{int(fractional)}", width,
                bits_per_stage=1, total_latency=latency,
            )
            report = self._report("Radix2", width, latency, ii)
            return GeneratedModule(
                module, out_params={"#L": latency}, report=report
            )
        if comp_name == "HighRad":
            if width < 16:
                raise GeneratorError(
                    "vivado-div: High-radix requires widths of 16 and above"
                )
            latency = high_radix_latency(width)
            module = pipelined_divider(
                f"DivHighRad_W{width}", width,
                bits_per_stage=4, total_latency=latency,
            )
            report = self._report("HighRadix", width, latency, 1)
            return GeneratedModule(
                module, out_params={"#L": latency}, report=report
            )
        raise GeneratorError(f"vivado-div: unknown microarchitecture {comp_name!r}")

    def _report(self, arch: str, width: int, latency: int, ii: int) -> str:
        return (
            "Xilinx LogiCORE Divider Generator v5.1 (reproduction stand-in)\n"
            f"  Algorithm={arch} DividendWidth={width} DivisorWidth={width}\n"
            f"  Latency={latency} ThroughputCycles={ii}"
        )

"""Vivado LogiCORE FFT stand-in (section 6.1).

"Vivado's FFT generator, similar to High-radix, defines a table that uses
the FPGA target and input parameter values to determine the module's
latency" — an *out-dep* interface with table-driven, closed-form-free
timing.

Core: ``XFft[#LogN, #W]``; latency from a per-target table.
"""

from __future__ import annotations

from typing import Dict

from .base import GeneratedModule, Generator, GeneratorError
from .datapath import butterfly_network

# (target, log2(size)) -> latency, in the style of the datasheet tables.
FFT_LATENCY_TABLE = {
    ("artix7", 3): 25,
    ("artix7", 4): 33,
    ("artix7", 5): 47,
    ("artix7", 6): 77,
    ("kintex7", 3): 21,
    ("kintex7", 4): 28,
    ("kintex7", 5): 40,
    ("kintex7", 6): 66,
    ("virtex6", 3): 23,
    ("virtex6", 4): 30,
    ("virtex6", 5): 43,
    ("virtex6", 6): 70,
}


class VivadoFftGenerator(Generator):
    name = "vivado-fft"

    def __init__(self, target: str = "artix7"):
        self.target = target

    def generate(self, comp_name: str, params: Dict[str, int]) -> GeneratedModule:
        if comp_name != "XFft":
            raise GeneratorError(f"vivado-fft: unknown core {comp_name!r}")
        log_n = params.get("#LogN", 0)
        width = params.get("#W", 0)
        key = (self.target, log_n)
        if key not in FFT_LATENCY_TABLE:
            raise GeneratorError(
                f"vivado-fft: no table entry for target={self.target} "
                f"log2(size)={log_n}"
            )
        if width < 1:
            raise GeneratorError("vivado-fft: #W must be >= 1")
        latency = FFT_LATENCY_TABLE[key]
        points = 1 << log_n
        module = butterfly_network(
            f"XFft_N{points}_W{width}_{self.target}",
            points,
            width,
            extra_latency=latency - log_n,
        )
        report = (
            "Xilinx LogiCORE FFT v9.1 (reproduction stand-in)\n"
            f"  target={self.target} size={points} width={width}\n"
            f"  Latency={latency}"
        )
        return GeneratedModule(module, out_params={"#L": latency}, report=report)

"""Aetherling stand-in (section 7 and Figure 10 of the paper).

Aetherling [Durst et al. 2020] generates stream-processing hardware and
exposes area--performance trade-offs by varying the number of multipliers.
For the 4x4 convolution used in the Gaussian Blur Pyramid evaluation:

* the tool chooses the input chunk size ``#N`` (a factor of 16) — the
  parent must adapt its serialization to whatever the tool picked;
* it reports latency ``#L``, initiation interval ``#II`` and the number
  of cycles ``#H`` the input must be held stable (partially-pipelined
  multipliers) — the features that make this the most demanding interface
  in Table 3 (in-dep, out-dep, ii-gt-1, multi).

Stand-in semantics (documented in DESIGN.md): per invocation the module
shifts ``#N`` new pixels into a 16-pixel window and emits the Gaussian
16-tap dot product of the window (replicated across the ``out[#N]``
lanes).  Structure: one 16-multiplier MAC tree with constant weights plus
a window shift register — multiplier count is constant in ``#N``, while
upstream serialization shrinks as ``#N`` grows, reproducing the
Figure 13 resource trend.

Timing model::

    #N  = parallelism (generator knob, factor of 16)
    #H  = 1 if #N == 16 else 2   (partially-pipelined multipliers)
    #II = #H                     (a new chunk every #H cycles)
    #L  = 8 - log2(#N)           (more parallelism -> shallower pipeline)
"""

from __future__ import annotations

from typing import Dict, List

from .base import GeneratedModule, Generator, GeneratorError
from ..rtl import Module

# 4x4 Gaussian kernel (integer weights summing to 256).
GAUSS_4X4 = [
    1, 7, 7, 1,
    7, 49, 49, 7,
    7, 49, 49, 7,
    1, 7, 7, 1,
]
_WEIGHT_SUM_SHIFT = 8  # divide by 256

VALID_PARALLELISM = (1, 2, 4, 8, 16)


def conv_timing(parallelism: int) -> Dict[str, int]:
    if parallelism not in VALID_PARALLELISM:
        raise GeneratorError(
            f"aetherling: parallelism must be a factor of 16, got {parallelism}"
        )
    hold = 1 if parallelism == 16 else 2
    return {
        "#N": parallelism,
        "#II": hold,
        "#H": hold,
        "#L": 8 - parallelism.bit_length() + 1,
    }


def golden_conv(window: List[int], width: int) -> int:
    """Reference model: Gaussian dot product over a 16-pixel window."""
    total = sum(w * x for w, x in zip(GAUSS_4X4, window))
    return (total >> _WEIGHT_SUM_SHIFT) & ((1 << width) - 1)


class AetherlingGenerator(Generator):
    name = "aetherling"

    def __init__(self, parallelism: int = 16):
        if parallelism not in VALID_PARALLELISM:
            raise GeneratorError(
                f"aetherling: parallelism must be one of {VALID_PARALLELISM}"
            )
        self.parallelism = parallelism

    def generate(self, comp_name: str, params: Dict[str, int]) -> GeneratedModule:
        if comp_name != "AethConv":
            raise GeneratorError(f"aetherling: unknown program {comp_name!r}")
        width = params.get("#W", 0)
        if width < 1:
            raise GeneratorError("aetherling: #W must be >= 1")
        timing = conv_timing(self.parallelism)
        module = self._build(width, timing)
        report = (
            "Aetherling type-directed scheduler (reproduction stand-in)\n"
            f"  conv4x4 throughput={timing['#N']}px/txn "
            f"II={timing['#II']} latency={timing['#L']} hold={timing['#H']}"
        )
        return GeneratedModule(module, out_params=timing, report=report)

    def _build(self, width: int, timing: Dict[str, int]) -> Module:
        n = timing["#N"]
        latency = timing["#L"]
        m = Module(f"AethConv_W{width}_N{n}")
        val_i = m.add_input("val_i", 1)
        packed_in = m.add_input("in", n * width)
        packed_out = m.add_output("out", n * width)
        elements = [
            m.unop("slice", packed_in, width=width, lsb=i * width)
            for i in range(n)
        ]
        # 16-pixel window shifting by n on each valid transaction: new
        # elements enter positions 0..n-1, older pixels shift up.
        regs = [m.fresh_net(width, f"win{i}") for i in range(16)]
        for i in range(16):
            if i < n:
                d = elements[i]
            else:
                d = regs[i - n]
            m.add_cell(
                "regen", {"d": d, "en": val_i, "q": regs[i]}, name=f"winreg{i}"
            )
        # MAC tree: constant-weight multiplies then a pairwise adder tree,
        # pipelined the way the real tool would (a register after the
        # multiply stage and after every two adder levels).
        acc_width = width + 10
        products = []
        for i, weight in enumerate(GAUSS_4X4):
            w_net = m.constant(weight, acc_width)
            widened = m.unop("slice", regs[i], width=acc_width, lsb=0)
            products.append(m.register(m.binop("mul", w_net, widened, acc_width)))
        level = products
        comb_levels = 0
        pipeline_cuts = 1  # the multiply-stage register above
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level), 2):
                nxt.append(m.binop("add", level[i], level[i + 1], acc_width))
            comb_levels += 1
            if comb_levels == 2 and len(nxt) > 1:
                nxt = [m.register(net) for net in nxt]
                pipeline_cuts += 1
                comb_levels = 0
            level = nxt
        scaled = m.unop("shr", level[0], width=acc_width, amount=_WEIGHT_SUM_SHIFT)
        result = m.unop("slice", scaled, width=width, lsb=0)
        # Window valid one cycle after val_i, plus the pipeline cuts;
        # align the remainder to the declared latency.
        aligned = m.delay_chain(result, latency - 1 - pipeline_cuts)
        # Replicate across the n output lanes.
        packed = aligned
        for _ in range(n - 1):
            widened = m.fresh_net(packed.width + width, "rep")
            m.add_cell("concat", {"a": packed, "b": aligned, "out": widened})
            packed = widened
        m.add_cell("slice", {"a": packed, "out": packed_out}, {"lsb": 0})
        return m

"""A self-contained QF_UFLIA SMT solver.

This package replaces the paper's use of Z3: the Lilac type checker issues
quantifier-free queries over linear integer arithmetic extended with
uninterpreted functions (output parameters, log2/exp2, abstracted products).

Public surface::

    from repro.smt import Int, IntVal, And, Or, Not, Implies, Eq, Ne,
        Le, Lt, Ge, Gt, Plus, Minus, Times, Div, Mod, App, Ite,
        Solver, check_sat, prove, SAT, UNSAT
"""

from .terms import (
    Term,
    INT,
    BOOL,
    Int,
    Bool,
    IntVal,
    BoolVal,
    TRUE,
    FALSE,
    App,
    Plus,
    Minus,
    Neg,
    Times,
    Div,
    Mod,
    Eq,
    Ne,
    Le,
    Lt,
    Ge,
    Gt,
    Not,
    And,
    Or,
    Implies,
    Ite,
    free_vars,
    apps,
    substitute,
    subterms,
)
from .lia import LinExpr, NonLinearError, linexpr_of_term, solve_system
from .solver import Result, Solver, SolverError, check_sat, prove, SAT, UNSAT

__all__ = [
    "Term",
    "INT",
    "BOOL",
    "Int",
    "Bool",
    "IntVal",
    "BoolVal",
    "TRUE",
    "FALSE",
    "App",
    "Plus",
    "Minus",
    "Neg",
    "Times",
    "Div",
    "Mod",
    "Eq",
    "Ne",
    "Le",
    "Lt",
    "Ge",
    "Gt",
    "Not",
    "And",
    "Or",
    "Implies",
    "Ite",
    "free_vars",
    "apps",
    "substitute",
    "subterms",
    "LinExpr",
    "NonLinearError",
    "linexpr_of_term",
    "solve_system",
    "Result",
    "Solver",
    "SolverError",
    "check_sat",
    "prove",
    "SAT",
    "UNSAT",
]

"""Ackermann reduction: eliminate uninterpreted functions.

Output parameters are encoded as uninterpreted functions over a component's
input parameters (section 4.2 of the paper): ``Max[#A,#B]::#O`` becomes
``(Max_O A B)``.  The queries the type checker builds are quantifier-free
with few distinct applications, so Ackermann's reduction — replace each
application with a fresh variable and add pairwise functional-consistency
implications — is a simple, complete way to reach pure linear arithmetic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .terms import Term, And, Eq, Implies, Int, apps, substitute


def ackermannize(formula: Term) -> Tuple[Term, List[Term], Dict[Term, Term]]:
    """Remove all uninterpreted applications from ``formula``.

    Returns ``(reduced_formula, consistency_constraints, mapping)`` where
    ``mapping`` sends each original application term to its fresh variable
    (useful for reporting models in terms of output parameters).
    """
    mapping: Dict[Term, Term] = {}
    order: List[Term] = []
    counter = [0]

    def fresh_for(app: Term) -> Term:
        counter[0] += 1
        return Int(f"@{app.name}!{counter[0]}")

    current = formula
    # Innermost-first rounds: nested applications (log2(exp2(x))) need their
    # arguments rewritten before the outer application is keyed.
    while True:
        remaining = [a for a in apps(current) if not apps_in_args(a)]
        if not remaining:
            if apps(current):
                # Only nested apps remain whose args still contain apps —
                # impossible since we remove innermost each round.
                raise AssertionError("ackermannization failed to converge")
            break
        round_map = {}
        for app in sorted(remaining, key=lambda t: t.sexpr()):
            if app not in mapping:
                var = fresh_for(app)
                mapping[app] = var
                order.append(app)
            round_map[app] = mapping[app]
        current = substitute(current, round_map)

    constraints: List[Term] = []
    for i, first in enumerate(order):
        for second in order[i + 1 :]:
            if first.name != second.name or len(first.args) != len(second.args):
                continue
            args_equal = And(
                *[Eq(a, b) for a, b in zip(first.args, second.args)]
            )
            constraints.append(
                Implies(args_equal, Eq(mapping[first], mapping[second]))
            )
    return current, constraints, mapping


def apps_in_args(app: Term) -> bool:
    return any(apps(arg) for arg in app.args)

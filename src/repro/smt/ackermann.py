"""Ackermann reduction: eliminate uninterpreted functions.

Output parameters are encoded as uninterpreted functions over a component's
input parameters (section 4.2 of the paper): ``Max[#A,#B]::#O`` becomes
``(Max_O A B)``.  The queries the type checker builds are quantifier-free
with few distinct applications, so Ackermann's reduction — replace each
application with a fresh variable and add pairwise functional-consistency
implications — is a simple, complete way to reach pure linear arithmetic.

:class:`Ackermannizer` is the stateful core: one instance keeps the
application-to-variable mapping alive across many formulas, so the
incremental solver reuses fresh variables for repeated applications and
emits each pairwise consistency constraint exactly once (new
applications are paired against everything seen before them).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .terms import Term, And, Eq, Implies, Int, apps, substitute


class Ackermannizer:
    """Stateful Ackermann reduction shared across formulas."""

    def __init__(self):
        #: application term -> fresh integer variable, insertion-ordered.
        self.mapping: Dict[Term, Term] = {}
        self._order: List[Term] = []
        self._counter = 0

    def _fresh_for(self, app: Term) -> Term:
        self._counter += 1
        return Int(f"@{app.name}!{self._counter}")

    def process(self, formula: Term) -> Tuple[Term, List[Term]]:
        """Remove all uninterpreted applications from ``formula``.

        Returns ``(reduced_formula, new_consistency_constraints)``; the
        constraints cover every (new, previously seen) pair plus the new
        pairs among themselves, so over a sequence of calls the full
        pairwise set is emitted exactly once.
        """
        fresh_start = len(self._order)
        current = formula
        # Innermost-first rounds: nested applications (log2(exp2(x))) need
        # their arguments rewritten before the outer application is keyed.
        while True:
            remaining = [a for a in apps(current) if not apps_in_args(a)]
            if not remaining:
                if apps(current):
                    # Only nested apps remain whose args still contain apps —
                    # impossible since we remove innermost each round.
                    raise AssertionError("ackermannization failed to converge")
                break
            round_map = {}
            for app in sorted(remaining, key=lambda t: t.sexpr()):
                if app not in self.mapping:
                    var = self._fresh_for(app)
                    self.mapping[app] = var
                    self._order.append(app)
                round_map[app] = self.mapping[app]
            current = substitute(current, round_map)

        # Pair every application with each *new* one after it, in the
        # same (first, second) lexicographic order the one-shot
        # reduction always used — constraint order feeds Tseitin
        # variable numbering and hence the search trajectory, so parity
        # matters for reproducibility, not just semantics.
        constraints: List[Term] = []
        for index, first in enumerate(self._order):
            for second_index in range(
                max(index + 1, fresh_start), len(self._order)
            ):
                second = self._order[second_index]
                if (
                    first.name != second.name
                    or len(first.args) != len(second.args)
                ):
                    continue
                args_equal = And(
                    *[Eq(a, b) for a, b in zip(first.args, second.args)]
                )
                constraints.append(
                    Implies(
                        args_equal, Eq(self.mapping[first], self.mapping[second])
                    )
                )
        return current, constraints


def ackermannize(formula: Term) -> Tuple[Term, List[Term], Dict[Term, Term]]:
    """One-shot wrapper: remove all uninterpreted applications.

    Returns ``(reduced_formula, consistency_constraints, mapping)`` where
    ``mapping`` sends each original application term to its fresh variable
    (useful for reporting models in terms of output parameters).
    """
    reducer = Ackermannizer()
    reduced, constraints = reducer.process(formula)
    return reduced, constraints, reducer.mapping


def apps_in_args(app: Term) -> bool:
    return any(apps(arg) for arg in app.args)

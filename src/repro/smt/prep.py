"""Preprocessing passes that reduce full parameter arithmetic to QF_UFLIA.

Two constructs in the paper's parameter grammar fall outside plain linear
integer arithmetic:

* ``div``/``mod`` — eliminated by introducing fresh quotient/remainder
  variables with their defining constraints (exact for positive divisors,
  which is the only case Lilac designs use);
* non-linear products of parameters — abstracted with the uninterpreted
  function ``@mul`` plus sign/unit axioms, mirroring how the paper treats
  complex computations as uninterpreted functions with helper equalities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .terms import (
    Term,
    And,
    App,
    Eq,
    Ge,
    Implies,
    Int,
    IntVal,
    Le,
    Or,
    Plus,
    Times,
    rebuild,
    OP_DIV,
    OP_MOD,
    OP_MUL,
    OP_INTVAL,
    OP_ITE,
)


class _Fresh:
    def __init__(self, prefix: str):
        self.prefix = prefix
        self.count = 0

    def make(self) -> Term:
        self.count += 1
        return Int(f"{self.prefix}{self.count}")


class DivModEliminator:
    """Stateful div/mod elimination.

    For ``div(a, c)`` / ``mod(a, c)`` we introduce ``q``/``r`` with

        c >= 1  =>  a == c*q + r  and  0 <= r <= c - 1

    The same (a, c) pair shares one quotient/remainder across *every*
    formula processed through one instance (both operators and repeated
    obligations stay consistent), and each pair's defining constraint is
    emitted exactly once — the incremental solver asserts it permanently
    the first time the pair appears.  When the divisor can be
    non-positive the definition is vacuous and the fresh variables are
    unconstrained, which can only make the query easier to satisfy (a
    conservative direction for a checker that reports SAT results as
    counterexamples).
    """

    def __init__(self):
        self._fresh_q = _Fresh("$q")
        self._fresh_r = _Fresh("$r")
        self._table: Dict[Tuple[Term, Term], Tuple[Term, Term]] = {}
        self._memo: Dict[Term, Term] = {}

    def process(self, formula: Term) -> Tuple[Term, List[Term]]:
        side: List[Term] = []

        def lookup(num: Term, den: Term) -> Tuple[Term, Term]:
            key = (num, den)
            hit = self._table.get(key)
            if hit is not None:
                return hit
            quotient, remainder = self._fresh_q.make(), self._fresh_r.make()
            self._table[key] = (quotient, remainder)
            definition = And(
                Eq(num, Plus(Times(den, quotient), remainder)),
                Ge(remainder, 0),
                Le(remainder, Plus(den, IntVal(-1))),
            )
            if den.op == OP_INTVAL and den.value >= 1:
                side.append(definition)
            else:
                side.append(Implies(Ge(den, 1), definition))
            return quotient, remainder

        memo = self._memo

        def walk(term: Term) -> Term:
            if not term.args:
                return term
            hit = memo.get(term)
            if hit is not None:
                return hit
            new_args = tuple(walk(a) for a in term.args)
            if term.op == OP_DIV:
                result, _ = lookup(new_args[0], new_args[1])
            elif term.op == OP_MOD:
                _, result = lookup(new_args[0], new_args[1])
            else:
                result = rebuild(term, new_args)
            memo[term] = result
            return result

        return walk(formula), side


def eliminate_divmod(formula: Term) -> Tuple[Term, List[Term]]:
    """One-shot wrapper around :class:`DivModEliminator`."""
    return DivModEliminator().process(formula)


class IteEliminator:
    """Stateful integer-``ite`` elimination: one fresh variable (and one
    pair of defining implications, emitted once) per distinct ``ite``
    term across every formula processed through one instance."""

    def __init__(self):
        self._fresh = _Fresh("$ite")
        self._cache: Dict[Term, Term] = {}
        self._memo: Dict[Term, Term] = {}

    def process(self, formula: Term) -> Tuple[Term, List[Term]]:
        side: List[Term] = []
        cache = self._cache
        memo = self._memo

        def walk(term: Term) -> Term:
            if not term.args:
                return term
            hit = memo.get(term)
            if hit is not None:
                return hit
            new_args = tuple(walk(a) for a in term.args)
            if term.op == OP_ITE:
                rebuilt = rebuild(term, new_args)
                result = cache.get(rebuilt)
                if result is None:
                    result = self._fresh.make()
                    cond, then, other = new_args
                    side.append(Implies(cond, Eq(result, then)))
                    side.append(Or(cond, Eq(result, other)))
                    cache[rebuilt] = result
            else:
                result = rebuild(term, new_args)
            memo[term] = result
            return result

        return walk(formula), side


def eliminate_ite(formula: Term) -> Tuple[Term, List[Term]]:
    """One-shot wrapper around :class:`IteEliminator`."""
    return IteEliminator().process(formula)


class NonlinearAbstractor:
    """Stateful abstraction of non-linear products with ``@mul``.

    The @mul application is later Ackermannized like any uninterpreted
    function; the axioms recover the facts Lilac designs rely on (signs,
    units, zero annihilation).  Pairwise axioms (shared-factor
    monotonicity, distributivity) are recomputed over *all* products the
    instance has seen and deduplicated, so products discovered by later
    formulas still get cross-axioms against earlier ones — incremental
    queries are therefore at least as strongly axiomatized as a one-shot
    query over the same conjunction.
    """

    def __init__(self):
        self._seen: Dict[Term, List[Term]] = {}
        self._memo: Dict[Term, Term] = {}
        self._emitted: set = set()

    def process(self, formula: Term) -> Tuple[Term, List[Term]]:
        axioms: List[Term] = []
        seen = self._seen
        memo = self._memo

        def walk(term: Term) -> Term:
            if not term.args:
                return term
            hit = memo.get(term)
            if hit is not None:
                return hit
            new_args = tuple(walk(a) for a in term.args)
            result = None
            if term.op == OP_MUL:
                const = 1
                factors = []
                for arg in new_args:
                    if arg.op == OP_INTVAL:
                        const *= arg.value
                    else:
                        factors.append(arg)
                if len(factors) >= 2:
                    factors.sort(key=lambda t: t.sexpr())
                    product = App("@mul", *factors)
                    if product not in seen:
                        seen[product] = factors
                        axioms.extend(_mul_axioms(product, factors))
                    result = Times(IntVal(const), product)
            if result is None:
                result = rebuild(term, new_args)
            memo[term] = result
            return result

        reduced = walk(formula)
        for axiom in _shared_factor_axioms(seen):
            if axiom not in self._emitted:
                self._emitted.add(axiom)
                axioms.append(axiom)
        for axiom in _distributivity_axioms(seen):
            if axiom not in self._emitted:
                self._emitted.add(axiom)
                axioms.append(axiom)
        return reduced, axioms


def abstract_nonlinear(formula: Term) -> Tuple[Term, List[Term]]:
    """One-shot wrapper around :class:`NonlinearAbstractor`."""
    return NonlinearAbstractor().process(formula)


def _distributivity_axioms(seen: Dict[Term, List[Term]]) -> List[Term]:
    """Exact linear relations between products sharing a factor.

    When @mul(a, b1), @mul(a, b2) and @mul(a, b3) all occur and the
    *co-factors* satisfy b3 == b1 - b2 (or b1 + b2) as linear
    expressions, emit the corresponding equality — this is the
    distributivity the type checker's pipeline-balancing proofs need
    (e.g. ``CI*(NC-1-k) == CI*(NC-1) - CI*k``).
    """
    from .lia import LinExpr, NonLinearError, linexpr_of_term

    axioms: List[Term] = []
    pairs = [(p, f) for p, f in seen.items() if len(f) == 2]
    linized: Dict[Term, Optional[object]] = {}

    def lin(term: Term):
        if term not in linized:
            try:
                linized[term] = linexpr_of_term(term)
            except NonLinearError:
                linized[term] = None
        return linized[term]

    # Group by shared factor.
    by_factor: Dict[Term, List[Tuple[Term, Term]]] = {}
    for product, factors in pairs:
        for index in (0, 1):
            by_factor.setdefault(factors[index], []).append(
                (product, factors[1 - index])
            )
    for shared, group in by_factor.items():
        if len(group) < 3:
            continue
        cofactor_lin = [(prod, co, lin(co)) for prod, co in group]
        for i, (p1, c1, l1) in enumerate(cofactor_lin):
            if l1 is None:
                continue
            for j, (p2, c2, l2) in enumerate(cofactor_lin):
                if i == j or l2 is None:
                    continue
                diff = l1.sub(l2)
                total = l1.add(l2)
                for p3, c3, l3 in cofactor_lin:
                    if l3 is None or p3 is p1 or p3 is p2:
                        continue
                    if l3 == diff:
                        axioms.append(Eq(p3, Plus(p1, Times(IntVal(-1), p2))))
                    if l3 == total and i < j:
                        axioms.append(Eq(p3, Plus(p1, p2)))
    return axioms


def _shared_factor_axioms(seen: Dict[Term, List[Term]]) -> List[Term]:
    """Pairwise monotonicity for products sharing a factor.

    For @mul(a, b1) and @mul(a, b2):  a >= 0 and b1 >= b2 implies
    mul1 >= mul2, and a >= 0 and b1 >= b2 + 1 implies mul1 >= mul2 + a.
    These linear instances let the solver prove loop-schedule spacing
    (``C*k1 - C*k2 >= C`` for distinct iterations) without non-linear
    arithmetic.
    """
    axioms: List[Term] = []
    products = list(seen.items())
    for i, (prod1, factors1) in enumerate(products):
        for prod2, factors2 in products[i + 1 :]:
            if len(factors1) != 2 or len(factors2) != 2:
                continue
            for shared in factors1:
                if shared not in factors2:
                    continue
                other1 = factors1[1] if factors1[0] == shared else factors1[0]
                other2 = factors2[1] if factors2[0] == shared else factors2[0]
                nonneg = Ge(shared, 0)
                axioms.append(
                    Implies(And(nonneg, Ge(other1, other2)), Ge(prod1, prod2))
                )
                axioms.append(
                    Implies(And(nonneg, Ge(other2, other1)), Ge(prod2, prod1))
                )
                axioms.append(
                    Implies(
                        And(nonneg, Ge(other1, Plus(other2, IntVal(1)))),
                        Ge(prod1, Plus(prod2, shared)),
                    )
                )
                axioms.append(
                    Implies(
                        And(nonneg, Ge(other2, Plus(other1, IntVal(1)))),
                        Ge(prod2, Plus(prod1, shared)),
                    )
                )
    return axioms


def _mul_axioms(product: Term, factors: List[Term]) -> List[Term]:
    all_nonneg = And(*[Ge(f, 0) for f in factors])
    all_pos = And(*[Ge(f, 1) for f in factors])
    axioms = [Implies(all_nonneg, Ge(product, 0))]
    for factor in factors:
        axioms.append(Implies(all_pos, Ge(product, factor)))
        axioms.append(Implies(Eq(factor, 0), Eq(product, 0)))
    if len(factors) == 2:
        left, right = factors
        axioms.append(Implies(Eq(left, 1), Eq(product, right)))
        axioms.append(Implies(Eq(right, 1), Eq(product, left)))
        # Mixed signs: one non-negative and one non-positive factor give a
        # non-positive product (needed to bound quotients from below).
        axioms.append(
            Implies(And(Ge(left, 0), Le(right, 0)), Le(product, 0))
        )
        axioms.append(
            Implies(And(Le(left, 0), Ge(right, 0)), Le(product, 0))
        )
    return axioms

"""Canonical forms for proof obligations: alpha-renaming + digests.

The type checker discharges hundreds of obligations whose assertion sets
differ only in machine-generated variable names (renamed loop indices
``k'12`` vs ``k'15``, fresh bundle-read indices, …).  Canonicalizing a
query — sorting its conjuncts by a variable-blind skeleton, renaming
variables positionally, and hashing the result — collapses such
alpha-variants onto one digest, which keys both the in-process verdict
memo and the persistent :class:`~repro.driver.cache.ObligationStore`
("smt" pseudo-stage of the disk cache).

The collapse is *best-effort*, not a decision procedure for
alpha-equivalence: skeleton-equal conjuncts tie-break on their original
(rename-sensitive) text, so pathological queries can land on different
digests despite being alpha-equivalent.  That direction is always safe —
a missed hit re-runs the solver; digests are injective on the canonical
text, so equal digests never conflate genuinely different queries.

Models travel with the cache in canonical names: a SAT verdict's model
is translated *to* canonical names when stored and back into the
requesting query's own names on a hit (token-wise, so application
s-expressions like ``(FPAdd.#L #W)`` translate too).  Canonical names
are fixed-width (``?v000042``), so no name is a prefix of another and
token replacement is collision-free; ``?`` cannot begin a user or
solver-generated variable.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, List, Optional, Sequence

from .terms import Term, OP_AND, OP_VAR, substitute

_TOKEN = re.compile(r"[^\s()]+")

#: term -> variable-blind skeleton string (process-wide; hash-consed
#: terms make this safe and cheap).
_SKELETON_MEMO: Dict[Term, str] = {}


def clear_canon_memo() -> None:
    _SKELETON_MEMO.clear()


def _skeleton(term: Term) -> str:
    """Render with every variable replaced by ``?``.

    Function symbols (uninterpreted applications) are kept — they are
    semantic, not alpha-convertible.  The skeleton gives conjuncts a
    rename-invariant primary sort key, so alpha-equivalent queries order
    their conjuncts identically.
    """
    hit = _SKELETON_MEMO.get(term)
    if hit is not None:
        return hit
    if term.op == OP_VAR:
        text = "?"
    elif not term.args:
        text = term.sexpr()
    else:
        inner = " ".join(_skeleton(a) for a in term.args)
        head = term.name if term.op == "app" else term.op
        text = f"({head} {inner})"
    _SKELETON_MEMO[term] = text
    return text


class CanonicalQuery:
    """A query's digest plus the name maps to and from canonical form."""

    __slots__ = ("digest", "to_canonical", "to_original")

    def __init__(
        self,
        digest: str,
        to_canonical: Dict[str, str],
        to_original: Dict[str, str],
    ):
        self.digest = digest
        self.to_canonical = to_canonical
        self.to_original = to_original


def canonical_query(assertions: Sequence[Term], tag: str = "") -> CanonicalQuery:
    """Canonicalize an assertion set.

    ``tag`` folds engine/version context into the digest (the caller
    passes the discharge engine name; the persistent store additionally
    keys on ``SOLVER_VERSION``).
    """
    conjuncts: List[Term] = []
    seen = set()
    for assertion in assertions:
        parts = assertion.args if assertion.op == OP_AND else (assertion,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                conjuncts.append(part)
    ordered = sorted(conjuncts, key=lambda t: (_skeleton(t), t.sexpr()))
    mapping: Dict[Term, Term] = {}
    to_canonical: Dict[str, str] = {}
    counter = 0
    for term in ordered:
        stack = [term]
        while stack:
            current = stack.pop()
            if current.op == OP_VAR:
                if current not in mapping:
                    canon = f"?v{counter:06d}"
                    counter += 1
                    mapping[current] = Term(
                        OP_VAR, name=canon, sort=current.sort
                    )
                    to_canonical[current.name] = canon
                continue
            stack.extend(reversed(current.args))
    renamed = sorted(substitute(term, mapping).sexpr() for term in ordered)
    basis = "\n".join(renamed) + f"\n|{tag}"
    digest = hashlib.sha256(basis.encode("utf-8")).hexdigest()
    to_original = {canon: name for name, canon in to_canonical.items()}
    return CanonicalQuery(digest, to_canonical, to_original)


def translate_model(
    model: Optional[Dict[str, int]], table: Dict[str, str]
) -> Optional[Dict[str, int]]:
    """Rewrite a model's keys token-wise through a name table.

    Keys are variable names or application s-expressions; tokens not in
    the table (operators, constants, function symbols) pass through.
    """
    if model is None:
        return None
    return {
        _TOKEN.sub(lambda m: table.get(m.group(0), m.group(0)), key): value
        for key, value in model.items()
    }

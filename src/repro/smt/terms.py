"""Term language for the QF_UFLIA solver.

The Lilac type checker (section 4 of the paper) discharges quantifier-free
queries over linear integer arithmetic extended with uninterpreted functions
(used to encode output parameters and ``log2``/``exp2``).  This module defines
the term representation shared by every stage of the solver pipeline.

Terms are immutable and structurally hashable.  Smart constructors perform
light normalization (constant folding, flattening of associative operators)
so that downstream passes see a small canonical surface.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

INT = "Int"
BOOL = "Bool"

# Operator tags.  Grouped by arity/behaviour; the solver dispatches on these.
OP_INTVAL = "intval"
OP_BOOLVAL = "boolval"
OP_VAR = "var"
OP_APP = "app"
OP_ADD = "+"
OP_MUL = "*"
OP_DIV = "div"
OP_MOD = "mod"
OP_NEG = "neg"
OP_EQ = "="
OP_LE = "<="
OP_LT = "<"
OP_NOT = "not"
OP_AND = "and"
OP_OR = "or"
OP_IMPLIES = "=>"
OP_ITE = "ite"

_ARITH_OPS = frozenset({OP_ADD, OP_MUL, OP_DIV, OP_MOD, OP_NEG})
_PRED_OPS = frozenset({OP_EQ, OP_LE, OP_LT})
_BOOL_OPS = frozenset({OP_NOT, OP_AND, OP_OR, OP_IMPLIES})


class Term:
    """An immutable SMT term.

    Attributes:
        op: operator tag (one of the ``OP_*`` constants).
        args: child terms.
        name: variable or function-symbol name (for ``var``/``app``).
        value: payload for integer/boolean literals.
        sort: ``INT`` or ``BOOL``.
    """

    __slots__ = ("op", "args", "name", "value", "sort", "_hash")

    def __init__(
        self,
        op: str,
        args: Tuple["Term", ...] = (),
        name: Optional[str] = None,
        value=None,
        sort: str = INT,
    ):
        self.op = op
        self.args = args
        self.name = name
        self.value = value
        self.sort = sort
        self._hash = hash((op, args, name, value, sort))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.op == other.op
            and self.name == other.name
            and self.value == other.value
            and self.sort == other.sort
            and self.args == other.args
        )

    def __repr__(self) -> str:
        return f"Term({self.sexpr()})"

    def sexpr(self) -> str:
        """Render the term as an SMT-LIB style s-expression."""
        if self.op == OP_INTVAL:
            return str(self.value)
        if self.op == OP_BOOLVAL:
            return "true" if self.value else "false"
        if self.op == OP_VAR:
            return str(self.name)
        if self.op == OP_APP:
            inner = " ".join(a.sexpr() for a in self.args)
            return f"({self.name} {inner})" if inner else f"({self.name})"
        inner = " ".join(a.sexpr() for a in self.args)
        return f"({self.op} {inner})"

    # Convenience operator overloads make the type checker's encoding
    # rules read close to the paper's mathematical notation.
    def __add__(self, other) -> "Term":
        return Plus(self, _coerce(other))

    def __radd__(self, other) -> "Term":
        return Plus(_coerce(other), self)

    def __sub__(self, other) -> "Term":
        return Minus(self, _coerce(other))

    def __rsub__(self, other) -> "Term":
        return Minus(_coerce(other), self)

    def __mul__(self, other) -> "Term":
        return Times(self, _coerce(other))

    def __rmul__(self, other) -> "Term":
        return Times(_coerce(other), self)

    def __neg__(self) -> "Term":
        return Neg(self)

    def is_const(self) -> bool:
        return self.op in (OP_INTVAL, OP_BOOLVAL)


def _coerce(value) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return BoolVal(value)
    if isinstance(value, int):
        return IntVal(value)
    raise TypeError(f"cannot coerce {value!r} to a Term")


_INT_CACHE: dict = {}
_TRUE = Term(OP_BOOLVAL, value=True, sort=BOOL)
_FALSE = Term(OP_BOOLVAL, value=False, sort=BOOL)


def IntVal(value: int) -> Term:
    """Integer literal."""
    term = _INT_CACHE.get(value)
    if term is None:
        term = Term(OP_INTVAL, value=int(value), sort=INT)
        if len(_INT_CACHE) < 4096:
            _INT_CACHE[value] = term
    return term


def BoolVal(value: bool) -> Term:
    """Boolean literal."""
    return _TRUE if value else _FALSE


TRUE = _TRUE
FALSE = _FALSE


def Int(name: str) -> Term:
    """Integer variable."""
    return Term(OP_VAR, name=name, sort=INT)


def Bool(name: str) -> Term:
    """Boolean variable."""
    return Term(OP_VAR, name=name, sort=BOOL)


def App(fname: str, *args) -> Term:
    """Uninterpreted function application (integer-sorted)."""
    return Term(OP_APP, tuple(_coerce(a) for a in args), name=fname, sort=INT)


def Plus(*args) -> Term:
    """N-ary addition with flattening and constant folding."""
    flat = []
    const = 0
    for arg in args:
        arg = _coerce(arg)
        if arg.op == OP_INTVAL:
            const += arg.value
        elif arg.op == OP_ADD:
            for sub in arg.args:
                if sub.op == OP_INTVAL:
                    const += sub.value
                else:
                    flat.append(sub)
        else:
            flat.append(arg)
    if const != 0 or not flat:
        flat.append(IntVal(const))
    if len(flat) == 1:
        return flat[0]
    return Term(OP_ADD, tuple(flat), sort=INT)


def Minus(a, b) -> Term:
    return Plus(_coerce(a), Neg(_coerce(b)))


def Neg(a) -> Term:
    a = _coerce(a)
    if a.op == OP_INTVAL:
        return IntVal(-a.value)
    if a.op == OP_NEG:
        return a.args[0]
    return Term(OP_NEG, (a,), sort=INT)


def Times(*args) -> Term:
    """N-ary multiplication with flattening and constant folding."""
    flat = []
    const = 1
    for arg in args:
        arg = _coerce(arg)
        if arg.op == OP_INTVAL:
            const *= arg.value
        elif arg.op == OP_MUL:
            for sub in arg.args:
                if sub.op == OP_INTVAL:
                    const *= sub.value
                else:
                    flat.append(sub)
        else:
            flat.append(arg)
    if const == 0:
        return IntVal(0)
    if not flat:
        return IntVal(const)
    if const != 1:
        flat.insert(0, IntVal(const))
    if len(flat) == 1:
        return flat[0]
    return Term(OP_MUL, tuple(flat), sort=INT)


def Div(a, b) -> Term:
    """Euclidean integer division (floor for positive divisors)."""
    a, b = _coerce(a), _coerce(b)
    if a.op == OP_INTVAL and b.op == OP_INTVAL and b.value != 0:
        return IntVal(a.value // b.value)
    if b.op == OP_INTVAL and b.value == 1:
        return a
    return Term(OP_DIV, (a, b), sort=INT)


def Mod(a, b) -> Term:
    a, b = _coerce(a), _coerce(b)
    if a.op == OP_INTVAL and b.op == OP_INTVAL and b.value != 0:
        return IntVal(a.value % b.value)
    if b.op == OP_INTVAL and b.value == 1:
        return IntVal(0)
    return Term(OP_MOD, (a, b), sort=INT)


def Eq(a, b) -> Term:
    a, b = _coerce(a), _coerce(b)
    if a == b:
        return TRUE
    if a.is_const() and b.is_const():
        return BoolVal(a.value == b.value)
    return Term(OP_EQ, (a, b), sort=BOOL)


def Ne(a, b) -> Term:
    return Not(Eq(a, b))


def Le(a, b) -> Term:
    a, b = _coerce(a), _coerce(b)
    if a.op == OP_INTVAL and b.op == OP_INTVAL:
        return BoolVal(a.value <= b.value)
    if a == b:
        return TRUE
    return Term(OP_LE, (a, b), sort=BOOL)


def Lt(a, b) -> Term:
    a, b = _coerce(a), _coerce(b)
    if a.op == OP_INTVAL and b.op == OP_INTVAL:
        return BoolVal(a.value < b.value)
    if a == b:
        return FALSE
    return Term(OP_LT, (a, b), sort=BOOL)


def Ge(a, b) -> Term:
    return Le(_coerce(b), _coerce(a))


def Gt(a, b) -> Term:
    return Lt(_coerce(b), _coerce(a))


def Not(a) -> Term:
    a = _coerce(a)
    if a.op == OP_BOOLVAL:
        return BoolVal(not a.value)
    if a.op == OP_NOT:
        return a.args[0]
    return Term(OP_NOT, (a,), sort=BOOL)


def And(*args) -> Term:
    flat = []
    for arg in _flatten(args):
        arg = _coerce(arg)
        if arg.op == OP_BOOLVAL:
            if not arg.value:
                return FALSE
            continue
        if arg.op == OP_AND:
            flat.extend(arg.args)
        else:
            flat.append(arg)
    flat = _dedup(flat)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return Term(OP_AND, tuple(flat), sort=BOOL)


def Or(*args) -> Term:
    flat = []
    for arg in _flatten(args):
        arg = _coerce(arg)
        if arg.op == OP_BOOLVAL:
            if arg.value:
                return TRUE
            continue
        if arg.op == OP_OR:
            flat.extend(arg.args)
        else:
            flat.append(arg)
    flat = _dedup(flat)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Term(OP_OR, tuple(flat), sort=BOOL)


def Implies(a, b) -> Term:
    a, b = _coerce(a), _coerce(b)
    if a.op == OP_BOOLVAL:
        return b if a.value else TRUE
    if b.op == OP_BOOLVAL and b.value:
        return TRUE
    return Term(OP_IMPLIES, (a, b), sort=BOOL)


def Ite(cond, then, otherwise) -> Term:
    """Integer-sorted if-then-else."""
    cond, then, otherwise = _coerce(cond), _coerce(then), _coerce(otherwise)
    if cond.op == OP_BOOLVAL:
        return then if cond.value else otherwise
    if then == otherwise:
        return then
    return Term(OP_ITE, (cond, then, otherwise), sort=INT)


def _flatten(args: Iterable) -> Iterable:
    for arg in args:
        if isinstance(arg, (list, tuple)):
            yield from _flatten(arg)
        else:
            yield arg


def _dedup(terms):
    seen = set()
    out = []
    for term in terms:
        if term not in seen:
            seen.add(term)
            out.append(term)
    return out


def subterms(term: Term):
    """Iterate over all subterms (pre-order, may repeat shared nodes)."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(current.args)


def free_vars(term: Term):
    """Collect variable terms appearing in ``term``."""
    return {t for t in subterms(term) if t.op == OP_VAR}


def apps(term: Term):
    """Collect uninterpreted applications appearing in ``term``."""
    return {t for t in subterms(term) if t.op == OP_APP}


def substitute(term: Term, mapping: dict) -> Term:
    """Substitute terms (usually variables) by terms, bottom-up."""
    cache: dict = {}

    def go(t: Term) -> Term:
        hit = cache.get(t)
        if hit is not None:
            return hit
        if t in mapping:
            result = mapping[t]
        elif not t.args:
            result = t
        else:
            new_args = tuple(go(a) for a in t.args)
            result = rebuild(t, new_args)
        cache[t] = result
        return result

    return go(term)


def rebuild(term: Term, args: Tuple[Term, ...]) -> Term:
    """Rebuild a term with new arguments through the smart constructors."""
    if args == term.args:
        return term
    op = term.op
    if op == OP_ADD:
        return Plus(*args)
    if op == OP_MUL:
        return Times(*args)
    if op == OP_NEG:
        return Neg(args[0])
    if op == OP_DIV:
        return Div(*args)
    if op == OP_MOD:
        return Mod(*args)
    if op == OP_EQ:
        return Eq(*args)
    if op == OP_LE:
        return Le(*args)
    if op == OP_LT:
        return Lt(*args)
    if op == OP_NOT:
        return Not(args[0])
    if op == OP_AND:
        return And(*args)
    if op == OP_OR:
        return Or(*args)
    if op == OP_IMPLIES:
        return Implies(*args)
    if op == OP_ITE:
        return Ite(*args)
    if op == OP_APP:
        return Term(OP_APP, args, name=term.name, sort=term.sort)
    raise ValueError(f"cannot rebuild op {op}")

"""Term language for the QF_UFLIA solver.

The Lilac type checker (section 4 of the paper) discharges quantifier-free
queries over linear integer arithmetic extended with uninterpreted functions
(used to encode output parameters and ``log2``/``exp2``).  This module defines
the term representation shared by every stage of the solver pipeline.

Terms are immutable, structurally hashable, and *hash-consed*: the
constructor interns every term in a process-wide table, so two
structurally equal terms are one object.  That buys three things the
solver pipeline leans on heavily:

* equality is (almost always) a pointer comparison, and the structural
  hash is computed exactly once per distinct term;
* per-term analyses (``free_vars``, ``apps``) are cached on the term
  itself, and shared subterms are processed once by every memoizing
  pass (substitution, div/mod elimination, Tseitin conversion, …);
* dictionaries keyed by terms (atom tables, theory-check memos, the
  canonical obligation cache) hash and probe in O(1) per node.

Pickling survives interning: ``__reduce__`` routes unpickling back
through the constructor, so terms loaded from the persistent artifact
cache re-intern and the identity invariant holds across processes.

Smart constructors perform light normalization (constant folding,
flattening of associative operators) so that downstream passes see a
small canonical surface.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Tuple

INT = "Int"
BOOL = "Bool"


def legacy_mode() -> bool:
    """Whether ``$REPRO_SMT_LEGACY`` selects the pre-acceleration code
    paths (the typecheck benchmark's baseline).  One shared helper for
    the whole ``smt`` package; read dynamically because benchmarks and
    tests toggle it at runtime."""
    return os.environ.get("REPRO_SMT_LEGACY", "0") not in ("", "0")

# Operator tags.  Grouped by arity/behaviour; the solver dispatches on these.
OP_INTVAL = "intval"
OP_BOOLVAL = "boolval"
OP_VAR = "var"
OP_APP = "app"
OP_ADD = "+"
OP_MUL = "*"
OP_DIV = "div"
OP_MOD = "mod"
OP_NEG = "neg"
OP_EQ = "="
OP_LE = "<="
OP_LT = "<"
OP_NOT = "not"
OP_AND = "and"
OP_OR = "or"
OP_IMPLIES = "=>"
OP_ITE = "ite"

_ARITH_OPS = frozenset({OP_ADD, OP_MUL, OP_DIV, OP_MOD, OP_NEG})
_PRED_OPS = frozenset({OP_EQ, OP_LE, OP_LT})
_BOOL_OPS = frozenset({OP_NOT, OP_AND, OP_OR, OP_IMPLIES})

#: The hash-consing table: (op, args, name, value, sort) -> Term.
#: Concurrent interning from grid threads is benign — the worst case is
#: a transient duplicate whose structural __eq__ fallback still holds.
_INTERN: Dict[tuple, "Term"] = {}


def intern_size() -> int:
    """Number of distinct live terms in the intern table."""
    return len(_INTERN)


def clear_intern() -> None:
    """Drop the intern table (benchmarks' cold-start; long processes).

    Terms created before the clear remain valid — they compare equal to
    re-interned copies structurally, just no longer by identity.
    """
    _INTERN.clear()


class Term:
    """An immutable, interned SMT term.

    Attributes:
        op: operator tag (one of the ``OP_*`` constants).
        args: child terms.
        name: variable or function-symbol name (for ``var``/``app``).
        value: payload for integer/boolean literals.
        sort: ``INT`` or ``BOOL``.

    Construction goes through ``__new__``: structurally equal terms are
    the *same object* (hash-consing), so identity comparison decides
    equality and per-term caches (``_fvs``, ``_apps``) are shared by
    every holder of the term.
    """

    __slots__ = ("op", "args", "name", "value", "sort", "_hash",
                 "_fvs", "_apps", "_sexpr")

    def __new__(
        cls,
        op: str,
        args: Tuple["Term", ...] = (),
        name: Optional[str] = None,
        value=None,
        sort: str = INT,
    ):
        if type(args) is not tuple:
            args = tuple(args)
        key = (op, args, name, value, sort)
        self = _INTERN.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        self.op = op
        self.args = args
        self.name = name
        self.value = value
        self.sort = sort
        self._hash = hash(key)
        self._fvs = None
        self._apps = None
        self._sexpr = None
        _INTERN[key] = self
        return self

    def __reduce__(self):
        # Unpickling re-enters __new__, so terms loaded from the disk
        # cache re-intern and the identity invariant survives pickling.
        return (Term, (self.op, self.args, self.name, self.value, self.sort))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        # Interning makes structurally equal terms identical, so this
        # fallback only matters for terms that straddle a cleared intern
        # table; keep it structural for robustness.
        return (
            self._hash == other._hash
            and self.op == other.op
            and self.name == other.name
            and self.value == other.value
            and self.sort == other.sort
            and self.args == other.args
        )

    def __repr__(self) -> str:
        return f"Term({self.sexpr()})"

    def sexpr(self) -> str:
        """Render the term as an SMT-LIB style s-expression (cached)."""
        text = self._sexpr
        if text is not None:
            return text
        if self.op == OP_INTVAL:
            text = str(self.value)
        elif self.op == OP_BOOLVAL:
            text = "true" if self.value else "false"
        elif self.op == OP_VAR:
            text = str(self.name)
        elif self.op == OP_APP:
            inner = " ".join(a.sexpr() for a in self.args)
            text = f"({self.name} {inner})" if inner else f"({self.name})"
        else:
            inner = " ".join(a.sexpr() for a in self.args)
            text = f"({self.op} {inner})"
        self._sexpr = text
        return text

    # Convenience operator overloads make the type checker's encoding
    # rules read close to the paper's mathematical notation.
    def __add__(self, other) -> "Term":
        return Plus(self, _coerce(other))

    def __radd__(self, other) -> "Term":
        return Plus(_coerce(other), self)

    def __sub__(self, other) -> "Term":
        return Minus(self, _coerce(other))

    def __rsub__(self, other) -> "Term":
        return Minus(_coerce(other), self)

    def __mul__(self, other) -> "Term":
        return Times(self, _coerce(other))

    def __rmul__(self, other) -> "Term":
        return Times(_coerce(other), self)

    def __neg__(self) -> "Term":
        return Neg(self)

    def is_const(self) -> bool:
        return self.op in (OP_INTVAL, OP_BOOLVAL)


def _coerce(value) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return BoolVal(value)
    if isinstance(value, int):
        return IntVal(value)
    raise TypeError(f"cannot coerce {value!r} to a Term")


_TRUE = Term(OP_BOOLVAL, value=True, sort=BOOL)
_FALSE = Term(OP_BOOLVAL, value=False, sort=BOOL)


def IntVal(value: int) -> Term:
    """Integer literal."""
    return Term(OP_INTVAL, value=int(value), sort=INT)


def BoolVal(value: bool) -> Term:
    """Boolean literal."""
    return _TRUE if value else _FALSE


TRUE = _TRUE
FALSE = _FALSE


def Int(name: str) -> Term:
    """Integer variable."""
    return Term(OP_VAR, name=name, sort=INT)


def Bool(name: str) -> Term:
    """Boolean variable."""
    return Term(OP_VAR, name=name, sort=BOOL)


def App(fname: str, *args) -> Term:
    """Uninterpreted function application (integer-sorted)."""
    return Term(OP_APP, tuple(_coerce(a) for a in args), name=fname, sort=INT)


def Plus(*args) -> Term:
    """N-ary addition with flattening and constant folding."""
    flat = []
    const = 0
    for arg in args:
        arg = _coerce(arg)
        if arg.op == OP_INTVAL:
            const += arg.value
        elif arg.op == OP_ADD:
            for sub in arg.args:
                if sub.op == OP_INTVAL:
                    const += sub.value
                else:
                    flat.append(sub)
        else:
            flat.append(arg)
    if const != 0 or not flat:
        flat.append(IntVal(const))
    if len(flat) == 1:
        return flat[0]
    return Term(OP_ADD, tuple(flat), sort=INT)


def Minus(a, b) -> Term:
    return Plus(_coerce(a), Neg(_coerce(b)))


def Neg(a) -> Term:
    a = _coerce(a)
    if a.op == OP_INTVAL:
        return IntVal(-a.value)
    if a.op == OP_NEG:
        return a.args[0]
    return Term(OP_NEG, (a,), sort=INT)


def Times(*args) -> Term:
    """N-ary multiplication with flattening and constant folding."""
    flat = []
    const = 1
    for arg in args:
        arg = _coerce(arg)
        if arg.op == OP_INTVAL:
            const *= arg.value
        elif arg.op == OP_MUL:
            for sub in arg.args:
                if sub.op == OP_INTVAL:
                    const *= sub.value
                else:
                    flat.append(sub)
        else:
            flat.append(arg)
    if const == 0:
        return IntVal(0)
    if not flat:
        return IntVal(const)
    if const != 1:
        flat.insert(0, IntVal(const))
    if len(flat) == 1:
        return flat[0]
    return Term(OP_MUL, tuple(flat), sort=INT)


def Div(a, b) -> Term:
    """Euclidean integer division (floor for positive divisors)."""
    a, b = _coerce(a), _coerce(b)
    if a.op == OP_INTVAL and b.op == OP_INTVAL and b.value != 0:
        return IntVal(a.value // b.value)
    if b.op == OP_INTVAL and b.value == 1:
        return a
    return Term(OP_DIV, (a, b), sort=INT)


def Mod(a, b) -> Term:
    a, b = _coerce(a), _coerce(b)
    if a.op == OP_INTVAL and b.op == OP_INTVAL and b.value != 0:
        return IntVal(a.value % b.value)
    if b.op == OP_INTVAL and b.value == 1:
        return IntVal(0)
    return Term(OP_MOD, (a, b), sort=INT)


def Eq(a, b) -> Term:
    a, b = _coerce(a), _coerce(b)
    if a == b:
        return TRUE
    if a.is_const() and b.is_const():
        return BoolVal(a.value == b.value)
    return Term(OP_EQ, (a, b), sort=BOOL)


def Ne(a, b) -> Term:
    return Not(Eq(a, b))


def Le(a, b) -> Term:
    a, b = _coerce(a), _coerce(b)
    if a.op == OP_INTVAL and b.op == OP_INTVAL:
        return BoolVal(a.value <= b.value)
    if a == b:
        return TRUE
    return Term(OP_LE, (a, b), sort=BOOL)


def Lt(a, b) -> Term:
    a, b = _coerce(a), _coerce(b)
    if a.op == OP_INTVAL and b.op == OP_INTVAL:
        return BoolVal(a.value < b.value)
    if a == b:
        return FALSE
    return Term(OP_LT, (a, b), sort=BOOL)


def Ge(a, b) -> Term:
    return Le(_coerce(b), _coerce(a))


def Gt(a, b) -> Term:
    return Lt(_coerce(b), _coerce(a))


def Not(a) -> Term:
    a = _coerce(a)
    if a.op == OP_BOOLVAL:
        return BoolVal(not a.value)
    if a.op == OP_NOT:
        return a.args[0]
    return Term(OP_NOT, (a,), sort=BOOL)


def And(*args) -> Term:
    flat = []
    for arg in _flatten(args):
        arg = _coerce(arg)
        if arg.op == OP_BOOLVAL:
            if not arg.value:
                return FALSE
            continue
        if arg.op == OP_AND:
            flat.extend(arg.args)
        else:
            flat.append(arg)
    flat = _dedup(flat)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return Term(OP_AND, tuple(flat), sort=BOOL)


def Or(*args) -> Term:
    flat = []
    for arg in _flatten(args):
        arg = _coerce(arg)
        if arg.op == OP_BOOLVAL:
            if arg.value:
                return TRUE
            continue
        if arg.op == OP_OR:
            flat.extend(arg.args)
        else:
            flat.append(arg)
    flat = _dedup(flat)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Term(OP_OR, tuple(flat), sort=BOOL)


def Implies(a, b) -> Term:
    a, b = _coerce(a), _coerce(b)
    if a.op == OP_BOOLVAL:
        return b if a.value else TRUE
    if b.op == OP_BOOLVAL and b.value:
        return TRUE
    return Term(OP_IMPLIES, (a, b), sort=BOOL)


def Ite(cond, then, otherwise) -> Term:
    """Integer-sorted if-then-else."""
    cond, then, otherwise = _coerce(cond), _coerce(then), _coerce(otherwise)
    if cond.op == OP_BOOLVAL:
        return then if cond.value else otherwise
    if then == otherwise:
        return then
    return Term(OP_ITE, (cond, then, otherwise), sort=INT)


def _flatten(args: Iterable) -> Iterable:
    for arg in args:
        if isinstance(arg, (list, tuple)):
            yield from _flatten(arg)
        else:
            yield arg


def _dedup(terms):
    seen = set()
    out = []
    for term in terms:
        if term not in seen:
            seen.add(term)
            out.append(term)
    return out


def subterms(term: Term):
    """Iterate over all distinct subterms (pre-order).

    Interning makes identity deduplication structural: each shared
    subterm is yielded exactly once, so walks over heavily shared DAGs
    are linear in the number of distinct nodes.
    """
    seen = {id(term)}
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        for arg in current.args:
            if id(arg) not in seen:
                seen.add(id(arg))
                stack.append(arg)


def _cached_leaf_sets(term: Term, op_tag: str, slot: str):
    """Bottom-up computation of per-term leaf sets with caching.

    ``slot`` is the cache attribute (``_fvs`` or ``_apps``); shared
    subterms contribute their cached frozenset without being re-walked.
    """
    cached = getattr(term, slot)
    if cached is not None:
        return cached
    # Iterative post-order so deep terms cannot overflow the stack.
    stack = [(term, False)]
    while stack:
        current, expanded = stack.pop()
        if getattr(current, slot) is not None:
            continue
        if not expanded:
            stack.append((current, True))
            for arg in current.args:
                if getattr(arg, slot) is None:
                    stack.append((arg, False))
            continue
        out = set()
        if current.op == op_tag:
            out.add(current)
        for arg in current.args:
            out |= getattr(arg, slot)
        setattr(current, slot, frozenset(out))
    return getattr(term, slot)


def free_vars(term: Term):
    """The variable terms appearing in ``term`` (cached frozenset)."""
    return _cached_leaf_sets(term, OP_VAR, "_fvs")


def apps(term: Term):
    """Uninterpreted applications appearing in ``term`` (cached frozenset).

    Note: an application nested inside another application is included
    (the set covers the whole subtree).
    """
    return _cached_leaf_sets(term, OP_APP, "_apps")


def substitute(term: Term, mapping: dict) -> Term:
    """Substitute terms (usually variables) by terms, bottom-up."""
    cache: dict = {}

    def go(t: Term) -> Term:
        hit = cache.get(t)
        if hit is not None:
            return hit
        if t in mapping:
            result = mapping[t]
        elif not t.args:
            result = t
        else:
            new_args = tuple(go(a) for a in t.args)
            result = rebuild(t, new_args)
        cache[t] = result
        return result

    return go(term)


def rebuild(term: Term, args: Tuple[Term, ...]) -> Term:
    """Rebuild a term with new arguments through the smart constructors."""
    if args == term.args:
        return term
    op = term.op
    if op == OP_ADD:
        return Plus(*args)
    if op == OP_MUL:
        return Times(*args)
    if op == OP_NEG:
        return Neg(args[0])
    if op == OP_DIV:
        return Div(*args)
    if op == OP_MOD:
        return Mod(*args)
    if op == OP_EQ:
        return Eq(*args)
    if op == OP_LE:
        return Le(*args)
    if op == OP_LT:
        return Lt(*args)
    if op == OP_NOT:
        return Not(args[0])
    if op == OP_AND:
        return And(*args)
    if op == OP_OR:
        return Or(*args)
    if op == OP_IMPLIES:
        return Implies(*args)
    if op == OP_ITE:
        return Ite(*args)
    if op == OP_APP:
        return Term(OP_APP, args, name=term.name, sort=term.sort)
    raise ValueError(f"cannot rebuild op {op}")

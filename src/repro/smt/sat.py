"""A small DPLL SAT solver used as the boolean core of the lazy SMT loop.

Clauses are tuples of non-zero integer literals.  The solver supports
incremental clause addition (the DPLL(T) loop adds theory conflict clauses
between calls, and the incremental SMT front end keeps one instance alive
across many queries) and returns assignments as ``{var: bool}`` dicts.

Three features serve the incremental front end:

* **Queue-driven unit propagation** over occurrence lists: only clauses
  containing the negation of a newly assigned literal are examined, so
  propagation cost tracks the touched clauses, not the (growing) clause
  database.
* **Assumptions**: ``solve(assumptions=(a, -b))`` checks satisfiability
  under temporary literals that are asserted before any decision and are
  never flipped; an induced conflict means "UNSAT under assumptions".
  Queries guarded by fresh assumption literals can therefore share one
  solver — and its learned clauses — without contaminating each other.
* **Decision restriction**: ``decision_vars`` limits branching to the
  variables of the active query.  Clauses mentioning only other
  (retired-query) variables are left undecided; the caller guarantees
  they are definitional/guarded and hence extendable, which keeps the
  search space proportional to the active query, not the history.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .terms import legacy_mode as _legacy

Clause = Tuple[int, ...]


class SatSolver:
    def __init__(self, num_vars: int = 0):
        self.num_vars = num_vars
        self.clauses: List[Clause] = []
        self._occurrences: Dict[int, List[int]] = {}

    def ensure_vars(self, num_vars: int) -> None:
        self.num_vars = max(self.num_vars, num_vars)

    def add_clause(self, clause: Clause) -> Optional[int]:
        """Add a clause; returns its index (None if dropped as tautology)."""
        clause = tuple(dict.fromkeys(clause))  # dedup, keep order
        if any(-lit in clause for lit in clause):
            return None  # tautology
        index = len(self.clauses)
        self.clauses.append(clause)
        for lit in clause:
            self.num_vars = max(self.num_vars, abs(lit))
            self._occurrences.setdefault(lit, []).append(index)
        return index

    def add_clauses(self, clauses) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def solve(
        self,
        theory_hook=None,
        assumptions: Sequence[int] = (),
        decision_vars: Optional[Iterable[int]] = None,
    ) -> Optional[Dict[int, bool]]:
        """Return a satisfying assignment, or None if unsatisfiable
        (under ``assumptions``, if given).

        ``theory_hook(assignment)`` is called after each successful round
        of unit propagation (DPLL(T)-style early pruning).  It returns
        None when the partial assignment is theory-consistent, or a
        conflict clause (tuple of literals, all false under the current
        assignment) which is learned before backtracking.

        With ``decision_vars`` the branching is restricted to those
        variables and the returned assignment may be partial: clauses
        whose literals are all unassigned are *not* checked.  The caller
        must ensure such clauses are always extendable to a full model
        (true for Tseitin definitions and assumption-guarded encodings).
        """
        if _legacy() and not assumptions and decision_vars is None:
            return self._solve_legacy(theory_hook)
        assignment: Dict[int, bool] = {}
        trail: List[int] = []
        # decisions[i]: (trail index where the level starts, decided var,
        # whether the flipped polarity was already tried).
        decision_stack: List[Tuple[int, int, bool]] = []
        queue: deque = deque()
        clauses = self.clauses
        occurrences = self._occurrences

        def value_of(lit: int) -> Optional[bool]:
            val = assignment.get(abs(lit))
            if val is None:
                return None
            return val if lit > 0 else not val

        def assign(lit: int) -> None:
            assignment[abs(lit)] = lit > 0
            trail.append(lit)
            queue.append(lit)

        def examine(index: int) -> Optional[bool]:
            """Clause status: True satisfied/undecided, False conflict.
            Assigns the unit literal when exactly one is left open."""
            unassigned = None
            unit_count = 0
            for lit in clauses[index]:
                val = value_of(lit)
                if val is True:
                    return True
                if val is None:
                    unit_count += 1
                    if unit_count > 1:
                        return True
                    unassigned = lit
            if unit_count == 0:
                return False
            assign(unassigned)
            return True

        def propagate(recheck: Sequence[int]) -> Optional[int]:
            """Exhaust propagation; returns a conflicting clause index.

            ``recheck`` seeds explicit clause indices (newly learned
            clauses, or the clause that caused the last conflict) that
            the literal queue alone would not revisit.
            """
            for index in recheck:
                if examine(index) is False:
                    queue.clear()
                    return index
            while queue:
                lit = queue.popleft()
                for index in occurrences.get(-lit, ()):
                    if examine(index) is False:
                        queue.clear()
                        return index
            return None

        def backtrack() -> bool:
            """Undo to the last decision with an untried polarity."""
            while decision_stack:
                level_start, var, flipped = decision_stack.pop()
                while len(trail) > level_start:
                    lit = trail.pop()
                    assignment.pop(abs(lit), None)
                if not flipped:
                    # The decision tried the positive polarity first; now
                    # retry with the negative literal.
                    decision_stack.append((level_start, var, True))
                    assign(-var)
                    return True
            return False

        # Seed: fail on empty clauses, enqueue units, then propagate the
        # whole database once (solve() starts from a blank assignment).
        recheck: List[int] = []
        for index, clause in enumerate(clauses):
            if not clause:
                return None
            if len(clause) == 1:
                recheck.append(index)
        if propagate(recheck) is not None:
            return None

        # Assumptions behave like pre-decision facts: asserted in order,
        # never flipped; any conflict is UNSAT-under-assumptions (the
        # decision stack is still empty, so backtrack() cannot help).
        for lit in assumptions:
            val = value_of(lit)
            if val is False:
                return None
            if val is None:
                assign(lit)
                if propagate(()) is not None:
                    return None

        if decision_vars is not None:
            # Caller order is preserved: branching order is a powerful
            # heuristic lever (the SMT front end puts the active query's
            # atoms before permanent side constraints).
            decision_order = list(dict.fromkeys(decision_vars))
        else:
            decision_order = None

        #: clauses learned during this call.  A decision level's trail
        #: prefix was propagation-complete when the level was opened —
        #: but only with respect to the clauses that existed *then*.
        #: After a backtrack, every clause learned since may be unit (or
        #: false) over surviving literals without containing the flipped
        #: one, so the queue alone would never revisit it: re-examine
        #: them all explicitly.
        learned_indices: List[int] = []
        recheck = []
        while True:
            conflict = propagate(recheck)
            if conflict is not None:
                if not backtrack():
                    return None
                recheck = learned_indices + [conflict]
                continue
            recheck = []
            if theory_hook is not None:
                learned = theory_hook(assignment)
                if learned is not None:
                    index = self.add_clause(learned)
                    if index is not None:
                        learned_indices.append(index)
                        # The learned clause is false under the current
                        # assignment; rechecking it triggers the
                        # conflict/backtrack path above.
                        recheck = [index]
                        continue
            # Pick an unassigned variable.
            decision = None
            if decision_order is None:
                for var in range(1, self.num_vars + 1):
                    if var not in assignment:
                        decision = var
                        break
            else:
                for var in decision_order:
                    if var not in assignment:
                        decision = var
                        break
            if decision is None:
                return dict(assignment)
            decision_stack.append((len(trail), decision, False))
            assign(decision)

    def _solve_legacy(self, theory_hook=None) -> Optional[Dict[int, bool]]:
        """The pre-PR5 solver loop: exhaustive clause-rescan propagation
        and chronological backtracking, kept verbatim so the typecheck
        benchmark's ``$REPRO_SMT_LEGACY`` baseline is faithful."""
        assignment: Dict[int, bool] = {}
        trail: List[int] = []
        decision_stack: List[Tuple[int, int, bool]] = []

        def value_of(lit: int) -> Optional[bool]:
            val = assignment.get(abs(lit))
            if val is None:
                return None
            return val if lit > 0 else not val

        def assign(lit: int) -> None:
            assignment[abs(lit)] = lit > 0
            trail.append(lit)

        def propagate() -> bool:
            changed = True
            while changed:
                changed = False
                for clause in self.clauses:
                    unassigned = None
                    satisfied = False
                    unit_count = 0
                    for lit in clause:
                        val = value_of(lit)
                        if val is True:
                            satisfied = True
                            break
                        if val is None:
                            unit_count += 1
                            unassigned = lit
                            if unit_count > 1:
                                break
                    if satisfied:
                        continue
                    if unit_count == 0:
                        return False
                    if unit_count == 1:
                        assign(unassigned)
                        changed = True
            return True

        def backtrack() -> bool:
            while decision_stack:
                level_start, var, flipped = decision_stack.pop()
                while len(trail) > level_start:
                    lit = trail.pop()
                    assignment.pop(abs(lit), None)
                if not flipped:
                    decision_stack.append((level_start, var, True))
                    assign(-var)
                    return True
            return False

        if any(len(c) == 0 for c in self.clauses):
            return None

        while True:
            if not propagate():
                if not backtrack():
                    return None
                continue
            if theory_hook is not None:
                conflict = theory_hook(assignment)
                if conflict is not None:
                    self.add_clause(conflict)
                    if not propagate():
                        if not backtrack():
                            return None
                        continue
            decision = None
            for var in range(1, self.num_vars + 1):
                if var not in assignment:
                    decision = var
                    break
            if decision is None:
                return dict(assignment)
            decision_stack.append((len(trail), decision, False))
            assign(decision)

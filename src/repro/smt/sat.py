"""A small DPLL SAT solver used as the boolean core of the lazy SMT loop.

Clauses are tuples of non-zero integer literals.  The solver supports
incremental clause addition (the DPLL(T) loop adds theory conflict clauses
between calls) and returns full assignments as ``{var: bool}`` dicts.

The implementation uses iterative DPLL with unit propagation over occurrence
lists and chronological backtracking; the formulas produced by the Lilac
type checker are small (hundreds of clauses), so this is plenty.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

Clause = Tuple[int, ...]


class SatSolver:
    def __init__(self, num_vars: int = 0):
        self.num_vars = num_vars
        self.clauses: List[Clause] = []
        self._occurrences: Dict[int, List[int]] = {}

    def ensure_vars(self, num_vars: int) -> None:
        self.num_vars = max(self.num_vars, num_vars)

    def add_clause(self, clause: Clause) -> None:
        clause = tuple(dict.fromkeys(clause))  # dedup, keep order
        if any(-lit in clause for lit in clause):
            return  # tautology
        index = len(self.clauses)
        self.clauses.append(clause)
        for lit in clause:
            self.num_vars = max(self.num_vars, abs(lit))
            self._occurrences.setdefault(lit, []).append(index)

    def add_clauses(self, clauses) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def solve(self, theory_hook=None) -> Optional[Dict[int, bool]]:
        """Return a satisfying assignment, or None if unsatisfiable.

        ``theory_hook(assignment)`` is called after each successful round
        of unit propagation (DPLL(T)-style early pruning).  It returns
        None when the partial assignment is theory-consistent, or a
        conflict clause (tuple of literals, all false under the current
        assignment) which is learned before backtracking.
        """
        assignment: Dict[int, bool] = {}
        trail: List[int] = []
        # decisions[i] is the index into trail where decision level i starts,
        # paired with the decided literal so we can flip on backtrack.
        decision_stack: List[Tuple[int, int, bool]] = []

        def value_of(lit: int) -> Optional[bool]:
            val = assignment.get(abs(lit))
            if val is None:
                return None
            return val if lit > 0 else not val

        def assign(lit: int) -> None:
            assignment[abs(lit)] = lit > 0
            trail.append(lit)

        def propagate() -> bool:
            """Exhaustive unit propagation; False on conflict."""
            changed = True
            while changed:
                changed = False
                for clause in self.clauses:
                    unassigned = None
                    satisfied = False
                    unit_count = 0
                    for lit in clause:
                        val = value_of(lit)
                        if val is True:
                            satisfied = True
                            break
                        if val is None:
                            unit_count += 1
                            unassigned = lit
                            if unit_count > 1:
                                break
                    if satisfied:
                        continue
                    if unit_count == 0:
                        return False
                    if unit_count == 1:
                        assign(unassigned)
                        changed = True
            return True

        def backtrack() -> bool:
            """Undo to the last decision with an untried polarity."""
            while decision_stack:
                level_start, var, flipped = decision_stack.pop()
                while len(trail) > level_start:
                    lit = trail.pop()
                    assignment.pop(abs(lit), None)
                if not flipped:
                    # The decision tried the positive polarity first; now
                    # retry with the negative literal.
                    decision_stack.append((level_start, var, True))
                    assign(-var)
                    return True
            return False

        # Empty clause check.
        if any(len(c) == 0 for c in self.clauses):
            return None

        while True:
            if not propagate():
                if not backtrack():
                    return None
                continue
            if theory_hook is not None:
                conflict = theory_hook(assignment)
                if conflict is not None:
                    self.add_clause(conflict)
                    # The learned clause is false under the current
                    # assignment; re-propagating detects the conflict and
                    # triggers a backtrack.
                    if not propagate():
                        if not backtrack():
                            return None
                        continue
            # Pick an unassigned variable.
            decision = None
            for var in range(1, self.num_vars + 1):
                if var not in assignment:
                    decision = var
                    break
            if decision is None:
                return dict(assignment)
            decision_stack.append((len(trail), decision, False))
            assign(decision)

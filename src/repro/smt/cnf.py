"""Tseitin conversion from boolean term structure to CNF clauses.

Literals are non-zero integers (DIMACS convention): variable ``v`` is the
positive literal ``v`` and its negation ``-v``.  Theory atoms (equalities and
inequalities over integer terms) are mapped to boolean variables through an
:class:`AtomTable` so the DPLL(T) loop can recover them.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .terms import (
    Term,
    subterms,
    OP_AND,
    OP_OR,
    OP_NOT,
    OP_IMPLIES,
    OP_BOOLVAL,
    OP_VAR,
    OP_EQ,
    OP_LE,
    OP_LT,
)

Clause = Tuple[int, ...]


class AtomTable:
    """Bidirectional map between atoms (Terms) and boolean variable ids."""

    def __init__(self):
        self._by_term: Dict[Term, int] = {}
        self._by_id: Dict[int, Term] = {}
        self._next = 1

    def fresh(self) -> int:
        var = self._next
        self._next += 1
        return var

    def id_of(self, atom: Term) -> int:
        var = self._by_term.get(atom)
        if var is None:
            var = self.fresh()
            self._by_term[atom] = var
            self._by_id[var] = atom
        return var

    def atom_of(self, var: int) -> Term:
        return self._by_id.get(abs(var))

    def theory_atoms(self) -> Dict[int, Term]:
        """All atom ids that correspond to theory predicates."""
        return {
            var: atom
            for var, atom in self._by_id.items()
            if atom.op in (OP_EQ, OP_LE, OP_LT)
        }

    @property
    def num_vars(self) -> int:
        return self._next - 1


class CnfBuilder:
    """Accumulates clauses while Tseitin-encoding formulas."""

    def __init__(self, atoms: AtomTable):
        self.atoms = atoms
        self.clauses: List[Clause] = []
        self._cache: Dict[Term, int] = {}

    def add_formula(self, formula: Term) -> None:
        """Assert ``formula`` (adds its defining clauses and a unit clause)."""
        if formula.op == OP_BOOLVAL:
            if not formula.value:
                self.clauses.append(())
            return
        if formula.op == OP_AND:
            for arg in formula.args:
                self.add_formula(arg)
            return
        literal = self._encode(formula)
        self.clauses.append((literal,))

    def literal_of(self, formula: Term) -> int:
        """Encode ``formula`` and return its representing literal
        *without* asserting it — the incremental solver asserts it under
        an assumption guard instead."""
        return self._encode(formula)

    def vars_of(self, formula: Term) -> Set[int]:
        """Boolean variables of an already-encoded formula's DAG.

        Every boolean-sorted subterm the Tseitin cache knows contributes
        its variable; the result is the decision set a query needs to be
        searched completely (atoms plus definitional variables), however
        long ago its shared subformulas were first encoded.
        """
        out: Set[int] = set()
        for sub in subterms(formula):
            literal = self._cache.get(sub)
            if literal is not None:
                out.add(abs(literal))
        return out

    def _encode(self, term: Term) -> int:
        """Return a literal equisatisfiably representing ``term``."""
        cached = self._cache.get(term)
        if cached is not None:
            return cached
        op = term.op
        if op == OP_BOOLVAL:
            # Encode constants with a fresh var pinned by a unit clause.
            var = self.atoms.fresh()
            self.clauses.append((var,))
            literal = var if term.value else -var
            self._cache[term] = literal
            return literal
        if op in (OP_VAR, OP_EQ, OP_LE, OP_LT):
            literal = self.atoms.id_of(term)
            self._cache[term] = literal
            return literal
        if op == OP_NOT:
            literal = -self._encode(term.args[0])
            self._cache[term] = literal
            return literal
        if op == OP_IMPLIES:
            lhs, rhs = term.args
            return self._encode_or((-self._encode(lhs), self._encode(rhs)), term)
        if op == OP_OR:
            return self._encode_or(
                tuple(self._encode(a) for a in term.args), term
            )
        if op == OP_AND:
            lits = tuple(self._encode(a) for a in term.args)
            fresh = self.atoms.fresh()
            # fresh -> each lit ; (all lits) -> fresh
            for lit in lits:
                self.clauses.append((-fresh, lit))
            self.clauses.append(tuple(-l for l in lits) + (fresh,))
            self._cache[term] = fresh
            return fresh
        raise ValueError(f"cannot CNF-encode boolean term: {term.sexpr()}")

    def _encode_or(self, lits: Tuple[int, ...], term: Term) -> int:
        fresh = self.atoms.fresh()
        # fresh -> (l1 | ... | ln)
        self.clauses.append((-fresh,) + lits)
        # each li -> fresh
        for lit in lits:
            self.clauses.append((-lit, fresh))
        self._cache[term] = fresh
        return fresh

"""Linear integer arithmetic: normalization and an Omega-style decision
procedure with model extraction.

The Lilac type checker emits constraints over symbolic parameters (latencies,
initiation intervals, bundle indices).  After uninterpreted functions are
removed by Ackermann reduction, every theory atom is a linear constraint over
integer variables.  This module decides satisfiability of conjunctions of
such constraints *exactly* and produces integer models (used to build the
counterexample parameterizations the paper shows in section 3.2).

The algorithm follows Pugh's Omega test:

* equalities are eliminated with unimodular changes of variables (a
  Euclidean reduction that preserves integer solution sets bijectively);
* inequalities are eliminated with Fourier--Motzkin using the *dark shadow*
  for completeness, falling back to splinter enumeration in the rare case
  the dark shadow is strictly smaller than the real shadow.

Models are rebuilt by back-substitution through the recorded eliminations.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Tuple

from .terms import Term, Int, legacy_mode as _legacy

Model = Dict[Term, int]


class NonLinearError(Exception):
    """Raised when a term cannot be expressed as a linear expression."""


class LinExpr:
    """A linear expression ``sum(coeff * var) + const`` over Term variables."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[Dict[Term, int]] = None, const: int = 0):
        self.coeffs: Dict[Term, int] = {}
        if coeffs:
            for var, coeff in coeffs.items():
                if coeff != 0:
                    self.coeffs[var] = coeff
        self.const = const

    @classmethod
    def _raw(cls, coeffs: Dict[Term, int], const: int) -> "LinExpr":
        """Internal fast path: adopt a pre-filtered coefficient dict.

        The public constructor re-filters zero coefficients on every
        call; the arithmetic methods below never produce zeros (integer
        products of non-zeros are non-zero, sums drop zeros eagerly),
        so they skip that pass — it dominated solver profiles.
        """
        self = object.__new__(cls)
        self.coeffs = coeffs
        self.const = const
        return self

    @staticmethod
    def constant(value: int) -> "LinExpr":
        return LinExpr._raw({}, value)

    @staticmethod
    def of_var(var: Term, coeff: int = 1) -> "LinExpr":
        if coeff == 0:
            return LinExpr._raw({}, 0)
        return LinExpr._raw({var: coeff}, 0)

    def copy(self) -> "LinExpr":
        return LinExpr._raw(dict(self.coeffs), self.const)

    def add(self, other: "LinExpr") -> "LinExpr":
        coeffs = dict(self.coeffs)
        get = coeffs.get
        for var, coeff in other.coeffs.items():
            new = get(var, 0) + coeff
            if new:
                coeffs[var] = new
            else:
                del coeffs[var]
        return LinExpr._raw(coeffs, self.const + other.const)

    def scale(self, factor: int) -> "LinExpr":
        if factor == 0:
            return LinExpr._raw({}, 0)
        if factor == 1:
            return self
        return LinExpr._raw(
            {var: coeff * factor for var, coeff in self.coeffs.items()},
            self.const * factor,
        )

    def sub(self, other: "LinExpr") -> "LinExpr":
        coeffs = dict(self.coeffs)
        get = coeffs.get
        for var, coeff in other.coeffs.items():
            new = get(var, 0) - coeff
            if new:
                coeffs[var] = new
            else:
                del coeffs[var]
        return LinExpr._raw(coeffs, self.const - other.const)

    def is_const(self) -> bool:
        return not self.coeffs

    def coeff(self, var: Term) -> int:
        return self.coeffs.get(var, 0)

    def without(self, var: Term) -> "LinExpr":
        coeffs = dict(self.coeffs)
        coeffs.pop(var, None)
        return LinExpr._raw(coeffs, self.const)

    def substitute(self, var: Term, replacement: "LinExpr") -> "LinExpr":
        coeff = self.coeffs.get(var)
        if coeff is None:
            return self
        out = self.without(var)
        return out.add(replacement.scale(coeff))

    def evaluate(self, model: Model) -> int:
        total = self.const
        for var, coeff in self.coeffs.items():
            total += coeff * model[var]
        return total

    def variables(self):
        return self.coeffs.keys()

    def __eq__(self, other) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self):
        return hash((frozenset(self.coeffs.items()), self.const))

    def __repr__(self) -> str:
        parts = [f"{c}*{v.sexpr()}" for v, c in self.coeffs.items()]
        parts.append(str(self.const))
        return " + ".join(parts)


#: Interned-term -> LinExpr memo.  Hash-consed terms make the key O(1)
#: and the conversion is referentially transparent; every LinExpr
#: operation returns a fresh object, so sharing memoized results is
#: safe as long as callers never mutate ``coeffs`` in place (none do).
_LINEXPR_MEMO: Dict[Term, LinExpr] = {}


def clear_linexpr_memo() -> None:
    _LINEXPR_MEMO.clear()
    _ELIM_PLAN_MEMO.clear()


def linexpr_of_term(term: Term) -> LinExpr:
    """Convert an integer term into a LinExpr (memoized on identity).

    Variables and uninterpreted applications become atomic variables.
    Multiplication is only allowed when at most one factor is non-constant;
    anything else raises :class:`NonLinearError` (the solver abstracts
    non-linear products before reaching this point).
    """
    # Memo first: this is the theory layer's hottest entry point, and
    # the legacy-mode env check belongs on the miss path only.  Legacy
    # runs start from cleared caches and never *store*, so they stay
    # memo-free in practice without paying an environ lookup per call.
    hit = _LINEXPR_MEMO.get(term)
    if hit is not None:
        return hit
    out = _linexpr_of_term(term)
    if not _legacy():
        _LINEXPR_MEMO[term] = out
    return out


def _linexpr_of_term(term: Term) -> LinExpr:
    op = term.op
    if op == "intval":
        return LinExpr.constant(term.value)
    if op in ("var", "app"):
        return LinExpr.of_var(term)
    if op == "+":
        out = LinExpr()
        for arg in term.args:
            out = out.add(linexpr_of_term(arg))
        return out
    if op == "neg":
        return linexpr_of_term(term.args[0]).scale(-1)
    if op == "*":
        const = 1
        base: Optional[LinExpr] = None
        for arg in term.args:
            sub = linexpr_of_term(arg)
            if sub.is_const():
                const *= sub.const
            elif base is None:
                base = sub
            else:
                raise NonLinearError(term.sexpr())
        if base is None:
            return LinExpr.constant(const)
        return base.scale(const)
    raise NonLinearError(term.sexpr())


def _normalize_ineq(expr: LinExpr) -> Optional[LinExpr]:
    """Normalize ``expr <= 0`` by dividing through the coefficient gcd.

    Returns None when the constraint is trivially true, and an expression
    with const > 0 and no variables means trivially false (caller checks).
    Integer tightening: ``g*sum <= -c`` becomes ``sum <= floor(-c/g)``.
    """
    if expr.is_const():
        return expr
    g = 0
    for coeff in expr.coeffs.values():
        g = gcd(g, abs(coeff))
    if g > 1:
        bound = -expr.const
        tightened = bound // g  # floor division: sum <= floor(bound/g)
        expr = LinExpr(
            {var: coeff // g for var, coeff in expr.coeffs.items()},
            -tightened,
        )
    return expr


def _pick_equality_var(expr: LinExpr) -> Term:
    return min(expr.coeffs, key=lambda v: (abs(expr.coeffs[v]), v.sexpr()))


class _FreshVars:
    """Source of fresh integer variables used during elimination."""

    def __init__(self):
        self.counter = 0

    def make(self, hint: str) -> Term:
        self.counter += 1
        return Int(f"$lia{self.counter}_{hint}")


def solve_system(
    equalities: List[LinExpr],
    inequalities: List[LinExpr],
    max_splinter_depth: int = 24,
) -> Optional[Model]:
    """Decide ``/\\ eq == 0  /\\  ineq <= 0`` over the integers.

    Returns a model (dict mapping variable Terms to ints) when satisfiable
    and None when unsatisfiable.  LinExprs are never mutated by the
    procedure (every operation returns a fresh object), so the inputs
    are used as-is — which also lets the equality-elimination plan cache
    key on row identity.
    """
    fresh = _FreshVars()
    return _solve(list(equalities), list(inequalities), fresh,
                  max_splinter_depth)


#: Equality-set (by row object ids) -> elimination plan.  Elimination
#: derives its substitutions from the equalities alone; the DPLL(T) hook
#: re-solves systems over the same (memoized, shared) equality rows with
#: varying inequality sides thousands of times, so the plan is computed
#: once per distinct set.  The value holds strong references to the rows,
#: which pins their ids and makes the id-based key collision-free.
_ELIM_PLAN_MEMO: Dict[tuple, tuple] = {}
_INFEASIBLE = object()


def _apply_map(expr: LinExpr, mapping: Dict[Term, LinExpr]) -> LinExpr:
    """Simultaneous substitution of variables by linear expressions."""
    touched = [var for var in expr.coeffs if var in mapping]
    if not touched:
        return expr
    coeffs: Dict[Term, int] = {}
    const = expr.const
    for var, coeff in expr.coeffs.items():
        replacement = mapping.get(var)
        if replacement is None:
            new = coeffs.get(var, 0) + coeff
            if new:
                coeffs[var] = new
            else:
                coeffs.pop(var, None)
            continue
        const += replacement.const * coeff
        for other, weight in replacement.coeffs.items():
            new = coeffs.get(other, 0) + weight * coeff
            if new:
                coeffs[other] = new
            else:
                coeffs.pop(other, None)
    return LinExpr._raw(coeffs, const)


def _elimination_plan(eqs: List[LinExpr]):
    """``(substitutions, composed_map)`` eliminating ``eqs``, or
    ``_INFEASIBLE`` when the equalities alone have no integer solution.

    ``substitutions`` is the sequential record (model rebuild applies it
    in reverse); ``composed_map`` is the same sequence composed into one
    simultaneous substitution, so each inequality is rewritten in a
    single pass instead of once per eliminated equality.
    """
    key = tuple(sorted(map(id, eqs)))
    hit = _ELIM_PLAN_MEMO.get(key)
    if hit is not None:
        return hit[1]
    substitutions: List[Tuple[Term, LinExpr]] = []
    result = _eliminate_equalities(list(eqs), [], substitutions)
    if result is None:
        plan = _INFEASIBLE
    else:
        composed: Dict[Term, LinExpr] = {}
        for var, replacement in reversed(substitutions):
            composed[var] = _apply_map(replacement, composed)
        plan = (tuple(substitutions), composed)
    if len(_ELIM_PLAN_MEMO) >= 100_000:
        _ELIM_PLAN_MEMO.clear()
    _ELIM_PLAN_MEMO[key] = (list(eqs), plan)
    return plan


def _solve(
    eqs: List[LinExpr],
    ineqs: List[LinExpr],
    fresh: _FreshVars,
    depth: int,
) -> Optional[Model]:
    if _legacy():
        substitutions: List[Tuple[Term, LinExpr]] = []
        result = _eliminate_equalities(eqs, ineqs, substitutions)
        if result is None:
            return None
        ineqs = result
    else:
        plan = _elimination_plan(eqs)
        if plan is _INFEASIBLE:
            return None
        sequential, composed = plan
        substitutions = list(sequential)
        if composed:
            ineqs = [_apply_map(i, composed) for i in ineqs]
    model = _solve_inequalities(ineqs, fresh, depth)
    if model is None:
        return None
    # Rebuild eliminated variables in reverse order of substitution.
    for var, expr in reversed(substitutions):
        model[var] = _eval_default(expr, model)
    return model


def _eval_default(expr: LinExpr, model: Model) -> int:
    """Evaluate, defaulting variables the reduced system left free to 0."""
    for var in expr.coeffs:
        model.setdefault(var, 0)
    return expr.evaluate(model)


def _eliminate_equalities(
    eqs: List[LinExpr],
    ineqs: List[LinExpr],
    substitutions: List[Tuple[Term, LinExpr]],
) -> Optional[List[LinExpr]]:
    """Remove all equalities, recording variable definitions.

    Uses gcd feasibility checks plus Euclidean unimodular rewrites so that a
    unit-coefficient variable always eventually appears.
    """
    eqs = list(eqs)
    ineqs = list(ineqs)
    while eqs:
        eq = eqs.pop()
        if eq.is_const():
            if eq.const != 0:
                return None
            continue
        g = 0
        for coeff in eq.coeffs.values():
            g = gcd(g, abs(coeff))
        if eq.const % g != 0:
            return None
        if g > 1:
            eq = LinExpr(
                {var: coeff // g for var, coeff in eq.coeffs.items()},
                eq.const // g,
            )
        var = _pick_equality_var(eq)
        coeff = eq.coeffs[var]
        if abs(coeff) == 1:
            # var = -sign(coeff) * (eq - coeff*var)
            rest = eq.without(var).scale(-1 if coeff > 0 else 1)
            substitutions.append((var, rest))
            eqs = [e.substitute(var, rest) for e in eqs]
            ineqs = [i.substitute(var, rest) for i in ineqs]
            continue
        # Euclidean reduction: substitute var := var' - sum(q_i * x_i) where
        # q_i = round-to-floor quotient of other coefficients by |coeff|.
        # This is unimodular, so integer solution sets are preserved.
        replacement = LinExpr.of_var(var)
        changed = False
        for other, other_coeff in list(eq.coeffs.items()):
            if other is var:
                continue
            quotient = other_coeff // coeff
            if quotient:
                replacement = replacement.add(LinExpr.of_var(other, -quotient))
                changed = True
        const_quotient = eq.const // coeff
        if const_quotient:
            # Fold part of the constant into the variable as well.
            replacement = replacement.add(LinExpr.constant(-const_quotient))
            changed = True
        if not changed:
            # Unreachable: ``var`` has the minimum absolute coefficient, so
            # every other coefficient has |a_i| >= |coeff| and a non-zero
            # floor quotient; with a single variable the gcd division above
            # already forced |coeff| == 1.
            raise AssertionError("equality elimination made no progress")
        substitutions.append((var, replacement))
        eq2 = eq.substitute(var, replacement)
        eqs.append(eq2)
        ineqs = [i.substitute(var, replacement) for i in ineqs]
    return ineqs


def _solve_inequalities(
    ineqs: List[LinExpr],
    fresh: _FreshVars,
    depth: int,
) -> Optional[Model]:
    # Normalize, drop trivial, fail fast on constant violations, and
    # keep only the tightest bound per coefficient vector: the checker's
    # queries contain many parallel copies of the same inequality
    # (renamed loop facts, congruence instances), and every redundant
    # row multiplies Fourier--Motzkin's output.  ``expr <= 0`` means
    # ``sum <= -const``, so for one vector the largest const dominates.
    if _legacy():
        # Pre-PR5 behaviour for the benchmark baseline: normalize and
        # keep every row, including dominated duplicates.
        work = []
        for ineq in ineqs:
            norm = _normalize_ineq(ineq)
            if norm.is_const():
                if norm.const > 0:
                    return None
                continue
            work.append(norm)
        if not work:
            return {}
    else:
        tightest: Dict[frozenset, LinExpr] = {}
        for ineq in ineqs:
            norm = _normalize_ineq(ineq)
            if norm.is_const():
                if norm.const > 0:
                    return None
                continue
            key = frozenset(norm.coeffs.items())
            prev = tightest.get(key)
            if prev is None or norm.const > prev.const:
                tightest[key] = norm
        work = list(tightest.values())
        if not work:
            return {}

    variables = set()
    for ineq in work:
        variables.update(ineq.variables())

    # Unconstrained-direction elimination: a variable with only lower bounds
    # or only upper bounds can always be satisfied; peel those first.
    for var in sorted(variables, key=lambda v: v.sexpr()):
        lowers = [i for i in work if i.coeff(var) < 0]
        uppers = [i for i in work if i.coeff(var) > 0]
        if lowers and uppers:
            continue
        rest = [i for i in work if i.coeff(var) == 0]
        model = _solve_inequalities(rest, fresh, depth)
        if model is None:
            return None
        _assign_free_var(model, var, lowers, uppers)
        return model

    # Pick the variable minimizing the number of generated constraints.
    def cost(var: Term) -> Tuple[int, str]:
        lows = sum(1 for i in work if i.coeff(var) < 0)
        ups = sum(1 for i in work if i.coeff(var) > 0)
        return (lows * ups, var.sexpr())

    var = min(variables, key=cost)
    lowers = []  # (a, b): b <= a * var, a > 0
    uppers = []  # (c, d): c * var <= d, c > 0
    rest = []
    for ineq in work:
        coeff = ineq.coeff(var)
        if coeff < 0:
            # rest - a*var <= 0  ==>  rest <= a*var  with a = -coeff.
            lowers.append((-coeff, ineq.without(var)))
        elif coeff > 0:
            # rest + c*var <= 0  ==>  c*var <= -rest.
            uppers.append((coeff, ineq.without(var).scale(-1)))
        else:
            rest.append(ineq)

    exact = all(a == 1 for a, _ in lowers) or all(c == 1 for c, _ in uppers)

    # Dark shadow (equals the real shadow when exact).
    shadow = list(rest)
    for a, b in lowers:
        for c, d in uppers:
            # real: c*b <= a*d ; dark adds (a-1)(c-1) slack requirement.
            expr = b.scale(c).sub(d.scale(a))
            if not exact:
                expr = expr.add(LinExpr.constant((a - 1) * (c - 1)))
            shadow.append(expr)
    model = _solve_inequalities(shadow, fresh, depth)
    if model is not None:
        value = _choose_between_bounds(model, lowers, uppers)
        if value is not None:
            model[var] = value
            return model
        # Dark shadow satisfiable but rounding failed (cannot happen for the
        # exact case); fall through to splinters.
    if exact:
        return None
    if depth <= 0:
        return None

    # Splinter enumeration: integer solutions missed by the dark shadow must
    # satisfy a*var = b + k for some lower bound (a, b) and small k.
    c_max = max(c for c, _ in uppers)
    for a, b in lowers:
        limit = (a * c_max - a - c_max) // c_max
        for k in range(limit + 1):
            # a*var - b - k == 0 together with the original system.
            eq = LinExpr.of_var(var, a).sub(b).add(LinExpr.constant(-k))
            model = _solve([eq], list(work), fresh, depth - 1)
            if model is not None:
                return model
    return None


# ---------------------------------------------------------------------------
# Certificate extraction: a provenance-tracking re-run of the decision
# procedure that returns *which input rows* derive a contradiction.
# Used by conflict minimization — one certificate run replaces dozens of
# deletion probes.  Only sound derivations contribute: when a non-exact
# dark-shadow step (or depth exhaustion) would be needed, no certificate
# is produced and the caller falls back to deletion minimization.

def core_of_system(
    eqs: List[Tuple[LinExpr, frozenset]],
    ineqs: List[Tuple[LinExpr, frozenset]],
    depth: int = 64,
) -> Optional[frozenset]:
    """An unsatisfiable subset of the tagged rows, as a union of tags.

    Rows are ``(expr, tags)`` meaning ``expr == 0`` / ``expr <= 0``;
    every derived constraint carries the union of its parents' tags, so
    a constant violation's tag set is a genuine Farkas-style certificate.
    Returns None when the system is satisfiable *or* no certificate
    could be established.
    """
    eqs = [(expr.copy(), tags) for expr, tags in eqs]
    ineqs = [(expr.copy(), tags) for expr, tags in ineqs]
    out = _core_eliminate_equalities(eqs, ineqs)
    if isinstance(out, frozenset):
        return out
    return _core_inequalities(out, depth)


def _core_eliminate_equalities(eqs, ineqs):
    """Tagged equality elimination; returns a core or the rewritten
    inequality rows."""
    eqs = list(eqs)
    ineqs = list(ineqs)
    while eqs:
        eq, tags = eqs.pop()
        if eq.is_const():
            if eq.const != 0:
                return tags
            continue
        g = 0
        for coeff in eq.coeffs.values():
            g = gcd(g, abs(coeff))
        if eq.const % g != 0:
            return tags
        if g > 1:
            eq = LinExpr(
                {var: coeff // g for var, coeff in eq.coeffs.items()},
                eq.const // g,
            )
        var = _pick_equality_var(eq)
        coeff = eq.coeffs[var]
        if abs(coeff) == 1:
            rest = eq.without(var).scale(-1 if coeff > 0 else 1)
            eqs = [
                (e.substitute(var, rest), t | tags if var in e.coeffs else t)
                for e, t in eqs
            ]
            ineqs = [
                (i.substitute(var, rest), t | tags if var in i.coeffs else t)
                for i, t in ineqs
            ]
            continue
        replacement = LinExpr.of_var(var)
        changed = False
        for other, other_coeff in list(eq.coeffs.items()):
            if other is var:
                continue
            quotient = other_coeff // coeff
            if quotient:
                replacement = replacement.add(LinExpr.of_var(other, -quotient))
                changed = True
        const_quotient = eq.const // coeff
        if const_quotient:
            replacement = replacement.add(LinExpr.constant(-const_quotient))
            changed = True
        if not changed:
            raise AssertionError("equality elimination made no progress")
        # The unimodular rewrite redefines ``var`` in terms of itself and
        # the other variables; the equation stays in play, so its tags
        # ride along with the rewritten equation rather than the rows.
        eqs.append((eq.substitute(var, replacement), tags))
        ineqs = [(i.substitute(var, replacement), t) for i, t in ineqs]
    return ineqs


def _core_inequalities(rows, depth: int) -> Optional[frozenset]:
    if depth <= 0:
        return None
    tightest: Dict[frozenset, Tuple[LinExpr, frozenset]] = {}
    for expr, tags in rows:
        norm = _normalize_ineq(expr)
        if norm.is_const():
            if norm.const > 0:
                return tags
            continue
        key = frozenset(norm.coeffs.items())
        prev = tightest.get(key)
        if prev is None or norm.const > prev[0].const:
            tightest[key] = (norm, tags)
    work = list(tightest.values())
    if not work:
        return None  # satisfiable

    variables = set()
    for expr, _ in work:
        variables.update(expr.variables())

    # One-sided variables cannot participate in a contradiction; peel.
    for var in sorted(variables, key=lambda v: v.sexpr()):
        lowers = [row for row in work if row[0].coeff(var) < 0]
        uppers = [row for row in work if row[0].coeff(var) > 0]
        if lowers and uppers:
            continue
        rest = [row for row in work if row[0].coeff(var) == 0]
        return _core_inequalities(rest, depth)

    def cost(var: Term) -> Tuple[int, str]:
        lows = sum(1 for row in work if row[0].coeff(var) < 0)
        ups = sum(1 for row in work if row[0].coeff(var) > 0)
        return (lows * ups, var.sexpr())

    var = min(variables, key=cost)
    lowers = []
    uppers = []
    rest = []
    for expr, tags in work:
        coeff = expr.coeff(var)
        if coeff < 0:
            lowers.append((-coeff, expr.without(var), tags))
        elif coeff > 0:
            uppers.append((coeff, expr.without(var).scale(-1), tags))
        else:
            rest.append((expr, tags))

    exact = all(a == 1 for a, _, _ in lowers) or all(
        c == 1 for c, _, _ in uppers
    )
    if not exact:
        # The dark shadow under-approximates: a contradiction through it
        # is not a certificate, and covering the splinters would need
        # model extraction.  Give up; the caller falls back.
        return None
    shadow = list(rest)
    for a, b, tags_low in lowers:
        for c, d, tags_up in uppers:
            shadow.append((b.scale(c).sub(d.scale(a)), tags_low | tags_up))
    return _core_inequalities(shadow, depth - 1)


def _assign_free_var(model: Model, var: Term, lowers, uppers) -> None:
    """Assign a variable constrained only from one side (or not at all)."""
    value = 0
    if lowers:
        # lowers are LinExpr with coeff(var) < 0: b_expr - a*var <= 0.
        bounds = []
        for ineq in lowers:
            a = -ineq.coeff(var)
            b = ineq.without(var)
            bval = _eval_default(b, model)
            bounds.append(-(-bval // a))  # ceil(bval / a)
        value = max(bounds + [0])
    elif uppers:
        bounds = []
        for ineq in uppers:
            c = ineq.coeff(var)
            d = ineq.without(var).scale(-1)
            dval = _eval_default(d, model)
            bounds.append(dval // c)  # floor(dval / c)
        value = min(bounds + [0])
    model[var] = value


def _choose_between_bounds(model: Model, lowers, uppers) -> Optional[int]:
    lo = None
    for a, b in lowers:
        bval = _eval_default(b, model)
        candidate = -(-bval // a)  # ceil
        lo = candidate if lo is None else max(lo, candidate)
    hi = None
    for c, d in uppers:
        dval = _eval_default(d, model)
        candidate = dval // c  # floor
        hi = candidate if hi is None else min(hi, candidate)
    if lo is None and hi is None:
        return 0
    if lo is None:
        return hi
    if hi is None:
        return lo
    if lo <= hi:
        return lo
    return None

"""Linear integer arithmetic: normalization and an Omega-style decision
procedure with model extraction.

The Lilac type checker emits constraints over symbolic parameters (latencies,
initiation intervals, bundle indices).  After uninterpreted functions are
removed by Ackermann reduction, every theory atom is a linear constraint over
integer variables.  This module decides satisfiability of conjunctions of
such constraints *exactly* and produces integer models (used to build the
counterexample parameterizations the paper shows in section 3.2).

The algorithm follows Pugh's Omega test:

* equalities are eliminated with unimodular changes of variables (a
  Euclidean reduction that preserves integer solution sets bijectively);
* inequalities are eliminated with Fourier--Motzkin using the *dark shadow*
  for completeness, falling back to splinter enumeration in the rare case
  the dark shadow is strictly smaller than the real shadow.

Models are rebuilt by back-substitution through the recorded eliminations.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Tuple

from .terms import Term, Int

Model = Dict[Term, int]


class NonLinearError(Exception):
    """Raised when a term cannot be expressed as a linear expression."""


class LinExpr:
    """A linear expression ``sum(coeff * var) + const`` over Term variables."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[Dict[Term, int]] = None, const: int = 0):
        self.coeffs: Dict[Term, int] = {}
        if coeffs:
            for var, coeff in coeffs.items():
                if coeff != 0:
                    self.coeffs[var] = coeff
        self.const = const

    @staticmethod
    def constant(value: int) -> "LinExpr":
        return LinExpr(const=value)

    @staticmethod
    def of_var(var: Term, coeff: int = 1) -> "LinExpr":
        return LinExpr({var: coeff})

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.const)

    def add(self, other: "LinExpr") -> "LinExpr":
        out = self.copy()
        for var, coeff in other.coeffs.items():
            new = out.coeffs.get(var, 0) + coeff
            if new:
                out.coeffs[var] = new
            else:
                out.coeffs.pop(var, None)
        out.const += other.const
        return out

    def scale(self, factor: int) -> "LinExpr":
        if factor == 0:
            return LinExpr()
        return LinExpr(
            {var: coeff * factor for var, coeff in self.coeffs.items()},
            self.const * factor,
        )

    def sub(self, other: "LinExpr") -> "LinExpr":
        return self.add(other.scale(-1))

    def is_const(self) -> bool:
        return not self.coeffs

    def coeff(self, var: Term) -> int:
        return self.coeffs.get(var, 0)

    def without(self, var: Term) -> "LinExpr":
        out = self.copy()
        out.coeffs.pop(var, None)
        return out

    def substitute(self, var: Term, replacement: "LinExpr") -> "LinExpr":
        coeff = self.coeffs.get(var)
        if coeff is None:
            return self
        out = self.without(var)
        return out.add(replacement.scale(coeff))

    def evaluate(self, model: Model) -> int:
        total = self.const
        for var, coeff in self.coeffs.items():
            total += coeff * model[var]
        return total

    def variables(self):
        return self.coeffs.keys()

    def __eq__(self, other) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self):
        return hash((frozenset(self.coeffs.items()), self.const))

    def __repr__(self) -> str:
        parts = [f"{c}*{v.sexpr()}" for v, c in self.coeffs.items()]
        parts.append(str(self.const))
        return " + ".join(parts)


def linexpr_of_term(term: Term) -> LinExpr:
    """Convert an integer term into a LinExpr.

    Variables and uninterpreted applications become atomic variables.
    Multiplication is only allowed when at most one factor is non-constant;
    anything else raises :class:`NonLinearError` (the solver abstracts
    non-linear products before reaching this point).
    """
    op = term.op
    if op == "intval":
        return LinExpr.constant(term.value)
    if op in ("var", "app"):
        return LinExpr.of_var(term)
    if op == "+":
        out = LinExpr()
        for arg in term.args:
            out = out.add(linexpr_of_term(arg))
        return out
    if op == "neg":
        return linexpr_of_term(term.args[0]).scale(-1)
    if op == "*":
        const = 1
        base: Optional[LinExpr] = None
        for arg in term.args:
            sub = linexpr_of_term(arg)
            if sub.is_const():
                const *= sub.const
            elif base is None:
                base = sub
            else:
                raise NonLinearError(term.sexpr())
        if base is None:
            return LinExpr.constant(const)
        return base.scale(const)
    raise NonLinearError(term.sexpr())


def _normalize_ineq(expr: LinExpr) -> Optional[LinExpr]:
    """Normalize ``expr <= 0`` by dividing through the coefficient gcd.

    Returns None when the constraint is trivially true, and an expression
    with const > 0 and no variables means trivially false (caller checks).
    Integer tightening: ``g*sum <= -c`` becomes ``sum <= floor(-c/g)``.
    """
    if expr.is_const():
        return expr
    g = 0
    for coeff in expr.coeffs.values():
        g = gcd(g, abs(coeff))
    if g > 1:
        bound = -expr.const
        tightened = bound // g  # floor division: sum <= floor(bound/g)
        expr = LinExpr(
            {var: coeff // g for var, coeff in expr.coeffs.items()},
            -tightened,
        )
    return expr


def _pick_equality_var(expr: LinExpr) -> Term:
    return min(expr.coeffs, key=lambda v: (abs(expr.coeffs[v]), v.sexpr()))


class _FreshVars:
    """Source of fresh integer variables used during elimination."""

    def __init__(self):
        self.counter = 0

    def make(self, hint: str) -> Term:
        self.counter += 1
        return Int(f"$lia{self.counter}_{hint}")


def solve_system(
    equalities: List[LinExpr],
    inequalities: List[LinExpr],
    max_splinter_depth: int = 24,
) -> Optional[Model]:
    """Decide ``/\\ eq == 0  /\\  ineq <= 0`` over the integers.

    Returns a model (dict mapping variable Terms to ints) when satisfiable
    and None when unsatisfiable.
    """
    fresh = _FreshVars()
    return _solve(
        [e.copy() for e in equalities],
        [i.copy() for i in inequalities],
        fresh,
        max_splinter_depth,
    )


def _solve(
    eqs: List[LinExpr],
    ineqs: List[LinExpr],
    fresh: _FreshVars,
    depth: int,
) -> Optional[Model]:
    substitutions: List[Tuple[Term, LinExpr]] = []
    result = _eliminate_equalities(eqs, ineqs, substitutions)
    if result is None:
        return None
    ineqs = result
    model = _solve_inequalities(ineqs, fresh, depth)
    if model is None:
        return None
    # Rebuild eliminated variables in reverse order of substitution.
    for var, expr in reversed(substitutions):
        model[var] = _eval_default(expr, model)
    return model


def _eval_default(expr: LinExpr, model: Model) -> int:
    """Evaluate, defaulting variables the reduced system left free to 0."""
    for var in expr.coeffs:
        model.setdefault(var, 0)
    return expr.evaluate(model)


def _eliminate_equalities(
    eqs: List[LinExpr],
    ineqs: List[LinExpr],
    substitutions: List[Tuple[Term, LinExpr]],
) -> Optional[List[LinExpr]]:
    """Remove all equalities, recording variable definitions.

    Uses gcd feasibility checks plus Euclidean unimodular rewrites so that a
    unit-coefficient variable always eventually appears.
    """
    eqs = list(eqs)
    ineqs = list(ineqs)
    while eqs:
        eq = eqs.pop()
        if eq.is_const():
            if eq.const != 0:
                return None
            continue
        g = 0
        for coeff in eq.coeffs.values():
            g = gcd(g, abs(coeff))
        if eq.const % g != 0:
            return None
        if g > 1:
            eq = LinExpr(
                {var: coeff // g for var, coeff in eq.coeffs.items()},
                eq.const // g,
            )
        var = _pick_equality_var(eq)
        coeff = eq.coeffs[var]
        if abs(coeff) == 1:
            # var = -sign(coeff) * (eq - coeff*var)
            rest = eq.without(var).scale(-1 if coeff > 0 else 1)
            substitutions.append((var, rest))
            eqs = [e.substitute(var, rest) for e in eqs]
            ineqs = [i.substitute(var, rest) for i in ineqs]
            continue
        # Euclidean reduction: substitute var := var' - sum(q_i * x_i) where
        # q_i = round-to-floor quotient of other coefficients by |coeff|.
        # This is unimodular, so integer solution sets are preserved.
        replacement = LinExpr.of_var(var)
        changed = False
        for other, other_coeff in list(eq.coeffs.items()):
            if other is var:
                continue
            quotient = other_coeff // coeff
            if quotient:
                replacement = replacement.add(LinExpr.of_var(other, -quotient))
                changed = True
        const_quotient = eq.const // coeff
        if const_quotient:
            # Fold part of the constant into the variable as well.
            replacement = replacement.add(LinExpr.constant(-const_quotient))
            changed = True
        if not changed:
            # Unreachable: ``var`` has the minimum absolute coefficient, so
            # every other coefficient has |a_i| >= |coeff| and a non-zero
            # floor quotient; with a single variable the gcd division above
            # already forced |coeff| == 1.
            raise AssertionError("equality elimination made no progress")
        substitutions.append((var, replacement))
        eq2 = eq.substitute(var, replacement)
        eqs.append(eq2)
        ineqs = [i.substitute(var, replacement) for i in ineqs]
    return ineqs


def _solve_inequalities(
    ineqs: List[LinExpr],
    fresh: _FreshVars,
    depth: int,
) -> Optional[Model]:
    # Normalize, drop trivial, fail fast on constant violations.
    work: List[LinExpr] = []
    for ineq in ineqs:
        norm = _normalize_ineq(ineq)
        if norm.is_const():
            if norm.const > 0:
                return None
            continue
        work.append(norm)
    if not work:
        return {}

    variables = set()
    for ineq in work:
        variables.update(ineq.variables())

    # Unconstrained-direction elimination: a variable with only lower bounds
    # or only upper bounds can always be satisfied; peel those first.
    for var in sorted(variables, key=lambda v: v.sexpr()):
        lowers = [i for i in work if i.coeff(var) < 0]
        uppers = [i for i in work if i.coeff(var) > 0]
        if lowers and uppers:
            continue
        rest = [i for i in work if i.coeff(var) == 0]
        model = _solve_inequalities(rest, fresh, depth)
        if model is None:
            return None
        _assign_free_var(model, var, lowers, uppers)
        return model

    # Pick the variable minimizing the number of generated constraints.
    def cost(var: Term) -> Tuple[int, str]:
        lows = sum(1 for i in work if i.coeff(var) < 0)
        ups = sum(1 for i in work if i.coeff(var) > 0)
        return (lows * ups, var.sexpr())

    var = min(variables, key=cost)
    lowers = []  # (a, b): b <= a * var, a > 0
    uppers = []  # (c, d): c * var <= d, c > 0
    rest = []
    for ineq in work:
        coeff = ineq.coeff(var)
        if coeff < 0:
            # rest - a*var <= 0  ==>  rest <= a*var  with a = -coeff.
            lowers.append((-coeff, ineq.without(var)))
        elif coeff > 0:
            # rest + c*var <= 0  ==>  c*var <= -rest.
            uppers.append((coeff, ineq.without(var).scale(-1)))
        else:
            rest.append(ineq)

    exact = all(a == 1 for a, _ in lowers) or all(c == 1 for c, _ in uppers)

    # Dark shadow (equals the real shadow when exact).
    shadow = list(rest)
    for a, b in lowers:
        for c, d in uppers:
            # real: c*b <= a*d ; dark adds (a-1)(c-1) slack requirement.
            expr = b.scale(c).sub(d.scale(a))
            if not exact:
                expr = expr.add(LinExpr.constant((a - 1) * (c - 1)))
            shadow.append(expr)
    model = _solve_inequalities(shadow, fresh, depth)
    if model is not None:
        value = _choose_between_bounds(model, lowers, uppers)
        if value is not None:
            model[var] = value
            return model
        # Dark shadow satisfiable but rounding failed (cannot happen for the
        # exact case); fall through to splinters.
    if exact:
        return None
    if depth <= 0:
        return None

    # Splinter enumeration: integer solutions missed by the dark shadow must
    # satisfy a*var = b + k for some lower bound (a, b) and small k.
    c_max = max(c for c, _ in uppers)
    for a, b in lowers:
        limit = (a * c_max - a - c_max) // c_max
        for k in range(limit + 1):
            # a*var - b - k == 0 together with the original system.
            eq = LinExpr.of_var(var, a).sub(b).add(LinExpr.constant(-k))
            model = _solve([eq], list(work), fresh, depth - 1)
            if model is not None:
                return model
    return None


def _assign_free_var(model: Model, var: Term, lowers, uppers) -> None:
    """Assign a variable constrained only from one side (or not at all)."""
    value = 0
    if lowers:
        # lowers are LinExpr with coeff(var) < 0: b_expr - a*var <= 0.
        bounds = []
        for ineq in lowers:
            a = -ineq.coeff(var)
            b = ineq.without(var)
            bval = _eval_default(b, model)
            bounds.append(-(-bval // a))  # ceil(bval / a)
        value = max(bounds + [0])
    elif uppers:
        bounds = []
        for ineq in uppers:
            c = ineq.coeff(var)
            d = ineq.without(var).scale(-1)
            dval = _eval_default(d, model)
            bounds.append(dval // c)  # floor(dval / c)
        value = min(bounds + [0])
    model[var] = value


def _choose_between_bounds(model: Model, lowers, uppers) -> Optional[int]:
    lo = None
    for a, b in lowers:
        bval = _eval_default(b, model)
        candidate = -(-bval // a)  # ceil
        lo = candidate if lo is None else max(lo, candidate)
    hi = None
    for c, d in uppers:
        dval = _eval_default(d, model)
        candidate = dval // c  # floor
        hi = candidate if hi is None else min(hi, candidate)
    if lo is None and hi is None:
        return 0
    if lo is None:
        return hi
    if hi is None:
        return lo
    if lo <= hi:
        return lo
    return None

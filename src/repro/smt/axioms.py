"""Axiom instantiation for the partially interpreted functions log2/exp2.

Section 4.1 of the paper: "Lilac also declares common operations such as
log2 and exp2 as uninterpreted functions within its encoding and provides
common equalities such as exp2(log2(N)) = N".  This module instantiates
those equalities (plus monotonicity and growth facts) for the applications
that actually occur in a query, keeping the encoding quantifier-free.
"""

from __future__ import annotations

from typing import List

from .terms import (
    Term,
    And,
    Eq,
    Ge,
    Implies,
    IntVal,
    Le,
    Plus,
    Times,
    apps,
)

LOG2 = "log2"
EXP2 = "exp2"


def instantiate_axioms(formula: Term) -> List[Term]:
    """Produce axioms for every log2/exp2 application in ``formula``."""
    return _axioms_for(sorted(apps(formula), key=lambda t: t.sexpr()))


class AxiomInstantiator:
    """Stateful instantiation across a growing application population.

    Each call re-derives the axiom set over *all* log2/exp2 applications
    seen so far and returns only the axioms not emitted before, so
    cross-formula pairs (monotonicity, shift facts) are covered exactly
    once — incremental queries see at least the axioms a one-shot query
    over the same conjunction would.
    """

    def __init__(self):
        self._apps: set = set()
        self._emitted: set = set()

    def process(self, formulas) -> List[Term]:
        changed = False
        for formula in formulas:
            for app in apps(formula):
                if app.name in (LOG2, EXP2) and app not in self._apps:
                    self._apps.add(app)
                    changed = True
        if not changed:
            return []
        fresh: List[Term] = []
        for axiom in _axioms_for(sorted(self._apps, key=lambda t: t.sexpr())):
            if axiom not in self._emitted:
                self._emitted.add(axiom)
                fresh.append(axiom)
        return fresh


def _axioms_for(applications) -> List[Term]:
    log_apps = [a for a in applications if a.name == LOG2]
    exp_apps = [a for a in applications if a.name == EXP2]
    axioms: List[Term] = []

    for app in exp_apps:
        (arg,) = app.args
        axioms.append(Ge(app, 1))
        # exp2(t) > t for all t >= 0 (and trivially for negative t since
        # exp2 >= 1); encode the useful half.
        axioms.append(Implies(Ge(arg, 0), Ge(app, Plus(arg, IntVal(1)))))

    for app in log_apps:
        (arg,) = app.args
        axioms.append(Implies(Ge(arg, 1), Ge(app, 0)))
        axioms.append(Implies(Ge(arg, 1), Le(app, Plus(arg, IntVal(-1)))))
        axioms.append(Implies(Ge(arg, 2), Ge(app, 1)))

    # Round-trip equalities: exp2(log2(N)) == N and log2(exp2(t)) == t.
    # The former matches the paper's canonical example (Lilac designs apply
    # log2 to power-of-two parameters).
    for exp_app in exp_apps:
        inner = exp_app.args[0]
        if inner.op == "app" and inner.name == LOG2:
            axioms.append(Eq(exp_app, inner.args[0]))
    for log_app in log_apps:
        inner = log_app.args[0]
        if inner.op == "app" and inner.name == EXP2:
            axioms.append(Eq(log_app, inner.args[0]))

    # Monotonicity instantiated pairwise over occurring applications.
    for group in (log_apps, exp_apps):
        for i, first in enumerate(group):
            for second in group[i + 1 :]:
                a, b = first.args[0], second.args[0]
                axioms.append(Implies(Le(a, b), Le(first, second)))
                axioms.append(Implies(Le(b, a), Le(second, first)))

    # Shift facts: exp2(t + k) == 2^k * exp2(t) for small constant offsets
    # between occurring arguments.
    for i, first in enumerate(exp_apps):
        for second in exp_apps:
            if first is second:
                continue
            diff = Plus(second.args[0], Times(IntVal(-1), first.args[0]))
            if diff.op == "intval" and 1 <= diff.value <= 16:
                axioms.append(Eq(second, Times(IntVal(2**diff.value), first)))

    # Concrete evaluation for constant arguments.
    for app in exp_apps:
        (arg,) = app.args
        if arg.op == "intval" and 0 <= arg.value <= 62:
            axioms.append(Eq(app, IntVal(2**arg.value)))
    for app in log_apps:
        (arg,) = app.args
        if arg.op == "intval" and arg.value >= 1:
            axioms.append(Eq(app, IntVal(arg.value.bit_length() - 1)))

    return [a for a in axioms if a is not None]


def conjoin_axioms(formula: Term) -> Term:
    axioms = instantiate_axioms(formula)
    if not axioms:
        return formula
    return And(formula, *axioms)

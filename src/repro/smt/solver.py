"""Lazy DPLL(T) solver for QF_UFLIA — the engine behind Lilac's type system.

Pipeline (section 4.2 of the paper, with Z3 replaced by this module):

1.  div/mod and integer ``ite`` elimination (fresh definitions);
2.  non-linear product abstraction (``@mul`` + axioms);
3.  log2/exp2 axiom instantiation;
4.  Ackermann reduction of all uninterpreted applications;
5.  Tseitin CNF conversion;
6.  DPLL enumeration of propositional models, each checked against the
    integer theory with the Omega-style procedure in :mod:`repro.smt.lia`;
    theory conflicts are greedily minimized and returned as blocking
    clauses.

`check` returns SAT with an integer model (used to build counterexample
parameterizations) or UNSAT (the design obligation holds for *every*
parameterization).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .ackermann import ackermannize
from .axioms import instantiate_axioms
from .cnf import AtomTable, CnfBuilder
from .lia import LinExpr, linexpr_of_term, solve_system
from .prep import abstract_nonlinear, eliminate_divmod, eliminate_ite
from .sat import SatSolver
from .terms import (
    Term,
    And,
    BoolVal,
    IntVal,
    Not,
    TRUE,
    free_vars,
    OP_EQ,
    OP_LE,
    OP_LT,
    OP_VAR,
    BOOL,
)

SAT = "sat"
UNSAT = "unsat"


class SolverError(Exception):
    """Raised when the solver exceeds its iteration budget."""


class Result:
    """Outcome of a `check` call."""

    def __init__(self, status: str, model: Optional[Dict[str, int]] = None):
        self.status = status
        self.model = model

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT

    def __repr__(self) -> str:
        return f"Result({self.status}, model={self.model})"


class Solver:
    """One-shot satisfiability checker over a set of assertions."""

    def __init__(self, max_iterations: int = 5000):
        self.assertions: List[Term] = []
        self.max_iterations = max_iterations

    def add(self, *terms: Term) -> "Solver":
        for term in terms:
            if term.sort != BOOL:
                raise TypeError(f"assertion must be boolean: {term.sexpr()}")
            self.assertions.append(term)
        return self

    def check(self) -> Result:
        formula = And(*self.assertions) if self.assertions else TRUE
        if formula.op == "boolval":
            if formula.value:
                return Result(SAT, {})
            return Result(UNSAT)

        original_vars = {
            v.name for v in free_vars(formula) if v.sort != BOOL
        }

        formula, ite_side = eliminate_ite(formula)
        formula = And(formula, *ite_side)
        formula, div_side = eliminate_divmod(formula)
        formula = And(formula, *div_side)
        formula, mul_axioms = abstract_nonlinear(formula)
        formula = And(formula, *mul_axioms)
        axioms = instantiate_axioms(formula)
        formula = And(formula, *axioms)
        formula, congruence, app_map = ackermannize(formula)
        formula = And(formula, *congruence)

        if formula.op == "boolval":
            return Result(SAT, {}) if formula.value else Result(UNSAT)

        atoms = AtomTable()
        builder = CnfBuilder(atoms)
        builder.add_formula(formula)
        sat = SatSolver(atoms.num_vars)
        sat.add_clauses(builder.clauses)
        theory_atoms = atoms.theory_atoms()

        # DPLL(T) with early pruning: the hook checks the integer theory on
        # every propagation-complete partial assignment and learns a
        # minimized conflict clause on inconsistency.
        state = {"last": None, "model": None, "budget": self.max_iterations}

        def hook(assignment):
            literals: List[Tuple[int, Term, bool]] = []
            for var, atom in theory_atoms.items():
                value = assignment.get(var)
                if value is None:
                    continue
                literals.append((var, atom, value))
            key = frozenset((var, val) for var, _, val in literals)
            if key == state["last"]:
                return None
            state["last"] = key
            model = _theory_check([(atom, val) for _, atom, val in literals])
            if model is not None:
                state["model"] = model
                return None
            state["budget"] -= 1
            if state["budget"] <= 0:
                raise SolverError("DPLL(T) conflict budget exhausted")
            core = _minimize_core(literals)
            return tuple((-var if value else var) for var, _, value in core)

        assignment = sat.solve(theory_hook=hook)
        if assignment is None:
            return Result(UNSAT)
        # The final assignment passed the hook; its model was stashed.
        model = state["model"]
        if model is None:
            # No theory atoms were assigned at all.
            model = {}
        return Result(SAT, _project_model(model, original_vars, app_map))


def check_sat(*terms: Term) -> Result:
    """Convenience: check satisfiability of the conjunction of ``terms``."""
    return Solver().add(*terms).check()


def prove(goal: Term, *assumptions: Term) -> Result:
    """Check validity of ``assumptions => goal``.

    Returns UNSAT when the implication is valid; a SAT result carries a
    counterexample model.
    """
    return Solver().add(*assumptions, Not(goal)).check()


def _atom_constraints(atom: Term, value: bool):
    """Translate an assigned atom into (equalities, inequalities, diseqs)."""
    lhs = linexpr_of_term(atom.args[0])
    rhs = linexpr_of_term(atom.args[1])
    diff = lhs.sub(rhs)  # atom relates diff to 0
    if atom.op == OP_EQ:
        if value:
            return [diff], [], []
        return [], [], [diff]
    if atom.op == OP_LE:
        if value:
            return [], [diff], []
        # not (diff <= 0)  ==  diff >= 1  ==  -diff + 1 <= 0
        return [], [diff.scale(-1).add(LinExpr.constant(1))], []
    if atom.op == OP_LT:
        if value:
            # diff < 0  ==  diff + 1 <= 0
            return [], [diff.add(LinExpr.constant(1))], []
        return [], [diff.scale(-1)], []
    raise ValueError(f"not a theory atom: {atom.sexpr()}")


def _theory_check(literals) -> Optional[Dict[Term, int]]:
    """Check a conjunction of assigned theory literals; return model or None."""
    equalities: List[LinExpr] = []
    inequalities: List[LinExpr] = []
    disequalities: List[LinExpr] = []
    for atom, value in literals:
        eqs, ineqs, diseqs = _atom_constraints(atom, value)
        equalities.extend(eqs)
        inequalities.extend(ineqs)
        disequalities.extend(diseqs)
    return _solve_with_diseqs(equalities, inequalities, disequalities)


def _solve_with_diseqs(
    equalities, inequalities, disequalities
) -> Optional[Dict[Term, int]]:
    """Lazy disequality handling.

    Solve the equality/inequality core first; only branch on a
    disequality the candidate model actually violates.  Eager splitting
    is exponential in the number of false equality literals (which
    Ackermann congruence produces in bulk); lazy splitting is almost
    always linear because models rarely make unrelated terms equal.
    """
    model = solve_system(equalities, inequalities)
    if model is None:
        return None
    for index, diseq in enumerate(disequalities):
        for var in diseq.coeffs:
            model.setdefault(var, 0)
        if diseq.evaluate(model) != 0:
            continue
        rest = disequalities[:index] + disequalities[index + 1 :]
        # diseq != 0: branch on diseq <= -1 or diseq >= 1.
        low = inequalities + [diseq.add(LinExpr.constant(1))]
        branched = _solve_with_diseqs(equalities, low, rest)
        if branched is not None:
            return branched
        high = inequalities + [diseq.scale(-1).add(LinExpr.constant(1))]
        return _solve_with_diseqs(equalities, high, rest)
    return model


def _minimize_core(literals):
    """Shrink an unsatisfiable set of theory literals by chunked deletion.

    Deletion in halving chunk sizes (QuickXplain-style) needs
    O(k log(n/k)) theory checks for a core of size k instead of O(n),
    which dominates solver time on larger components.
    """
    core = list(literals)
    chunk = max(1, len(core) // 2)
    while True:
        index = 0
        while index < len(core):
            candidate = core[:index] + core[index + chunk :]
            if candidate and _theory_check(
                [(atom, val) for _, atom, val in candidate]
            ) is None:
                core = candidate
            else:
                index += chunk
        if chunk == 1:
            break
        chunk //= 2
    return core


def _project_model(model, original_vars, app_map) -> Dict[str, int]:
    """Keep only user-visible variables; report UF apps by their s-expr."""
    out: Dict[str, int] = {}
    by_name = {}
    for var, value in model.items():
        if var.op == OP_VAR:
            by_name[var.name] = value
    for name in original_vars:
        out[name] = by_name.get(name, 0)
    for app, fresh in app_map.items():
        if fresh.name in by_name:
            out[app.sexpr()] = by_name[fresh.name]
    return out

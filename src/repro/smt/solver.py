"""Lazy DPLL(T) solver for QF_UFLIA — the engine behind Lilac's type system.

Pipeline (section 4.2 of the paper, with Z3 replaced by this module):

1.  div/mod and integer ``ite`` elimination (fresh definitions);
2.  non-linear product abstraction (``@mul`` + axioms);
3.  log2/exp2 axiom instantiation;
4.  Ackermann reduction of all uninterpreted applications;
5.  Tseitin CNF conversion;
6.  DPLL enumeration of propositional models, each checked against the
    integer theory with the Omega-style procedure in :mod:`repro.smt.lia`;
    theory conflicts are greedily minimized and returned as blocking
    clauses.

`check` returns SAT with an integer model (used to build counterexample
parameterizations) or UNSAT (the design obligation holds for *every*
parameterization).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from .ackermann import Ackermannizer, ackermannize
from .axioms import AxiomInstantiator, instantiate_axioms
from .cnf import AtomTable, CnfBuilder
from .lia import (
    LinExpr,
    clear_linexpr_memo,
    core_of_system,
    linexpr_of_term,
    solve_system,
)
from .prep import (
    DivModEliminator,
    IteEliminator,
    NonlinearAbstractor,
    abstract_nonlinear,
    eliminate_divmod,
    eliminate_ite,
)
from .sat import SatSolver
from .terms import (
    Term,
    And,
    BoolVal,
    IntVal,
    Not,
    TRUE,
    free_vars,
    legacy_mode,
    OP_EQ,
    OP_LE,
    OP_LT,
    OP_VAR,
    BOOL,
)

SAT = "sat"
UNSAT = "unsat"

#: Version of the solver's observable behaviour: status semantics, model
#: shapes, preprocessing.  It is part of every persistent obligation
#: cache key — bump it whenever a change could make a cached verdict or
#: model differ from what the current code would compute, and stale
#: entries become unreachable instead of wrong.
SOLVER_VERSION = 1

#: Default work budget; override with ``$REPRO_SMT_BUDGET``.  The budget
#: bounds the DPLL(T) conflict count per query (exhaustion raises
#: :class:`SolverError`, as the old hard-coded ``max_iterations`` did)
#: and separately caps the theory checks spent minimizing conflict
#: cores per query (exhaustion just returns unminimized cores — sound,
#: merely weaker blocking clauses).
DEFAULT_SMT_BUDGET = 5000


def smt_budget() -> int:
    raw = os.environ.get("REPRO_SMT_BUDGET")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_SMT_BUDGET


def _legacy_mode() -> bool:
    """``$REPRO_SMT_LEGACY=1`` routes theory checks and conflict
    minimization through the pre-PR5 monolithic code paths.  Kept so the
    typecheck benchmark measures the new engine against a faithful
    baseline inside one build, and as an escape hatch."""
    return legacy_mode()


# -- solver-wide statistics (cheap counters, read by `--stats json`) -----

_STATS: Dict[str, int] = {}


def _bump(name: str, amount: int = 1) -> None:
    _STATS[name] = _STATS.get(name, 0) + amount


def stats_snapshot() -> Dict[str, int]:
    """Counters since process start (or the last :func:`reset_stats`)."""
    return dict(_STATS)


def reset_stats() -> None:
    _STATS.clear()


# -- memo tables keyed by interned terms ---------------------------------

#: atom -> LinExpr of (lhs - rhs); the shared basis of every constraint
#: translation and of connected-component splitting.
_ATOM_DIFF_MEMO: Dict[Term, LinExpr] = {}

#: (atom, polarity) -> (equalities, inequalities, disequalities) tuples.
_ATOM_CONSTRAINT_MEMO: Dict[Tuple[Term, bool], Tuple[tuple, tuple, tuple]] = {}

#: frozenset of (atom, polarity) literals -> integer model or None.
#: Keys are variable-connected components, so the same sub-conjunction
#: reached from different obligations (or DPLL branches) is decided
#: once per process.
_THEORY_MEMO: Dict[frozenset, Optional[Dict[Term, int]]] = {}
_THEORY_MEMO_MAX = 200_000
_THEORY_MISS = object()  # sentinel: stored values include None

#: frozenset of failing literals -> minimized core (tuple of literals).
#: Obligations of one component trip over the same theory conflicts
#: again and again (each query restarts the SAT search); minimizing a
#: given failing set once per process removes the dominant rework.
_CORE_MEMO: Dict[frozenset, tuple] = {}



def clear_solver_caches() -> None:
    """Drop every solver-level memo (cold-start for benchmarks/tests)."""
    _ATOM_DIFF_MEMO.clear()
    _ATOM_CONSTRAINT_MEMO.clear()
    _THEORY_MEMO.clear()
    _CORE_MEMO.clear()
    _GROUPS_MEMO.clear()
    clear_linexpr_memo()


class SolverError(Exception):
    """Raised when the solver exceeds its conflict budget.

    When exhaustion escapes the typecheck recovery ladder (the one-shot
    fallback re-exhausted too) the error carries *attribution*:
    ``component`` names the Lilac component whose obligation broke the
    budget and ``digest`` is the obligation's canonical digest — the
    persistent cache key — so a budget failure deep in a long run names
    one reproducible query instead of only a stack trace.  Both are
    None on the raw error the DPLL(T) loop raises;
    :meth:`with_context` attaches them at the layer that knows them.
    """

    def __init__(
        self,
        message: str,
        component: Optional[str] = None,
        digest: Optional[str] = None,
    ):
        super().__init__(message)
        self.component = component
        self.digest = digest

    def with_context(
        self,
        component: Optional[str] = None,
        digest: Optional[str] = None,
    ) -> "SolverError":
        """A copy of this error with attribution folded into the
        message (existing context wins — the innermost layer knows
        best)."""
        component = self.component or component
        digest = self.digest or digest
        base = str(self.args[0]) if self.args else "solver budget exhausted"
        details = ", ".join(
            part
            for part in (
                f"component={component}" if component else "",
                f"obligation={digest}" if digest else "",
            )
            if part
        )
        message = f"{base} [{details}]" if details else base
        return SolverError(message, component=component, digest=digest)


class Result:
    """Outcome of a `check` call."""

    def __init__(self, status: str, model: Optional[Dict[str, int]] = None):
        self.status = status
        self.model = model

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT

    def __repr__(self) -> str:
        return f"Result({self.status}, model={self.model})"


class Solver:
    """One-shot satisfiability checker over a set of assertions.

    ``max_iterations`` bounds the DPLL(T) conflict count; the default
    comes from ``$REPRO_SMT_BUDGET`` (see :data:`DEFAULT_SMT_BUDGET`).
    """

    def __init__(self, max_iterations: Optional[int] = None):
        self.assertions: List[Term] = []
        self.max_iterations = (
            smt_budget() if max_iterations is None else max_iterations
        )

    def add(self, *terms: Term) -> "Solver":
        for term in terms:
            if term.sort != BOOL:
                raise TypeError(f"assertion must be boolean: {term.sexpr()}")
            self.assertions.append(term)
        return self

    def check(self) -> Result:
        _bump("query")
        formula = And(*self.assertions) if self.assertions else TRUE
        if formula.op == "boolval":
            if formula.value:
                return Result(SAT, {})
            return Result(UNSAT)

        original_vars = {
            v.name for v in free_vars(formula) if v.sort != BOOL
        }

        formula, ite_side = eliminate_ite(formula)
        formula = And(formula, *ite_side)
        formula, div_side = eliminate_divmod(formula)
        formula = And(formula, *div_side)
        formula, mul_axioms = abstract_nonlinear(formula)
        formula = And(formula, *mul_axioms)
        axioms = instantiate_axioms(formula)
        formula = And(formula, *axioms)
        formula, congruence, app_map = ackermannize(formula)
        formula = And(formula, *congruence)

        if formula.op == "boolval":
            return Result(SAT, {}) if formula.value else Result(UNSAT)

        atoms = AtomTable()
        builder = CnfBuilder(atoms)
        builder.add_formula(formula)
        sat = SatSolver(atoms.num_vars)
        sat.add_clauses(builder.clauses)
        theory_atoms = atoms.theory_atoms()

        # DPLL(T) with early pruning: the hook checks the integer theory on
        # every propagation-complete partial assignment and learns a
        # minimized conflict clause on inconsistency.
        hook = make_theory_hook(theory_atoms, self.max_iterations)
        state = hook.state

        assignment = sat.solve(theory_hook=hook)
        if assignment is None:
            return Result(UNSAT)
        # The final assignment passed the hook; its model was stashed.
        model = state["model"]
        if model is None:
            # No theory atoms were assigned at all.
            model = {}
        return Result(SAT, _project_model(model, original_vars, app_map))


class SideEntry:
    """A permanent side constraint with its activation rule.

    ``mode`` decides when the relevance closure activates the entry:

    * ``"any"`` — definitional constraints (div/mod, ite): active as
      soon as *any* trigger variable (the definition's fresh variables)
      is relevant, because a relevant fresh variable without its
      definition would be unconstrained and produce spurious models;
    * ``"all"`` — pairwise glue (Ackermann congruence, product/log2
      axioms): active only when *all* trigger variables (the involved
      application stand-ins) are relevant, mirroring the one-shot
      engine where such constraints only exist when both applications
      occur in the query.
    """

    __slots__ = ("term", "mode", "triggers")

    def __init__(self, term: Term, mode: str, triggers: frozenset):
        self.term = term
        self.mode = mode
        self.triggers = triggers


class PrepPipeline:
    """The preprocessing pipeline with state shared across formulas.

    Mirrors the one-shot stage order (ite → div/mod → non-linear
    abstraction → log2/exp2 axioms → Ackermann), but fresh-variable
    tables, abstraction maps and emitted-axiom sets persist, so a
    sequence of ``process`` calls over related formulas produces one
    consistent symbol space: repeated subterms share their fresh
    variables and every definition/axiom/congruence constraint is
    emitted exactly once, the first time it becomes relevant.
    """

    def __init__(self):
        self.ite = IteEliminator()
        self.divmod = DivModEliminator()
        self.nonlinear = NonlinearAbstractor()
        self.axioms = AxiomInstantiator()
        self.ackermann = Ackermannizer()

    def process(self, formulas):
        """Run the pipeline over ``formulas``.

        Returns ``(core, sides, deps)``:

        * ``core`` — the processed input formulas;
        * ``sides`` — new :class:`SideEntry` constraints (definitions,
          axioms, congruence) the processing introduced, threaded
          through the later stages exactly as the one-shot pipeline's
          growing conjunction would be;
        * ``deps`` — directed symbol dependencies ``(app_var_name,
          argument_symbols)`` for newly keyed applications: when an
          application stand-in becomes relevant, the symbols of its
          arguments (including nested application stand-ins) become
          relevant too.
        """
        # Items carry (term, tag); tag is "core", ("any", triggers) for
        # definitions, or "all" for glue whose triggers (the @-variables
        # of the final reduced term) are only known after Ackermann.
        items: List[Tuple[Term, object]] = [(f, "core") for f in formulas]
        for stage in (self.ite, self.divmod):
            next_items: List[Tuple[Term, object]] = []
            for term, tag in items:
                processed, side = stage.process(term)
                next_items.append((processed, tag))
                for definition in side:
                    triggers = frozenset(
                        fresh for fresh in _definition_triggers(stage, definition)
                    )
                    next_items.append((definition, ("any", triggers)))
            items = next_items
        next_items = []
        for term, tag in items:
            processed, side = self.nonlinear.process(term)
            next_items.append((processed, tag))
            next_items.extend((axiom, "all") for axiom in side)
        items = next_items
        items.extend(
            (axiom, "all")
            for axiom in self.axioms.process([term for term, _ in items])
        )
        mapping_mark = len(self.ackermann.mapping)
        core: List[Term] = []
        sides: List[SideEntry] = []
        for term, tag in items:
            reduced, congruence = self.ackermann.process(term)
            if tag == "core":
                core.append(reduced)
            elif tag == "all":
                sides.append(SideEntry(reduced, "all", _app_symbols(reduced)))
            else:
                sides.append(SideEntry(reduced, "any", tag[1]))
            sides.extend(
                SideEntry(constraint, "all", _app_symbols(constraint))
                for constraint in congruence
            )
        deps: List[Tuple[str, frozenset]] = []
        order = self.ackermann._order
        for app in order[mapping_mark:]:
            fresh = self.ackermann.mapping[app]
            deps.append(
                (fresh.name, frozenset(v.name for v in free_vars(app)))
            )
        return core, sides, deps


def _definition_triggers(stage, definition: Term):
    """The fresh variables a definitional side constraint defines.

    Definitions are emitted by the ite/div-mod eliminators; their fresh
    variables are exactly the ``$``-prefixed ones, a naming contract of
    :mod:`repro.smt.prep`.
    """
    return {
        v.name
        for v in free_vars(definition)
        if v.name.startswith(("$q", "$r", "$ite"))
    }


def _app_symbols(term: Term) -> frozenset:
    """Application stand-in variables (``@``-prefixed) of a term."""
    return frozenset(
        v.name for v in free_vars(term) if v.name.startswith("@")
    )


class IncrementalSolver:
    """Discharges many related queries against one growing context.

    The intended use is one instance per type-checked component: facts
    are asserted permanently with :meth:`add` (in whatever prefix order
    the caller's visibility rules demand), and each obligation is
    checked with :meth:`check` — its formulas are encoded once, guarded
    by a fresh assumption literal, solved, and retired.  Everything
    heavy is shared across queries instead of rebuilt N times:

    * the preprocessing state (:class:`PrepPipeline`): fresh-variable
      tables, abstraction maps, axiom/congruence sets;
    * the Tseitin encoding (:class:`~repro.smt.cnf.CnfBuilder` cache):
      facts are encoded once, not once per obligation;
    * the SAT clause database, *including learned theory lemmas*: a
      conflict minimized while discharging one obligation prunes the
      search of every later obligation (theory lemmas are valid
      globally, and conflict clauses are always over the active query's
      atoms — see :class:`_TheoryHook`);
    * the process-wide theory-check memo keyed by hash-consed literals.

    Retired queries stay in the clause database behind their (now
    permanently false) assumption literals; decision restriction keeps
    them out of later searches, so query cost tracks the active
    obligation, not the history.
    """

    def __init__(self, max_iterations: Optional[int] = None):
        self.max_iterations = (
            smt_budget() if max_iterations is None else max_iterations
        )
        self.atoms = AtomTable()
        self.builder = CnfBuilder(self.atoms)
        self.sat = SatSolver()
        self.prep = PrepPipeline()
        self._clause_mark = 0
        #: fact entries: (variable-name symbols, sat vars) — the closure
        #: includes one as soon as it shares a symbol.
        self._facts: List[Tuple[frozenset, frozenset]] = []
        #: gated side entries: (mode, triggers, symbols, sat vars).
        self._sides: List[Tuple[str, frozenset, frozenset, frozenset]] = []
        #: directed deps: app stand-in name -> its arguments' symbols.
        self._deps: List[Tuple[str, frozenset]] = []
        self._orig_names: set = set()

    def _flush(self) -> None:
        new = self.builder.clauses[self._clause_mark :]
        if new:
            self.sat.add_clauses(new)
        self._clause_mark = len(self.builder.clauses)

    def _encode_permanent(self, term: Term):
        """Assert a formula's clauses; returns (symbols, vars) or None
        for constants."""
        if term.op == "boolval":
            if not term.value:
                self.builder.clauses.append(())
            return None
        self.builder.add_formula(term)
        return (
            frozenset(v.name for v in free_vars(term)),
            frozenset(self.builder.vars_of(term)),
        )

    def _assert_facts(self, terms) -> None:
        for term in terms:
            entry = self._encode_permanent(term)
            if entry is not None:
                self._facts.append(entry)
        self._flush()

    def _assert_sides(self, sides) -> None:
        for side in sides:
            entry = self._encode_permanent(side.term)
            if entry is not None:
                self._sides.append(
                    (side.mode, side.triggers, entry[0], entry[1])
                )
        self._flush()

    def _relevant_slices(self, anchor_symbols: set):
        """Per-query relevance closure over the permanent context.

        The incremental context holds *every* fact, definition, axiom
        and congruence constraint of the component, but a single
        obligation only needs the slice (transitively) connected to it —
        the same conservative relevance filter the one-shot engine
        applies by pruning facts before solving, realised here as a
        restriction of the SAT decision set.  Three record kinds
        cooperate (facts share-based, side entries gated by their
        trigger variables, app→argument dependency edges), so pairwise
        glue between applications of *different* obligations never
        bridges otherwise unrelated queries.  Entries outside the
        closure stay asserted but undecided: they can only be dropped,
        which can only make a query easier to satisfy, never mask an
        error.

        Returns ``(fact_vars, side_vars)`` as ordered lists (assertion
        order, ascending variable ids within an assertion) — the caller
        builds the branching order from them, and order matters: side
        constraints must be decided *after* the fact and query atoms or
        the search degenerates (see the decision-order note in
        :meth:`check`).
        """
        symbols = set(anchor_symbols)
        fact_fired = [False] * len(self._facts)
        side_fired = [False] * len(self._sides)
        dep_fired = [False] * len(self._deps)
        changed = True
        while changed:
            changed = False
            for index, (entry_symbols, _) in enumerate(self._facts):
                if not fact_fired[index] and entry_symbols & symbols:
                    fact_fired[index] = True
                    symbols |= entry_symbols
                    changed = True
            for index, (name, arg_symbols) in enumerate(self._deps):
                if not dep_fired[index] and name in symbols:
                    dep_fired[index] = True
                    if not arg_symbols <= symbols:
                        symbols |= arg_symbols
                    changed = True
            for index, (mode, triggers, entry_symbols, _) in enumerate(
                self._sides
            ):
                if side_fired[index]:
                    continue
                if not triggers:
                    fire = bool(entry_symbols & symbols)
                elif mode == "any":
                    fire = bool(triggers & symbols)
                else:
                    fire = triggers <= symbols
                if fire:
                    side_fired[index] = True
                    symbols |= entry_symbols
                    changed = True
        fact_vars = [
            var
            for index, (_, entry_vars) in enumerate(self._facts)
            if fact_fired[index]
            for var in sorted(entry_vars)
        ]
        side_vars = [
            var
            for index, (_, _, _, entry_vars) in enumerate(self._sides)
            if side_fired[index]
            for var in sorted(entry_vars)
        ]
        return fact_vars, side_vars

    def add(self, *facts: Term) -> "IncrementalSolver":
        """Permanently assert ``facts`` (they join every later query)."""
        for fact in facts:
            if fact.sort != BOOL:
                raise TypeError(f"assertion must be boolean: {fact.sexpr()}")
            self._orig_names |= {
                v.name for v in free_vars(fact) if v.sort != BOOL
            }
        core, sides, deps = self.prep.process(facts)
        self._assert_facts(core)
        self._assert_sides(sides)
        self._deps.extend(deps)
        return self

    def check(self, *extra: Term) -> Result:
        """Satisfiability of the permanent facts plus ``extra``.

        ``extra`` is encoded under a fresh assumption literal and
        retired afterwards; definitional side constraints its
        preprocessing introduces are asserted permanently (they are
        conservative extensions, inert without their trigger terms).
        """
        _bump("query")
        _bump("query.incremental")
        extra_names = set()
        for term in extra:
            if term.sort != BOOL:
                raise TypeError(f"assertion must be boolean: {term.sexpr()}")
            extra_names |= {
                v.name for v in free_vars(term) if v.sort != BOOL
            }
        core, sides, deps = self.prep.process(extra)
        self._assert_sides(sides)
        self._deps.extend(deps)
        # Flatten the query to top-level conjuncts and guard each one
        # individually: under the assumption every conjunct literal is
        # unit-propagated exactly as the one-shot engine's per-assertion
        # unit clauses are, which keeps the search trajectory aligned.
        conjuncts: List[Term] = []
        for term in core:
            flattened = And(term) if term.op != "and" else term
            if flattened.op == "and":
                conjuncts.extend(flattened.args)
            else:
                conjuncts.append(flattened)
        assumption = None
        extra_vars: set = set()
        anchor_symbols: set = set()
        guarded: List[Term] = []
        for term in conjuncts:
            if term.op == "boolval":
                if not term.value:
                    return Result(UNSAT)
                continue
            guarded.append(term)
        if guarded:
            assumption = self.atoms.fresh()
            for term in guarded:
                literal = self.builder.literal_of(term)
                self.builder.clauses.append((-assumption, literal))
                extra_vars |= self.builder.vars_of(term)
                anchor_symbols |= {v.name for v in free_vars(term)}
        self._flush()
        fact_vars, side_vars = self._relevant_slices(anchor_symbols)
        # Branching order is the critical heuristic: fact atoms, then the
        # query's own variables, then the definitional/axiom tail — the
        # shape a one-shot encoding produces naturally.  Deciding side
        # constraints early degenerates the search on UNSAT proofs by
        # orders of magnitude.
        decision_order = fact_vars + sorted(extra_vars) + side_vars
        decision_set = set(decision_order)
        if assumption is not None:
            decision_set.add(assumption)
        active_atoms = {
            var: atom
            for var, atom in self.atoms.theory_atoms().items()
            if var in decision_set
        }
        hook = make_theory_hook(active_atoms, self.max_iterations)
        assignment = self.sat.solve(
            theory_hook=hook,
            assumptions=(assumption,) if assumption is not None else (),
            decision_vars=decision_order,
        )
        if assumption is not None:
            # Retire the query: its encoding goes inert for good.
            self.sat.add_clause((-assumption,))
        if assignment is None:
            return Result(UNSAT)
        model = hook.state["model"]
        if model is None:
            model = {}
        return Result(
            SAT,
            _project_model(
                model,
                self._orig_names | extra_names,
                self.prep.ackermann.mapping,
            ),
        )


def check_sat(*terms: Term) -> Result:
    """Convenience: check satisfiability of the conjunction of ``terms``."""
    return Solver().add(*terms).check()


def prove(goal: Term, *assumptions: Term) -> Result:
    """Check validity of ``assumptions => goal``.

    Returns UNSAT when the implication is valid; a SAT result carries a
    counterexample model.
    """
    return Solver().add(*assumptions, Not(goal)).check()


def _atom_diff(atom: Term) -> LinExpr:
    """``lhs - rhs`` of a theory atom as a LinExpr (memoized)."""
    diff = _ATOM_DIFF_MEMO.get(atom)
    if diff is None:
        diff = linexpr_of_term(atom.args[0]).sub(linexpr_of_term(atom.args[1]))
        _ATOM_DIFF_MEMO[atom] = diff
    return diff


def _atom_constraints(atom: Term, value: bool):
    """Translate an assigned atom into (equalities, inequalities, diseqs).

    Memoized on the interned ``(atom, polarity)`` pair; the returned
    LinExprs are shared and must be treated as immutable (every LinExpr
    operation already returns a fresh object).
    """
    key = (atom, value)
    hit = _ATOM_CONSTRAINT_MEMO.get(key)
    if hit is not None:
        return hit
    diff = _atom_diff(atom)  # atom relates diff to 0
    if atom.op == OP_EQ:
        result = ((diff,), (), ()) if value else ((), (), (diff,))
    elif atom.op == OP_LE:
        if value:
            result = ((), (diff,), ())
        else:
            # not (diff <= 0)  ==  diff >= 1  ==  -diff + 1 <= 0
            result = ((), (diff.scale(-1).add(LinExpr.constant(1)),), ())
    elif atom.op == OP_LT:
        if value:
            # diff < 0  ==  diff + 1 <= 0
            result = ((), (diff.add(LinExpr.constant(1)),), ())
        else:
            result = ((), (diff.scale(-1),), ())
    else:
        raise ValueError(f"not a theory atom: {atom.sexpr()}")
    _ATOM_CONSTRAINT_MEMO[key] = result
    return result


def _atom_vars(atom: Term):
    """The variables the atom actually constrains (keys of its diff)."""
    return _atom_diff(atom).coeffs.keys()


#: frozenset of atoms -> tuple of atom groups.  Connectivity depends on
#: the atoms alone (not their assigned polarities), and the DPLL search
#: flips polarities over a far slower-changing assigned-atom set, so
#: the union-find result is heavily reusable.
_GROUPS_MEMO: Dict[frozenset, tuple] = {}
_GROUPS_MEMO_MAX = 100_000


def _connected_groups(literals: Sequence[Tuple[Term, bool]]):
    """Split assigned literals into variable-connected components.

    Two literals land in one group iff their atoms (transitively) share
    a variable; constraints in different groups are independent, so the
    conjunction is satisfiable iff every group is and models merge by
    union.  Constant atoms (no variables) form one extra group.
    """
    literals = list(literals)
    if len(literals) <= 1:
        return [literals] if literals else []
    value_of = dict(literals)
    atoms_key = frozenset(value_of)
    grouped = _GROUPS_MEMO.get(atoms_key)
    if grouped is not None:
        return [
            [(atom, value_of[atom]) for atom in group] for group in grouped
        ]
    groups = _split_atoms(list(value_of))
    if len(_GROUPS_MEMO) >= _GROUPS_MEMO_MAX:
        _GROUPS_MEMO.clear()
    _GROUPS_MEMO[atoms_key] = groups
    return [[(atom, value_of[atom]) for atom in group] for group in groups]


def _split_atoms(atoms: Sequence[Term]):
    """Union-find over atoms by shared variables; returns atom groups."""
    parent: Dict[Term, Term] = {}

    def find(var: Term) -> Term:
        root = var
        while parent[root] is not root:
            root = parent[root]
        while parent[var] is not root:
            parent[var], var = root, parent[var]
        return root

    for atom in atoms:
        iterator = iter(_atom_vars(atom))
        first = next(iterator, None)
        if first is None:
            continue
        if first not in parent:
            parent[first] = first
        root = find(first)
        for var in iterator:
            if var not in parent:
                parent[var] = root
            else:
                other = find(var)
                if other is not root:
                    parent[other] = root
    groups: Dict[Term, List[Term]] = {}
    order: List[List[Term]] = []
    constants: List[Term] = []
    for atom in atoms:
        variables = _atom_vars(atom)
        if not variables:
            if not constants:
                order.append(constants)
            constants.append(atom)
            continue
        root = find(next(iter(variables)))
        group = groups.get(root)
        if group is None:
            group = groups[root] = []
            order.append(group)
        group.append(atom)
    return tuple(tuple(group) for group in order)


def _theory_check_monolithic(literals) -> Optional[Dict[Term, int]]:
    """Check a conjunction of assigned theory literals as one system."""
    equalities: List[LinExpr] = []
    inequalities: List[LinExpr] = []
    disequalities: List[LinExpr] = []
    for atom, value in literals:
        eqs, ineqs, diseqs = _atom_constraints(atom, value)
        equalities.extend(eqs)
        inequalities.extend(ineqs)
        disequalities.extend(diseqs)
    return _solve_with_diseqs(equalities, inequalities, disequalities)


def _theory_check(literals, failing: Optional[list] = None):
    """Check assigned theory literals; return a merged model or None.

    The conjunction is split into variable-connected components, each
    decided through a process-wide memo (hash-consed atoms make the
    frozenset keys cheap).  DPLL revisits mostly-unchanged assignments
    constantly, so the memo turns the quadratic re-checking of the lazy
    loop into hash lookups.  On failure the offending component's
    literals are appended to ``failing`` — conflict minimization then
    works on that (much smaller) subset only.
    """
    model: Dict[Term, int] = {}
    for group in _connected_groups(literals):
        key = frozenset(group)
        # Single read: concurrent typecheck threads may clear the memo
        # wholesale at the size cap between a membership test and a
        # lookup, so check-then-read would race.
        result = _THEORY_MEMO.get(key, _THEORY_MISS)
        if result is not _THEORY_MISS:
            _bump("theory.memo_hit")
        else:
            _bump("theory.check")
            result = _theory_check_monolithic(group)
            if len(_THEORY_MEMO) >= _THEORY_MEMO_MAX:
                _THEORY_MEMO.clear()
            _THEORY_MEMO[key] = result
        if result is None:
            if failing is not None:
                failing.extend(group)
            return None
        model.update(result)
    return model


def _solve_with_diseqs(
    equalities, inequalities, disequalities
) -> Optional[Dict[Term, int]]:
    """Lazy disequality handling.

    Solve the equality/inequality core first; only branch on a
    disequality the candidate model actually violates.  Eager splitting
    is exponential in the number of false equality literals (which
    Ackermann congruence produces in bulk); lazy splitting is almost
    always linear because models rarely make unrelated terms equal.
    """
    model = solve_system(equalities, inequalities)
    if model is None:
        return None
    for index, diseq in enumerate(disequalities):
        for var in diseq.coeffs:
            model.setdefault(var, 0)
        if diseq.evaluate(model) != 0:
            continue
        rest = disequalities[:index] + disequalities[index + 1 :]
        # diseq != 0: branch on diseq <= -1 or diseq >= 1.
        low = inequalities + [diseq.add(LinExpr.constant(1))]
        branched = _solve_with_diseqs(equalities, low, rest)
        if branched is not None:
            return branched
        high = inequalities + [diseq.scale(-1).add(LinExpr.constant(1))]
        return _solve_with_diseqs(equalities, high, rest)
    return model


class _TheoryHook:
    """The DPLL(T) callback: theory checks, conflict learning, budgets.

    One instance lives per query.  ``relevant_vars`` (when given)
    restricts the hook to atoms of the active obligation — the
    incremental solver shares one SAT instance across obligations, and
    atoms belonging to retired obligations must neither bloat the LIA
    systems nor influence this query's verdict.  Conflict clauses are
    therefore always over relevant atoms, which is what makes them
    valid theory lemmas that can be retained across queries.
    """

    def __init__(self, theory_atoms, conflict_budget, relevant_vars=None):
        self.theory_atoms = theory_atoms  # sat var id -> atom Term
        self.relevant_vars = relevant_vars
        self.conflict_budget = conflict_budget
        #: theory checks available for conflict minimization this query.
        self.minimize_pool = conflict_budget
        self.state = {"last": None, "model": None}

    def __call__(self, assignment):
        relevant = self.relevant_vars
        literals: List[Tuple[int, Term, bool]] = []
        for var, atom in self.theory_atoms.items():
            if relevant is not None and var not in relevant:
                continue
            value = assignment.get(var)
            if value is None:
                continue
            literals.append((var, atom, value))
        key = frozenset((var, val) for var, _, val in literals)
        if key == self.state["last"]:
            return None
        self.state["last"] = key
        pairs = [(atom, val) for _, atom, val in literals]
        if _legacy_mode():
            model = _theory_check_monolithic(pairs)
            if model is not None:
                self.state["model"] = model
                return None
            self._spend_conflict()
            core = _minimize_core_legacy(literals)
            return tuple((-var if value else var) for var, _, value in core)
        failing: List[Tuple[Term, bool]] = []
        model = _theory_check(pairs, failing)
        if model is not None:
            self.state["model"] = model
            return None
        self._spend_conflict()
        var_of = {atom: var for var, atom, _ in literals}
        core = _minimize_core(failing, self)
        return tuple(
            (-var_of[atom] if value else var_of[atom])
            for atom, value in core
        )

    def _spend_conflict(self) -> None:
        _bump("theory.conflict")
        self.conflict_budget -= 1
        if self.conflict_budget <= 0:
            raise SolverError("DPLL(T) conflict budget exhausted")


def make_theory_hook(theory_atoms, budget, relevant_vars=None) -> _TheoryHook:
    return _TheoryHook(theory_atoms, budget, relevant_vars)


def _provenance_core(literals) -> Optional[list]:
    """Certificate-based core: one provenance-tracking LIA run.

    Tags every constraint row with its literal index and asks
    :func:`repro.smt.lia.core_of_system` for the contradiction's tag
    set.  Disequalities (false equalities) are handled by case-splitting
    without models: the system must be contradictory on both sides of
    some disequality, and the union of both branch cores plus the
    disequality's own tag is a core.  Returns None when no certificate
    is found (non-exact shadow steps, too many disequalities).
    """
    equalities = []
    inequalities = []
    disequalities = []
    for index, (atom, value) in enumerate(literals):
        tags = frozenset((index,))
        eqs, ineqs, diseqs = _atom_constraints(atom, value)
        equalities.extend((expr, tags) for expr in eqs)
        inequalities.extend((expr, tags) for expr in ineqs)
        disequalities.extend((expr, tags) for expr in diseqs)

    def search(ineq_rows, diseq_rows, depth) -> Optional[frozenset]:
        core = core_of_system(equalities, ineq_rows)
        if core is not None:
            return core
        if not diseq_rows or depth <= 0:
            return None
        # The eq/ineq base has no certificate, so some disequality must
        # be doing the refuting.  Model-guided split (mirroring the
        # decision procedure's lazy disequality handling): find a
        # disequality the base model violates; the system must be
        # contradictory on *both* integer sides of it.
        model = solve_system(
            [expr for expr, _ in equalities],
            [expr for expr, _ in ineq_rows],
        )
        if model is None:
            return None  # base unsat but certificate-less: fall back
        for position, (expr, tags) in enumerate(diseq_rows):
            for var in expr.coeffs:
                model.setdefault(var, 0)
            if expr.evaluate(model) != 0:
                continue
            remaining = diseq_rows[:position] + diseq_rows[position + 1 :]
            low = search(
                ineq_rows + [(expr.add(LinExpr.constant(1)), tags)],
                remaining,
                depth - 1,
            )
            if low is None:
                return None
            high = search(
                ineq_rows + [(expr.scale(-1).add(LinExpr.constant(1)), tags)],
                remaining,
                depth - 1,
            )
            if high is None:
                return None
            return low | high
        return None  # no violated disequality: not refutable here

    core_tags = search(inequalities, disequalities, 16)
    if core_tags is None:
        return None
    return [literals[index] for index in sorted(core_tags)]


def _minimize_core(literals, hook: _TheoryHook):
    """Minimize an unsatisfiable set of (atom, value) literals.

    The caller passes the failing variable-connected component only, so
    ``n`` here is already far below the full assignment size.  A
    provenance certificate (:func:`_provenance_core`) is tried first —
    one tagged LIA run instead of dozens of deletion probes — and
    verified with a single memoized theory check.  Failing that,
    deletion proceeds in halving chunk sizes (QuickXplain-style:
    O(k log(n/k)) checks for a core of size k); every check goes through
    the memoized :func:`_theory_check`, and the hook's per-query budget
    pool caps total minimization work — on exhaustion the current
    (still unsatisfiable, merely non-minimal) core is returned.
    """
    core = list(literals)
    if len(core) <= 2:
        return core
    memo_key = frozenset(core)
    hit = _CORE_MEMO.get(memo_key)
    if hit is not None:
        _bump("minimize.memo_hit")
        return list(hit)
    chunk = max(1, len(core) // 2)
    candidate = _provenance_core(core)
    if candidate is not None and len(candidate) < len(core):
        # Re-deriving on the shrunken set often tightens the
        # certificate further (fewer rows -> shorter derivations).
        while len(candidate) > 3:
            tighter = _provenance_core(candidate)
            if tighter is None or len(tighter) >= len(candidate):
                break
            candidate = tighter
        # Distinct failing sets frequently reduce to the same
        # certificate; the polished result memos under the certificate
        # key as well as the original failing set.
        candidate_key = frozenset(candidate)
        polished = _CORE_MEMO.get(candidate_key)
        if polished is not None:
            _bump("minimize.memo_hit")
            _CORE_MEMO[memo_key] = polished
            return list(polished)
        hook.minimize_pool -= 1
        _bump("minimize.check")
        if _theory_check(candidate) is None:
            # The verified certificate is small but not always minimal —
            # and minimal cores prune the search far harder.  Polish
            # with single-literal deletion only (the halving ladder is
            # for the big pre-certificate sets); tiny cores are used
            # as-is.
            _bump("minimize.certificate")
            if len(candidate) <= 3:
                result = tuple(candidate)
                _CORE_MEMO[memo_key] = result
                _CORE_MEMO[candidate_key] = result
                return candidate
            core = candidate
            chunk = 1
            memo_key = candidate_key
        else:
            # A certificate that fails verification indicates a bug in
            # the provenance path; stay sound by falling back.
            _bump("minimize.certificate_invalid")
    while True:
        index = 0
        while index < len(core):
            if hook.minimize_pool <= 0:
                _bump("minimize.budget_exhausted")
                return core
            candidate = core[:index] + core[index + chunk:]
            if candidate:
                hook.minimize_pool -= 1
                _bump("minimize.check")
                if _theory_check(candidate) is None:
                    core = candidate
                    continue
            index += chunk
        if chunk == 1 or len(core) <= 1:
            break
        chunk //= 2
    _CORE_MEMO[memo_key] = tuple(core)
    return core


def _minimize_core_legacy(literals):
    """The pre-PR5 minimizer: chunked deletion re-solving the *full*
    system (all assigned literals, no component split, no memo, no
    budget).  Reached only under ``$REPRO_SMT_LEGACY`` so benchmarks can
    compare against a faithful baseline."""
    core = list(literals)
    chunk = max(1, len(core) // 2)
    while True:
        index = 0
        while index < len(core):
            candidate = core[:index] + core[index + chunk :]
            if candidate and _theory_check_monolithic(
                [(atom, val) for _, atom, val in candidate]
            ) is None:
                core = candidate
            else:
                index += chunk
        if chunk == 1:
            break
        chunk //= 2
    return core


def _project_model(model, original_vars, app_map) -> Dict[str, int]:
    """Keep only user-visible variables; report UF apps by their s-expr."""
    out: Dict[str, int] = {}
    by_name = {}
    for var, value in model.items():
        if var.op == OP_VAR:
            by_name[var.name] = value
    for name in original_vars:
        out[name] = by_name.get(name, 0)
    for app, fresh in app_map.items():
        if fresh.name in by_name:
            out[app.sexpr()] = by_name[fresh.name]
    return out

"""Lexer for the Lilac concrete syntax.

Token kinds:

* ``IDENT``  — component/instance/port names (``FPU``, ``add``)
* ``PARAM``  — parameter names including the hash (``#W``, ``#L``)
* ``NUMBER`` — integer literals
* ``STRING`` — double-quoted generator tool names (``"flopoco"``)
* punctuation/operator tokens, keyed by their spelling

Comments run from ``//`` to end of line.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple


class LexError(Exception):
    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int


KEYWORDS = {
    "comp",
    "extern",
    "gen",
    "new",
    "with",
    "where",
    "some",
    "let",
    "bundle",
    "for",
    "in",
    "if",
    "else",
    "assume",
    "assert",
    "interface",
    "true",
    "false",
    "log2",
    "exp2",
}

# Longest-match first.
SYMBOLS = [
    "::",
    ":=",
    "..",
    "->",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "<",
    ">",
    ",",
    ";",
    ":",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    ".",
    "?",
    "&",
    "|",
    "!",
    "'",
]


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str):
        raise LexError(message, line, column)

    while index < length:
        char = source[index]
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char == '"':
            end = source.find('"', index + 1)
            if end < 0:
                error("unterminated string literal")
            text = source[index + 1 : end]
            tokens.append(Token("STRING", text, line, column))
            column += end - index + 1
            index = end + 1
            continue
        if char == "#":
            start = index
            index += 1
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            if index == start + 1:
                error("expected parameter name after '#'")
            text = source[start:index]
            tokens.append(Token("PARAM", text, line, column))
            column += index - start
            continue
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            tokens.append(Token("NUMBER", text, line, column))
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = text if text in KEYWORDS else "IDENT"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue
        for symbol in SYMBOLS:
            if source.startswith(symbol, index):
                tokens.append(Token(symbol, symbol, line, column))
                index += len(symbol)
                column += len(symbol)
                break
        else:
            error(f"unexpected character {char!r}")
    tokens.append(Token("EOF", "", line, column))
    return tokens

"""Textual frontend for Lilac (lexer + recursive-descent parser)."""

from .lexer import LexError, Token, tokenize
from .parser import ParseError, Parser, parse_component, parse_program

__all__ = [
    "LexError",
    "Token",
    "tokenize",
    "ParseError",
    "Parser",
    "parse_component",
    "parse_program",
]

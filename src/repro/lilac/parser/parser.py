"""Recursive-descent parser for the Lilac concrete syntax.

The grammar follows Figure 7 of the paper, with the concrete spellings used
throughout its examples::

    gen "flopoco" comp FPAdd[#W]<G:1>(
        val_i: interface[G],
        l: [G, G+1] #W, r: [G, G+1] #W
    ) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L > 0; };

    comp Shift[#W, #N]<G:1>(input: [G, G+1] #W)
        -> (out: [G+#N, G+#N+1] #W) where #N >= 0 {
      bundle<#i> w[#N+1]: [G+#i, G+#i+1] #W;
      w{0} = input;
      for #k in 0..#N {
        r := new Reg[#W]<G+#k>(w{#k});
        w{#k+1} = r.out;
      }
      out = w{#N};
    }

Interval bounds are written relative to the component's event; both ``G+e``
and the tick form ``'G+e`` are accepted.  Bundle and array-port elements are
indexed with braces (``w{#k}``) to keep brackets free for parameter lists.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...params import (
    CAnd,
    CBool,
    CCmp,
    CNot,
    COr,
    Constraint,
    PAccess,
    PBin,
    PExpr,
    PInstOut,
    PInt,
    PIte,
    PUn,
    PVar,
)
from ..ast import (
    Access,
    Cmd,
    CmdAssert,
    CmdAssume,
    CmdBundle,
    CmdConnect,
    CmdFor,
    CmdIf,
    CmdInst,
    CmdInvoke,
    CmdLet,
    CmdOutBind,
    COMP,
    Component,
    ConstSig,
    EventDef,
    EXTERN,
    GEN,
    Interval,
    OutParamDef,
    ParamDef,
    PortDef,
    Program,
    Signature,
)
from .lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"{token.line}:{token.column}: {message} (at {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # Token plumbing -------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def at(self, kind: str, offset: int = 0) -> bool:
        return self.peek(offset).kind == kind

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        if not self.at(kind):
            raise ParseError(f"expected {kind!r}", self.peek())
        return self.advance()

    def accept(self, kind: str) -> Optional[Token]:
        if self.at(kind):
            return self.advance()
        return None

    def expect_name(self) -> Token:
        """Accept an identifier; also allow ``in`` (a keyword used as a
        port name throughout the paper's figures)."""
        if self.at("in"):
            return self.advance()
        return self.expect("IDENT")

    # Program --------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while not self.at("EOF"):
            program.define(self.parse_component())
        return program

    def parse_component(self) -> Component:
        if self.accept("extern"):
            self.accept("comp")
            sig = self.parse_signature(kind=EXTERN)
            self.expect(";")
            return Component(sig)
        if self.accept("gen"):
            tool = self.expect("STRING").text
            self.accept("comp")
            sig = self.parse_signature(kind=GEN, gen_tool=tool)
            self.expect(";")
            return Component(sig)
        self.expect("comp")
        sig = self.parse_signature(kind=COMP)
        self.expect("{")
        body = self.parse_commands()
        self.expect("}")
        return Component(sig, body)

    # Signature -------------------------------------------------------------

    def parse_signature(self, kind: str, gen_tool: Optional[str] = None) -> Signature:
        name = self.expect("IDENT").text
        params: List[ParamDef] = []
        if self.accept("["):
            while not self.at("]"):
                params.append(ParamDef(self.expect("PARAM").text))
                if not self.accept(","):
                    break
            self.expect("]")
        event = EventDef("G", 1)
        if self.accept("<"):
            ev_name = self.expect("IDENT").text
            self.expect(":")
            delay = self.parse_pexpr()
            self.expect(">")
            event = EventDef(ev_name, delay)
        self.expect("(")
        inputs = self.parse_ports(event.name)
        self.expect(")")
        outputs: List[PortDef] = []
        if self.accept("->"):
            self.expect("(")
            outputs = self.parse_ports(event.name)
            self.expect(")")
        out_params: List[OutParamDef] = []
        if self.accept("with"):
            self.expect("{")
            while self.accept("some"):
                pname = self.expect("PARAM").text
                constraints: List[Constraint] = []
                if self.accept("where"):
                    constraints.append(self.parse_constraint())
                    while self.accept(","):
                        constraints.append(self.parse_constraint())
                self.expect(";")
                out_params.append(OutParamDef(pname, constraints))
            self.expect("}")
        where: List[Constraint] = []
        if self.accept("where"):
            where.append(self.parse_constraint())
            while self.accept(","):
                where.append(self.parse_constraint())
        return Signature(
            name,
            params=params,
            event=event,
            inputs=inputs,
            outputs=outputs,
            out_params=out_params,
            where=where,
            kind=kind,
            gen_tool=gen_tool,
        )

    def parse_ports(self, event_name: str) -> List[PortDef]:
        ports: List[PortDef] = []
        while not self.at(")"):
            name = self.expect_name().text
            size: Optional[PExpr] = None
            if self.accept("["):
                size = self.parse_pexpr()
                self.expect("]")
            self.expect(":")
            if self.accept("interface"):
                self.expect("[")
                self.accept("'")
                self.expect("IDENT")
                self.expect("]")
                ports.append(
                    PortDef(name, Interval(0, 1), 1, size=size, interface=True)
                )
            else:
                interval = self.parse_interval(event_name)
                width = self.parse_pexpr()
                ports.append(PortDef(name, interval, width, size=size))
            if not self.accept(","):
                break
        return ports

    def parse_interval(self, event_name: str) -> Interval:
        self.expect("[")
        start = self.parse_event_offset(event_name)
        self.expect(",")
        end = self.parse_event_offset(event_name)
        self.expect("]")
        return Interval(start, end)

    def parse_event_offset(self, event_name: str) -> PExpr:
        """Parse ``G``, ``'G``, ``G+e``, or a bare expression (offset 0)."""
        self.accept("'")
        if self.at("IDENT") and self.peek().text == event_name:
            self.advance()
            if self.accept("+"):
                return self.parse_pexpr()
            if self.accept("-"):
                return PBin("-", PInt(0), self.parse_pexpr())
            return PInt(0)
        return self.parse_pexpr()

    # Commands ---------------------------------------------------------------

    def parse_commands(self) -> List[Cmd]:
        cmds: List[Cmd] = []
        while not self.at("}") and not self.at("EOF"):
            cmds.extend(self.parse_command())
        return cmds

    def parse_command(self) -> List[Cmd]:
        if self.accept("let"):
            name = self.expect("PARAM").text
            self.expect("=")
            expr = self.parse_pexpr()
            self.expect(";")
            return [CmdLet(name, expr)]
        if self.at("PARAM"):
            name = self.advance().text
            self.expect(":=")
            expr = self.parse_pexpr()
            self.expect(";")
            return [CmdOutBind(name, expr)]
        if self.accept("bundle"):
            index_vars: List[str] = []
            if self.accept("<"):
                index_vars.append(self.expect("PARAM").text)
                while self.accept(","):
                    index_vars.append(self.expect("PARAM").text)
                self.expect(">")
            name = self.expect("IDENT").text
            self.expect("[")
            sizes = [self.parse_pexpr()]
            while self.accept(","):
                sizes.append(self.parse_pexpr())
            self.expect("]")
            self.expect(":")
            interval = self.parse_interval("G")
            width = self.parse_pexpr()
            self.expect(";")
            return [CmdBundle(name, index_vars, sizes, interval, width)]
        if self.accept("for"):
            var = self.expect("PARAM").text
            self.expect("in")
            lo = self.parse_pexpr()
            self.expect("..")
            hi = self.parse_pexpr()
            self.expect("{")
            body = self.parse_commands()
            self.expect("}")
            return [CmdFor(var, lo, hi, body)]
        if self.accept("if"):
            cond = self.parse_constraint()
            self.expect("{")
            then = self.parse_commands()
            self.expect("}")
            otherwise: List[Cmd] = []
            if self.accept("else"):
                if self.at("if"):
                    otherwise = self.parse_command()
                else:
                    self.expect("{")
                    otherwise = self.parse_commands()
                    self.expect("}")
            return [CmdIf(cond, then, otherwise)]
        if self.accept("assume"):
            constraint = self.parse_constraint()
            self.expect(";")
            return [CmdAssume(constraint)]
        if self.accept("assert"):
            constraint = self.parse_constraint()
            self.expect(";")
            return [CmdAssert(constraint)]
        # Remaining forms start with an identifier: instantiation,
        # invocation, combined new+invoke, or a connection.
        return self.parse_ident_command()

    def parse_ident_command(self) -> List[Cmd]:
        start = self.pos
        name = self.expect("IDENT").text
        if self.accept(":="):
            if self.accept("new"):
                comp = self.expect("IDENT").text
                args: List[PExpr] = []
                if self.accept("["):
                    while not self.at("]"):
                        args.append(self.parse_pexpr())
                        if not self.accept(","):
                            break
                    self.expect("]")
                if self.at("<"):
                    # Combined instantiate+invoke (Figure 5a's Mux).
                    offset = self.parse_invoke_event()
                    call_args = self.parse_call_args()
                    self.expect(";")
                    inst = f"{name}!inst"
                    return [
                        CmdInst(inst, comp, args),
                        CmdInvoke(name, inst, offset, call_args),
                    ]
                self.expect(";")
                return [CmdInst(name, comp, args)]
            instance = self.expect("IDENT").text
            offset = self.parse_invoke_event()
            call_args = self.parse_call_args()
            self.expect(";")
            return [CmdInvoke(name, instance, offset, call_args)]
        # Connection: acc = acc ;
        self.pos = start
        dst = self.parse_access()
        self.expect("=")
        if self.at("NUMBER"):
            value = int(self.advance().text)
            self.expect(";")
            return [CmdConnect(dst, ConstSig(value))]
        src = self.parse_access()
        self.expect(";")
        return [CmdConnect(dst, src)]

    def parse_invoke_event(self) -> PExpr:
        self.expect("<")
        self.accept("'")
        # Event name followed by optional offset; also allow a bare offset.
        if self.at("IDENT") and self.peek(1).kind in ("+", ">", "-"):
            self.advance()
            if self.accept("+"):
                offset = self.parse_pexpr()
            elif self.accept("-"):
                offset = PBin("-", PInt(0), self.parse_pexpr())
            else:
                offset = PInt(0)
        else:
            offset = self.parse_pexpr()
        self.expect(">")
        return offset

    def parse_call_args(self) -> List:
        self.expect("(")
        args = []
        while not self.at(")"):
            if self.at("NUMBER"):
                args.append(ConstSig(int(self.advance().text)))
            else:
                args.append(self.parse_access())
            if not self.accept(","):
                break
        self.expect(")")
        return args

    def parse_access(self) -> Access:
        base = self.expect_name().text
        field: Optional[str] = None
        if self.accept("."):
            field = self.expect_name().text
        indices: List[PExpr] = []
        while self.accept("{"):
            indices.append(self.parse_pexpr())
            self.expect("}")
        return Access(base, field=field, indices=indices)

    # Parameter expressions ---------------------------------------------------

    def parse_pexpr(self) -> PExpr:
        """Expression with optional ternary: ``C ? P : P``."""
        start = self.pos
        try:
            cond = self.parse_plain_constraint()
            if self.accept("?"):
                then = self.parse_pexpr()
                self.expect(":")
                other = self.parse_pexpr()
                return PIte(cond, then, other)
        except ParseError:
            pass
        self.pos = start
        return self.parse_arith()

    def parse_arith(self) -> PExpr:
        expr = self.parse_term()
        while self.at("+") or self.at("-"):
            op = self.advance().kind
            expr = PBin(op, expr, self.parse_term())
        return expr

    def parse_term(self) -> PExpr:
        expr = self.parse_factor()
        while self.at("*") or self.at("/") or self.at("%"):
            op = self.advance().kind
            expr = PBin(op, expr, self.parse_factor())
        return expr

    def parse_factor(self) -> PExpr:
        if self.at("NUMBER"):
            return PInt(int(self.advance().text))
        if self.at("PARAM"):
            return PVar(self.advance().text)
        if self.at("log2") or self.at("exp2"):
            op = self.advance().kind
            self.expect("(")
            arg = self.parse_pexpr()
            self.expect(")")
            return PUn(op, arg)
        if self.accept("("):
            expr = self.parse_pexpr()
            self.expect(")")
            return expr
        if self.accept("-"):
            return PBin("-", PInt(0), self.parse_factor())
        if self.at("IDENT"):
            name = self.advance().text
            if self.accept("["):
                args = []
                while not self.at("]"):
                    args.append(self.parse_pexpr())
                    if not self.accept(","):
                        break
                self.expect("]")
                self.expect("::")
                out = self.expect("PARAM").text
                return PAccess(name, args, out)
            self.expect("::")
            out = self.expect("PARAM").text
            return PInstOut(name, out)
        raise ParseError("expected parameter expression", self.peek())

    # Constraints ---------------------------------------------------------------

    def parse_constraint(self) -> Constraint:
        """Constraint with optional ternary: ``C ? C1 : C2`` desugars to
        ``(C & C1) | (!C & C2)`` (used by Figure 9b's latency formulas)."""
        cond = self.parse_c_or()
        if self.accept("?"):
            then = self.parse_constraint()
            self.expect(":")
            other = self.parse_constraint()
            return COr(CAnd(cond, then), CAnd(CNot(cond), other))
        return cond

    def parse_plain_constraint(self) -> Constraint:
        return self.parse_c_or()

    def parse_c_or(self) -> Constraint:
        lhs = self.parse_c_and()
        while self.at("|") or self.at("||"):
            self.advance()
            lhs = COr(lhs, self.parse_c_and())
        return lhs

    def parse_c_and(self) -> Constraint:
        lhs = self.parse_c_not()
        while self.at("&") or self.at("&&"):
            self.advance()
            lhs = CAnd(lhs, self.parse_c_not())
        return lhs

    def parse_c_not(self) -> Constraint:
        if self.accept("!"):
            return CNot(self.parse_c_not())
        if self.accept("true"):
            return CBool(True)
        if self.accept("false"):
            return CBool(False)
        # Parenthesized constraint vs parenthesized arithmetic: backtrack.
        if self.at("("):
            start = self.pos
            self.advance()
            try:
                inner = self.parse_constraint()
                if self.accept(")") and not self._at_cmp():
                    return inner
            except ParseError:
                pass
            self.pos = start
        return self.parse_comparison()

    def _at_cmp(self) -> bool:
        return self.peek().kind in ("==", "!=", "<=", ">=", "<", ">")

    def parse_comparison(self) -> Constraint:
        lhs = self.parse_arith()
        if not self._at_cmp():
            raise ParseError("expected comparison operator", self.peek())
        op = self.advance().kind
        rhs = self.parse_arith()
        return CCmp(op, lhs, rhs)


def parse_program(source: str) -> Program:
    """Parse Lilac source text into a :class:`Program`."""
    return Parser(source).parse_program()


def parse_component(source: str) -> Component:
    """Parse a single component definition."""
    program = Parser(source).parse_program()
    if len(program) != 1:
        raise ValueError(f"expected exactly one component, got {len(program)}")
    return next(iter(program))

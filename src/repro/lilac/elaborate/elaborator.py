"""Elaboration (section 5 of the paper).

The elaborator turns a well-typed Lilac program plus concrete top-level
parameters into RTL:

* ``comp`` bodies are interpreted — loops unrolled, conditionals resolved,
  bundles inlined, parameter expressions evaluated to integers;
* ``gen`` components are produced by invoking the registered generator
  stand-in; output parameters are bound from the tool's report;
* ``extern`` components are materialized from the primitive library.

Bottom-up elaboration falls out of the recursive structure: a parent's
instantiation cannot complete until its child (and hence the child's
output parameters) are available.  Results are memoized per
``(component, parameter values)``; recursive instantiation is supported
and genuine cycles (a component transitively instantiating itself with the
same parameters) are detected and reported.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ...filament import (
    ConstRef,
    FConnect,
    FilamentError,
    FInvoke,
    FModule,
    FPort,
    InputRef,
    InvokeOutRef,
    PackRef,
    Ref,
    check_module,
)
from ...generators.base import GeneratorRegistry
from ...params import (
    PAccess,
    ParamError,
    PInstOut,
    evaluate,
    evaluate_constraint,
    pretty,
)
from ...rtl import Module
from ..ast import (
    Access,
    Cmd,
    CmdAssert,
    CmdAssume,
    CmdBundle,
    CmdConnect,
    CmdFor,
    CmdIf,
    CmdInst,
    CmdInvoke,
    CmdLet,
    CmdOutBind,
    COMP,
    Component,
    ConstSig,
    EXTERN,
    GEN,
    LilacError,
    PortDef,
    Program,
    Signature,
)
from ..stdlib import EXTERN_PRIMS
from .lower import lower_module, build_extern_module


class ElabError(LilacError):
    """Raised when elaboration fails (unbindable parameters, violated
    assumptions, generator failures, cycles)."""


class ElabResult:
    """A fully elaborated component: concrete interface + RTL."""

    def __init__(
        self,
        name: str,
        comp_name: str,
        params: Dict[str, int],
        delay: int,
        inputs: List[FPort],
        outputs: List[FPort],
        out_params: Dict[str, int],
        module: Module,
        fmodule: Optional[FModule] = None,
    ):
        self.name = name
        self.comp_name = comp_name
        self.params = dict(params)
        self.delay = delay
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.out_params = dict(out_params)
        self.module = module
        self.fmodule = fmodule

    def input(self, name: str) -> FPort:
        for port in self.inputs:
            if port.name == name:
                return port
        raise ElabError(f"{self.name}: no input {name!r}")

    def output(self, name: str) -> FPort:
        for port in self.outputs:
            if port.name == name:
                return port
        raise ElabError(f"{self.name}: no output {name!r}")

    @property
    def go_port(self) -> Optional[str]:
        for port in self.inputs:
            if port.interface:
                return port.name
        return None

    @property
    def latency(self) -> int:
        """Latency to the first output (start of its window)."""
        data_outs = [p for p in self.outputs if not p.interface]
        if not data_outs:
            return 0
        return min(p.start for p in data_outs)

    def __repr__(self):
        return (
            f"ElabResult({self.name}, delay={self.delay}, "
            f"latency={self.latency}, out_params={self.out_params})"
        )


class _Instance:
    __slots__ = ("name", "result", "uid")

    def __init__(self, name: str, result: ElabResult, uid: str):
        self.name = name
        self.result = result
        self.uid = uid


class Elaborator:
    def __init__(
        self,
        program: Program,
        registry: Optional[GeneratorRegistry] = None,
        verify: bool = True,
        observer=None,
    ):
        self.program = program
        self.registry = registry
        self.verify = verify
        #: duck-typed hook with ``component_elaborated(name, env)`` and
        #: ``stage_time(stage, seconds)`` — used by the driver layer to
        #: count genuine elaborations and split out wellformed/lower time.
        self.observer = observer
        self._cache: Dict[Tuple[str, Tuple[Tuple[str, int], ...]], ElabResult] = {}
        self._in_progress: set = set()
        self._uid = itertools.count()

    # ------------------------------------------------------------------

    def elaborate(
        self, comp_name: str, params: Union[Dict[str, int], Sequence[int], None] = None
    ) -> ElabResult:
        component = self.program.get(comp_name)
        sig = component.signature
        env = self._normalize_params(sig, params)
        key = (comp_name, tuple(sorted(env.items())))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            raise ElabError(
                f"cyclic instantiation: {comp_name} with parameters {env} "
                "transitively instantiates itself"
            )
        self._in_progress.add(key)
        try:
            for clause in sig.where:
                if not evaluate_constraint(clause, env, self._access_fn(env)):
                    raise ElabError(
                        f"{comp_name}: parameters {env} violate where-clause"
                    )
            if sig.kind == EXTERN:
                result = self._elaborate_extern(component, env)
            elif sig.kind == GEN:
                result = self._elaborate_gen(component, env)
            else:
                result = _BodyElaborator(self, component, env).run()
        finally:
            self._in_progress.discard(key)
        self._cache[key] = result
        if self.observer is not None:
            self.observer.component_elaborated(comp_name, env)
        return result

    def _normalize_params(self, sig: Signature, params) -> Dict[str, int]:
        names = sig.param_names()
        if params is None:
            params = {}
        if isinstance(params, dict):
            env = dict(params)
        else:
            values = list(params)
            if len(values) != len(names):
                raise ElabError(
                    f"{sig.name}: expected {len(names)} parameters, "
                    f"got {len(values)}"
                )
            env = dict(zip(names, values))
        missing = [n for n in names if n not in env]
        if missing:
            raise ElabError(f"{sig.name}: missing parameters {missing}")
        extra = [n for n in env if n not in names]
        if extra:
            raise ElabError(f"{sig.name}: unknown parameters {extra}")
        return {name: int(value) for name, value in env.items()}

    def _access_fn(self, outer_env: Dict[str, int]):
        def access_fn(node: PAccess, env: Dict[str, int]) -> int:
            args = [evaluate(a, env, access_fn) for a in node.args]
            child = self.elaborate(node.comp, args)
            if node.out not in child.out_params:
                raise ElabError(
                    f"{node.comp} does not define output parameter {node.out}"
                )
            return child.out_params[node.out]

        return access_fn

    # ------------------------------------------------------------------

    def _concrete_ports(
        self, ports: Sequence[PortDef], env: Dict[str, int], access_fn
    ) -> List[FPort]:
        out = []
        for port in ports:
            if port.interface:
                out.append(FPort(port.name, 1, 0, 1, interface=True))
                continue
            start = evaluate(port.interval.start, env, access_fn)
            end = evaluate(port.interval.end, env, access_fn)
            width = evaluate(port.width, env, access_fn)
            size = (
                evaluate(port.size, env, access_fn)
                if port.size is not None
                else None
            )
            out.append(FPort(port.name, width, start, end, size=size))
        return out

    def _elaborate_extern(self, component: Component, env: Dict[str, int]) -> ElabResult:
        sig = component.signature
        spec = EXTERN_PRIMS.get(sig.name)
        access_fn = self._access_fn(env)
        full_env = dict(env)
        inputs = self._concrete_ports(sig.inputs, full_env, access_fn)
        outputs = self._concrete_ports(sig.outputs, full_env, access_fn)
        delay = evaluate(sig.event.delay, full_env, access_fn)
        if spec is None:
            raise ElabError(
                f"extern component {sig.name!r} has no primitive backing "
                "(register it in EXTERN_PRIMS or provide a generator)"
            )
        name = _mangle(sig.name, env)
        module = build_extern_module(name, spec[0], env, inputs, outputs)
        return ElabResult(
            name, sig.name, env, delay, inputs, outputs, {}, module
        )

    def _elaborate_gen(self, component: Component, env: Dict[str, int]) -> ElabResult:
        sig = component.signature
        if self.registry is None:
            raise ElabError(
                f"{sig.name}: gen component requires a generator registry"
            )
        generated = self.registry.run(sig.gen_tool, sig.name, env)
        out_params = generated.out_params
        declared = set(sig.out_param_names())
        missing = declared - set(out_params)
        if missing:
            raise ElabError(
                f"{sig.gen_tool} did not bind output parameters {missing} "
                f"for {sig.name}"
            )
        full_env = dict(env)
        full_env.update(out_params)
        access_fn = self._access_fn(full_env)
        # Validate the generator's bindings against the declared clauses.
        for out_param in sig.out_params:
            for clause in out_param.where:
                if not evaluate_constraint(clause, full_env, access_fn):
                    raise ElabError(
                        f"{sig.gen_tool} reported {out_params} for {sig.name}, "
                        f"violating where-clause on {out_param.name}"
                    )
        inputs = self._concrete_ports(sig.inputs, full_env, access_fn)
        outputs = self._concrete_ports(sig.outputs, full_env, access_fn)
        delay = evaluate(sig.event.delay, full_env, access_fn)
        self._validate_gen_ports(sig, generated.module, inputs, outputs)
        name = generated.module.name
        return ElabResult(
            name, sig.name, env, delay, inputs, outputs, out_params,
            generated.module,
        )

    def _validate_gen_ports(self, sig, module, inputs, outputs) -> None:
        for port in inputs:
            net = module.ports.get(port.name)
            expected = port.width * (port.size or 1)
            if net is None or module.port_dirs[port.name] != "in":
                raise ElabError(
                    f"{sig.name}: generated module lacks input {port.name!r}"
                )
            if net.width != expected:
                raise ElabError(
                    f"{sig.name}: generated input {port.name!r} is "
                    f"{net.width} bits, interface says {expected}"
                )
        for port in outputs:
            net = module.ports.get(port.name)
            expected = port.width * (port.size or 1)
            if net is None or module.port_dirs[port.name] != "out":
                raise ElabError(
                    f"{sig.name}: generated module lacks output {port.name!r}"
                )
            if net.width != expected:
                raise ElabError(
                    f"{sig.name}: generated output {port.name!r} is "
                    f"{net.width} bits, interface says {expected}"
                )


def _mangle(name: str, env: Dict[str, int]) -> str:
    if not env:
        return name
    suffix = "_".join(str(v) for _, v in sorted(env.items()))
    return f"{name}_{suffix}"


class _BodyElaborator:
    """Interprets one ``comp`` body under a concrete parameter valuation."""

    def __init__(self, parent: Elaborator, component: Component, env: Dict[str, int]):
        self.elab = parent
        self.component = component
        self.sig = component.signature
        self.env: Dict[str, int] = dict(env)
        self.input_params = dict(env)
        self.out_params: Dict[str, int] = {}
        self.scopes: List[Dict[str, object]] = [{}]
        self.bundles: Dict[str, Dict] = {}
        self.invokes: List[FInvoke] = []
        self.connects: List[FConnect] = []
        self._uid = itertools.count()

    # Scope helpers ------------------------------------------------------

    def _lookup(self, name: str):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _define(self, name: str, value) -> None:
        if name in self.scopes[-1]:
            raise ElabError(f"{self.sig.name}: duplicate definition {name!r}")
        self.scopes[-1][name] = value

    # Parameter evaluation -----------------------------------------------

    def _inst_out_fn(self, node: PInstOut) -> int:
        entry = self._lookup(node.instance)
        if not isinstance(entry, _Instance):
            raise ElabError(
                f"{self.sig.name}: unknown instance {node.instance!r}"
            )
        if node.out not in entry.result.out_params:
            raise ElabError(
                f"{self.sig.name}: {node.instance} has no output parameter "
                f"{node.out}"
            )
        return entry.result.out_params[node.out]

    def _access_fn(self):
        """Parameter access that can see the body's instances (so that
        ``Max[Add::#L, Mul::#L]::#Out`` evaluates)."""

        def access_fn(node: PAccess, env: Dict[str, int]) -> int:
            args = [
                evaluate(a, env, access_fn, self._inst_out_fn)
                for a in node.args
            ]
            child = self.elab.elaborate(node.comp, args)
            if node.out not in child.out_params:
                raise ElabError(
                    f"{node.comp} does not define output parameter {node.out}"
                )
            return child.out_params[node.out]

        return access_fn

    def _eval(self, expr) -> int:
        return evaluate(
            expr,
            self.env,
            access_fn=self._access_fn(),
            inst_out_fn=self._inst_out_fn,
        )

    def _eval_c(self, constraint) -> bool:
        return evaluate_constraint(
            constraint,
            self.env,
            access_fn=self._access_fn(),
            inst_out_fn=self._inst_out_fn,
        )

    # Main ----------------------------------------------------------------

    def run(self) -> ElabResult:
        self._walk(self.component.body)
        declared = set(self.sig.out_param_names())
        missing = declared - set(self.out_params)
        if missing:
            raise ElabError(
                f"{self.sig.name}: output parameters never bound: {missing}"
            )
        full_env = dict(self.env)
        full_env.update(self.out_params)
        access_fn = self.elab._access_fn(full_env)
        saved_env = self.env
        self.env = full_env
        try:
            inputs = self.elab._concrete_ports(self.sig.inputs, full_env, access_fn)
            outputs = self.elab._concrete_ports(self.sig.outputs, full_env, access_fn)
            delay = evaluate(self.sig.event.delay, full_env, access_fn)
        finally:
            self.env = saved_env
        name = _mangle(self.sig.name, self.input_params)
        fmodule = FModule(name, delay, inputs, outputs, self.out_params)
        fmodule.invokes = self.invokes
        fmodule.connects = self.connects
        observer = self.elab.observer
        if self.elab.verify:
            start = time.perf_counter()
            check_module(fmodule)
            if observer is not None:
                observer.stage_time("wellformed", time.perf_counter() - start)
        start = time.perf_counter()
        module = lower_module(fmodule)
        if observer is not None:
            observer.stage_time("lower", time.perf_counter() - start)
        return ElabResult(
            name, self.sig.name, self.input_params, delay, inputs, outputs,
            self.out_params, module, fmodule,
        )

    def _walk(self, cmds: Sequence[Cmd]) -> None:
        for cmd in cmds:
            self._walk_cmd(cmd)

    def _walk_cmd(self, cmd: Cmd) -> None:
        if isinstance(cmd, CmdInst):
            args = [self._eval(a) for a in cmd.args]
            child_comp = self.elab.program.get(cmd.comp)
            child_env = dict(zip(child_comp.signature.param_names(), args))
            result = self.elab.elaborate(cmd.comp, child_env)
            uid = f"{cmd.name}#{next(self._uid)}"
            self._define(cmd.name, _Instance(cmd.name, result, uid))
        elif isinstance(cmd, CmdInvoke):
            self._cmd_invoke(cmd)
        elif isinstance(cmd, CmdConnect):
            self._cmd_connect(cmd)
        elif isinstance(cmd, CmdLet):
            if cmd.name in self.env:
                raise ElabError(f"{self.sig.name}: duplicate let {cmd.name!r}")
            self.env[cmd.name] = self._eval(cmd.expr)
        elif isinstance(cmd, CmdOutBind):
            self._cmd_out_bind(cmd)
        elif isinstance(cmd, CmdBundle):
            self._cmd_bundle(cmd)
        elif isinstance(cmd, CmdFor):
            self._cmd_for(cmd)
        elif isinstance(cmd, CmdIf):
            if self._eval_c(cmd.cond):
                self._walk(cmd.then)
            else:
                self._walk(cmd.otherwise)
        elif isinstance(cmd, CmdAssume):
            if not self._eval_c(cmd.constraint):
                raise ElabError(
                    f"{self.sig.name}: assumption violated at elaboration: "
                    f"{cmd.constraint!r} with {self.env}"
                )
        elif isinstance(cmd, CmdAssert):
            if not self._eval_c(cmd.constraint):
                raise ElabError(
                    f"{self.sig.name}: assertion failed at elaboration: "
                    f"{cmd.constraint!r} with {self.env}"
                )
        else:
            raise ElabError(f"unknown command {cmd!r}")

    def _cmd_invoke(self, cmd: CmdInvoke) -> None:
        entry = self._lookup(cmd.instance)
        if not isinstance(entry, _Instance):
            raise ElabError(
                f"{self.sig.name}: invocation of unknown instance "
                f"{cmd.instance!r}"
            )
        time = self._eval(cmd.offset)
        args = [self._resolve_arg(a) for a in cmd.args]
        qname = f"{cmd.name}@{next(self._uid)}"
        invoke = FInvoke(qname, entry.result, time, args)
        invoke._instance_key = entry.uid
        self.invokes.append(invoke)
        self._define(cmd.name, invoke)

    def _resolve_arg(self, arg) -> Ref:
        if isinstance(arg, ConstSig):
            width = self._eval(arg.width) if arg.width is not None else None
            return ConstRef(arg.value, width)
        return self._resolve_access(arg)

    def _resolve_access(self, access: Access) -> Ref:
        base, field = access.base, access.field
        indices = [self._eval(i) for i in access.indices]
        if field is None:
            for port in self.sig.inputs:
                if port.name == base:
                    return InputRef(base, indices[0] if indices else None)
            if base in self.bundles:
                bundle = self.bundles[base]
                if not indices and len(bundle["sizes"]) == 1:
                    # Whole-bundle read: pack every element.
                    elements = []
                    for position in range(bundle["sizes"][0]):
                        key = (position,)
                        if key not in bundle["values"]:
                            raise ElabError(
                                f"{self.sig.name}: bundle element "
                                f"{base}{key} read before it was written"
                            )
                        elements.append(bundle["values"][key])
                    return PackRef(elements)
                key = tuple(indices)
                if key not in bundle["values"]:
                    raise ElabError(
                        f"{self.sig.name}: bundle element {base}{key} read "
                        "before it was written"
                    )
                return bundle["values"][key]
            raise ElabError(f"{self.sig.name}: unknown signal {base!r}")
        entry = self._lookup(base)
        if not isinstance(entry, FInvoke):
            raise ElabError(
                f"{self.sig.name}: unknown invocation {base!r}"
            )
        return InvokeOutRef(entry.name, field, indices[0] if indices else None)

    def _cmd_connect(self, cmd: CmdConnect) -> None:
        src = self._resolve_arg(cmd.src)
        dst = cmd.dst
        indices = [self._eval(i) for i in dst.indices]
        if dst.field is None:
            for port in self.sig.outputs:
                if port.name == dst.base:
                    self.connects.append(
                        FConnect(dst.base, indices[0] if indices else None, src)
                    )
                    return
            if dst.base in self.bundles:
                bundle = self.bundles[dst.base]
                key = tuple(indices)
                if len(key) != len(bundle["sizes"]):
                    raise ElabError(
                        f"{self.sig.name}: bundle {dst.base!r} expects "
                        f"{len(bundle['sizes'])} indices"
                    )
                for index, size in zip(key, bundle["sizes"]):
                    if not (0 <= index < size):
                        raise ElabError(
                            f"{self.sig.name}: bundle index {key} out of "
                            f"bounds for {dst.base}[{bundle['sizes']}]"
                        )
                if key in bundle["values"]:
                    raise ElabError(
                        f"{self.sig.name}: bundle element {dst.base}{key} "
                        "written twice"
                    )
                bundle["values"][key] = src
                return
        raise ElabError(f"{self.sig.name}: invalid connect target {dst!r}")

    def _cmd_out_bind(self, cmd: CmdOutBind) -> None:
        self.sig.out_param(cmd.name)
        if cmd.name in self.out_params:
            raise ElabError(
                f"{self.sig.name}: output parameter {cmd.name} bound twice"
            )
        value = self._eval(cmd.expr)
        self.out_params[cmd.name] = value
        self.env[cmd.name] = value

    def _cmd_bundle(self, cmd: CmdBundle) -> None:
        if cmd.name in self.bundles:
            raise ElabError(f"{self.sig.name}: duplicate bundle {cmd.name!r}")
        sizes = [self._eval(s) for s in cmd.sizes]
        self.bundles[cmd.name] = {"cmd": cmd, "sizes": sizes, "values": {}}

    def _cmd_for(self, cmd: CmdFor) -> None:
        lo = self._eval(cmd.lo)
        hi = self._eval(cmd.hi)
        saved = self.env.get(cmd.var)
        had = cmd.var in self.env
        for value in range(lo, hi):
            self.env[cmd.var] = value
            self.scopes.append({})
            try:
                self._walk(cmd.body)
            finally:
                self.scopes.pop()
        if had:
            self.env[cmd.var] = saved
        else:
            self.env.pop(cmd.var, None)

"""Elaboration: parameterized Lilac -> concrete Filament -> RTL."""

from .elaborator import ElabError, ElabResult, Elaborator
from .lower import build_extern_module, lower_module

__all__ = [
    "ElabError",
    "ElabResult",
    "Elaborator",
    "build_extern_module",
    "lower_module",
]
